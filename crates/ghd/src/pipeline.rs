//! Pipelineability (paper Definition 2, §III-C): two GHD nodes can stream
//! into each other when their shared attributes form a prefix of both trie
//! orders.

/// True when `shared` (the set `χ(t0) ∩ χ(t1)`) is a prefix of both
/// attribute orders, compared as sets (Definition 2).
///
/// ```
/// use eh_ghd::pipelineable;
/// // Q8 shape: root [x, y], child [x, z] sharing {x}.
/// assert!(pipelineable(&[0], &[0, 1], &[0, 2]));
/// // Shared var not leading in one order: not pipelineable.
/// assert!(!pipelineable(&[0], &[1, 0], &[0, 2]));
/// ```
pub fn pipelineable(shared: &[usize], order_a: &[usize], order_b: &[usize]) -> bool {
    let k = shared.len();
    if k > order_a.len() || k > order_b.len() {
        return false;
    }
    let is_prefix = |order: &[usize]| {
        let mut prefix: Vec<usize> = order[..k].to_vec();
        prefix.sort_unstable();
        let mut s: Vec<usize> = shared.to_vec();
        s.sort_unstable();
        prefix == s
    };
    is_prefix(order_a) && is_prefix(order_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_shared_is_trivially_pipelineable() {
        assert!(pipelineable(&[], &[0, 1], &[2, 3]));
    }

    #[test]
    fn full_prefix_any_internal_order() {
        // Shared {0,1} as a prefix in different permutations still counts.
        assert!(pipelineable(&[0, 1], &[1, 0, 2], &[0, 1, 3]));
    }

    #[test]
    fn shared_larger_than_order_fails() {
        assert!(!pipelineable(&[0, 1], &[0], &[0, 1]));
    }

    #[test]
    fn interleaved_shared_fails() {
        assert!(!pipelineable(&[0, 2], &[0, 1, 2], &[0, 2, 3]));
    }
}
