//! The GHD data structure (paper Definition 1).

use eh_query::Hypergraph;

/// A rooted generalized hypertree decomposition `D = (T, χ, λ)`.
///
/// Nodes are indices `0..num_nodes()`. `bags[t]` is `χ(t)` (sorted vertex
/// set) and `lambdas[t]` is `λ(t)` (hyperedge indices). The enumeration in
/// this crate constructs bags as exactly the union of their λ-edges'
/// vertices, which satisfies properties 3–4 of Definition 1 by
/// construction; [`Ghd::validate`] re-checks everything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ghd {
    /// `χ(t)`: sorted variable set per node.
    pub bags: Vec<Vec<usize>>,
    /// `λ(t)`: hyperedge (atom) indices per node.
    pub lambdas: Vec<Vec<usize>>,
    /// Parent index per node (`None` for the root).
    pub parent: Vec<Option<usize>>,
    /// Children indices per node.
    pub children: Vec<Vec<usize>>,
    /// Root node index.
    pub root: usize,
}

impl Ghd {
    /// Build a rooted GHD from a partition of hyperedges into groups and
    /// an undirected tree over the groups.
    pub fn from_partition(
        h: &Hypergraph,
        groups: &[Vec<usize>],
        tree_edges: &[(usize, usize)],
        root: usize,
    ) -> Ghd {
        let k = groups.len();
        let bags: Vec<Vec<usize>> = groups
            .iter()
            .map(|g| {
                let mut bag: Vec<usize> =
                    g.iter().flat_map(|&e| h.edges[e].iter().copied()).collect();
                bag.sort_unstable();
                bag.dedup();
                bag
            })
            .collect();
        // Orient the tree away from the root.
        let mut adj = vec![Vec::new(); k];
        for &(a, b) in tree_edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut parent = vec![None; k];
        let mut children = vec![Vec::new(); k];
        let mut stack = vec![root];
        let mut seen = vec![false; k];
        seen[root] = true;
        while let Some(n) = stack.pop() {
            for &m in &adj[n] {
                if !seen[m] {
                    seen[m] = true;
                    parent[m] = Some(n);
                    children[n].push(m);
                    stack.push(m);
                }
            }
        }
        debug_assert!(seen.iter().all(|&s| s), "tree edges must connect all groups");
        Ghd { bags, lambdas: groups.to_vec(), parent, children, root }
    }

    /// The trivial single-node GHD covering the whole query (the shape a
    /// plain worst-case-optimal engine without GHD plans executes — our
    /// LogicBlox-style baseline).
    pub fn single_node(h: &Hypergraph) -> Ghd {
        let groups = vec![(0..h.edges.len()).collect::<Vec<_>>()];
        Ghd::from_partition(h, &groups, &[], 0)
    }

    /// Number of decomposition nodes.
    pub fn num_nodes(&self) -> usize {
        self.bags.len()
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, mut t: usize) -> usize {
        let mut d = 0;
        while let Some(p) = self.parent[t] {
            d += 1;
            t = p;
        }
        d
    }

    /// Height of the tree (max node depth).
    pub fn height(&self) -> usize {
        (0..self.num_nodes()).map(|t| self.depth(t)).max().unwrap_or(0)
    }

    /// Nodes in breadth-first order from the root (the traversal that
    /// defines the paper's global attribute order, §II-C).
    pub fn bfs_order(&self) -> Vec<usize> {
        let mut order = vec![self.root];
        let mut i = 0;
        while i < order.len() {
            order.extend(self.children[order[i]].iter().copied());
            i += 1;
        }
        order
    }

    /// Nodes in post-order (children before parents — the bottom-up
    /// execution order).
    pub fn post_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.num_nodes());
        fn rec(g: &Ghd, t: usize, out: &mut Vec<usize>) {
            for &c in &g.children[t] {
                rec(g, c, out);
            }
            out.push(t);
        }
        rec(self, self.root, &mut order);
        order
    }

    /// Shared variables between a node and its parent (empty for the root).
    pub fn shared_with_parent(&self, t: usize) -> Vec<usize> {
        match self.parent[t] {
            None => Vec::new(),
            Some(p) => self.bags[t].iter().copied().filter(|v| self.bags[p].contains(v)).collect(),
        }
    }

    /// Check Definition 1 against the hypergraph: every edge covered by
    /// some bag, the running-intersection property, and `χ(t) ⊆ ∪λ(t)`.
    pub fn validate(&self, h: &Hypergraph) -> bool {
        // Property 1: each hyperedge inside some bag.
        for e in &h.edges {
            if !self.bags.iter().any(|bag| e.iter().all(|v| bag.contains(v))) {
                return false;
            }
        }
        // Properties 3/4: bags covered by their own λ edges.
        for (bag, lambda) in self.bags.iter().zip(&self.lambdas) {
            for v in bag {
                if !lambda.iter().any(|&e| h.edges[e].contains(v)) {
                    return false;
                }
            }
        }
        // Property 2: for each vertex, the nodes containing it form a
        // connected subtree.
        for v in 0..h.num_vertices {
            let holders: Vec<usize> =
                (0..self.num_nodes()).filter(|&t| self.bags[t].contains(&v)).collect();
            if holders.len() <= 1 {
                continue;
            }
            // BFS within holders over tree adjacency.
            let mut seen = vec![false; self.num_nodes()];
            let mut stack = vec![holders[0]];
            seen[holders[0]] = true;
            while let Some(t) = stack.pop() {
                let mut neighbours = self.children[t].clone();
                if let Some(p) = self.parent[t] {
                    neighbours.push(p);
                }
                for n in neighbours {
                    if !seen[n] && self.bags[n].contains(&v) {
                        seen[n] = true;
                        stack.push(n);
                    }
                }
            }
            if holders.iter().any(|&t| !seen[t]) {
                return false;
            }
        }
        true
    }

    /// Render as an ASCII tree using `var_name` and `atom_name` callbacks
    /// (used by the Figure 2 / Figure 3 harness binaries).
    pub fn render(
        &self,
        var_name: &dyn Fn(usize) -> String,
        atom_name: &dyn Fn(usize) -> String,
    ) -> String {
        let mut out = String::new();
        self.render_node(self.root, 0, var_name, atom_name, &mut out);
        out
    }

    fn render_node(
        &self,
        t: usize,
        indent: usize,
        var_name: &dyn Fn(usize) -> String,
        atom_name: &dyn Fn(usize) -> String,
        out: &mut String,
    ) {
        use std::fmt::Write;
        let vars: Vec<String> = self.bags[t].iter().map(|&v| var_name(v)).collect();
        let atoms: Vec<String> = self.lambdas[t].iter().map(|&e| atom_name(e)).collect();
        let _ = writeln!(
            out,
            "{}[{}]  λ = {{{}}}",
            "  ".repeat(indent),
            vars.join(" "),
            atoms.join(", ")
        );
        for &c in &self.children[t] {
            self.render_node(c, indent + 1, var_name, atom_name, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Hypergraph {
        Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]])
    }

    #[test]
    fn single_node_shape() {
        let h = triangle();
        let g = Ghd::single_node(&h);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.bags[0], vec![0, 1, 2]);
        assert_eq!(g.height(), 0);
        assert!(g.validate(&h));
    }

    #[test]
    fn from_partition_orients_tree() {
        // Path query R(0,1), S(1,2) as two nodes.
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]);
        let g = Ghd::from_partition(&h, &[vec![0], vec![1]], &[(0, 1)], 1);
        assert_eq!(g.root, 1);
        assert_eq!(g.parent[0], Some(1));
        assert_eq!(g.children[1], vec![0]);
        assert_eq!(g.depth(0), 1);
        assert_eq!(g.height(), 1);
        assert_eq!(g.shared_with_parent(0), vec![1]);
        assert!(g.validate(&h));
    }

    #[test]
    fn orders() {
        // Chain of three nodes.
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        let g = Ghd::from_partition(&h, &[vec![0], vec![1], vec![2]], &[(0, 1), (1, 2)], 0);
        assert_eq!(g.bfs_order(), vec![0, 1, 2]);
        assert_eq!(g.post_order(), vec![2, 1, 0]);
        assert!(g.validate(&h));
    }

    #[test]
    fn validate_rejects_broken_running_intersection() {
        // Vertex 0 in both leaf bags but not in the middle node.
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]);
        // Chain: {0,1} - {1,2} - {0,2}: vertex 0 appears at both ends only.
        let g = Ghd::from_partition(&h, &[vec![0], vec![1], vec![2]], &[(0, 1), (1, 2)], 0);
        assert!(!g.validate(&h));
    }

    #[test]
    fn validate_rejects_uncovered_edge() {
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]);
        let mut g = Ghd::single_node(&h);
        g.bags[0] = vec![0, 1]; // drop vertex 2: edge 1 no longer covered
        g.lambdas[0] = vec![0];
        assert!(!g.validate(&h));
    }

    #[test]
    fn render_produces_tree_text() {
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]);
        let g = Ghd::from_partition(&h, &[vec![0], vec![1]], &[(0, 1)], 0);
        let text = g.render(&|v| format!("v{v}"), &|e| format!("R{e}"));
        assert!(text.contains("[v0 v1]"), "{text}");
        assert!(text.contains("  [v1 v2]"), "{text}");
    }
}
