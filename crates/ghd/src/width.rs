//! GHD widths: per-node fractional edge covers and the fhw objective
//! (paper §II-B/§II-C), with a cache since enumeration revisits the same
//! nodes constantly.
//!
//! Per the paper's definition, the width of a node `t` is `AGM(Q_t)`
//! where `Q_t` joins exactly the relations in `λ(t)` — so the fractional
//! cover may use only the node's own edges. (Covering with *all* query
//! edges would understate the execution cost of nodes that split a cyclic
//! core across the tree.)

use std::collections::HashMap;

use eh_lp::{fractional_edge_cover_exact, Rational};
use eh_query::Hypergraph;

use crate::ghd::Ghd;

/// Memoises fractional-edge-cover solves keyed by (λ, cover-target).
#[derive(Debug, Default)]
pub struct WidthCache {
    cache: HashMap<(Vec<usize>, Vec<usize>), Rational>,
}

impl WidthCache {
    /// Fresh cache.
    pub fn new() -> WidthCache {
        WidthCache::default()
    }

    fn cover(&mut self, h: &Hypergraph, lambda: &[usize], targets: &[usize]) -> Rational {
        let key = (lambda.to_vec(), targets.to_vec());
        if let Some(w) = self.cache.get(&key) {
            return *w;
        }
        let w = cover_width(h, lambda, targets);
        self.cache.insert(key, w);
        w
    }
}

/// Optimal fractional cover of `targets` using only the edges in
/// `lambda`. Unit weights: this is the fractional edge-cover number, the
/// AGM exponent the paper quotes (3/2 for the triangle).
fn cover_width(h: &Hypergraph, lambda: &[usize], targets: &[usize]) -> Rational {
    if targets.is_empty() {
        return Rational::ZERO;
    }
    let vid: HashMap<usize, usize> = targets.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let edges: Vec<Vec<usize>> = lambda
        .iter()
        .map(|&e| h.edges[e].iter().filter_map(|v| vid.get(v).copied()).collect::<Vec<usize>>())
        .collect();
    let (_, value) = fractional_edge_cover_exact(targets.len(), &edges)
        .expect("bag vertices are covered by their own λ edges");
    value
}

/// Width of one node: fractional cover of the whole bag by its λ edges.
pub fn node_width(h: &Hypergraph, lambda: &[usize], bag: &[usize]) -> Rational {
    cover_width(h, lambda, bag)
}

/// Width of a GHD: the maximum node width (the quantity minimised to get
/// fhw).
pub fn ghd_width(g: &Ghd, h: &Hypergraph) -> Rational {
    ghd_width_cached(g, h, &mut WidthCache::new())
}

/// [`ghd_width`] with an external cache (used during enumeration).
pub fn ghd_width_cached(g: &Ghd, h: &Hypergraph, cache: &mut WidthCache) -> Rational {
    g.bags
        .iter()
        .zip(&g.lambdas)
        .map(|(bag, lambda)| cache.cover(h, lambda, bag))
        .max()
        .unwrap_or(Rational::ZERO)
}

/// Width ignoring selected vertices — step 1 of the paper's across-node
/// pushdown (§III-B2): "changing V in the AGM constraint to be only the
/// attributes without selections".
pub fn ghd_width_unselected(g: &Ghd, h: &Hypergraph, selected: &[bool]) -> Rational {
    ghd_width_unselected_cached(g, h, selected, &mut WidthCache::new())
}

/// [`ghd_width_unselected`] with an external cache.
pub fn ghd_width_unselected_cached(
    g: &Ghd,
    h: &Hypergraph,
    selected: &[bool],
    cache: &mut WidthCache,
) -> Rational {
    g.bags
        .iter()
        .zip(&g.lambdas)
        .map(|(bag, lambda)| {
            let targets: Vec<usize> = bag.iter().copied().filter(|&v| !selected[v]).collect();
            cache.cover(h, lambda, &targets)
        })
        .max()
        .unwrap_or(Rational::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ghd::Ghd;

    fn triangle() -> Hypergraph {
        Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]])
    }

    #[test]
    fn triangle_node_width() {
        let h = triangle();
        assert_eq!(node_width(&h, &[0, 1, 2], &[0, 1, 2]), Rational::new(3, 2));
        assert_eq!(node_width(&h, &[0], &[0, 1]), Rational::ONE);
    }

    #[test]
    fn splitting_a_triangle_costs_more() {
        // A node holding only two triangle edges over all three vertices
        // joins pairwise: width 2, not 3/2. This is what stops the
        // chooser from tearing cyclic cores apart.
        let h = triangle();
        assert_eq!(node_width(&h, &[0, 1], &[0, 1, 2]), Rational::from_int(2));
    }

    #[test]
    fn single_node_ghd_width() {
        let h = triangle();
        let g = Ghd::single_node(&h);
        assert_eq!(ghd_width(&g, &h), Rational::new(3, 2));
    }

    #[test]
    fn path_ghd_width_is_one() {
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]);
        let g = Ghd::from_partition(&h, &[vec![0], vec![1]], &[(0, 1)], 0);
        assert_eq!(ghd_width(&g, &h), Rational::ONE);
    }

    #[test]
    fn unselected_width_drops_selection_vertices() {
        // Q14 shape: R(x, a) with a selected. Full width 1; unselected
        // width also 1 (x still needs covering); selecting BOTH drops to 0.
        let h = Hypergraph::new(2, vec![vec![0, 1]]);
        let g = Ghd::single_node(&h);
        assert_eq!(ghd_width_unselected(&g, &h, &[false, true]), Rational::ONE);
        assert_eq!(ghd_width_unselected(&g, &h, &[true, true]), Rational::ZERO);
    }

    #[test]
    fn lubm_q2_figure2_width() {
        // Triangle over {x,y,z} = vertices 0,1,2 plus selection vertices
        // 3,4,5 attached by type atoms. The Figure 2 GHD (triangle root,
        // three type leaves) has width 3/2 when selections are ignored.
        let h = Hypergraph::new(
            6,
            vec![vec![0, 1], vec![0, 2], vec![1, 2], vec![0, 3], vec![1, 4], vec![2, 5]],
        );
        let groups = vec![vec![0, 1, 2], vec![3], vec![4], vec![5]];
        let g = Ghd::from_partition(&h, &groups, &[(0, 1), (0, 2), (0, 3)], 0);
        assert!(g.validate(&h));
        let selected = [false, false, false, true, true, true];
        assert_eq!(ghd_width_unselected(&g, &h, &selected), Rational::new(3, 2));
        // With the selection vertices included, the leaves cost 1 and the
        // root still dominates at 3/2.
        assert_eq!(ghd_width(&g, &h), Rational::new(3, 2));
    }

    #[test]
    fn cache_is_reused() {
        let h = triangle();
        let g = Ghd::single_node(&h);
        let mut cache = WidthCache::new();
        let a = ghd_width_cached(&g, &h, &mut cache);
        let b = ghd_width_cached(&g, &h, &mut cache);
        assert_eq!(a, b);
        assert_eq!(cache.cache.len(), 1);
    }
}
