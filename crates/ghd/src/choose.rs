//! GHD choice policies: the paper's default (min fhw, then min height,
//! §II-C) and the selection-aware variant that pushes selections down
//! across nodes (§III-B2, Figure 3).

use eh_lp::Rational;
use eh_query::Hypergraph;

use crate::enumerate::enumerate_ghds;
use crate::ghd::Ghd;
use crate::width::{ghd_width_cached, ghd_width_unselected_cached, WidthCache};

/// Which plan-choice policy to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChooseMode {
    /// Minimise (fhw, height) — the original EmptyHeaded policy.
    Plain,
    /// The three steps of §III-B2: minimise width over *unselected*
    /// attributes, then maximise selection depth, then minimise height.
    SelectionAware,
}

/// Selection depth of a GHD: "the sum of the distances from selections to
/// the root" (§III-B2 step 3). A selection's node is the node whose λ
/// contains an atom over a selected vertex.
pub fn selection_depth(g: &Ghd, h: &Hypergraph, selected: &[bool]) -> usize {
    let mut total = 0;
    for (t, lambda) in g.lambdas.iter().enumerate() {
        for &e in lambda {
            if h.edges[e].iter().any(|&v| selected[v]) {
                total += g.depth(t);
            }
        }
    }
    total
}

/// Number of nodes whose λ atoms split into several variable-disjoint
/// groups — such nodes compute cross products and are never preferable
/// when an equal-width alternative splits them into separate nodes.
fn cross_product_nodes(g: &Ghd, h: &Hypergraph) -> usize {
    g.lambdas
        .iter()
        .filter(|lambda| {
            if lambda.len() <= 1 {
                return false;
            }
            // Union-find-free connectivity over the node's atoms.
            let mut comp: Vec<usize> = (0..lambda.len()).collect();
            loop {
                let mut changed = false;
                for i in 0..lambda.len() {
                    for j in i + 1..lambda.len() {
                        let share =
                            h.edges[lambda[i]].iter().any(|v| h.edges[lambda[j]].contains(v));
                        if share && comp[i] != comp[j] {
                            let (a, b) = (comp[i].min(comp[j]), comp[i].max(comp[j]));
                            for c in comp.iter_mut() {
                                if *c == b {
                                    *c = a;
                                }
                            }
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            comp.iter().any(|&c| c != comp[0])
        })
        .count()
}

/// Choose a GHD for `h` under the given policy. `selected[v]` marks
/// variables carrying equality selections (ignored by
/// [`ChooseMode::Plain`] except that it must have the right length).
pub fn choose_ghd(h: &Hypergraph, selected: &[bool], mode: ChooseMode) -> Ghd {
    assert_eq!(selected.len(), h.num_vertices);
    let candidates = enumerate_ghds(h);
    let mut cache = WidthCache::new();
    let mut best: Option<(Ghd, Score)> = None;
    for g in candidates {
        let score = match mode {
            ChooseMode::Plain => Score {
                width: ghd_width_cached(&g, h, &mut cache),
                neg_selection_depth: 0,
                cross_nodes: cross_product_nodes(&g, h),
                height: g.height(),
                nodes: g.num_nodes(),
            },
            ChooseMode::SelectionAware => Score {
                width: ghd_width_unselected_cached(&g, h, selected, &mut cache),
                neg_selection_depth: -(selection_depth(&g, h, selected) as i64),
                cross_nodes: cross_product_nodes(&g, h),
                height: g.height(),
                nodes: g.num_nodes(),
            },
        };
        let better = match &best {
            None => true,
            Some((_, b)) => score < *b,
        };
        if better {
            best = Some((g, score));
        }
    }
    best.expect("enumerate_ghds returns at least the single-node GHD").0
}

/// Lexicographic plan score (smaller is better).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Score {
    width: Rational,
    neg_selection_depth: i64,
    /// Cross-product nodes are materialisation bombs; forbid them unless
    /// width/selection-depth genuinely require one.
    cross_nodes: usize,
    height: usize,
    nodes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// LUBM query 2 hypergraph: triangle x=0, y=1, z=2 with selection
    /// vertices a=3, b=4, c=5 attached by the three type atoms.
    fn q2() -> (Hypergraph, Vec<bool>) {
        let h = Hypergraph::new(
            6,
            vec![
                vec![0, 1], // undergraduateDegreeFrom(x, y)
                vec![0, 2], // memberOf(x, z)
                vec![2, 1], // subOrganizationOf(z, y)
                vec![0, 3], // type(x, a)
                vec![1, 4], // type(y, b)
                vec![2, 5], // type(z, c)
            ],
        );
        (h, vec![false, false, false, true, true, true])
    }

    /// LUBM query 4 hypergraph (Figure 3): star on x=0 with selections on
    /// a=4 (type AssociateProfessor) and b=5 (worksFor Department0).
    fn q4() -> (Hypergraph, Vec<bool>) {
        let h = Hypergraph::new(
            6,
            vec![
                vec![0, 1], // name(x, y1)
                vec![0, 4], // type(x, a)
                vec![0, 5], // worksFor(x, b)
                vec![0, 2], // emailAddress(x, y2)
                vec![0, 3], // telephone(x, y3)
            ],
        );
        (h, vec![false, false, false, false, true, true])
    }

    #[test]
    fn plain_triangle_picks_single_node() {
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
        let g = choose_ghd(&h, &[false; 3], ChooseMode::Plain);
        assert_eq!(g.num_nodes(), 1);
    }

    #[test]
    fn q2_selection_aware_matches_figure_2_invariants() {
        // Figure 2 shows a triangle bag {x,y,z} with the three
        // type-selection atoms strictly below it and fhw 3/2. Several GHDs
        // are co-optimal under the paper's criteria (e.g. rooting at the
        // subOrganizationOf atom with the triangle one level down), so we
        // assert the invariants every co-optimal plan shares rather than
        // one exact tree.
        let (h, selected) = q2();
        let g = choose_ghd(&h, &selected, ChooseMode::SelectionAware);
        assert!(g.validate(&h));
        // Some bag contains the whole triangle (no valid GHD splits it
        // three ways).
        assert!(
            g.bags.iter().any(|bag| [0, 1, 2].iter().all(|v| bag.contains(v))),
            "no bag covers the triangle: {:?}",
            g.bags
        );
        // Every selection sits strictly below the root.
        let depth_sum = selection_depth(&g, &h, &selected);
        assert!(depth_sum >= 3, "selections must be below the root, got {depth_sum}");
        // Width over unselected vars is the triangle's 3/2.
        assert_eq!(crate::width::ghd_width_unselected(&g, &h, &selected), Rational::new(3, 2));
    }

    #[test]
    fn q4_selection_aware_pushes_selections_deepest() {
        // Figure 3 (right): the nodes holding the selected atoms (type,
        // worksFor) sit at maximal depth.
        let (h, selected) = q4();
        let plain = choose_ghd(&h, &selected, ChooseMode::Plain);
        let aware = choose_ghd(&h, &selected, ChooseMode::SelectionAware);
        assert!(aware.validate(&h));
        let d_plain = selection_depth(&plain, &h, &selected);
        let d_aware = selection_depth(&aware, &h, &selected);
        assert!(
            d_aware > d_plain,
            "selection-aware choice must deepen selections: {d_aware} vs {d_plain}"
        );
        // Every unselected node's width stays 1 (acyclic star).
        assert_eq!(crate::width::ghd_width_unselected(&aware, &h, &selected), Rational::ONE);
    }

    #[test]
    fn selection_depth_counts_atoms_not_nodes() {
        let (h, selected) = q2();
        // Put two selected atoms in one deep node: both count.
        let groups = vec![vec![0, 1, 2], vec![3, 4], vec![5]];
        let g = Ghd::from_partition(&h, &groups, &[(0, 1), (1, 2)], 0);
        if g.validate(&h) {
            assert_eq!(selection_depth(&g, &h, &selected), 1 + 1 + 2);
        }
    }

    #[test]
    fn single_atom_query() {
        let h = Hypergraph::new(2, vec![vec![0, 1]]);
        for mode in [ChooseMode::Plain, ChooseMode::SelectionAware] {
            let g = choose_ghd(&h, &[false, true], mode);
            assert_eq!(g.num_nodes(), 1);
        }
    }
}
