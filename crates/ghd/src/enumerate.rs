//! Exhaustive GHD enumeration for workload-sized queries.
//!
//! The paper: "EmptyHeaded chooses the GHD with the lowest fhw and
//! smallest height by enumerating all possible GHDs" (§II-C). We
//! enumerate decompositions where every atom is assigned to exactly one
//! node (set partitions of the hyperedges), combined with every tree over
//! the groups (via Prüfer sequences) and every root, keeping those that
//! satisfy the running-intersection property. Queries here have ≤ 6 atoms
//! (LUBM query 2), so the search space is small; a hard cap keeps misuse
//! loud.

use eh_query::Hypergraph;

use crate::ghd::Ghd;

/// Maximum number of hyperedges the exhaustive search accepts.
pub const MAX_EDGES: usize = 8;

/// Enumerate all valid rooted GHDs of `h` built from edge partitions.
///
/// # Panics
/// Panics when `h` has more than [`MAX_EDGES`] edges or no edges at all.
pub fn enumerate_ghds(h: &Hypergraph) -> Vec<Ghd> {
    let m = h.edges.len();
    assert!(m > 0, "cannot decompose a query with no atoms");
    assert!(m <= MAX_EDGES, "GHD enumeration capped at {MAX_EDGES} atoms, got {m}");
    let mut out = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    partition_rec(h, 0, m, &mut groups, &mut out);
    out
}

fn partition_rec(
    h: &Hypergraph,
    next_edge: usize,
    m: usize,
    groups: &mut Vec<Vec<usize>>,
    out: &mut Vec<Ghd>,
) {
    if next_edge == m {
        emit_trees(h, groups, out);
        return;
    }
    // Put the edge in each existing group...
    for i in 0..groups.len() {
        groups[i].push(next_edge);
        partition_rec(h, next_edge + 1, m, groups, out);
        groups[i].pop();
    }
    // ... or in a fresh group.
    groups.push(vec![next_edge]);
    partition_rec(h, next_edge + 1, m, groups, out);
    groups.pop();
}

fn emit_trees(h: &Hypergraph, groups: &[Vec<usize>], out: &mut Vec<Ghd>) {
    let k = groups.len();
    if k == 1 {
        out.push(Ghd::from_partition(h, groups, &[], 0));
        return;
    }
    // All labelled trees over k nodes via Prüfer sequences (k^(k-2)).
    let seq_len = k - 2;
    let mut seq = vec![0usize; seq_len];
    loop {
        let edges = prufer_decode(&seq, k);
        for root in 0..k {
            let g = Ghd::from_partition(h, groups, &edges, root);
            if g.validate(h) {
                out.push(g);
            }
        }
        // Next sequence in base k.
        let mut i = 0;
        loop {
            if i == seq_len {
                return;
            }
            seq[i] += 1;
            if seq[i] < k {
                break;
            }
            seq[i] = 0;
            i += 1;
        }
        if seq_len == 0 {
            return; // k == 2: single tree already emitted
        }
    }
}

/// Decode a Prüfer sequence over `k` labels into the tree's edge list.
fn prufer_decode(seq: &[usize], k: usize) -> Vec<(usize, usize)> {
    debug_assert_eq!(seq.len() + 2, k);
    let mut degree = vec![1usize; k];
    for &s in seq {
        degree[s] += 1;
    }
    let mut edges = Vec::with_capacity(k - 1);
    for &s in seq {
        let leaf = (0..k).find(|&i| degree[i] == 1).expect("a leaf always exists");
        edges.push((leaf, s));
        degree[leaf] -= 1;
        degree[s] -= 1;
    }
    let rest: Vec<usize> = (0..k).filter(|&i| degree[i] == 1).collect();
    debug_assert_eq!(rest.len(), 2);
    edges.push((rest[0], rest[1]));
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn prufer_counts_trees() {
        // Cayley's formula: 4 nodes -> 16 labelled trees.
        let mut trees = BTreeSet::new();
        for a in 0..4 {
            for b in 0..4 {
                let mut e = prufer_decode(&[a, b], 4);
                for edge in &mut e {
                    *edge = (edge.0.min(edge.1), edge.0.max(edge.1));
                }
                e.sort_unstable();
                trees.insert(e);
            }
        }
        assert_eq!(trees.len(), 16);
    }

    #[test]
    fn prufer_small_cases() {
        assert_eq!(prufer_decode(&[], 2), vec![(0, 1)]);
        let e = prufer_decode(&[1], 3); // star centered at 1
        assert!(e.contains(&(0, 1)));
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn single_edge_query_has_one_ghd() {
        let h = Hypergraph::new(2, vec![vec![0, 1]]);
        let all = enumerate_ghds(&h);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].num_nodes(), 1);
    }

    #[test]
    fn path_query_ghds() {
        // R(0,1), S(1,2): single node, or two nodes in either rooting.
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]);
        let all = enumerate_ghds(&h);
        // 1 single-node + 2 rootings of the two-node tree.
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|g| g.validate(&h)));
    }

    #[test]
    fn disconnected_vertices_still_enumerate() {
        // Cross product R(0,1) x S(2,3).
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![2, 3]]);
        let all = enumerate_ghds(&h);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn invalid_running_intersection_filtered() {
        // Triangle split into three nodes as a path: the rooting where the
        // two end bags share vertex 0 but the middle doesn't is invalid and
        // must not be emitted.
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
        let all = enumerate_ghds(&h);
        assert!(all.iter().all(|g| g.validate(&h)));
        // The single-node GHD is present.
        assert!(all.iter().any(|g| g.num_nodes() == 1));
        // No 3-node path has a valid layout for the triangle except ones
        // where adjacency shares vertices; validate() filtered the rest.
        for g in &all {
            for t in 0..g.num_nodes() {
                if let Some(p) = g.parent[t] {
                    // Adjacent nodes in any valid triangle GHD share >= 1 var.
                    assert!(
                        g.bags[t].iter().any(|v| g.bags[p].contains(v)),
                        "parent and child bags disjoint in a connected query"
                    );
                }
            }
        }
    }

    #[test]
    fn lubm_q2_size_is_tractable() {
        // 6 atoms: x-y, x-z, z-y triangle plus three selection edges.
        let h = Hypergraph::new(
            6,
            vec![vec![0, 1], vec![0, 2], vec![2, 1], vec![0, 3], vec![1, 4], vec![2, 5]],
        );
        let all = enumerate_ghds(&h);
        assert!(!all.is_empty());
        assert!(all.iter().all(|g| g.validate(&h)));
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn too_many_edges_panics() {
        let h = Hypergraph::new(10, (0..9).map(|i| vec![i, i + 1]).collect());
        enumerate_ghds(&h);
    }
}
