//! # eh-ghd
//!
//! Generalized hypertree decompositions (GHDs) — the query-plan
//! representation of EmptyHeaded (Aberger et al., ICDE 2016, §II-C) — and
//! the paper's plan-choice policies:
//!
//! * exhaustive GHD enumeration for the workload's query sizes (the paper:
//!   "EmptyHeaded chooses the GHD with the lowest fhw and smallest height
//!   by enumerating all possible GHDs");
//! * fractional hypertree width via the exact LP solver in `eh-lp` (the
//!   LUBM query 2 GHD of Figure 2 has fhw 3/2);
//! * the three *selection-aware* steps of §III-B2 that push selections
//!   down across GHD nodes (Figure 3), scored by *selection depth*;
//! * the pipelineability predicate of Definition 2 (§III-C).
//!
//! ```
//! use eh_ghd::{choose_ghd, ChooseMode};
//! use eh_query::Hypergraph;
//!
//! // Triangle query: the best GHD is a single node of width 3/2.
//! let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
//! let ghd = choose_ghd(&h, &[false; 3], ChooseMode::Plain);
//! assert_eq!(ghd.num_nodes(), 1);
//! assert_eq!(eh_ghd::ghd_width(&ghd, &h), eh_lp::Rational::new(3, 2));
//! ```

mod choose;
mod enumerate;
mod ghd;
mod pipeline;
mod width;

pub use choose::{choose_ghd, selection_depth, ChooseMode};
pub use enumerate::{enumerate_ghds, MAX_EDGES};
pub use ghd::Ghd;
pub use pipeline::pipelineable;
pub use width::{ghd_width, ghd_width_unselected, node_width, WidthCache};
