//! The LUBM data generator (UBA profile), streaming triples to a sink.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eh_rdf::{Term, Triple, TripleStore};

use crate::config::GeneratorConfig;
use crate::ontology::{class_iri, pred_iri, rdf_type, Class, Predicate};

/// Entity counts produced by a generator run (useful for tests and for
/// sanity-checking query cardinalities).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeneratedCounts {
    /// Universities (= the configured scale).
    pub universities: u64,
    /// Departments across all universities.
    pub departments: u64,
    /// All faculty (professors + lecturers).
    pub faculty: u64,
    /// Full professors.
    pub full_professors: u64,
    /// Associate professors.
    pub associate_professors: u64,
    /// Assistant professors.
    pub assistant_professors: u64,
    /// Lecturers.
    pub lecturers: u64,
    /// Undergraduate students.
    pub undergrad_students: u64,
    /// Graduate students.
    pub grad_students: u64,
    /// Undergraduate courses.
    pub courses: u64,
    /// Graduate courses.
    pub graduate_courses: u64,
    /// Publications.
    pub publications: u64,
    /// Research groups.
    pub research_groups: u64,
    /// Total triples emitted (including duplicates the store collapses).
    pub triples: u64,
}

/// IRI of university `u`.
pub fn university_iri(u: u32) -> String {
    format!("http://www.University{u}.edu")
}

/// IRI of department `d` of university `u`.
pub fn department_iri(u: u32, d: u32) -> String {
    format!("http://www.Department{d}.University{u}.edu")
}

fn mix_seed(seed: u64, u: u32, d: u32) -> u64 {
    // SplitMix64-style mixing keeps per-department streams independent.
    let mut z = seed
        ^ (u as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (d as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn range(rng: &mut StdRng, (lo, hi): (u32, u32)) -> u32 {
    rng.gen_range(lo..=hi)
}

struct Emitter<'a, F: FnMut(Triple)> {
    sink: &'a mut F,
    counts: GeneratedCounts,
}

impl<F: FnMut(Triple)> Emitter<'_, F> {
    fn triple(&mut self, s: &str, p: String, o: Term) {
        self.counts.triples += 1;
        (self.sink)(Triple::new(Term::iri(s), Term::Iri(p), o));
    }

    fn type_of(&mut self, entity: &str, class: Class) {
        self.triple(entity, rdf_type(), Term::Iri(class_iri(class)));
    }

    fn rel(&mut self, s: &str, p: Predicate, o: &str) {
        self.triple(s, pred_iri(p), Term::iri(o));
    }

    fn lit(&mut self, s: &str, p: Predicate, o: String) {
        self.triple(s, pred_iri(p), Term::Literal(o));
    }

    /// name / emailAddress / telephone for a person, UBA-style.
    fn person_attrs(&mut self, iri: &str, local: &str, host: &str) {
        self.lit(iri, Predicate::Name, local.to_string());
        self.lit(iri, Predicate::EmailAddress, format!("{local}@{host}"));
        // UBA emits the literal placeholder "xxx-xxx-xxxx" for every phone.
        self.lit(iri, Predicate::Telephone, "xxx-xxx-xxxx".to_string());
    }
}

/// Sample `k` distinct values in `0..n` (all of `0..n` when `k >= n`).
fn sample_distinct(rng: &mut StdRng, n: u32, k: u32) -> Vec<u32> {
    if k >= n {
        return (0..n).collect();
    }
    rand::seq::index::sample(rng, n as usize, k as usize).iter().map(|i| i as u32).collect()
}

/// Generate the dataset, streaming every triple to `sink`. Returns entity
/// counts. Deterministic in `cfg` (including the seed).
pub fn generate_with<F: FnMut(Triple)>(cfg: &GeneratorConfig, sink: &mut F) -> GeneratedCounts {
    let mut em = Emitter { sink, counts: GeneratedCounts::default() };
    em.counts.universities = cfg.universities as u64;

    for u in 0..cfg.universities {
        let univ = university_iri(u);
        em.type_of(&univ, Class::University);
        let n_depts =
            range(&mut StdRng::seed_from_u64(mix_seed(cfg.seed, u, u32::MAX)), cfg.depts_per_univ);
        for d in 0..n_depts {
            generate_department(cfg, u, d, &mut em);
        }
    }
    em.counts
}

fn generate_department<F: FnMut(Triple)>(
    cfg: &GeneratorConfig,
    u: u32,
    d: u32,
    em: &mut Emitter<'_, F>,
) {
    let mut rng = StdRng::seed_from_u64(mix_seed(cfg.seed, u, d));
    let dept = department_iri(u, d);
    let host = format!("Department{d}.University{u}.edu");
    em.counts.departments += 1;
    em.type_of(&dept, Class::Department);
    em.rel(&dept, Predicate::SubOrganizationOf, &university_iri(u));

    // Research groups.
    let n_groups = range(&mut rng, cfg.research_groups);
    for g in 0..n_groups {
        let rg = format!("{dept}/ResearchGroup{g}");
        em.counts.research_groups += 1;
        em.type_of(&rg, Class::ResearchGroup);
        em.rel(&rg, Predicate::SubOrganizationOf, &dept);
    }

    // Faculty rosters.
    let n_full = range(&mut rng, cfg.full_profs);
    let n_assoc = range(&mut rng, cfg.assoc_profs);
    let n_asst = range(&mut rng, cfg.asst_profs);
    let n_lect = range(&mut rng, cfg.lecturers);
    em.counts.full_professors += n_full as u64;
    em.counts.associate_professors += n_assoc as u64;
    em.counts.assistant_professors += n_asst as u64;
    em.counts.lecturers += n_lect as u64;
    let n_faculty = n_full + n_assoc + n_asst + n_lect;
    em.counts.faculty += n_faculty as u64;

    let roster: Vec<(Class, u32, (u32, u32))> = vec![
        (Class::FullProfessor, n_full, cfg.pubs_full),
        (Class::AssociateProfessor, n_assoc, cfg.pubs_assoc),
        (Class::AssistantProfessor, n_asst, cfg.pubs_asst),
        (Class::Lecturer, n_lect, cfg.pubs_lect),
    ];

    // Courses are numbered department-wide; each faculty member teaches a
    // fresh block of course ids (UBA assigns courses uniquely).
    let mut course_count = 0u32;
    let mut gcourse_count = 0u32;
    // Professors (non-lecturers) are eligible advisors.
    let mut professors: Vec<String> = Vec::new();

    for (class, n, pubs) in &roster {
        for k in 0..*n {
            let person = format!("{dept}/{}{k}", class.local_name());
            em.type_of(&person, *class);
            em.rel(&person, Predicate::WorksFor, &dept);
            em.person_attrs(&person, &format!("{}{k}", class.local_name()), &host);
            // Degrees from random universities.
            for p in [
                Predicate::UndergraduateDegreeFrom,
                Predicate::MastersDegreeFrom,
                Predicate::DoctoralDegreeFrom,
            ] {
                let from = rng.gen_range(0..cfg.universities.max(1));
                em.rel(&person, p, &university_iri(from));
            }
            // Head of department: the first full professor.
            if *class == Class::FullProfessor && k == 0 {
                em.rel(&person, Predicate::HeadOf, &dept);
            }
            if *class != Class::Lecturer {
                professors.push(person.clone());
            }
            // Courses taught.
            for _ in 0..range(&mut rng, cfg.courses_per_faculty) {
                let course = format!("{dept}/Course{course_count}");
                course_count += 1;
                em.type_of(&course, Class::Course);
                em.rel(&person, Predicate::TeacherOf, &course);
            }
            for _ in 0..range(&mut rng, cfg.gcourses_per_faculty) {
                let course = format!("{dept}/GraduateCourse{gcourse_count}");
                gcourse_count += 1;
                em.type_of(&course, Class::GraduateCourse);
                em.rel(&person, Predicate::TeacherOf, &course);
            }
            // Publications.
            for i in 0..range(&mut rng, *pubs) {
                let publication = format!("{person}/Publication{i}");
                em.counts.publications += 1;
                em.type_of(&publication, Class::Publication);
                em.rel(&publication, Predicate::PublicationAuthor, &person);
            }
        }
    }
    em.counts.courses += course_count as u64;
    em.counts.graduate_courses += gcourse_count as u64;

    // Students.
    let n_undergrad = n_faculty * range(&mut rng, cfg.undergrad_ratio);
    let n_grad = n_faculty * range(&mut rng, cfg.grad_ratio);
    em.counts.undergrad_students += n_undergrad as u64;
    em.counts.grad_students += n_grad as u64;

    for k in 0..n_undergrad {
        let stu = format!("{dept}/UndergraduateStudent{k}");
        em.type_of(&stu, Class::UndergraduateStudent);
        em.rel(&stu, Predicate::MemberOf, &dept);
        em.person_attrs(&stu, &format!("UndergraduateStudent{k}"), &host);
        let k_courses = range(&mut rng, cfg.undergrad_courses_taken);
        for c in sample_distinct(&mut rng, course_count, k_courses) {
            em.rel(&stu, Predicate::TakesCourse, &format!("{dept}/Course{c}"));
        }
        // One in `undergrad_advisor_fraction` undergraduates has an advisor.
        if !professors.is_empty() && rng.gen_range(0..cfg.undergrad_advisor_fraction) == 0 {
            let adv = &professors[rng.gen_range(0..professors.len())];
            em.rel(&stu, Predicate::Advisor, adv);
        }
    }

    for k in 0..n_grad {
        let stu = format!("{dept}/GraduateStudent{k}");
        em.type_of(&stu, Class::GraduateStudent);
        em.rel(&stu, Predicate::MemberOf, &dept);
        em.person_attrs(&stu, &format!("GraduateStudent{k}"), &host);
        let from = rng.gen_range(0..cfg.universities.max(1));
        em.rel(&stu, Predicate::UndergraduateDegreeFrom, &university_iri(from));
        let k_courses = range(&mut rng, cfg.grad_courses_taken);
        for c in sample_distinct(&mut rng, gcourse_count, k_courses) {
            em.rel(&stu, Predicate::TakesCourse, &format!("{dept}/GraduateCourse{c}"));
        }
        // Every graduate student has an advisor; publications are
        // co-authored with the advisor.
        let advisor = professors.get(rng.gen_range(0..professors.len().max(1))).cloned();
        if let Some(adv) = &advisor {
            em.rel(&stu, Predicate::Advisor, adv);
        }
        for i in 0..range(&mut rng, cfg.pubs_grad) {
            let publication = format!("{stu}/Publication{i}");
            em.counts.publications += 1;
            em.type_of(&publication, Class::Publication);
            em.rel(&publication, Predicate::PublicationAuthor, &stu);
            if let Some(adv) = &advisor {
                em.rel(&publication, Predicate::PublicationAuthor, adv);
            }
        }
    }
}

/// Generate directly into a committed [`TripleStore`].
pub fn generate_store(cfg: &GeneratorConfig) -> TripleStore {
    let mut store = TripleStore::new();
    generate_with(cfg, &mut |t| store.insert(t));
    store.commit();
    store
}

/// Generate into a vector (prefer [`generate_store`] at larger scales; the
/// vector holds three owned strings per triple).
pub fn generate_triples(cfg: &GeneratorConfig) -> Vec<Triple> {
    let mut out = Vec::new();
    generate_with(cfg, &mut |t| out.push(t));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::{Class, Predicate};

    fn tiny() -> GeneratorConfig {
        GeneratorConfig::tiny(2)
    }

    #[test]
    fn deterministic_across_runs() {
        let a = generate_triples(&tiny());
        let b = generate_triples(&tiny());
        assert_eq!(a, b);
        let c = generate_triples(&tiny().with_seed(7));
        assert_ne!(a, c);
    }

    #[test]
    fn counts_are_consistent() {
        let mut n = 0u64;
        let counts = generate_with(&tiny(), &mut |_| n += 1);
        assert_eq!(counts.triples, n);
        assert_eq!(counts.universities, 2);
        assert!(counts.departments >= 6 && counts.departments <= 8, "{counts:?}");
        assert_eq!(
            counts.faculty,
            counts.full_professors
                + counts.associate_professors
                + counts.assistant_professors
                + counts.lecturers
        );
        assert!(counts.grad_students > 0);
        assert!(counts.undergrad_students > counts.grad_students);
    }

    #[test]
    fn store_has_expected_tables() {
        let store = generate_store(&tiny());
        for p in [
            Predicate::WorksFor,
            Predicate::MemberOf,
            Predicate::SubOrganizationOf,
            Predicate::TakesCourse,
            Predicate::TeacherOf,
            Predicate::Advisor,
            Predicate::PublicationAuthor,
            Predicate::UndergraduateDegreeFrom,
            Predicate::Name,
            Predicate::EmailAddress,
            Predicate::Telephone,
            Predicate::HeadOf,
        ] {
            assert!(store.table_by_name(&pred_iri(p)).is_some(), "missing table for {p:?}");
        }
        assert!(store.table_by_name(&rdf_type()).is_some());
    }

    #[test]
    fn type_table_counts_match() {
        let store = generate_store(&tiny());
        let counts = generate_with(&tiny(), &mut |_| {});
        let type_table = store.table_by_name(&rdf_type()).unwrap();
        let class_id = |c: Class| store.resolve_iri(&class_iri(c)).unwrap();
        let count_of = |c: Class| {
            let id = class_id(c);
            type_table.pairs_for_object(id).len() as u64
        };
        assert_eq!(count_of(Class::University), counts.universities);
        assert_eq!(count_of(Class::Department), counts.departments);
        assert_eq!(count_of(Class::UndergraduateStudent), counts.undergrad_students);
        assert_eq!(count_of(Class::GraduateStudent), counts.grad_students);
        assert_eq!(count_of(Class::Publication), counts.publications);
        assert_eq!(count_of(Class::ResearchGroup), counts.research_groups);
    }

    #[test]
    fn departments_supported_by_universities_only() {
        // subOrganizationOf maps departments to universities and research
        // groups to departments — never research groups to universities
        // (this is why paper query 11 returns 0 tuples without inference).
        let store = generate_store(&tiny());
        let sub = store.table_by_name(&pred_iri(Predicate::SubOrganizationOf)).unwrap();
        let univ0 = store.resolve_iri(&university_iri(0)).unwrap();
        let type_table = store.table_by_name(&rdf_type()).unwrap();
        let rg = store.resolve_iri(&class_iri(Class::ResearchGroup)).unwrap();
        for &(_, s) in sub.pairs_for_object(univ0) {
            // Everything directly under University0 is a department.
            assert!(!type_table.contains(s, rg));
        }
    }

    #[test]
    fn grad_students_take_graduate_courses() {
        let store = generate_store(&tiny());
        let takes = store.table_by_name(&pred_iri(Predicate::TakesCourse)).unwrap();
        let type_table = store.table_by_name(&rdf_type()).unwrap();
        let grad = store.resolve_iri(&class_iri(Class::GraduateStudent)).unwrap();
        let gcourse = store.resolve_iri(&class_iri(Class::GraduateCourse)).unwrap();
        let mut checked = 0;
        for &(_, stu) in type_table.pairs_for_object(grad) {
            for &(_, course) in takes.pairs_for_subject(stu) {
                assert!(type_table.contains(course, gcourse));
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn every_grad_student_has_an_advisor() {
        let store = generate_store(&tiny());
        let advisor = store.table_by_name(&pred_iri(Predicate::Advisor)).unwrap();
        let type_table = store.table_by_name(&rdf_type()).unwrap();
        let grad = store.resolve_iri(&class_iri(Class::GraduateStudent)).unwrap();
        for &(_, stu) in type_table.pairs_for_object(grad) {
            assert!(!advisor.pairs_for_subject(stu).is_empty(), "grad student without advisor");
        }
    }

    #[test]
    fn ntriples_export_round_trips() {
        // The `lubm-gen` export path: every generated triple serialises
        // to N-Triples and parses back unchanged.
        let triples = generate_triples(&GeneratorConfig::tiny(1));
        let text = eh_rdf::write_ntriples(&triples);
        let parsed = eh_rdf::parse_ntriples(&text).expect("generator output is valid N-Triples");
        assert_eq!(parsed, triples);
    }

    #[test]
    fn scale_one_profile_size() {
        // LUBM(1) with the published profile is ~100k triples; allow a
        // generous band since our profile is a faithful re-derivation, not
        // a byte-level port.
        let counts = generate_with(&GeneratorConfig::scale(1), &mut |_| {});
        assert!(counts.triples > 60_000, "{}", counts.triples);
        assert!(counts.triples < 250_000, "{}", counts.triples);
        assert!(counts.departments >= 15 && counts.departments <= 25);
    }
}
