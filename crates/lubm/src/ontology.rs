//! IRI constants of the univ-bench ontology subset the paper's queries
//! touch.

/// The univ-bench ontology namespace used by LUBM and the paper's queries.
pub const UB: &str = "http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#";

/// `rdf:type`.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Classes instantiated by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// `ub:University`
    University,
    /// `ub:Department`
    Department,
    /// `ub:FullProfessor`
    FullProfessor,
    /// `ub:AssociateProfessor`
    AssociateProfessor,
    /// `ub:AssistantProfessor`
    AssistantProfessor,
    /// `ub:Lecturer`
    Lecturer,
    /// `ub:UndergraduateStudent`
    UndergraduateStudent,
    /// `ub:GraduateStudent`
    GraduateStudent,
    /// `ub:Course`
    Course,
    /// `ub:GraduateCourse`
    GraduateCourse,
    /// `ub:Publication`
    Publication,
    /// `ub:ResearchGroup`
    ResearchGroup,
}

impl Class {
    /// The class's local name (`FullProfessor`, ...).
    pub fn local_name(self) -> &'static str {
        match self {
            Class::University => "University",
            Class::Department => "Department",
            Class::FullProfessor => "FullProfessor",
            Class::AssociateProfessor => "AssociateProfessor",
            Class::AssistantProfessor => "AssistantProfessor",
            Class::Lecturer => "Lecturer",
            Class::UndergraduateStudent => "UndergraduateStudent",
            Class::GraduateStudent => "GraduateStudent",
            Class::Course => "Course",
            Class::GraduateCourse => "GraduateCourse",
            Class::Publication => "Publication",
            Class::ResearchGroup => "ResearchGroup",
        }
    }
}

/// Predicates emitted by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// `ub:worksFor` (faculty → department)
    WorksFor,
    /// `ub:memberOf` (student → department)
    MemberOf,
    /// `ub:subOrganizationOf` (department → university, group → department)
    SubOrganizationOf,
    /// `ub:undergraduateDegreeFrom`
    UndergraduateDegreeFrom,
    /// `ub:mastersDegreeFrom`
    MastersDegreeFrom,
    /// `ub:doctoralDegreeFrom`
    DoctoralDegreeFrom,
    /// `ub:teacherOf` (faculty → course)
    TeacherOf,
    /// `ub:takesCourse` (student → course)
    TakesCourse,
    /// `ub:advisor` (student → professor)
    Advisor,
    /// `ub:publicationAuthor` (publication → person)
    PublicationAuthor,
    /// `ub:headOf` (full professor → department)
    HeadOf,
    /// `ub:name`
    Name,
    /// `ub:emailAddress`
    EmailAddress,
    /// `ub:telephone`
    Telephone,
}

impl Predicate {
    /// The predicate's local name (`worksFor`, ...).
    pub fn local_name(self) -> &'static str {
        match self {
            Predicate::WorksFor => "worksFor",
            Predicate::MemberOf => "memberOf",
            Predicate::SubOrganizationOf => "subOrganizationOf",
            Predicate::UndergraduateDegreeFrom => "undergraduateDegreeFrom",
            Predicate::MastersDegreeFrom => "mastersDegreeFrom",
            Predicate::DoctoralDegreeFrom => "doctoralDegreeFrom",
            Predicate::TeacherOf => "teacherOf",
            Predicate::TakesCourse => "takesCourse",
            Predicate::Advisor => "advisor",
            Predicate::PublicationAuthor => "publicationAuthor",
            Predicate::HeadOf => "headOf",
            Predicate::Name => "name",
            Predicate::EmailAddress => "emailAddress",
            Predicate::Telephone => "telephone",
        }
    }
}

/// Full IRI of a class.
pub fn class_iri(c: Class) -> String {
    format!("{UB}{}", c.local_name())
}

/// Full IRI of a predicate.
pub fn pred_iri(p: Predicate) -> String {
    format!("{UB}{}", p.local_name())
}

/// Full IRI of `rdf:type`.
pub fn rdf_type() -> String {
    RDF_TYPE.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iris_match_lubm_namespace() {
        assert_eq!(
            class_iri(Class::GraduateStudent),
            "http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#GraduateStudent"
        );
        assert_eq!(
            pred_iri(Predicate::SubOrganizationOf),
            "http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#subOrganizationOf"
        );
        assert!(rdf_type().contains("22-rdf-syntax-ns#type"));
    }
}
