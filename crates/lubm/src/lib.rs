//! # eh-lubm
//!
//! A deterministic, seeded reimplementation of the LUBM benchmark (Guo,
//! Pan, Heflin 2005) used as the workload in Aberger et al. (ICDE 2016,
//! §IV-A1): the univ-bench data generator and the paper's twelve query
//! workload (queries 1–5, 7–9, 11–14; 6 and 10 are omitted exactly as in
//! the paper because they duplicate other queries once inference is
//! removed).
//!
//! The generator follows the published UBA profile (departments per
//! university, faculty ranges, student/faculty ratios, courses,
//! publications, research groups, degrees). It is scale-parametrised by
//! the number of universities — the paper's 133M-triple dataset is
//! LUBM(~1000); tests here run LUBM(1) and benches default to LUBM(5–20).
//! All randomness derives from a configurable seed, so datasets are
//! reproducible bit-for-bit.
//!
//! ```
//! use eh_lubm::{generate_store, GeneratorConfig};
//!
//! let store = generate_store(&GeneratorConfig::tiny(1));
//! assert!(store.num_triples() > 1_000);
//! // Deterministic: the same config generates the same dataset.
//! assert_eq!(store.num_triples(), generate_store(&GeneratorConfig::tiny(1)).num_triples());
//! ```

mod config;
mod generator;
mod ontology;
pub mod queries;

pub use config::GeneratorConfig;
pub use generator::{generate_store, generate_triples, generate_with, GeneratedCounts};
pub use ontology::{class_iri, pred_iri, rdf_type, Class, Predicate, RDF_TYPE, UB};
