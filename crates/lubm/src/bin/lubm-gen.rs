//! `lubm-gen` — write a LUBM dataset as an N-Triples file, mirroring the
//! original UBA generator's command-line role.
//!
//! ```text
//! cargo run --release -p eh-lubm --bin lubm-gen -- --universities 2 --out lubm2.nt
//! cargo run --release -p eh-lubm --bin lubm-gen -- --universities 1 --stats-only
//! ```

use std::fs::File;
use std::io::{BufWriter, Write};

use eh_lubm::{generate_with, GeneratorConfig};

fn main() {
    let mut universities = 1u32;
    let mut seed = 42u64;
    let mut out: Option<String> = None;
    let mut stats_only = false;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--universities" | "-u" => {
                universities = argv[i + 1].parse().expect("--universities takes a number");
                i += 2;
            }
            "--seed" | "-s" => {
                seed = argv[i + 1].parse().expect("--seed takes a number");
                i += 2;
            }
            "--out" | "-o" => {
                out = Some(argv[i + 1].clone());
                i += 2;
            }
            "--stats-only" => {
                stats_only = true;
                i += 1;
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: lubm-gen [--universities N] [--seed S] [--out FILE | --stats-only]"
                );
                std::process::exit(2);
            }
        }
    }

    let cfg = GeneratorConfig::scale(universities).with_seed(seed);
    let counts = if stats_only {
        generate_with(&cfg, &mut |_| {})
    } else {
        let path = out.unwrap_or_else(|| format!("lubm{universities}.nt"));
        let file = File::create(&path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
        let mut w = BufWriter::new(file);
        let counts = generate_with(&cfg, &mut |t| {
            writeln!(w, "{t}").expect("write triple");
        });
        w.flush().expect("flush output");
        eprintln!("wrote {path}");
        counts
    };

    eprintln!(
        "LUBM({universities}) seed {seed}: {} triples, {} departments, {} faculty, \
         {} undergraduates, {} graduate students, {} courses, {} publications",
        counts.triples,
        counts.departments,
        counts.faculty,
        counts.undergrad_students,
        counts.grad_students,
        counts.courses + counts.graduate_courses,
        counts.publications,
    );
}
