//! The paper's LUBM query workload (Appendix B): queries 1–5, 7–9, 11–14
//! in SPARQL, exactly as benchmarked in Aberger et al. (queries 6 and 10
//! are omitted because without the inference step they duplicate other
//! queries — §IV-A1).

use eh_query::{parse_sparql, ConjunctiveQuery};
use eh_rdf::TripleStore;

use crate::generator::university_iri;

/// The query numbers the paper runs, in Table II order.
pub const QUERY_NUMBERS: [u32; 12] = [1, 2, 3, 4, 5, 7, 8, 9, 11, 12, 13, 14];

/// The two cyclic (triangle-pattern) queries where worst-case optimal
/// joins have an asymptotic advantage (paper §IV-B).
pub const CYCLIC_QUERIES: [u32; 2] = [2, 9];

const PREFIXES: &str = "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
                        PREFIX ub: <http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#>\n";

/// SPARQL text of LUBM query `n` with the default `University567`
/// constant in query 13 (the paper's 133M-triple scale has ~1000
/// universities). Returns `None` for numbers outside the workload.
pub fn lubm_sparql(n: u32) -> Option<String> {
    lubm_sparql_scaled(n, 567)
}

/// SPARQL text of LUBM query `n`, with query 13's university constant
/// clamped for smaller scales (substitution documented in DESIGN.md: it
/// preserves the "equality selection on a degree object" character).
pub fn lubm_sparql_scaled(n: u32, q13_university: u32) -> Option<String> {
    let body = match n {
        1 => "SELECT ?X WHERE {\n\
              ?X rdf:type ub:GraduateStudent .\n\
              ?X ub:takesCourse <http://www.Department0.University0.edu/GraduateCourse0> }"
            .to_string(),
        2 => "SELECT ?X ?Y ?Z WHERE {\n\
              ?X rdf:type ub:GraduateStudent .\n\
              ?Y rdf:type ub:University .\n\
              ?Z rdf:type ub:Department .\n\
              ?X ub:memberOf ?Z .\n\
              ?Z ub:subOrganizationOf ?Y .\n\
              ?X ub:undergraduateDegreeFrom ?Y }"
            .to_string(),
        3 => "SELECT ?X WHERE {\n\
              ?X rdf:type ub:Publication .\n\
              ?X ub:publicationAuthor <http://www.Department0.University0.edu/AssistantProfessor0> }"
            .to_string(),
        4 => "SELECT ?X ?Y1 ?Y2 ?Y3 WHERE {\n\
              ?X rdf:type ub:AssociateProfessor .\n\
              ?X ub:worksFor <http://www.Department0.University0.edu> .\n\
              ?X ub:name ?Y1 .\n\
              ?X ub:emailAddress ?Y2 .\n\
              ?X ub:telephone ?Y3 }"
            .to_string(),
        5 => "SELECT ?X WHERE {\n\
              ?X rdf:type ub:UndergraduateStudent .\n\
              ?X ub:memberOf <http://www.Department0.University0.edu> }"
            .to_string(),
        7 => "SELECT ?X ?Y WHERE {\n\
              ?X rdf:type ub:UndergraduateStudent .\n\
              ?Y rdf:type ub:Course .\n\
              ?X ub:takesCourse ?Y .\n\
              <http://www.Department0.University0.edu/AssociateProfessor0> ub:teacherOf ?Y }"
            .to_string(),
        8 => "SELECT ?X ?Y ?Z WHERE {\n\
              ?X rdf:type ub:UndergraduateStudent .\n\
              ?Y rdf:type ub:Department .\n\
              ?X ub:memberOf ?Y .\n\
              ?Y ub:subOrganizationOf <http://www.University0.edu> .\n\
              ?X ub:emailAddress ?Z }"
            .to_string(),
        9 => "SELECT ?X ?Y ?Z WHERE {\n\
              ?X rdf:type ub:UndergraduateStudent .\n\
              ?Y rdf:type ub:Course .\n\
              ?Z rdf:type ub:AssistantProfessor .\n\
              ?X ub:advisor ?Z .\n\
              ?Z ub:teacherOf ?Y .\n\
              ?X ub:takesCourse ?Y }"
            .to_string(),
        11 => "SELECT ?X WHERE {\n\
               ?X rdf:type ub:ResearchGroup .\n\
               ?X ub:subOrganizationOf <http://www.University0.edu> }"
            .to_string(),
        12 => "SELECT ?X ?Y WHERE {\n\
               ?X rdf:type ub:FullProfessor .\n\
               ?Y rdf:type ub:Department .\n\
               ?X ub:worksFor ?Y .\n\
               ?Y ub:subOrganizationOf <http://www.University0.edu> }"
            .to_string(),
        13 => format!(
            "SELECT ?X WHERE {{\n\
             ?X rdf:type ub:GraduateStudent .\n\
             ?X ub:undergraduateDegreeFrom <{}> }}",
            university_iri(q13_university)
        ),
        14 => "SELECT ?X WHERE { ?X rdf:type ub:UndergraduateStudent }".to_string(),
        _ => return None,
    };
    Some(format!("{PREFIXES}{body}"))
}

/// Parse LUBM query `n` against `store`, clamping query 13's university
/// constant to one that exists in the store (`University567` at paper
/// scale, else `University0`).
pub fn lubm_query(n: u32, store: &TripleStore) -> Option<ConjunctiveQuery> {
    let q13 = if store.resolve_iri(&university_iri(567)).is_some() { 567 } else { 0 };
    let text = lubm_sparql_scaled(n, q13)?;
    Some(parse_sparql(&text, store).expect("workload queries are well-formed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;
    use crate::generator::generate_store;
    use eh_query::Hypergraph;

    #[test]
    fn all_queries_have_text_and_parse() {
        let store = generate_store(&GeneratorConfig::tiny(1));
        for n in QUERY_NUMBERS {
            assert!(lubm_sparql(n).is_some(), "query {n} missing");
            let q = lubm_query(n, &store).unwrap_or_else(|| panic!("query {n} did not parse"));
            assert!(!q.atoms().is_empty());
        }
        assert!(lubm_sparql(6).is_none());
        assert!(lubm_sparql(10).is_none());
        assert!(lubm_query(99, &store).is_none());
    }

    #[test]
    fn cyclicity_matches_the_paper() {
        // Queries 2 and 9 contain triangles; the rest are acyclic
        // (§IV-A1: "complex multiway star join patterns as well as two
        // cyclic queries with triangle patterns").
        let store = generate_store(&GeneratorConfig::tiny(1));
        for n in QUERY_NUMBERS {
            let q = lubm_query(n, &store).unwrap();
            let h = Hypergraph::from_query(&q);
            assert_eq!(h.is_cyclic(), CYCLIC_QUERIES.contains(&n), "query {n}");
        }
    }

    #[test]
    fn query_shapes() {
        let store = generate_store(&GeneratorConfig::tiny(1));
        let q2 = lubm_query(2, &store).unwrap();
        assert_eq!(q2.atoms().len(), 6);
        assert_eq!(q2.projection().len(), 3);
        assert_eq!(q2.selected_vars().len(), 3); // the three type constants
        let q14 = lubm_query(14, &store).unwrap();
        assert_eq!(q14.atoms().len(), 1);
        assert_eq!(q14.selected_vars().len(), 1);
    }

    #[test]
    fn q13_constant_clamps_to_existing_university() {
        let store = generate_store(&GeneratorConfig::tiny(1));
        let q13 = lubm_query(13, &store).unwrap();
        // University0 exists in the dictionary, so no missing constants.
        assert!(!q13.has_missing_constant());
    }

    #[test]
    fn constants_resolve_at_tiny_scale() {
        // Department0.University0 entities referenced by queries 1, 3, 4,
        // 5, 7 exist even in the tiny profile.
        let store = generate_store(&GeneratorConfig::tiny(1));
        for n in [1, 3, 4, 5, 7, 8, 11, 12] {
            let q = lubm_query(n, &store).unwrap();
            assert!(!q.has_missing_constant(), "query {n} has a missing constant");
        }
    }
}
