//! Generator configuration: the published UBA profile, scale-parametrised.

/// Inclusive integer range used for all profile parameters.
pub type Range = (u32, u32);

/// Configuration of the LUBM generator.
///
/// Defaults reproduce the published UBA 1.7 profile (Guo et al. 2005).
/// `universities` is the scale knob: the paper's dataset (133M triples) is
/// roughly LUBM(1000); LUBM(1) is ~100k triples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Number of universities (the LUBM scale factor).
    pub universities: u32,
    /// RNG seed; the same seed and profile generate identical datasets.
    pub seed: u64,
    /// Departments per university (UBA: 15–25).
    pub depts_per_univ: Range,
    /// Full professors per department (UBA: 7–10).
    pub full_profs: Range,
    /// Associate professors per department (UBA: 10–14).
    pub assoc_profs: Range,
    /// Assistant professors per department (UBA: 8–11).
    pub asst_profs: Range,
    /// Lecturers per department (UBA: 5–7).
    pub lecturers: Range,
    /// Undergraduate students per faculty member (UBA: 8–14).
    pub undergrad_ratio: Range,
    /// Graduate students per faculty member (UBA: 3–4).
    pub grad_ratio: Range,
    /// Undergraduate courses taught per faculty member (UBA: 1–2).
    pub courses_per_faculty: Range,
    /// Graduate courses taught per faculty member (UBA: 1–2).
    pub gcourses_per_faculty: Range,
    /// Courses taken per undergraduate (UBA: 2–4).
    pub undergrad_courses_taken: Range,
    /// Graduate courses taken per graduate student (UBA: 1–3).
    pub grad_courses_taken: Range,
    /// Research groups per department (UBA: 10–20).
    pub research_groups: Range,
    /// Publications per full professor (UBA: 15–20).
    pub pubs_full: Range,
    /// Publications per associate professor (UBA: 10–18).
    pub pubs_assoc: Range,
    /// Publications per assistant professor (UBA: 5–10).
    pub pubs_asst: Range,
    /// Publications per lecturer (UBA: 0–5).
    pub pubs_lect: Range,
    /// Publications per graduate student, co-authored with the advisor
    /// (UBA: 0–5).
    pub pubs_grad: Range,
    /// One in `undergrad_advisor_fraction` undergraduates has an advisor
    /// (UBA: 1 in 5).
    pub undergrad_advisor_fraction: u32,
}

impl GeneratorConfig {
    /// The published UBA profile at scale `universities`, seed 42.
    pub fn scale(universities: u32) -> GeneratorConfig {
        GeneratorConfig {
            universities,
            seed: 42,
            depts_per_univ: (15, 25),
            full_profs: (7, 10),
            assoc_profs: (10, 14),
            asst_profs: (8, 11),
            lecturers: (5, 7),
            undergrad_ratio: (8, 14),
            grad_ratio: (3, 4),
            courses_per_faculty: (1, 2),
            gcourses_per_faculty: (1, 2),
            undergrad_courses_taken: (2, 4),
            grad_courses_taken: (1, 3),
            research_groups: (10, 20),
            pubs_full: (15, 20),
            pubs_assoc: (10, 18),
            pubs_asst: (5, 10),
            pubs_lect: (0, 5),
            pubs_grad: (0, 5),
            undergrad_advisor_fraction: 5,
        }
    }

    /// A shrunken profile for fast unit tests: same shape (all entity
    /// kinds present, same ratios of ratios) but 3–4 departments and
    /// smaller fan-outs.
    pub fn tiny(universities: u32) -> GeneratorConfig {
        GeneratorConfig {
            depts_per_univ: (3, 4),
            full_profs: (2, 3),
            assoc_profs: (3, 4),
            asst_profs: (2, 3),
            lecturers: (1, 2),
            undergrad_ratio: (4, 6),
            grad_ratio: (2, 3),
            research_groups: (2, 4),
            pubs_full: (3, 5),
            pubs_assoc: (2, 4),
            pubs_asst: (1, 3),
            pubs_lect: (0, 2),
            pubs_grad: (0, 2),
            ..GeneratorConfig::scale(universities)
        }
    }

    /// Override the seed, keeping the profile.
    pub fn with_seed(mut self, seed: u64) -> GeneratorConfig {
        self.seed = seed;
        self
    }
}

impl Default for GeneratorConfig {
    /// LUBM(1) with the published profile.
    fn default() -> Self {
        GeneratorConfig::scale(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_scale_one() {
        assert_eq!(GeneratorConfig::default(), GeneratorConfig::scale(1));
    }

    #[test]
    fn tiny_keeps_scale_and_seed_handling() {
        let c = GeneratorConfig::tiny(3).with_seed(7);
        assert_eq!(c.universities, 3);
        assert_eq!(c.seed, 7);
        assert!(c.depts_per_univ.1 < GeneratorConfig::scale(3).depts_per_univ.0);
    }
}
