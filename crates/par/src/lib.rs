//! # eh-par
//!
//! A small deterministic parallel runtime for the worst-case optimal join
//! engine — the multicore counterpart of EmptyHeaded's parallel outer
//! attribute loop (the paper's numbers come from a multicore engine;
//! Aberger et al. parallelize the outermost trie level across cores).
//!
//! Design constraints, in order:
//!
//! 1. **Determinism**: parallel execution must be *bit-identical* to
//!    sequential execution. Work is split into fixed, index-addressed
//!    tasks ("morsels"); every task produces its own output buffer, and
//!    buffers are merged in task order regardless of which worker ran
//!    which task or in what order tasks finished.
//! 2. **No new dependencies**: scoped `std::thread` workers pulling task
//!    indices off one atomic counter — no rayon, no channels.
//! 3. **Zero cost when off**: `num_threads <= 1` (the default) never
//!    spawns a thread and runs tasks inline, so single-threaded engines
//!    behave exactly as before this runtime existed.
//!
//! The scheduler is deliberately work-queue- rather than range-split-
//! based: morsels are small (hundreds of outer-attribute values), so
//! skewed queries — one hub vertex with most of the graph behind it —
//! still balance across workers, which static range splitting would not.
//!
//! ```
//! use eh_par::{run_tasks, RuntimeConfig};
//!
//! let squares = run_tasks(4, 10, |i| i * i);
//! assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
//!
//! let cfg = RuntimeConfig::with_threads(4);
//! let sums = eh_par::run_morsels(&cfg, 1000, |_, range| range.sum::<usize>());
//! assert_eq!(sums.iter().sum::<usize>(), (0..1000).sum::<usize>());
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Execution-runtime knobs, carried by the engine's planner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RuntimeConfig {
    /// Worker threads for join execution and index building. `1` (the
    /// default) means fully sequential — no threads are ever spawned.
    pub num_threads: usize,
    /// Outer-attribute values per scheduled task. Smaller morsels balance
    /// skew better; larger morsels amortise scheduling. The default (256)
    /// keeps per-task buffer overhead negligible on LUBM-scale sets.
    pub morsel_size: usize,
}

impl RuntimeConfig {
    /// Default morsel granularity.
    pub const DEFAULT_MORSEL_SIZE: usize = 256;

    /// Fully sequential execution (the default).
    pub fn serial() -> RuntimeConfig {
        RuntimeConfig { num_threads: 1, morsel_size: Self::DEFAULT_MORSEL_SIZE }
    }

    /// Parallel execution on `num_threads` workers (clamped to >= 1).
    pub fn with_threads(num_threads: usize) -> RuntimeConfig {
        RuntimeConfig { num_threads: num_threads.max(1), morsel_size: Self::DEFAULT_MORSEL_SIZE }
    }

    /// Parallel execution on every available core.
    pub fn parallel() -> RuntimeConfig {
        let n = std::thread::available_parallelism().map_or(1, |n| n.get());
        RuntimeConfig::with_threads(n)
    }

    /// The runtime the `EH_THREADS` environment variable asks for:
    /// `EH_THREADS=N` means N workers, unset (or unparsable) means
    /// sequential. CI runs the test suite under `EH_THREADS=4` so tests
    /// that build their runtime here exercise the parallel paths.
    pub fn from_env() -> RuntimeConfig {
        match std::env::var("EH_THREADS").ok().and_then(|s| s.trim().parse::<usize>().ok()) {
            Some(n) => RuntimeConfig::with_threads(n),
            None => RuntimeConfig::serial(),
        }
    }

    /// Override the morsel granularity (clamped to >= 1).
    pub fn with_morsel_size(mut self, morsel_size: usize) -> RuntimeConfig {
        self.morsel_size = morsel_size.max(1);
        self
    }

    /// True when this configuration runs on worker threads.
    pub fn is_parallel(&self) -> bool {
        self.num_threads > 1
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig::serial()
    }
}

/// Per-worker busy-time and task-count accounting for
/// [`run_tasks_observed`] / [`run_morsels_observed`]. Recording is two
/// relaxed atomic adds per task, and happens **only when an observer is
/// passed** — the unobserved entry points never read the clock.
///
/// One observer can accumulate across several scheduler invocations
/// (e.g. every morsel batch of a query); slot `w` aggregates whatever
/// ran on worker `w` of each invocation (the caller's thread counts as
/// worker 0 on inline runs).
#[derive(Debug)]
pub struct TaskObserver {
    busy_ns: Vec<AtomicU64>,
    tasks: Vec<AtomicU64>,
}

impl TaskObserver {
    /// An observer with `workers` slots (clamped to >= 1). Size it with
    /// the runtime's `num_threads`; workers beyond the slot count fold
    /// into the last slot rather than being dropped.
    pub fn new(workers: usize) -> TaskObserver {
        let n = workers.max(1);
        TaskObserver {
            busy_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
            tasks: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of worker slots.
    pub fn workers(&self) -> usize {
        self.busy_ns.len()
    }

    fn note(&self, worker: usize, elapsed_ns: u64) {
        let w = worker.min(self.busy_ns.len() - 1);
        self.busy_ns[w].fetch_add(elapsed_ns, Ordering::Relaxed);
        self.tasks[w].fetch_add(1, Ordering::Relaxed);
    }

    /// Busy nanoseconds per worker slot.
    pub fn busy_ns(&self) -> Vec<u64> {
        self.busy_ns.iter().map(|a| a.load(Ordering::Relaxed)).collect()
    }

    /// Tasks completed per worker slot.
    pub fn tasks(&self) -> Vec<u64> {
        self.tasks.iter().map(|a| a.load(Ordering::Relaxed)).collect()
    }

    /// Tasks completed across all workers.
    pub fn total_tasks(&self) -> u64 {
        self.tasks.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }
}

#[inline]
fn run_one<T>(
    observer: Option<&TaskObserver>,
    worker: usize,
    task: &(impl Fn(usize) -> T + ?Sized),
    i: usize,
) -> T {
    match observer {
        None => task(i),
        Some(obs) => {
            let start = std::time::Instant::now();
            let out = task(i);
            obs.note(worker, start.elapsed().as_nanos() as u64);
            out
        }
    }
}

/// Run `num_tasks` independent tasks on up to `threads` workers and
/// return their results **in task order** — the merge order is a function
/// of task indices only, never of scheduling, which is what makes
/// parallel query execution reproducible.
///
/// Tasks are claimed dynamically from a shared atomic counter, so
/// uneven task costs still balance. With `threads <= 1` or fewer than two
/// tasks everything runs inline on the caller's thread.
///
/// Panics in a task propagate to the caller after all workers stop
/// claiming new tasks.
pub fn run_tasks<T, F>(threads: usize, num_tasks: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_tasks_observed(threads, num_tasks, None, task)
}

/// [`run_tasks`] with optional per-worker accounting: when `observer` is
/// `Some`, each task's wall time and completion is credited to the worker
/// that ran it (the caller's thread is worker 0 on the inline path).
/// With `observer` of `None` this *is* `run_tasks` — no clock reads.
pub fn run_tasks_observed<T, F>(
    threads: usize,
    num_tasks: usize,
    observer: Option<&TaskObserver>,
    task: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || num_tasks <= 1 {
        return (0..num_tasks).map(|i| run_one(observer, 0, &task, i)).collect();
    }
    let workers = threads.min(num_tasks);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..num_tasks).map(|_| None).collect();
    let task = &task;
    let next = &next;
    let finished = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= num_tasks {
                            return local;
                        }
                        local.push((i, run_one(observer, w, task, i)));
                    }
                })
            })
            .collect();
        // Join every worker before re-raising a panic: resuming early
        // would let the scope's implicit join see an unjoined panicked
        // thread and panic *during* unwinding, aborting the process.
        let mut all = Vec::with_capacity(num_tasks);
        let mut first_panic = None;
        for h in handles {
            match h.join() {
                Ok(local) => all.extend(local),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        all
    });
    for (i, value) in finished {
        slots[i] = Some(value);
    }
    slots.into_iter().map(|s| s.expect("every task index produced a result")).collect()
}

/// Number of morsels covering `total` items at `morsel_size` granularity.
pub fn num_morsels(total: usize, morsel_size: usize) -> usize {
    total.div_ceil(morsel_size.max(1))
}

/// The item range of morsel `m`.
pub fn morsel_range(m: usize, morsel_size: usize, total: usize) -> Range<usize> {
    let morsel_size = morsel_size.max(1);
    let start = m * morsel_size;
    start..((start + morsel_size).min(total))
}

/// Partition `0..total` into morsels of `cfg.morsel_size` and run
/// `f(morsel_index, item_range)` per morsel on `cfg.num_threads` workers;
/// results come back in morsel order (see [`run_tasks`] for the
/// determinism contract).
pub fn run_morsels<T, F>(cfg: &RuntimeConfig, total: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    run_morsels_observed(cfg, total, None, f)
}

/// [`run_morsels`] with optional per-worker accounting (see
/// [`run_tasks_observed`]).
pub fn run_morsels_observed<T, F>(
    cfg: &RuntimeConfig,
    total: usize,
    observer: Option<&TaskObserver>,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let n = num_morsels(total, cfg.morsel_size);
    run_tasks_observed(cfg.num_threads, n, observer, |m| {
        f(m, morsel_range(m, cfg.morsel_size, total))
    })
}

/// Run one task per storage shard on the existing worker pool and return
/// the results **in shard order** — shards are the outer morsel dimension
/// of a partitioned store: shard-local joins, per-shard snapshot section
/// loads, and per-shard trie builds all schedule through here, inheriting
/// [`run_tasks`]'s determinism contract (merge order is shard index, never
/// scheduling order) so partitioned execution concatenates byte-identically
/// at any thread count.
///
/// This is [`run_tasks`] with the shard count as the task count; it exists
/// as a named entry point so call sites say what the outer dimension *is*,
/// and so per-shard work composes with inner morsel-parallel loops (the
/// shard task itself may call [`run_morsels`] with a serial config when
/// the pool is already saturated at the shard level).
pub fn run_shards<T, F>(cfg: &RuntimeConfig, num_shards: usize, shard_task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_tasks(cfg.num_threads, num_shards, shard_task)
}

/// A blocking multi-producer/multi-consumer work queue for long-lived
/// worker pools — the piece [`run_tasks`] cannot cover: tasks that *arrive
/// over time* (e.g. client connections accepted by a server) rather than
/// being counted up front.
///
/// Workers loop on [`WorkQueue::pop`], which blocks until an item arrives
/// and returns `None` once the queue is [closed](WorkQueue::close) and
/// drained — the shutdown signal.
///
/// ```
/// use eh_par::WorkQueue;
///
/// let q = WorkQueue::new();
/// std::thread::scope(|s| {
///     let workers: Vec<_> = (0..2)
///         .map(|_| s.spawn(|| std::iter::from_fn(|| q.pop()).sum::<u64>()))
///         .collect();
///     for i in 0..10u64 {
///         q.push(i);
///     }
///     q.close();
///     let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
///     assert_eq!(total, 45);
/// });
/// ```
pub struct WorkQueue<T> {
    state: std::sync::Mutex<QueueState<T>>,
    ready: std::sync::Condvar,
}

struct QueueState<T> {
    items: std::collections::VecDeque<T>,
    closed: bool,
}

impl<T> WorkQueue<T> {
    /// An empty, open queue.
    pub fn new() -> WorkQueue<T> {
        WorkQueue {
            state: std::sync::Mutex::new(QueueState {
                items: std::collections::VecDeque::new(),
                closed: false,
            }),
            ready: std::sync::Condvar::new(),
        }
    }

    /// Enqueue an item, waking one waiting worker. Returns `false` (and
    /// drops the item) when the queue is already closed.
    pub fn push(&self, item: T) -> bool {
        let mut state = self.state.lock().expect("work queue lock poisoned");
        if state.closed {
            return false;
        }
        state.items.push_back(item);
        self.ready.notify_one();
        true
    }

    /// Dequeue the oldest item, blocking while the queue is empty and
    /// open. Returns `None` once the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("work queue lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("work queue lock poisoned");
        }
    }

    /// Close the queue: pending items still drain, further pushes are
    /// rejected, and blocked workers wake to observe shutdown.
    pub fn close(&self) {
        self.state.lock().expect("work queue lock poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued (diagnostics).
    pub fn len(&self) -> usize {
        self.state.lock().expect("work queue lock poisoned").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for WorkQueue<T> {
    fn default() -> Self {
        WorkQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_config_is_default_and_never_parallel() {
        assert_eq!(RuntimeConfig::default(), RuntimeConfig::serial());
        assert!(!RuntimeConfig::serial().is_parallel());
        assert!(RuntimeConfig::with_threads(2).is_parallel());
        assert_eq!(RuntimeConfig::with_threads(0).num_threads, 1);
        assert_eq!(RuntimeConfig::serial().with_morsel_size(0).morsel_size, 1);
        assert!(RuntimeConfig::parallel().num_threads >= 1);
    }

    #[test]
    fn shards_merge_in_shard_order_at_any_thread_count() {
        let reference: Vec<usize> = (0..7).map(|s| s * s + 1).collect();
        for threads in [1, 2, 4, 8] {
            let cfg = RuntimeConfig::with_threads(threads);
            let out = run_shards(&cfg, 7, |shard| shard * shard + 1);
            assert_eq!(out, reference, "threads {threads}");
        }
    }

    #[test]
    fn results_arrive_in_task_order() {
        for threads in [1, 2, 3, 8] {
            let out = run_tasks(threads, 100, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>(), "threads {threads}");
        }
    }

    #[test]
    fn uneven_task_costs_still_merge_in_order() {
        // Early tasks are slow, late tasks fast: completion order inverts
        // submission order, the merged result must not.
        let out = run_tasks(4, 16, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_single_task_run_inline() {
        assert_eq!(run_tasks(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_tasks(8, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn morsel_partition_covers_everything_exactly_once() {
        for (total, morsel) in [(0, 4), (1, 4), (7, 3), (12, 3), (5, 100)] {
            let n = num_morsels(total, morsel);
            let mut seen = Vec::new();
            for m in 0..n {
                seen.extend(morsel_range(m, morsel, total));
            }
            assert_eq!(seen, (0..total).collect::<Vec<_>>(), "total {total} morsel {morsel}");
        }
    }

    #[test]
    fn run_morsels_matches_sequential_fold() {
        let cfg = RuntimeConfig::with_threads(4).with_morsel_size(3);
        let per_morsel = run_morsels(&cfg, 100, |_, r| r.map(|i| i as u64).sum::<u64>());
        assert_eq!(per_morsel.len(), num_morsels(100, 3));
        assert_eq!(per_morsel.iter().sum::<u64>(), (0..100u64).sum::<u64>());
    }

    #[test]
    fn observer_accounts_for_every_task() {
        for threads in [1usize, 2, 4] {
            let obs = TaskObserver::new(threads);
            let out = run_tasks_observed(threads, 40, Some(&obs), |i| {
                std::thread::sleep(std::time::Duration::from_micros(50));
                i
            });
            assert_eq!(out, (0..40).collect::<Vec<_>>(), "threads {threads}");
            assert_eq!(obs.total_tasks(), 40, "threads {threads}");
            assert_eq!(obs.workers(), threads);
            // Every task slept, so total busy time is strictly positive
            // and at least the sum of the sleeps.
            let busy: u64 = obs.busy_ns().iter().sum();
            assert!(busy >= 40 * 50_000, "busy {busy} (threads {threads})");
            if threads == 1 {
                assert_eq!(obs.tasks(), vec![40], "inline path credits worker 0");
            }
        }
    }

    #[test]
    fn observer_accumulates_across_invocations() {
        let cfg = RuntimeConfig::with_threads(2).with_morsel_size(5);
        let obs = TaskObserver::new(cfg.num_threads);
        run_morsels_observed(&cfg, 20, Some(&obs), |_, r| r.count());
        run_morsels_observed(&cfg, 30, Some(&obs), |_, r| r.count());
        assert_eq!(obs.total_tasks(), (num_morsels(20, 5) + num_morsels(30, 5)) as u64);
    }

    #[test]
    fn observer_clamps_degenerate_sizes() {
        let obs = TaskObserver::new(0);
        assert_eq!(obs.workers(), 1);
        // Workers past the slot count fold into the last slot.
        run_tasks_observed(4, 8, Some(&obs), |i| i);
        assert_eq!(obs.total_tasks(), 8);
    }

    #[test]
    fn work_queue_delivers_everything_exactly_once() {
        let q = WorkQueue::new();
        let collected = std::thread::scope(|s| {
            let workers: Vec<_> = (0..3)
                .map(|_| s.spawn(|| std::iter::from_fn(|| q.pop()).collect::<Vec<u32>>()))
                .collect();
            for i in 0..100u32 {
                assert!(q.push(i));
            }
            q.close();
            assert!(!q.push(999), "closed queue must reject pushes");
            let mut all: Vec<u32> = workers.into_iter().flat_map(|w| w.join().unwrap()).collect();
            all.sort_unstable();
            all
        });
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn work_queue_drains_after_close() {
        let q = WorkQueue::new();
        q.push(1u8);
        q.push(2);
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn env_runtime_defaults_to_serial() {
        // EH_THREADS is not set in the unit-test environment unless CI
        // exports it; accept either but require a sane configuration.
        let cfg = RuntimeConfig::from_env();
        assert!(cfg.num_threads >= 1);
        assert_eq!(cfg.morsel_size, RuntimeConfig::DEFAULT_MORSEL_SIZE);
    }

    #[test]
    fn worker_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            run_tasks(2, 8, |i| {
                assert!(i != 5, "boom");
                i
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn panics_on_multiple_workers_stay_catchable() {
        // Every task panics, so every worker panics: the runtime must
        // still surface one catchable panic, not abort via a
        // panic-while-panicking during the scope's implicit joins.
        let caught =
            std::panic::catch_unwind(|| run_tasks(4, 8, |i| -> usize { panic!("boom {i}") }));
        assert!(caught.is_err());
    }

    mod proptests {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn merge_is_deterministic_across_schedules(
                total in 0usize..200,
                morsel in 1usize..9,
                threads in 1usize..5,
            ) {
                let cfg = RuntimeConfig::with_threads(threads).with_morsel_size(morsel);
                let par = run_morsels(&cfg, total, |m, r| (m, r.collect::<Vec<_>>()));
                let seq = run_morsels(&RuntimeConfig::serial().with_morsel_size(morsel), total, |m, r| {
                    (m, r.collect::<Vec<_>>())
                });
                prop_assert_eq!(par, seq);
            }

            #[test]
            fn task_order_is_schedule_independent(n in 0usize..300, threads in 1usize..6) {
                let out = run_tasks(threads, n, |i| i as u64 * 7);
                prop_assert_eq!(out, (0..n as u64).map(|i| i * 7).collect::<Vec<_>>());
            }
        }
    }
}
