//! Query hypergraphs (paper §II-B): one vertex per variable, one
//! hyperedge per atom.

use crate::ir::ConjunctiveQuery;

/// The hypergraph `H = (V, E)` of a conjunctive query. Vertex `v` is query
/// variable `v`; edge `e` lists the variables of atom `e` (so edges here
/// are always binary — RDF atoms — but GHD code treats them generally).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    /// Number of vertices (query variables, including selection vars).
    pub num_vertices: usize,
    /// Edge list: `edges[e]` = sorted variable set of atom `e`.
    pub edges: Vec<Vec<usize>>,
}

impl Hypergraph {
    /// Build the hypergraph of a query.
    pub fn from_query(q: &ConjunctiveQuery) -> Hypergraph {
        let edges = q
            .atoms()
            .iter()
            .map(|a| {
                let mut e = vec![a.vars[0], a.vars[1]];
                e.sort_unstable();
                e
            })
            .collect();
        Hypergraph { num_vertices: q.num_vars(), edges }
    }

    /// Build from raw edges (used by tests and GHD search).
    pub fn new(num_vertices: usize, mut edges: Vec<Vec<usize>>) -> Hypergraph {
        for e in &mut edges {
            e.sort_unstable();
            e.dedup();
        }
        Hypergraph { num_vertices, edges }
    }

    /// Edges incident to vertex `v`.
    pub fn edges_with(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges.iter().enumerate().filter(move |(_, e)| e.contains(&v)).map(|(i, _)| i)
    }

    /// Connected components over the *vertices that appear in edges*,
    /// where two vertices connect when they share an edge. Isolated
    /// vertices (no incident edge) are excluded.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let mut comp = vec![usize::MAX; self.num_vertices];
        let mut n_comp = 0;
        loop {
            // Find an unvisited vertex that appears in some edge.
            let start = (0..self.num_vertices)
                .find(|&v| comp[v] == usize::MAX && self.edges.iter().any(|e| e.contains(&v)));
            let Some(start) = start else { break };
            let mut stack = vec![start];
            comp[start] = n_comp;
            while let Some(v) = stack.pop() {
                for e in &self.edges {
                    if e.contains(&v) {
                        for &u in e {
                            if comp[u] == usize::MAX {
                                comp[u] = n_comp;
                                stack.push(u);
                            }
                        }
                    }
                }
            }
            n_comp += 1;
        }
        let mut out = vec![Vec::new(); n_comp];
        for (v, &c) in comp.iter().enumerate() {
            if c != usize::MAX {
                out[c].push(v);
            }
        }
        out
    }

    /// True when every vertex that appears in an edge is reachable from
    /// every other (i.e. one connected component).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// True when the query is cyclic in the alpha-acyclicity sense —
    /// computed via GYO reduction (repeatedly remove ear edges and
    /// isolated vertices). Cyclic queries are where worst-case optimal
    /// joins beat any pairwise plan (paper §I).
    pub fn is_cyclic(&self) -> bool {
        let mut edges: Vec<Vec<usize>> = self.edges.clone();
        edges.retain(|e| !e.is_empty());
        loop {
            let mut changed = false;
            // Remove vertices that occur in exactly one edge.
            let mut occurrence = vec![0usize; self.num_vertices];
            for e in &edges {
                for &v in e {
                    occurrence[v] += 1;
                }
            }
            for e in &mut edges {
                let before = e.len();
                e.retain(|&v| occurrence[v] > 1);
                changed |= e.len() != before;
            }
            // Remove edges contained in another edge.
            let snapshot = edges.clone();
            let before = edges.len();
            edges = snapshot
                .iter()
                .enumerate()
                .filter(|(i, e)| {
                    !snapshot.iter().enumerate().any(|(j, f)| {
                        j != *i && e.iter().all(|v| f.contains(v)) && (f.len() > e.len() || j < *i)
                    })
                })
                .map(|(_, e)| e.clone())
                .collect();
            changed |= edges.len() != before;
            edges.retain(|e| !e.is_empty());
            if edges.is_empty() {
                return false; // fully reduced: acyclic
            }
            if !changed {
                return true; // stuck with non-empty edges: cyclic
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::QueryBuilder;

    fn triangle_graph() -> Hypergraph {
        Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]])
    }

    #[test]
    fn from_query_builds_sorted_edges() {
        let mut qb = QueryBuilder::new();
        let (x, y) = (qb.var("x"), qb.var("y"));
        qb.atom("R", 0, y, x); // reversed positions
        let q = qb.select(vec![x]).build().unwrap();
        let h = Hypergraph::from_query(&q);
        assert_eq!(h.edges, vec![vec![0, 1]]);
    }

    #[test]
    fn edges_with_vertex() {
        let h = triangle_graph();
        assert_eq!(h.edges_with(1).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn triangle_is_cyclic_and_connected() {
        let h = triangle_graph();
        assert!(h.is_cyclic());
        assert!(h.is_connected());
    }

    #[test]
    fn path_is_acyclic() {
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]);
        assert!(!h.is_cyclic());
    }

    #[test]
    fn star_is_acyclic() {
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![0, 2], vec![0, 3]]);
        assert!(!h.is_cyclic());
    }

    #[test]
    fn four_cycle_is_cyclic() {
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]]);
        assert!(h.is_cyclic());
    }

    #[test]
    fn covered_cycle_is_acyclic() {
        // A triangle plus a hyperedge covering all three vertices is
        // alpha-acyclic (the big edge absorbs the cycle).
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![2, 0], vec![0, 1, 2]]);
        assert!(!h.is_cyclic());
    }

    #[test]
    fn components_split_disconnected_queries() {
        let h = Hypergraph::new(5, vec![vec![0, 1], vec![3, 4]]);
        let comps = h.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![3, 4]);
        assert!(!h.is_connected());
    }

    #[test]
    fn duplicate_edges_are_acyclic() {
        let h = Hypergraph::new(2, vec![vec![0, 1], vec![0, 1]]);
        assert!(!h.is_cyclic());
    }
}
