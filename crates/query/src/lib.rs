//! # eh-query
//!
//! The conjunctive-query intermediate representation shared by every
//! engine in this reproduction of Aberger et al. (ICDE 2016), together
//! with the query hypergraph (§II-B) and a SPARQL-subset frontend for the
//! LUBM workload (paper Appendix B).
//!
//! ## Representation
//!
//! RDF triple patterns become binary atoms over *variables only*: a
//! constant in a pattern (e.g. the object of `?X rdf:type
//! ub:GraduateStudent`) is replaced by a fresh hidden variable carrying an
//! equality *selection*. This mirrors the paper's modelling — LUBM query
//! 14 is `R(a, x)` with the selection `a = 'University'` (Example 1), and
//! the query 2 attribute order `[a, b, c, x, y, z]` names the three hidden
//! selection attributes `a, b, c`.
//!
//! ```
//! use eh_query::QueryBuilder;
//!
//! // R(x, a) with a = constant 7, projecting x  (LUBM query 14 shape).
//! let mut qb = QueryBuilder::new();
//! let x = qb.var("x");
//! let a = qb.selection_var(Some(7));
//! qb.atom("rdf:type", 0, x, a);
//! let q = qb.select(vec![x]).build().unwrap();
//! assert_eq!(q.num_vars(), 2);
//! assert_eq!(q.selection(a), Some(Some(7)));
//! ```

mod canon;
mod hypergraph;
mod ir;
mod sparql;

pub use canon::{canonicalize, CanonAtom, CanonTerm, CanonicalQuery};
pub use hypergraph::Hypergraph;
pub use ir::{Atom, ConjunctiveQuery, QueryBuilder, QueryError, Var};
pub use sparql::{parse_sparql, SparqlError, MISSING_PRED};
