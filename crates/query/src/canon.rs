//! Canonical forms of conjunctive queries, for plan and result caching.
//!
//! Two SPARQL strings that differ only in variable names, atom order, or
//! duplicated patterns describe the same query; a serving layer should
//! plan (and cache) them once. [`canonicalize`] maps a
//! [`ConjunctiveQuery`] to a [`CanonicalQuery`] — variables renumbered by
//! a deterministic scheme, selection variables erased into inline
//! constants, atoms sorted and deduplicated — which implements `Hash`/`Eq`
//! and therefore works as a cache key. [`CanonicalQuery::to_query`]
//! rebuilds an executable IR whose answers are identical (same rows, same
//! order) to the original's, because projection variables keep their
//! `SELECT` positions.
//!
//! The numbering scheme: projection variables first, in `SELECT` order;
//! then, repeatedly, the existential variables of the atom with the
//! smallest variable-independent signature (relation, predicate, and the
//! terms numbered so far). This is a heuristic, not a graph-canonization
//! oracle — queries whose atoms are mutually symmetric under automorphism
//! may canonicalize differently from a renamed copy, which costs a cache
//! miss but never a wrong answer: the canonical form is always
//! semantically equal to its source.

use crate::ir::{ConjunctiveQuery, QueryBuilder, QueryError, Var};

/// One position of a canonical atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CanonTerm {
    /// A join variable, by canonical number.
    Var(usize),
    /// An equality-selection constant (dictionary key; `None` when the
    /// constant is absent from the dictionary, forcing an empty result).
    Sel(Option<u32>),
}

/// A canonical atom `relation(terms[0], terms[1])`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonAtom {
    /// Predicate IRI.
    pub relation: String,
    /// Dictionary key of the predicate.
    pub pred: u32,
    /// Subject and object terms.
    pub terms: [CanonTerm; 2],
}

/// The canonical form of a conjunctive query: the α-equivalence cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalQuery {
    atoms: Vec<CanonAtom>,
    projection: Vec<usize>,
    num_vars: usize,
}

impl CanonicalQuery {
    /// The sorted, deduplicated atoms.
    pub fn atoms(&self) -> &[CanonAtom] {
        &self.atoms
    }

    /// Canonical variable numbers in `SELECT` order (always
    /// `0, 1, 2, ...` for distinct projections).
    pub fn projection(&self) -> &[usize] {
        &self.projection
    }

    /// Number of canonical join variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Rebuild an executable query. Variables are named `v0..vN` by
    /// canonical number and the projection preserves `SELECT` order, so
    /// running the rebuilt query yields exactly the original's rows (only
    /// the column *names* differ).
    pub fn to_query(&self) -> Result<ConjunctiveQuery, QueryError> {
        let mut qb = QueryBuilder::new();
        let vars: Vec<Var> = (0..self.num_vars).map(|i| qb.var(&format!("v{i}"))).collect();
        for a in &self.atoms {
            let pos = |qb: &mut QueryBuilder, t: CanonTerm| match t {
                CanonTerm::Var(i) => vars[i],
                CanonTerm::Sel(c) => qb.selection_var(c),
            };
            let s = pos(&mut qb, a.terms[0]);
            let o = pos(&mut qb, a.terms[1]);
            qb.atom(&a.relation, a.pred, s, o);
        }
        qb.select(self.projection.iter().map(|&i| vars[i]).collect());
        qb.build()
    }
}

/// A variable-name-independent atom signature under a partial numbering:
/// relation, predicate, and the [`rank`] of each position.
type AtomSig<'a> = (&'a str, u32, (u8, u64), (u8, u64));

/// Signature rank of one atom position: orders selections by constant and
/// numbered variables by canonical id, with unnumbered variables last.
fn rank(q: &ConjunctiveQuery, v: Var, ids: &[Option<usize>]) -> (u8, u64) {
    match q.selection(v) {
        Some(Some(c)) => (0, u64::from(c)),
        Some(None) => (1, 0),
        None => match ids[v] {
            Some(id) => (2, id as u64),
            None => (3, 0),
        },
    }
}

/// Compute the canonical form of `q` (see the module docs for the
/// numbering scheme and its guarantees).
pub fn canonicalize(q: &ConjunctiveQuery) -> CanonicalQuery {
    let mut ids: Vec<Option<usize>> = vec![None; q.num_vars()];
    let mut next = 0usize;
    for &v in q.projection() {
        if ids[v].is_none() {
            ids[v] = Some(next);
            next += 1;
        }
    }
    // Number remaining join variables atom by atom, always expanding the
    // atom whose signature (under the numbering so far) is smallest.
    loop {
        let mut best: Option<(AtomSig<'_>, usize)> = None;
        for (i, a) in q.atoms().iter().enumerate() {
            if !a.vars.iter().any(|&v| !q.is_selected(v) && ids[v].is_none()) {
                continue;
            }
            let sig =
                (a.relation.as_str(), a.pred, rank(q, a.vars[0], &ids), rank(q, a.vars[1], &ids));
            if best.as_ref().is_none_or(|(b, _)| sig < *b) {
                best = Some((sig, i));
            }
        }
        let Some((_, i)) = best else { break };
        for &v in &q.atoms()[i].vars {
            if !q.is_selected(v) && ids[v].is_none() {
                ids[v] = Some(next);
                next += 1;
            }
        }
    }
    let term = |v: Var| match q.selection(v) {
        Some(c) => CanonTerm::Sel(c),
        None => CanonTerm::Var(ids[v].expect("every join variable was numbered")),
    };
    let mut atoms: Vec<CanonAtom> = q
        .atoms()
        .iter()
        .map(|a| CanonAtom {
            relation: a.relation.clone(),
            pred: a.pred,
            terms: [term(a.vars[0]), term(a.vars[1])],
        })
        .collect();
    atoms.sort();
    atoms.dedup();
    let projection = q.projection().iter().map(|&v| ids[v].expect("projection numbered")).collect();
    CanonicalQuery { atoms, projection, num_vars: next }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triangle with projection (x, y): atoms in one order ...
    fn triangle_a() -> ConjunctiveQuery {
        let mut qb = QueryBuilder::new();
        let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
        qb.atom("R", 0, x, y).atom("S", 1, y, z).atom("T", 2, z, x);
        qb.select(vec![x, y]).build().unwrap()
    }

    /// ... and the α-equivalent copy: renamed variables, shuffled atoms.
    fn triangle_b() -> ConjunctiveQuery {
        let mut qb = QueryBuilder::new();
        let (c, a, b) = (qb.var("c"), qb.var("a"), qb.var("b"));
        qb.atom("T", 2, c, a).atom("R", 0, a, b).atom("S", 1, b, c);
        qb.select(vec![a, b]).build().unwrap()
    }

    #[test]
    fn alpha_equivalent_queries_share_a_key() {
        assert_eq!(canonicalize(&triangle_a()), canonicalize(&triangle_b()));
    }

    #[test]
    fn projection_order_is_significant() {
        let mut qb = QueryBuilder::new();
        let (x, y) = (qb.var("x"), qb.var("y"));
        qb.atom("R", 0, x, y);
        let xy = qb.select(vec![x, y]).build().unwrap();
        let mut qb = QueryBuilder::new();
        let (x, y) = (qb.var("x"), qb.var("y"));
        qb.atom("R", 0, x, y);
        let yx = qb.select(vec![y, x]).build().unwrap();
        assert_ne!(canonicalize(&xy), canonicalize(&yx));
    }

    #[test]
    fn selection_constants_distinguish_queries() {
        let with_const = |c: Option<u32>| {
            let mut qb = QueryBuilder::new();
            let x = qb.var("x");
            let s = qb.selection_var(c);
            qb.atom("R", 0, x, s);
            qb.select(vec![x]).build().unwrap()
        };
        assert_ne!(canonicalize(&with_const(Some(1))), canonicalize(&with_const(Some(2))));
        assert_ne!(canonicalize(&with_const(Some(1))), canonicalize(&with_const(None)));
        assert_eq!(canonicalize(&with_const(Some(7))), canonicalize(&with_const(Some(7))));
    }

    #[test]
    fn duplicate_atoms_collapse() {
        let mut qb = QueryBuilder::new();
        let (x, y) = (qb.var("x"), qb.var("y"));
        qb.atom("R", 0, x, y).atom("R", 0, x, y);
        let doubled = qb.select(vec![x]).build().unwrap();
        let mut qb = QueryBuilder::new();
        let (x, y) = (qb.var("x"), qb.var("y"));
        qb.atom("R", 0, x, y);
        let single = qb.select(vec![x]).build().unwrap();
        let c = canonicalize(&doubled);
        assert_eq!(c, canonicalize(&single));
        assert_eq!(c.atoms().len(), 1);
    }

    #[test]
    fn roundtrip_is_idempotent() {
        for q in [triangle_a(), triangle_b()] {
            let c = canonicalize(&q);
            let rebuilt = c.to_query().unwrap();
            assert_eq!(canonicalize(&rebuilt), c);
            // Projection keeps SELECT arity and order.
            assert_eq!(rebuilt.projection().len(), q.projection().len());
        }
    }

    #[test]
    fn canonical_names_follow_numbering() {
        let q = triangle_b().clone();
        let rebuilt = canonicalize(&q).to_query().unwrap();
        let names: Vec<&str> = rebuilt.projection().iter().map(|&v| rebuilt.var_name(v)).collect();
        assert_eq!(names, vec!["v0", "v1"]);
    }

    #[test]
    fn repeated_projection_variables_survive() {
        let mut qb = QueryBuilder::new();
        let (x, y) = (qb.var("x"), qb.var("y"));
        qb.atom("R", 0, x, y);
        let q = qb.select(vec![x, x]).build().unwrap();
        let c = canonicalize(&q);
        assert_eq!(c.projection(), &[0, 0]);
        assert_eq!(c.to_query().unwrap().projection().len(), 2);
    }
}
