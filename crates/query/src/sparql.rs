//! A SPARQL-subset frontend covering the paper's LUBM workload (Appendix
//! B): `PREFIX` declarations, `SELECT` with an explicit variable list or
//! `SELECT *` (expanding to every pattern variable in order of first
//! appearance), and a `WHERE` block of `.`-separated triple patterns over
//! IRIs, prefixed names, literals, and `?variables` — with a trailing `.`
//! before `}` tolerated, as real SPARQL endpoints accept.

use std::collections::HashMap;
use std::fmt;

use eh_rdf::{Term, TripleStore};

use crate::ir::{ConjunctiveQuery, QueryBuilder, QueryError};

/// Sentinel predicate key for patterns whose predicate IRI is not present
/// in the target store (the query then has an empty result, but the plan
/// shape is still meaningful).
pub const MISSING_PRED: u32 = u32::MAX;

/// Errors from [`parse_sparql`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Lexical or grammatical error with a human-readable description.
    Syntax(String),
    /// A prefixed name used an undeclared prefix.
    UnknownPrefix(String),
    /// Triple patterns with variable predicates are unsupported.
    VariablePredicate,
    /// The assembled query failed IR validation.
    Query(QueryError),
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Syntax(m) => write!(f, "SPARQL syntax error: {m}"),
            SparqlError::UnknownPrefix(p) => write!(f, "unknown prefix '{p}:'"),
            SparqlError::VariablePredicate => write!(f, "variable predicates are unsupported"),
            SparqlError::Query(e) => write!(f, "invalid query: {e}"),
        }
    }
}

impl std::error::Error for SparqlError {}

fn syn(m: impl Into<String>) -> SparqlError {
    SparqlError::Syntax(m.into())
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Keyword(String), // PREFIX / SELECT / WHERE (uppercased)
    Var(String),
    Iri(String),
    Prefixed(String, String),
    Literal(String),
    PrefixDecl(String), // "name:" inside a PREFIX declaration
    LBrace,
    RBrace,
    Dot,
    Star,
}

/// Tokenize `input` into `(byte offset, token)` pairs; the offset of each
/// token feeds the parser's position-bearing error messages.
fn tokenize(input: &str) -> Result<Vec<(usize, Token)>, SparqlError> {
    let mut out = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line.
                for (_, c) in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '{' => {
                chars.next();
                out.push((i, Token::LBrace));
            }
            '}' => {
                chars.next();
                out.push((i, Token::RBrace));
            }
            '.' => {
                chars.next();
                out.push((i, Token::Dot));
            }
            '*' => {
                chars.next();
                out.push((i, Token::Star));
            }
            '?' | '$' => {
                chars.next();
                let name = take_while(&mut chars, |c| c.is_alphanumeric() || c == '_');
                if name.is_empty() {
                    return Err(syn(format!("bare '{c}' at byte {i}")));
                }
                out.push((i, Token::Var(name)));
            }
            '<' => {
                chars.next();
                let iri = take_while(&mut chars, |c| c != '>');
                if chars.next().map(|(_, c)| c) != Some('>') {
                    return Err(syn(format!("unterminated IRI starting at byte {i}")));
                }
                out.push((i, Token::Iri(iri)));
            }
            '"' => {
                chars.next();
                let lit = take_while(&mut chars, |c| c != '"');
                if chars.next().map(|(_, c)| c) != Some('"') {
                    return Err(syn(format!("unterminated literal starting at byte {i}")));
                }
                out.push((i, Token::Literal(lit)));
            }
            _ => {
                let word = take_while(&mut chars, |c| {
                    c.is_alphanumeric() || c == '_' || c == ':' || c == '-' || c == '~'
                });
                if word.is_empty() {
                    return Err(syn(format!("unexpected character {c:?} at byte {i}")));
                }
                let upper = word.to_ascii_uppercase();
                if upper == "PREFIX" || upper == "SELECT" || upper == "WHERE" {
                    out.push((i, Token::Keyword(upper)));
                } else if let Some(colon) = word.find(':') {
                    let (pfx, local) = word.split_at(colon);
                    let local = &local[1..];
                    if local.is_empty() {
                        out.push((i, Token::PrefixDecl(pfx.to_string())));
                    } else {
                        out.push((i, Token::Prefixed(pfx.to_string(), local.to_string())));
                    }
                } else {
                    return Err(syn(format!("unexpected word {word:?} at byte {i}")));
                }
            }
        }
    }
    Ok(out)
}

fn take_while(
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    pred: impl Fn(char) -> bool,
) -> String {
    let mut s = String::new();
    while let Some(&(_, c)) = chars.peek() {
        if pred(c) {
            s.push(c);
            chars.next();
        } else {
            break;
        }
    }
    s
}

#[derive(Debug, Clone, PartialEq)]
enum PatTerm {
    Var(String),
    Const(Term),
}

/// Parse a SPARQL query against `store`, dictionary-resolving every
/// constant (constants absent from the store yield selections that match
/// nothing, not errors — mirroring SPARQL's empty-answer semantics).
///
/// ```
/// use eh_rdf::{Term, Triple, TripleStore};
/// use eh_query::parse_sparql;
///
/// let store = TripleStore::from_triples(vec![Triple::new(
///     Term::iri("http://e/s"),
///     Term::iri("http://e/p"),
///     Term::iri("http://e/o"),
/// )]);
/// let q = parse_sparql(
///     "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:p e:o . }",
///     &store,
/// ).unwrap();
/// assert_eq!(q.projection().len(), 1);
/// assert_eq!(q.atoms().len(), 1);
/// ```
pub fn parse_sparql(input: &str, store: &TripleStore) -> Result<ConjunctiveQuery, SparqlError> {
    let tokens = tokenize(input)?;
    // Token at `pos`, and a rendering of "what sits at `pos`" with its
    // byte offset for error messages (end of input reports input.len()).
    let tok = |pos: usize| tokens.get(pos).map(|(_, t)| t);
    let found = |pos: usize| match tokens.get(pos) {
        Some((i, t)) => format!("{t:?} at byte {i}"),
        None => format!("end of input at byte {}", input.len()),
    };
    let mut pos = 0usize;
    let mut prefixes: HashMap<String, String> = HashMap::new();

    // PREFIX declarations.
    while matches!(tok(pos), Some(Token::Keyword(k)) if k == "PREFIX") {
        pos += 1;
        let name = match tok(pos) {
            Some(Token::PrefixDecl(p)) => p.clone(),
            // A declaration like `rdf:` tokenizes as PrefixDecl, but a
            // prefix whose tail is non-empty cannot appear here.
            _ => return Err(syn(format!("expected prefix name, found {}", found(pos)))),
        };
        pos += 1;
        let iri = match tok(pos) {
            Some(Token::Iri(i)) => i.clone(),
            _ => return Err(syn(format!("expected IRI after PREFIX, found {}", found(pos)))),
        };
        pos += 1;
        prefixes.insert(name, iri);
    }

    // SELECT clause.
    match tok(pos) {
        Some(Token::Keyword(k)) if k == "SELECT" => pos += 1,
        _ => return Err(syn(format!("expected SELECT, found {}", found(pos)))),
    }
    let mut select_vars = Vec::new();
    let select_star = matches!(tok(pos), Some(Token::Star));
    if select_star {
        pos += 1;
    } else {
        while let Some(Token::Var(v)) = tok(pos) {
            select_vars.push(v.clone());
            pos += 1;
        }
        if select_vars.is_empty() {
            return Err(syn(format!(
                "SELECT needs at least one variable (or *), found {}",
                found(pos)
            )));
        }
    }

    // WHERE { patterns }.
    if matches!(tok(pos), Some(Token::Keyword(k)) if k == "WHERE") {
        pos += 1;
    }
    match tok(pos) {
        Some(Token::LBrace) => pos += 1,
        _ => return Err(syn(format!("expected '{{', found {}", found(pos)))),
    }

    let resolve = |pos: usize| -> Result<PatTerm, SparqlError> {
        match tok(pos) {
            Some(Token::Var(v)) => Ok(PatTerm::Var(v.clone())),
            Some(Token::Iri(i)) => Ok(PatTerm::Const(Term::iri(i.clone()))),
            Some(Token::Literal(l)) => Ok(PatTerm::Const(Term::literal(l.clone()))),
            Some(Token::Prefixed(p, local)) => {
                let base = prefixes.get(p).ok_or_else(|| SparqlError::UnknownPrefix(p.clone()))?;
                Ok(PatTerm::Const(Term::iri(format!("{base}{local}"))))
            }
            _ => Err(syn(format!("expected a term, found {}", found(pos)))),
        }
    };

    let mut patterns: Vec<[PatTerm; 3]> = Vec::new();
    loop {
        match tok(pos) {
            Some(Token::RBrace) => {
                pos += 1;
                break;
            }
            None => {
                return Err(syn(format!(
                    "unterminated WHERE block (missing '}}' before byte {})",
                    input.len()
                )))
            }
            _ => {}
        }
        let s = resolve(pos)?;
        let p = resolve(pos + 1)?;
        let o = resolve(pos + 2)?;
        pos += 3;
        patterns.push([s, p, o]);
        // Optional dot between patterns — and a trailing one before `}`
        // (the grammar's terminator is separator-like here, matching how
        // endpoints accept `... ?x ?y . }`).
        if matches!(tok(pos), Some(Token::Dot)) {
            pos += 1;
        }
    }
    if pos != tokens.len() {
        return Err(syn(format!("trailing tokens after '}}', starting with {}", found(pos))));
    }

    // `SELECT *`: project every named pattern variable in order of first
    // appearance (subject before object, pattern by pattern).
    if select_star {
        for [s, _, o] in &patterns {
            for term in [s, o] {
                if let PatTerm::Var(v) = term {
                    if !select_vars.contains(v) {
                        select_vars.push(v.clone());
                    }
                }
            }
        }
        if select_vars.is_empty() {
            return Err(syn("SELECT * found no variables in the pattern"));
        }
    }

    // Assemble the IR.
    let mut qb = QueryBuilder::new();
    for [s, p, o] in &patterns {
        let (pred_iri, pred_id) = match p {
            PatTerm::Var(_) => return Err(SparqlError::VariablePredicate),
            PatTerm::Const(Term::Iri(iri)) => {
                (iri.clone(), store.resolve_iri(iri).unwrap_or(MISSING_PRED))
            }
            PatTerm::Const(Term::Literal(_)) => {
                return Err(syn("literal in predicate position"));
            }
        };
        let sv = match s {
            PatTerm::Var(v) => qb.var(v),
            PatTerm::Const(t) => qb.selection_var(store.dict().lookup(t)),
        };
        let ov = match o {
            PatTerm::Var(v) => qb.var(v),
            PatTerm::Const(t) => qb.selection_var(store.dict().lookup(t)),
        };
        qb.atom(&pred_iri, pred_id, sv, ov);
    }
    let proj: Vec<_> = {
        let mut proj = Vec::with_capacity(select_vars.len());
        for v in &select_vars {
            proj.push(qb.var(v));
        }
        proj
    };
    qb.select(proj).build().map_err(SparqlError::Query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_rdf::Triple;

    fn store() -> TripleStore {
        TripleStore::from_triples(vec![
            Triple::new(
                Term::iri("http://e/s1"),
                Term::iri("http://e/p"),
                Term::iri("http://e/o1"),
            ),
            Triple::new(Term::iri("http://e/s1"), Term::iri("http://e/q"), Term::literal("lit")),
        ])
    }

    #[test]
    fn basic_query() {
        let q = parse_sparql("SELECT ?x WHERE { ?x <http://e/p> ?y . }", &store()).unwrap();
        assert_eq!(q.atoms().len(), 1);
        assert_eq!(q.atoms()[0].relation, "http://e/p");
        assert_ne!(q.atoms()[0].pred, MISSING_PRED);
        assert_eq!(q.projection().len(), 1);
    }

    #[test]
    fn prefixes_expand() {
        let q = parse_sparql("PREFIX e: <http://e/>\nSELECT ?x WHERE { ?x e:p e:o1 }", &store())
            .unwrap();
        assert_eq!(q.atoms()[0].relation, "http://e/p");
        // e:o1 resolved to an existing dictionary key.
        let sel = q.selected_vars();
        assert_eq!(sel.len(), 1);
        assert!(matches!(q.selection(sel[0]), Some(Some(_))));
    }

    #[test]
    fn unknown_constant_becomes_missing_selection() {
        let q = parse_sparql("SELECT ?x WHERE { ?x <http://e/p> <http://e/absent> }", &store())
            .unwrap();
        assert!(q.has_missing_constant());
    }

    #[test]
    fn unknown_predicate_gets_sentinel() {
        let q = parse_sparql("SELECT ?x WHERE { ?x <http://e/nosuch> ?y }", &store()).unwrap();
        assert_eq!(q.atoms()[0].pred, MISSING_PRED);
    }

    #[test]
    fn literal_objects() {
        let q = parse_sparql("SELECT ?x WHERE { ?x <http://e/q> \"lit\" }", &store()).unwrap();
        assert!(!q.has_missing_constant());
    }

    #[test]
    fn shared_variables_join() {
        let q = parse_sparql(
            "SELECT ?x ?z WHERE { ?x <http://e/p> ?y . ?y <http://e/q> ?z . }",
            &store(),
        )
        .unwrap();
        assert_eq!(q.atoms().len(), 2);
        assert_eq!(q.atoms()[0].vars[1], q.atoms()[1].vars[0]);
    }

    #[test]
    fn errors() {
        let s = store();
        assert!(matches!(
            parse_sparql("SELECT ?x WHERE { ?x ?p ?y }", &s),
            Err(SparqlError::VariablePredicate)
        ));
        assert!(matches!(
            parse_sparql("SELECT ?x WHERE { ?x u:p ?y }", &s),
            Err(SparqlError::UnknownPrefix(_))
        ));
        assert!(matches!(parse_sparql("SELECT WHERE { }", &s), Err(SparqlError::Syntax(_))));
        assert!(matches!(
            parse_sparql("SELECT ?x WHERE { ?x <http://e/p> ?y", &s),
            Err(SparqlError::Syntax(_))
        ));
        // Projection of an unbound variable is caught by IR validation.
        assert!(matches!(
            parse_sparql("SELECT ?zz WHERE { ?x <http://e/p> ?y }", &s),
            Err(SparqlError::Query(_))
        ));
    }

    #[test]
    fn select_star_expands_in_pattern_order() {
        let q =
            parse_sparql("SELECT * WHERE { ?b <http://e/p> ?a . ?a <http://e/q> ?c }", &store())
                .unwrap();
        // First-appearance order: b (subject of pattern 1), a, then c —
        // not alphabetical, not SELECT-list order.
        let names: Vec<&str> = q.projection().iter().map(|&v| q.var_name(v)).collect();
        assert_eq!(names, vec!["b", "a", "c"]);
    }

    #[test]
    fn select_star_skips_constants_and_dedups() {
        let q = parse_sparql(
            "SELECT * WHERE { ?x <http://e/p> <http://e/o1> . ?x <http://e/q> \"lit\" }",
            &store(),
        )
        .unwrap();
        let names: Vec<&str> = q.projection().iter().map(|&v| q.var_name(v)).collect();
        assert_eq!(names, vec!["x"]);
    }

    #[test]
    fn select_star_without_variables_is_an_error() {
        assert!(matches!(
            parse_sparql("SELECT * WHERE { <http://e/s1> <http://e/p> <http://e/o1> }", &store()),
            Err(SparqlError::Syntax(_))
        ));
    }

    #[test]
    fn trailing_dot_before_closing_brace_is_tolerated() {
        let s = store();
        // Single pattern, with and without the trailing dot.
        let with = parse_sparql("SELECT ?x WHERE { ?x <http://e/p> ?y . }", &s).unwrap();
        let without = parse_sparql("SELECT ?x WHERE { ?x <http://e/p> ?y }", &s).unwrap();
        assert_eq!(with, without);
        // Multiple patterns, trailing dot after the last.
        let q = parse_sparql("SELECT * WHERE { ?x <http://e/p> ?y . ?x <http://e/q> ?z . }", &s)
            .unwrap();
        assert_eq!(q.atoms().len(), 2);
        assert_eq!(q.projection().len(), 3);
    }

    #[test]
    fn comments_and_dollar_vars() {
        let q = parse_sparql(
            "# leading comment\nSELECT $x WHERE { $x <http://e/p> ?y . # trailing\n }",
            &store(),
        )
        .unwrap();
        assert_eq!(q.projection().len(), 1);
    }

    #[test]
    fn malformed_input_errors_carry_positions() {
        let s = store();
        // Unclosed brace.
        let e = parse_sparql("SELECT ?x WHERE { ?x <http://e/p> ?y", &s).unwrap_err();
        assert!(e.to_string().contains("byte"), "{e}");
        // Missing WHERE and missing brace.
        let e = parse_sparql("SELECT ?x ?y", &s).unwrap_err();
        assert!(e.to_string().contains("expected '{'") && e.to_string().contains("byte"), "{e}");
        // Stray tokens after the closing brace.
        let e = parse_sparql("SELECT ?x WHERE { ?x <http://e/p> ?y } ?z", &s).unwrap_err();
        assert!(e.to_string().contains("trailing") && e.to_string().contains("byte"), "{e}");
        // Unterminated IRI / literal report where they started.
        let e = parse_sparql("SELECT ?x WHERE { ?x <http://e/p ?y }", &s).unwrap_err();
        assert!(
            e.to_string().contains("unterminated IRI") && e.to_string().contains("byte"),
            "{e}"
        );
        let e = parse_sparql("SELECT ?x WHERE { ?x <http://e/q> \"lit }", &s).unwrap_err();
        assert!(e.to_string().contains("unterminated literal"), "{e}");
        // Bare variable sigil.
        let e = parse_sparql("SELECT ? WHERE { ?x <http://e/p> ?y }", &s).unwrap_err();
        assert!(e.to_string().contains("bare '?'"), "{e}");
        // Truncated pattern inside the block.
        let e = parse_sparql("SELECT ?x WHERE { ?x <http://e/p> }", &s).unwrap_err();
        assert!(e.to_string().contains("expected a term"), "{e}");
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        /// Valid workload-shaped queries to mutate.
        const SEEDS: [&str; 4] = [
            "SELECT ?x WHERE { ?x <http://e/p> ?y . }",
            "PREFIX e: <http://e/> SELECT ?x ?y WHERE { ?x e:p ?y . ?y e:q ?x }",
            "SELECT * WHERE { ?a <http://e/p> <http://e/o1> . ?a <http://e/q> \"lit\" }",
            "# c\nSELECT $x WHERE { $x <http://e/p> ?y . ?y <http://e/q> ?z . }",
        ];

        /// Apply one random edit to `text`: delete, insert, duplicate, or
        /// truncate — enough to hit unclosed braces, stray tokens, split
        /// keywords, and dangling sigils.
        fn mutate(text: &str, kind: u8, at: usize, ins: u8) -> String {
            const INSERTS: &[char] =
                &['{', '}', '?', '$', '<', '>', '.', '"', '*', ':', ' ', 'Z', '\u{e9}'];
            let mut chars: Vec<char> = text.chars().collect();
            if chars.is_empty() {
                return INSERTS[ins as usize % INSERTS.len()].to_string();
            }
            let at = at % chars.len();
            match kind % 4 {
                0 => {
                    chars.remove(at);
                }
                1 => chars.insert(at, INSERTS[ins as usize % INSERTS.len()]),
                2 => {
                    let c = chars[at];
                    chars.insert(at, c);
                }
                _ => chars.truncate(at),
            }
            chars.into_iter().collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            #[test]
            fn mutated_queries_never_panic(
                seed in 0usize..SEEDS.len(),
                edits in proptest::collection::vec((0u8..4, 0usize..128, any::<u8>()), 1..4),
            ) {
                let s = store();
                let mut text = SEEDS[seed].to_string();
                for (kind, at, ins) in edits {
                    text = mutate(&text, kind, at, ins);
                }
                // Ok or Err are both fine; reaching here without a panic
                // is the property.
                let _ = parse_sparql(&text, &s);
            }
        }
    }

    #[test]
    fn paper_query_shape() {
        // The paper's query 14 verbatim (modulo whitespace).
        let text = r#"
            PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
            PREFIX ub: <http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#>
            SELECT ?X
            WHERE { ?X rdf:type ub:UndergraduateStudent }
        "#;
        let q = parse_sparql(text, &store()).unwrap();
        assert_eq!(q.atoms().len(), 1);
        assert_eq!(q.atoms()[0].relation, "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
        assert_eq!(q.selected_vars().len(), 1);
    }
}
