//! Conjunctive queries over binary (vertically partitioned) RDF relations.

use std::collections::HashMap;
use std::fmt;

/// A query variable, interned as a dense index; resolve names with
/// [`ConjunctiveQuery::var_name`].
pub type Var = usize;

/// One binary atom `relation(vars[0], vars[1])` over a predicate table.
///
/// `vars[0]` is the subject position and `vars[1]` the object position of
/// the underlying triple pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Predicate IRI (the vertically partitioned table name).
    pub relation: String,
    /// Dictionary key of the predicate in the store this query targets.
    pub pred: u32,
    /// Subject and object variables.
    pub vars: [Var; 2],
}

/// Errors raised by [`QueryBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An atom used the same variable in both positions (unsupported).
    RepeatedVarInAtom(String),
    /// The projection references a variable not bound by any atom.
    UnboundProjection(String),
    /// The projection references a selection variable (a constant).
    ProjectedSelection(String),
    /// The query has no atoms.
    Empty,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::RepeatedVarInAtom(r) => {
                write!(f, "atom over '{r}' repeats a variable; self-join positions are unsupported")
            }
            QueryError::UnboundProjection(v) => {
                write!(f, "projected variable '{v}' is not bound by any atom")
            }
            QueryError::ProjectedSelection(v) => {
                write!(f, "projected variable '{v}' carries an equality selection (project constants instead)")
            }
            QueryError::Empty => write!(f, "query has no atoms"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A conjunctive query: a set of binary atoms, per-variable equality
/// selections, and an output projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    var_names: Vec<String>,
    /// `selections[v]`: `None` = no selection; `Some(Some(id))` = equality
    /// with dictionary key `id`; `Some(None)` = equality with a constant
    /// that does not exist in the dictionary (the query result is empty,
    /// but planners still see the selection's shape).
    selections: Vec<Option<Option<u32>>>,
    atoms: Vec<Atom>,
    projection: Vec<Var>,
}

impl ConjunctiveQuery {
    /// Number of variables (including hidden selection variables).
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Name of a variable (hidden selection variables are named `_sN`).
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v]
    }

    /// Resolve a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<Var> {
        self.var_names.iter().position(|n| n == name)
    }

    /// The query atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Output variables in `SELECT` order.
    pub fn projection(&self) -> &[Var] {
        &self.projection
    }

    /// The equality selection on `v`, if any. `Some(None)` means the
    /// selection constant is absent from the dictionary (empty result).
    pub fn selection(&self, v: Var) -> Option<Option<u32>> {
        self.selections[v]
    }

    /// True when `v` carries an equality selection.
    pub fn is_selected(&self, v: Var) -> bool {
        self.selections[v].is_some()
    }

    /// Variables with selections, in variable order.
    pub fn selected_vars(&self) -> Vec<Var> {
        (0..self.num_vars()).filter(|&v| self.is_selected(v)).collect()
    }

    /// True when some selection constant is missing from the dictionary,
    /// which forces an empty result regardless of plan.
    pub fn has_missing_constant(&self) -> bool {
        self.selections.iter().any(|s| matches!(s, Some(None)))
    }

    /// Variables in the order of first appearance across atoms — the
    /// "naive" global attribute order used when the +Attribute
    /// optimization is disabled (Table I ablation).
    pub fn appearance_order(&self) -> Vec<Var> {
        let mut seen = vec![false; self.num_vars()];
        let mut order = Vec::with_capacity(self.num_vars());
        for a in &self.atoms {
            for &v in &a.vars {
                if !seen[v] {
                    seen[v] = true;
                    order.push(v);
                }
            }
        }
        order
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, &v) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.var_names[v])?;
        }
        write!(f, " WHERE ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ⋈ ")?;
            }
            let short = a.relation.rsplit(['/', '#']).next().unwrap_or(&a.relation);
            write!(f, "{short}({}, {})", self.var_names[a.vars[0]], self.var_names[a.vars[1]])?;
        }
        for (v, sel) in self.selections.iter().enumerate() {
            if let Some(c) = sel {
                match c {
                    Some(id) => write!(f, ", {}=#{id}", self.var_names[v])?,
                    None => write!(f, ", {}=<missing>", self.var_names[v])?,
                }
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`ConjunctiveQuery`].
#[derive(Debug, Default)]
pub struct QueryBuilder {
    var_names: Vec<String>,
    by_name: HashMap<String, Var>,
    selections: Vec<Option<Option<u32>>>,
    atoms: Vec<Atom>,
    projection: Vec<Var>,
}

impl QueryBuilder {
    /// A fresh builder.
    pub fn new() -> QueryBuilder {
        QueryBuilder::default()
    }

    /// Intern a named variable (idempotent per name).
    pub fn var(&mut self, name: &str) -> Var {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = self.var_names.len();
        self.var_names.push(name.to_string());
        self.by_name.insert(name.to_string(), v);
        self.selections.push(None);
        v
    }

    /// Create a fresh hidden variable carrying an equality selection.
    /// `constant` is the dictionary key of the selection value, or `None`
    /// when the value is not in the dictionary (forcing an empty result).
    pub fn selection_var(&mut self, constant: Option<u32>) -> Var {
        let v = self.var_names.len();
        self.var_names.push(format!("_s{v}"));
        self.selections.push(Some(constant));
        v
    }

    /// Add an atom `relation(s, o)` where `pred` is the predicate's
    /// dictionary key.
    pub fn atom(&mut self, relation: &str, pred: u32, s: Var, o: Var) -> &mut Self {
        self.atoms.push(Atom { relation: relation.to_string(), pred, vars: [s, o] });
        self
    }

    /// Set the output projection.
    pub fn select(&mut self, vars: Vec<Var>) -> &mut Self {
        self.projection = vars;
        self
    }

    /// Finalize, validating the query.
    pub fn build(&mut self) -> Result<ConjunctiveQuery, QueryError> {
        if self.atoms.is_empty() {
            return Err(QueryError::Empty);
        }
        for a in &self.atoms {
            if a.vars[0] == a.vars[1] {
                return Err(QueryError::RepeatedVarInAtom(a.relation.clone()));
            }
        }
        let mut bound = vec![false; self.var_names.len()];
        for a in &self.atoms {
            for &v in &a.vars {
                bound[v] = true;
            }
        }
        for &v in &self.projection {
            if !bound[v] {
                return Err(QueryError::UnboundProjection(self.var_names[v].clone()));
            }
            if self.selections[v].is_some() {
                return Err(QueryError::ProjectedSelection(self.var_names[v].clone()));
            }
        }
        Ok(ConjunctiveQuery {
            var_names: self.var_names.clone(),
            selections: self.selections.clone(),
            atoms: self.atoms.clone(),
            projection: self.projection.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> ConjunctiveQuery {
        let mut qb = QueryBuilder::new();
        let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
        qb.atom("R", 0, x, y).atom("S", 1, y, z).atom("T", 2, z, x);
        qb.select(vec![x, y, z]).build().unwrap()
    }

    #[test]
    fn builder_interns_vars() {
        let mut qb = QueryBuilder::new();
        assert_eq!(qb.var("x"), qb.var("x"));
        assert_ne!(qb.var("x"), qb.var("y"));
    }

    #[test]
    fn triangle_shape() {
        let q = triangle();
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.atoms().len(), 3);
        assert_eq!(q.projection(), &[0, 1, 2]);
        assert!(q.selected_vars().is_empty());
    }

    #[test]
    fn selection_vars_are_hidden_and_selected() {
        let mut qb = QueryBuilder::new();
        let x = qb.var("x");
        let a = qb.selection_var(Some(42));
        qb.atom("type", 9, x, a).select(vec![x]);
        let q = qb.build().unwrap();
        assert!(q.is_selected(a));
        assert_eq!(q.selection(a), Some(Some(42)));
        assert!(!q.is_selected(x));
        assert_eq!(q.selected_vars(), vec![a]);
        assert!(q.var_name(a).starts_with("_s"));
        assert!(!q.has_missing_constant());
    }

    #[test]
    fn missing_constant_flagged() {
        let mut qb = QueryBuilder::new();
        let x = qb.var("x");
        let a = qb.selection_var(None);
        qb.atom("type", 9, x, a).select(vec![x]);
        let q = qb.build().unwrap();
        assert!(q.has_missing_constant());
    }

    #[test]
    fn appearance_order_follows_atoms() {
        let mut qb = QueryBuilder::new();
        let (z, x, y) = (qb.var("z"), qb.var("x"), qb.var("y"));
        qb.atom("R", 0, x, y).atom("S", 1, y, z);
        let q = qb.select(vec![x]).build().unwrap();
        assert_eq!(q.appearance_order(), vec![x, y, z]);
    }

    #[test]
    fn rejects_empty_query() {
        assert_eq!(QueryBuilder::new().build().unwrap_err(), QueryError::Empty);
    }

    #[test]
    fn rejects_repeated_var_in_atom() {
        let mut qb = QueryBuilder::new();
        let x = qb.var("x");
        qb.atom("loop", 0, x, x);
        assert!(matches!(qb.build().unwrap_err(), QueryError::RepeatedVarInAtom(_)));
    }

    #[test]
    fn rejects_projected_selection() {
        let mut qb = QueryBuilder::new();
        let x = qb.var("x");
        let a = qb.selection_var(Some(1));
        qb.atom("R", 0, x, a).select(vec![a]);
        assert!(matches!(qb.build().unwrap_err(), QueryError::ProjectedSelection(_)));
    }

    #[test]
    fn rejects_unbound_projection() {
        let mut qb = QueryBuilder::new();
        let x = qb.var("x");
        let y = qb.var("y");
        let z = qb.var("dangling");
        qb.atom("R", 0, x, y).select(vec![z]);
        assert!(matches!(qb.build().unwrap_err(), QueryError::UnboundProjection(_)));
    }

    #[test]
    fn display_is_readable() {
        let q = triangle();
        let s = q.to_string();
        assert!(s.contains("SELECT x, y, z"), "{s}");
        assert!(s.contains("R(x, y)"), "{s}");
    }
}
