//! Layout-aware set intersection kernels.
//!
//! Generic-Join (paper Algorithm 1) spends nearly all of its time in
//! multiway set intersections, so each layout pair gets a dedicated kernel:
//!
//! * uint ∩ uint — linear merge, switching to galloping when cardinalities
//!   are skewed;
//! * bitset ∩ bitset — word-wise `AND` over the overlapping extent (the
//!   SIMD-friendly path the paper credits for its cyclic-query edge over
//!   LogicBlox, §IV-B);
//! * uint ∩ bitset — probe the bitset for every array element.
//!
//! Every kernel takes borrowed [`SetRef`] views, so owned [`Set`]s and
//! frozen arena sets intersect through identical code — the `&Set` entry
//! points below are thin `as_ref` wrappers. Multiway (k-way)
//! intersections live in [`crate::multiway`]: this module's
//! `intersect_all*` entry points delegate to the adaptive driver there.

use crate::set::Set;
use crate::uint::{intersect_uint, intersect_uint_count, UintSet};
use crate::view::{intersect_bits, BitsRef, SetRef};

/// Upper bound on the speculative capacity reserved for a pairwise
/// intersection result (values, i.e. 16 KiB). Reserving the full
/// `min(|a|, |b|)` over-allocates wildly for near-disjoint operands —
/// long-lived results (e.g. entries in the serving tier's result cache)
/// would pin that transient high-water mark as RSS.
const RESULT_CAP: usize = 4096;

#[inline]
fn result_vec(smaller_len: usize) -> Vec<u32> {
    Vec::with_capacity(smaller_len.min(RESULT_CAP))
}

/// Release slack before boxing: when the result came out far smaller
/// than reserved (high skew), give the pages back instead of letting
/// `into_boxed_slice` copy out of an oversized block.
#[inline]
fn finish_result(mut out: Vec<u32>) -> UintSet {
    if out.capacity() >= 64 && out.len() * 4 <= out.capacity() {
        out.shrink_to_fit();
    }
    UintSet::from_sorted_vec(out)
}

/// Intersect two set views. The result layout follows the natural layout
/// of the kernel (uint for array-driven kernels, bitset for word-AND) and
/// is *not* re-optimized here; callers that keep results long-term can
/// call [`Set::optimize`].
pub fn intersect_refs(a: SetRef<'_>, b: SetRef<'_>) -> Set {
    #[cfg(test)]
    crate::instrument::note_materialization();
    match (a, b) {
        (SetRef::Uint(x), SetRef::Uint(y)) => {
            let mut out = result_vec(x.len().min(y.len()));
            intersect_uint(x, y, &mut out);
            Set::Uint(finish_result(out))
        }
        (SetRef::Bits(x), SetRef::Bits(y)) => Set::Bits(intersect_bits(x, y)),
        (SetRef::Uint(x), SetRef::Bits(y)) | (SetRef::Bits(y), SetRef::Uint(x)) => {
            Set::Uint(probe_uint_bits(x, y))
        }
    }
}

/// Intersect two owned sets (see [`intersect_refs`]).
pub fn intersect(a: &Set, b: &Set) -> Set {
    intersect_refs(a.as_ref(), b.as_ref())
}

fn probe_uint_bits(u: &[u32], b: BitsRef<'_>) -> UintSet {
    let mut out = result_vec(u.len().min(b.len()));
    for &v in u {
        if b.contains(v) {
            out.push(v);
        }
    }
    finish_result(out)
}

/// Cardinality of `a ∩ b` without materialisation. Used for aggregate
/// (COUNT) queries and for ordering multiway intersections.
pub fn intersect_count_refs(a: SetRef<'_>, b: SetRef<'_>) -> usize {
    match (a, b) {
        // Merge/gallop count without allocating (SIMD merge kernel).
        (SetRef::Uint(xs), SetRef::Uint(ys)) => intersect_uint_count(xs, ys),
        (SetRef::Bits(x), SetRef::Bits(y)) => x.intersect_count(y),
        (SetRef::Uint(x), SetRef::Bits(y)) | (SetRef::Bits(y), SetRef::Uint(x)) => {
            x.iter().filter(|&&v| y.contains(v)).count()
        }
    }
}

/// Cardinality of the intersection of two owned sets.
pub fn intersect_count(a: &Set, b: &Set) -> usize {
    intersect_count_refs(a.as_ref(), b.as_ref())
}

/// True when `a ∩ b` is non-empty, with early exit.
pub fn intersects_refs(a: SetRef<'_>, b: SetRef<'_>) -> bool {
    match (a, b) {
        (SetRef::Uint(xs), SetRef::Uint(ys)) => {
            let (mut i, mut j) = (0usize, 0usize);
            while i < xs.len() && j < ys.len() {
                match xs[i].cmp(&ys[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => return true,
                }
            }
            false
        }
        (SetRef::Bits(x), SetRef::Bits(y)) => x.intersects(y),
        (SetRef::Uint(x), SetRef::Bits(y)) | (SetRef::Bits(y), SetRef::Uint(x)) => {
            x.iter().any(|&v| y.contains(v))
        }
    }
}

/// True when two owned sets intersect.
pub fn intersects(a: &Set, b: &Set) -> bool {
    intersects_refs(a.as_ref(), b.as_ref())
}

/// Multiway intersection over set views, materialised as an owned
/// [`Set`] — a convenience wrapper over the adaptive k-way driver in
/// [`crate::multiway`]. Hot paths should hold an
/// [`IntersectScratch`](crate::IntersectScratch) and call
/// [`intersect_all_into`](crate::intersect_all_into) instead, which
/// performs no allocation in the steady state.
///
/// Returns the full universe-equivalent only when `sets` is empty — callers
/// in Generic-Join always pass at least one set, so we return `None` for an
/// empty input to force the caller to decide.
pub fn intersect_all_refs(sets: &[SetRef<'_>]) -> Option<Set> {
    match sets.len() {
        0 => None,
        1 => Some(sets[0].to_set()),
        _ => {
            let mut scratch = crate::multiway::IntersectScratch::new();
            Some(Set::from_sorted(crate::multiway::intersect_all_into(sets, &mut scratch)))
        }
    }
}

/// Multiway intersection over owned sets (see [`intersect_all_refs`]).
pub fn intersect_all(sets: &[&Set]) -> Option<Set> {
    let refs: Vec<SetRef<'_>> = sets.iter().map(|s| s.as_ref()).collect();
    intersect_all_refs(&refs)
}

/// Cardinality of a multiway intersection over owned sets. Allocation-
/// free beyond the view vector — see
/// [`intersect_count_all_refs`](crate::multiway::intersect_count_all_refs).
pub fn intersect_count_all(sets: &[&Set]) -> usize {
    let refs: Vec<SetRef<'_>> = sets.iter().map(|s| s.as_ref()).collect();
    crate::multiway::intersect_count_all_refs(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Layout;
    use crate::view::{decode_set, encode_sorted_into};

    fn all_layout_pairs(a: &[u32], b: &[u32]) -> Vec<(Set, Set)> {
        let layouts = [Layout::UintArray, Layout::Bitset];
        let mut out = vec![];
        for la in layouts {
            for lb in layouts {
                out.push((Set::from_sorted_with(a, la), Set::from_sorted_with(b, lb)));
            }
        }
        out
    }

    #[test]
    fn intersect_agrees_across_layout_pairs() {
        let a = [1u32, 2, 64, 65, 500];
        let b = [2u32, 65, 400, 500];
        for (x, y) in all_layout_pairs(&a, &b) {
            assert_eq!(
                x.intersect(&y).to_vec(),
                vec![2, 65, 500],
                "{:?} x {:?}",
                x.layout(),
                y.layout()
            );
            assert_eq!(intersect_count(&x, &y), 3);
            assert!(intersects(&x, &y));
        }
    }

    #[test]
    fn frozen_views_intersect_like_owned_sets() {
        // Encode both operands into one arena, decode them as views, and
        // check the view kernels agree with the owned-set kernels — the
        // execution-path equivalence the frozen tries rely on.
        let a = [1u32, 2, 64, 65, 500];
        let b: Vec<u32> = (0..200).step_by(5).collect();
        for la in [Layout::UintArray, Layout::Bitset] {
            for lb in [Layout::UintArray, Layout::Bitset] {
                let mut arena = Vec::new();
                let na = encode_sorted_into(&a, Some(la), &mut arena);
                encode_sorted_into(&b, Some(lb), &mut arena);
                let (ra, consumed) = decode_set(&arena);
                assert_eq!(consumed, na);
                let (rb, _) = decode_set(&arena[na..]);
                let (oa, ob) = (Set::from_sorted_with(&a, la), Set::from_sorted_with(&b, lb));
                assert_eq!(intersect_refs(ra, rb), oa.intersect(&ob), "{la:?} x {lb:?}");
                assert_eq!(intersect_count_refs(ra, rb), oa.intersect_count(&ob));
                assert_eq!(intersects_refs(ra, rb), oa.intersects(&ob));
            }
        }
    }

    #[test]
    fn disjoint_sets() {
        let a = [1u32, 3, 5];
        let b = [2u32, 4, 6];
        for (x, y) in all_layout_pairs(&a, &b) {
            assert!(x.intersect(&y).is_empty());
            assert_eq!(intersect_count(&x, &y), 0);
            assert!(!intersects(&x, &y));
        }
    }

    #[test]
    fn intersect_with_empty() {
        let a = Set::from_sorted(&[1, 2, 3]);
        let e = Set::default();
        assert!(a.intersect(&e).is_empty());
        assert!(e.intersect(&a).is_empty());
        assert!(!intersects(&a, &e));
    }

    #[test]
    fn multiway_fold() {
        let a = Set::from_sorted(&[1, 2, 3, 4, 5]);
        let b = Set::from_sorted(&[2, 3, 4]);
        let c = Set::from_sorted(&[3, 4, 9]);
        let r = intersect_all(&[&a, &b, &c]).unwrap();
        assert_eq!(r.to_vec(), vec![3, 4]);
        assert_eq!(intersect_count_all(&[&a, &b, &c]), 2);
    }

    #[test]
    fn multiway_single_and_empty_input() {
        let a = Set::from_sorted(&[7, 8]);
        assert_eq!(intersect_all(&[&a]).unwrap().to_vec(), vec![7, 8]);
        assert!(intersect_all(&[]).is_none());
        assert_eq!(intersect_count_all(&[]), 0);
        assert_eq!(intersect_count_all(&[&a]), 2);
    }

    #[test]
    fn result_capacity_is_capped_and_shrunk() {
        // Satellite regression: near-disjoint large operands must not pin
        // a min(|a|,|b|)-sized allocation. The initial reservation is
        // capped...
        let cap = result_vec(1_000_000).capacity();
        assert!((RESULT_CAP..1_000_000).contains(&cap), "capacity {cap} not capped");
        assert!(result_vec(10).capacity() >= 10);
        // ...and a highly skewed result releases its slack before boxing.
        let mut big = Vec::with_capacity(100_000);
        big.extend_from_slice(&[1, 2, 3]);
        let shrunk = finish_result(big);
        assert_eq!(shrunk.as_slice(), &[1, 2, 3]);
        // Small results keep their (tiny) buffer untouched.
        let small = finish_result(vec![7, 9]);
        assert_eq!(small.as_slice(), &[7, 9]);
        // End to end: a near-disjoint intersection of big sets stays
        // correct through the capped path.
        let a: Vec<u32> = (0..100_000).map(|x| x * 2).collect();
        let b: Vec<u32> = (0..100_000).map(|x| x * 2 + 1).chain([40_000]).collect();
        let mut b = b;
        b.sort_unstable();
        b.dedup();
        let r = intersect_refs(SetRef::Uint(&a), SetRef::Uint(&b));
        assert_eq!(r.to_vec(), vec![40_000]);
    }

    #[test]
    fn multiway_short_circuits_on_empty() {
        let a = Set::from_sorted(&[1]);
        let b = Set::from_sorted(&[2]);
        let c = Set::from_sorted(&(0..10_000).collect::<Vec<_>>());
        assert!(intersect_all(&[&c, &a, &b]).unwrap().is_empty());
        assert_eq!(intersect_count_all(&[&c, &a, &b]), 0);
    }
}
