//! Layout-aware set intersection kernels.
//!
//! Generic-Join (paper Algorithm 1) spends nearly all of its time in
//! multiway set intersections, so each layout pair gets a dedicated kernel:
//!
//! * uint ∩ uint — linear merge, switching to galloping when cardinalities
//!   are skewed;
//! * bitset ∩ bitset — word-wise `AND` over the overlapping extent (the
//!   SIMD-friendly path the paper credits for its cyclic-query edge over
//!   LogicBlox, §IV-B);
//! * uint ∩ bitset — probe the bitset for every array element.

use crate::bitset::BitSet;
use crate::set::Set;
use crate::uint::{intersect_uint, UintSet};

/// Intersect two sets. The result layout follows the natural layout of the
/// kernel (uint for array-driven kernels, bitset for word-AND) and is *not*
/// re-optimized here; callers that keep results long-term can call
/// [`Set::optimize`].
pub fn intersect(a: &Set, b: &Set) -> Set {
    match (a, b) {
        (Set::Uint(x), Set::Uint(y)) => {
            let mut out = Vec::with_capacity(x.len().min(y.len()));
            intersect_uint(x.as_slice(), y.as_slice(), &mut out);
            Set::Uint(UintSet::from_sorted_vec(out))
        }
        (Set::Bits(x), Set::Bits(y)) => Set::Bits(x.intersect_bitset(y)),
        (Set::Uint(x), Set::Bits(y)) => Set::Uint(probe_uint_bits(x, y)),
        (Set::Bits(x), Set::Uint(y)) => Set::Uint(probe_uint_bits(y, x)),
    }
}

fn probe_uint_bits(u: &UintSet, b: &BitSet) -> UintSet {
    let mut out = Vec::with_capacity(u.len().min(b.len()));
    for v in u.iter() {
        if b.contains(v) {
            out.push(v);
        }
    }
    UintSet::from_sorted_vec(out)
}

/// Cardinality of `a ∩ b` without materialisation. Used for aggregate
/// (COUNT) queries and for ordering multiway intersections.
pub fn intersect_count(a: &Set, b: &Set) -> usize {
    match (a, b) {
        (Set::Uint(x), Set::Uint(y)) => {
            // Count via merge without allocating.
            let (xs, ys) = (x.as_slice(), y.as_slice());
            let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
            while i < xs.len() && j < ys.len() {
                match xs[i].cmp(&ys[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        n += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            n
        }
        (Set::Bits(x), Set::Bits(y)) => x.intersect_bitset_count(y),
        (Set::Uint(x), Set::Bits(y)) | (Set::Bits(y), Set::Uint(x)) => {
            x.iter().filter(|&v| y.contains(v)).count()
        }
    }
}

/// True when `a ∩ b` is non-empty, with early exit.
pub fn intersects(a: &Set, b: &Set) -> bool {
    match (a, b) {
        (Set::Uint(x), Set::Uint(y)) => {
            let (xs, ys) = (x.as_slice(), y.as_slice());
            let (mut i, mut j) = (0usize, 0usize);
            while i < xs.len() && j < ys.len() {
                match xs[i].cmp(&ys[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => return true,
                }
            }
            false
        }
        (Set::Bits(x), Set::Bits(y)) => {
            let lo = x.base_word().max(y.base_word());
            let hi = (x.base_word() + x.words().len()).min(y.base_word() + y.words().len());
            (lo..hi).any(|w| x.words()[w - x.base_word()] & y.words()[w - y.base_word()] != 0)
        }
        (Set::Uint(x), Set::Bits(y)) | (Set::Bits(y), Set::Uint(x)) => {
            x.iter().any(|v| y.contains(v))
        }
    }
}

/// Multiway intersection: folds pairwise, smallest sets first so the
/// running result shrinks as fast as possible.
///
/// Returns the full universe-equivalent only when `sets` is empty — callers
/// in Generic-Join always pass at least one set, so we return `None` for an
/// empty input to force the caller to decide.
pub fn intersect_all(sets: &[&Set]) -> Option<Set> {
    match sets.len() {
        0 => None,
        1 => Some(sets[0].clone()),
        _ => {
            let mut order: Vec<&Set> = sets.to_vec();
            order.sort_by_key(|s| s.len());
            let mut acc = order[0].intersect(order[1]);
            for s in &order[2..] {
                if acc.is_empty() {
                    break;
                }
                acc = acc.intersect(s);
            }
            Some(acc)
        }
    }
}

/// Cardinality of a multiway intersection (materialises all but the final
/// pair, so it is cheap only for small arities — which is what Generic-Join
/// produces).
pub fn intersect_count_all(sets: &[&Set]) -> usize {
    match sets.len() {
        0 => 0,
        1 => sets[0].len(),
        2 => intersect_count(sets[0], sets[1]),
        _ => {
            let mut order: Vec<&Set> = sets.to_vec();
            order.sort_by_key(|s| s.len());
            let mut acc = order[0].intersect(order[1]);
            for s in &order[2..order.len() - 1] {
                if acc.is_empty() {
                    return 0;
                }
                acc = acc.intersect(s);
            }
            intersect_count(&acc, order[order.len() - 1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Layout;

    fn all_layout_pairs(a: &[u32], b: &[u32]) -> Vec<(Set, Set)> {
        let layouts = [Layout::UintArray, Layout::Bitset];
        let mut out = vec![];
        for la in layouts {
            for lb in layouts {
                out.push((Set::from_sorted_with(a, la), Set::from_sorted_with(b, lb)));
            }
        }
        out
    }

    #[test]
    fn intersect_agrees_across_layout_pairs() {
        let a = [1u32, 2, 64, 65, 500];
        let b = [2u32, 65, 400, 500];
        for (x, y) in all_layout_pairs(&a, &b) {
            assert_eq!(
                x.intersect(&y).to_vec(),
                vec![2, 65, 500],
                "{:?} x {:?}",
                x.layout(),
                y.layout()
            );
            assert_eq!(intersect_count(&x, &y), 3);
            assert!(intersects(&x, &y));
        }
    }

    #[test]
    fn disjoint_sets() {
        let a = [1u32, 3, 5];
        let b = [2u32, 4, 6];
        for (x, y) in all_layout_pairs(&a, &b) {
            assert!(x.intersect(&y).is_empty());
            assert_eq!(intersect_count(&x, &y), 0);
            assert!(!intersects(&x, &y));
        }
    }

    #[test]
    fn intersect_with_empty() {
        let a = Set::from_sorted(&[1, 2, 3]);
        let e = Set::default();
        assert!(a.intersect(&e).is_empty());
        assert!(e.intersect(&a).is_empty());
        assert!(!intersects(&a, &e));
    }

    #[test]
    fn multiway_fold() {
        let a = Set::from_sorted(&[1, 2, 3, 4, 5]);
        let b = Set::from_sorted(&[2, 3, 4]);
        let c = Set::from_sorted(&[3, 4, 9]);
        let r = intersect_all(&[&a, &b, &c]).unwrap();
        assert_eq!(r.to_vec(), vec![3, 4]);
        assert_eq!(intersect_count_all(&[&a, &b, &c]), 2);
    }

    #[test]
    fn multiway_single_and_empty_input() {
        let a = Set::from_sorted(&[7, 8]);
        assert_eq!(intersect_all(&[&a]).unwrap().to_vec(), vec![7, 8]);
        assert!(intersect_all(&[]).is_none());
        assert_eq!(intersect_count_all(&[]), 0);
        assert_eq!(intersect_count_all(&[&a]), 2);
    }

    #[test]
    fn multiway_short_circuits_on_empty() {
        let a = Set::from_sorted(&[1]);
        let b = Set::from_sorted(&[2]);
        let c = Set::from_sorted(&(0..10_000).collect::<Vec<_>>());
        assert!(intersect_all(&[&c, &a, &b]).unwrap().is_empty());
        assert_eq!(intersect_count_all(&[&c, &a, &b]), 0);
    }
}
