//! The automatic set-layout optimizer (paper §II-A2).
//!
//! EmptyHeaded "chooses the layout for each set in isolation based on its
//! cardinality and range. The optimizer chooses the bitset layout when more
//! than one out of every 256 values appears in the set. It otherwise
//! defaults to the unsigned integer array layout."

/// Density denominator from the paper (footnote 1: "the size of an AVX
/// register"). A set over range `r` with cardinality `c` becomes a bitset
/// when `c * DENSITY_THRESHOLD >= r`.
pub const DENSITY_THRESHOLD: u64 = 256;

/// The physical layout of a [`crate::Set`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Sorted array of unique 32-bit unsigned integers.
    UintArray,
    /// Word-aligned uncompressed bitset over the value range.
    Bitset,
}

impl std::fmt::Display for Layout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Layout::UintArray => write!(f, "uint"),
            Layout::Bitset => write!(f, "bitset"),
        }
    }
}

/// Pick the layout for a set with `cardinality` elements spanning the
/// inclusive value range `[min, max]`.
///
/// Empty and singleton sets stay as uint arrays (a bitset buys nothing).
///
/// ```
/// use eh_setops::{choose_layout, Layout};
/// // 256 values over a range of 256: maximally dense -> bitset.
/// assert_eq!(choose_layout(256, 0, 255), Layout::Bitset);
/// // 2 values spanning a huge range -> uint array.
/// assert_eq!(choose_layout(2, 0, 1_000_000), Layout::UintArray);
/// ```
pub fn choose_layout(cardinality: usize, min: u32, max: u32) -> Layout {
    if cardinality <= 1 {
        return Layout::UintArray;
    }
    debug_assert!(min <= max);
    let range = u64::from(max - min) + 1;
    if (cardinality as u64).saturating_mul(DENSITY_THRESHOLD) >= range {
        Layout::Bitset
    } else {
        Layout::UintArray
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_are_uint() {
        assert_eq!(choose_layout(0, 0, 0), Layout::UintArray);
        assert_eq!(choose_layout(1, 42, 42), Layout::UintArray);
    }

    #[test]
    fn fully_dense_is_bitset() {
        assert_eq!(choose_layout(100, 0, 99), Layout::Bitset);
    }

    #[test]
    fn threshold_boundary() {
        // Exactly 1 in 256 appears: bitset (the paper says "more than one
        // out of every 256", we take >= as the inclusive boundary).
        assert_eq!(choose_layout(4, 0, 1023), Layout::Bitset);
        // Just below the density cut-off: uint array.
        assert_eq!(choose_layout(4, 0, 1024), Layout::UintArray);
    }

    #[test]
    fn offset_range_counts_from_min() {
        // Dense cluster far from zero must still become a bitset: the
        // range is measured from the set minimum, not from zero.
        assert_eq!(choose_layout(128, 1_000_000, 1_000_127), Layout::Bitset);
    }

    #[test]
    fn huge_range_no_overflow() {
        assert_eq!(choose_layout(usize::MAX, 0, u32::MAX), Layout::Bitset);
    }
}
