//! The automatic set-layout optimizer (paper §II-A2).
//!
//! EmptyHeaded "chooses the layout for each set in isolation based on its
//! cardinality and range. The optimizer chooses the bitset layout when more
//! than one out of every 256 values appears in the set. It otherwise
//! defaults to the unsigned integer array layout."

/// Density denominator from the paper (footnote 1: "the size of an AVX
/// register"). A set over range `r` with cardinality `c` becomes a bitset
/// when `c * DENSITY_THRESHOLD >= r`.
pub const DENSITY_THRESHOLD: u64 = 256;

/// The physical layout of a [`crate::Set`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Sorted array of unique 32-bit unsigned integers.
    UintArray,
    /// Word-aligned uncompressed bitset over the value range.
    Bitset,
}

impl std::fmt::Display for Layout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Layout::UintArray => write!(f, "uint"),
            Layout::Bitset => write!(f, "bitset"),
        }
    }
}

/// Pick the layout for a set with `cardinality` elements spanning the
/// inclusive value range `[min, max]`.
///
/// Empty and singleton sets stay as uint arrays (a bitset buys nothing).
///
/// ```
/// use eh_setops::{choose_layout, Layout};
/// // 256 values over a range of 256: maximally dense -> bitset.
/// assert_eq!(choose_layout(256, 0, 255), Layout::Bitset);
/// // 2 values spanning a huge range -> uint array.
/// assert_eq!(choose_layout(2, 0, 1_000_000), Layout::UintArray);
/// ```
pub fn choose_layout(cardinality: usize, min: u32, max: u32) -> Layout {
    if cardinality <= 1 {
        return Layout::UintArray;
    }
    debug_assert!(min <= max);
    let range = u64::from(max - min) + 1;
    if (cardinality as u64).saturating_mul(DENSITY_THRESHOLD) >= range {
        Layout::Bitset
    } else {
        Layout::UintArray
    }
}

/// Skew ratio (`|large| / |small|`) at which galloping replaces the
/// vectorized merge for a uint ∩ uint pair.
///
/// Measured on the CI-class x86_64 machine with the `setops_kernels`
/// microbench: the SIMD merge processes ~4 elements per compare, so the
/// crossover sits far below the pre-SIMD value of 32 — galloping wins as
/// soon as the smaller side can skip more than a cache line of the larger
/// side per element. 8 is the measured break-even, rounded to a power of
/// two; re-run `cargo run --release -p eh-bench --bin setops_kernels` to
/// re-derive it on new hardware.
pub const GALLOP_SKEW: usize = 8;

/// Pairwise sorted-array intersection strategy (see [`choose_uint_strategy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UintStrategy {
    /// Linear merge (vectorized cyclic-compare kernel where available).
    Merge,
    /// Exponential-search galloping driven by the smaller operand.
    Gallop,
}

/// Pick the kernel for a uint ∩ uint pair from the two cardinalities.
pub fn choose_uint_strategy(a_len: usize, b_len: usize) -> UintStrategy {
    let (small, large) = if a_len <= b_len { (a_len, b_len) } else { (b_len, a_len) };
    if small.saturating_mul(GALLOP_SKEW) < large {
        UintStrategy::Gallop
    } else {
        UintStrategy::Merge
    }
}

/// Skew ratio at which the multiway driver abandons pairwise folding for
/// probing every element of the smallest operand against the rest.
///
/// Folding touches every element of both operands of every pair; probing
/// touches `|smallest| * (k-1)` cursor advances. Measured with the
/// `setops_kernels` microbench the probe pays for its per-element
/// galloping once the largest operand is ~8x the smallest.
pub const MULTIWAY_PROBE_SKEW: usize = 8;

/// Kernel selected by [`choose_multiway`] for a k-way intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiwayKernel {
    /// All operands are bitsets: one-pass k-way word `AND` over the
    /// shared extent (SIMD where available), no intermediates.
    WordAnd,
    /// Iterate the smallest operand, galloping/probing the others with
    /// monotone cursors (leapfrog-style) — for skewed or mixed-layout
    /// inputs.
    ProbeSmallest,
    /// Pairwise vectorized merges, smallest first, ping-ponging between
    /// two scratch buffers — for balanced all-uint inputs.
    FoldMerge,
}

/// Pick the multiway kernel from the operand census: smallest/largest
/// cardinality, how many operands are bitsets, and the arity.
pub fn choose_multiway(
    smallest: usize,
    largest: usize,
    num_bitsets: usize,
    arity: usize,
) -> MultiwayKernel {
    debug_assert!(num_bitsets <= arity && arity >= 2);
    if num_bitsets == arity {
        return MultiwayKernel::WordAnd;
    }
    if num_bitsets > 0 || smallest.saturating_mul(MULTIWAY_PROBE_SKEW) < largest {
        // Mixed layouts always probe: bitset membership is O(1), so the
        // smallest operand's elements are the only work there is.
        return MultiwayKernel::ProbeSmallest;
    }
    MultiwayKernel::FoldMerge
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_are_uint() {
        assert_eq!(choose_layout(0, 0, 0), Layout::UintArray);
        assert_eq!(choose_layout(1, 42, 42), Layout::UintArray);
    }

    #[test]
    fn fully_dense_is_bitset() {
        assert_eq!(choose_layout(100, 0, 99), Layout::Bitset);
    }

    #[test]
    fn threshold_boundary() {
        // Exactly 1 in 256 appears: bitset (the paper says "more than one
        // out of every 256", we take >= as the inclusive boundary).
        assert_eq!(choose_layout(4, 0, 1023), Layout::Bitset);
        // Just below the density cut-off: uint array.
        assert_eq!(choose_layout(4, 0, 1024), Layout::UintArray);
    }

    #[test]
    fn offset_range_counts_from_min() {
        // Dense cluster far from zero must still become a bitset: the
        // range is measured from the set minimum, not from zero.
        assert_eq!(choose_layout(128, 1_000_000, 1_000_127), Layout::Bitset);
    }

    #[test]
    fn huge_range_no_overflow() {
        assert_eq!(choose_layout(usize::MAX, 0, u32::MAX), Layout::Bitset);
    }

    #[test]
    fn uint_strategy_threshold() {
        assert_eq!(choose_uint_strategy(100, 100), UintStrategy::Merge);
        // Exactly at the ratio: merge (strict inequality switches).
        assert_eq!(choose_uint_strategy(100, 100 * GALLOP_SKEW), UintStrategy::Merge);
        assert_eq!(choose_uint_strategy(100, 100 * GALLOP_SKEW + 1), UintStrategy::Gallop);
        // Order-insensitive.
        assert_eq!(choose_uint_strategy(100 * GALLOP_SKEW + 1, 100), UintStrategy::Gallop);
        assert_eq!(choose_uint_strategy(0, usize::MAX), UintStrategy::Gallop);
    }

    #[test]
    fn multiway_kernel_selection() {
        // All bitsets: word AND regardless of skew.
        assert_eq!(choose_multiway(10, 1_000_000, 3, 3), MultiwayKernel::WordAnd);
        // Any bitset in the mix: probe.
        assert_eq!(choose_multiway(100, 100, 1, 3), MultiwayKernel::ProbeSmallest);
        // All-uint skewed: probe.
        assert_eq!(
            choose_multiway(100, 100 * MULTIWAY_PROBE_SKEW + 1, 0, 3),
            MultiwayKernel::ProbeSmallest
        );
        // All-uint balanced: fold.
        assert_eq!(choose_multiway(100, 120, 0, 4), MultiwayKernel::FoldMerge);
    }
}
