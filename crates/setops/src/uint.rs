//! Sorted unsigned-integer-array set layout (paper §II-A2).

use crate::optimizer::{choose_uint_strategy, UintStrategy};
use crate::simd::{intersect_merge_count_v, intersect_merge_v};

/// A set of `u32` values stored as a sorted array of unique elements.
///
/// This is EmptyHeaded's default layout: compact for sparse sets, with
/// `O(log n)` membership via binary search and merge/galloping
/// intersection.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UintSet {
    values: Box<[u32]>,
}

impl UintSet {
    /// Build from a slice that is already sorted and duplicate-free.
    ///
    /// # Panics
    /// Panics in debug builds if the input is not strictly increasing.
    pub fn from_sorted(values: &[u32]) -> Self {
        debug_assert!(values.windows(2).all(|w| w[0] < w[1]), "input must be strictly increasing");
        UintSet { values: values.into() }
    }

    /// Build from an arbitrary slice: sorts and deduplicates.
    pub fn from_unsorted(values: &[u32]) -> Self {
        let mut v = values.to_vec();
        v.sort_unstable();
        v.dedup();
        UintSet { values: v.into_boxed_slice() }
    }

    /// Take ownership of a vector known to be sorted and unique.
    pub fn from_sorted_vec(values: Vec<u32>) -> Self {
        debug_assert!(values.windows(2).all(|w| w[0] < w[1]), "input must be strictly increasing");
        UintSet { values: values.into_boxed_slice() }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Membership test by binary search: `O(log n)`. This is the cost the
    /// paper contrasts with the bitset's `O(1)` probe in §III-A.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        self.values.binary_search(&v).is_ok()
    }

    /// Rank of `v` in the set (its index), if present.
    #[inline]
    pub fn rank(&self, v: u32) -> Option<usize> {
        self.values.binary_search(&v).ok()
    }

    /// Smallest element.
    #[inline]
    pub fn min(&self) -> Option<u32> {
        self.values.first().copied()
    }

    /// Largest element.
    #[inline]
    pub fn max(&self) -> Option<u32> {
        self.values.last().copied()
    }

    /// The sorted elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.values
    }

    /// Iterate elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.values.iter().copied()
    }

    /// Memory footprint of the payload in bytes (used by layout ablations).
    pub fn bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<u32>()
    }
}

/// Merge-based intersection of two sorted slices, appending to `out` —
/// the scalar reference the vectorized kernels are checked against.
#[cfg(test)]
pub(crate) fn intersect_merge(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        match x.cmp(&y) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(x);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Galloping seek: the first index `>= lo` in the sorted slice `list`
/// whose value is `>= v`. Exponential probe from `lo`, then a binary
/// search over the final window — `O(log d)` in the distance `d`
/// advanced, so a monotone sequence of seeks (the multiway probe
/// driver's cursors) stays linear overall. (A block-linear pre-phase was
/// measured against this on the `setops_kernels` workloads and lost;
/// the pure exponential probe is also the shape the fold baseline uses.)
pub(crate) fn gallop_seek(list: &[u32], lo: usize, v: u32) -> usize {
    // Find a window [prev, hi) with list[prev - 1] < v and
    // (hi == len or list[hi] >= v).
    let mut step = 1usize;
    let mut prev = lo;
    let mut probe = lo;
    while probe < list.len() && list[probe] < v {
        prev = probe + 1;
        probe += step;
        step <<= 1;
    }
    let hi = probe.min(list.len());
    // First index in [prev, hi) not below v; list[hi] >= v when in
    // range, so this is the global partition point for v.
    prev + list[prev..hi].partition_point(|&x| x < v)
}

/// Galloping (exponential-search) intersection for skewed cardinalities:
/// for each element of the smaller slice, gallop through the larger one.
/// `O(|small| * log |large|)` — asymptotically better than merging when
/// `|small| << |large|`.
pub(crate) fn intersect_gallop(small: &[u32], large: &[u32], out: &mut Vec<u32>) {
    let mut lo = 0usize;
    for &v in small {
        if lo >= large.len() {
            break;
        }
        let idx = gallop_seek(large, lo, v);
        if idx < large.len() && large[idx] == v {
            out.push(v);
            lo = idx + 1;
        } else {
            lo = idx;
        }
    }
}

/// Counting variant of [`intersect_gallop`] — no output buffer.
pub(crate) fn intersect_gallop_count(small: &[u32], large: &[u32]) -> usize {
    let mut lo = 0usize;
    let mut n = 0usize;
    for &v in small {
        if lo >= large.len() {
            break;
        }
        let idx = gallop_seek(large, lo, v);
        if idx < large.len() && large[idx] == v {
            n += 1;
            lo = idx + 1;
        } else {
            lo = idx;
        }
    }
    n
}

/// Layout-internal intersection of two sorted slices with automatic
/// merge/gallop strategy selection ([`choose_uint_strategy`], using the
/// measured [`crate::optimizer::GALLOP_SKEW`] threshold). The merge arm
/// is the runtime-dispatched SIMD kernel.
pub(crate) fn intersect_uint(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    match choose_uint_strategy(small.len(), large.len()) {
        UintStrategy::Gallop => intersect_gallop(small, large, out),
        UintStrategy::Merge => intersect_merge_v(a, b, out),
    }
}

/// Cardinality of a uint ∩ uint pair, allocation-free, with the same
/// merge/gallop strategy selection as [`intersect_uint`].
pub(crate) fn intersect_uint_count(a: &[u32], b: &[u32]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    match choose_uint_strategy(small.len(), large.len()) {
        UintStrategy::Gallop => intersect_gallop_count(small, large),
        UintStrategy::Merge => intersect_merge_count_v(a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_unsorted_dedups() {
        let s = UintSet::from_unsorted(&[5, 1, 5, 3, 1]);
        assert_eq!(s.as_slice(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_and_rank() {
        let s = UintSet::from_sorted(&[2, 4, 8]);
        assert!(s.contains(4));
        assert!(!s.contains(5));
        assert_eq!(s.rank(8), Some(2));
        assert_eq!(s.rank(3), None);
    }

    #[test]
    fn min_max_empty() {
        let e = UintSet::default();
        assert!(e.is_empty());
        assert_eq!(e.min(), None);
        assert_eq!(e.max(), None);
        let s = UintSet::from_sorted(&[7, 9]);
        assert_eq!((s.min(), s.max()), (Some(7), Some(9)));
    }

    #[test]
    fn merge_intersection_basic() {
        let mut out = vec![];
        intersect_merge(&[1, 2, 3, 7], &[2, 3, 4, 7, 9], &mut out);
        assert_eq!(out, vec![2, 3, 7]);
    }

    #[test]
    fn gallop_matches_merge() {
        let small: Vec<u32> = vec![10, 500, 900, 901, 100_000];
        let large: Vec<u32> = (0..1000).map(|x| x * 3).collect();
        let (mut a, mut b) = (vec![], vec![]);
        intersect_merge(&small, &large, &mut a);
        intersect_gallop(&small, &large, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn gallop_match_at_probe_boundary() {
        // Regression: the exponential probe stops at the first index with
        // large[hi] >= v; when large[hi] == v the match must still be
        // found (a previous version excluded index hi from the search
        // window and silently dropped such matches).
        let mut out = vec![];
        intersect_gallop(&[0], &[0, 1, 2], &mut out);
        assert_eq!(out, vec![0]);
        out.clear();
        // v lands exactly on the probe positions 1, 3, 7, ...
        let large: Vec<u32> = (0..100).collect();
        intersect_gallop(&[1, 3, 7, 15, 31, 63], &large, &mut out);
        assert_eq!(out, vec![1, 3, 7, 15, 31, 63]);
        out.clear();
        // Dense equal slices through the gallop path directly.
        intersect_gallop(&large, &large, &mut out);
        assert_eq!(out, large);
    }

    #[test]
    fn gallop_handles_leading_and_trailing_misses() {
        let mut out = vec![];
        intersect_gallop(&[0, 99], &[1, 2, 3], &mut out);
        assert!(out.is_empty());
        out.clear();
        intersect_gallop(&[3], &[1, 2, 3], &mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn intersect_uint_dispatches_both_paths() {
        // Skewed: takes the gallop path.
        let small = vec![4, 64, 640];
        let large: Vec<u32> = (0..10_000).collect();
        let mut out = vec![];
        intersect_uint(&small, &large, &mut out);
        assert_eq!(out, vec![4, 64, 640]);
        // Balanced: merge path.
        let mut out2 = vec![];
        intersect_uint(&[1, 2, 3], &[2, 3, 4], &mut out2);
        assert_eq!(out2, vec![2, 3]);
    }

    #[test]
    fn count_agrees_with_materialising_path() {
        let small = vec![4u32, 64, 641, 9_000];
        let large: Vec<u32> = (0..10_000).collect();
        let balanced: Vec<u32> = (0..10_000).map(|x| x * 2).collect();
        for (a, b) in [(&small, &large), (&large, &balanced), (&small, &small)] {
            let mut out = vec![];
            intersect_uint(a, b, &mut out);
            assert_eq!(intersect_uint_count(a, b), out.len());
            assert_eq!(intersect_uint_count(b, a), out.len());
        }
    }

    #[test]
    fn gallop_seek_partition_points() {
        let list: Vec<u32> = (0..100).map(|x| x * 3).collect();
        assert_eq!(gallop_seek(&list, 0, 0), 0);
        assert_eq!(gallop_seek(&list, 0, 1), 1);
        assert_eq!(gallop_seek(&list, 0, 297), 99);
        assert_eq!(gallop_seek(&list, 0, 298), 100);
        // Seeks from an advanced cursor never look backwards.
        assert_eq!(gallop_seek(&list, 50, 3), 50);
    }
}
