//! Word-aligned bitset layout (paper §II-A2).

/// A set of `u32` values stored as an uncompressed bitset.
///
/// The bitset covers the word-aligned range `[64*base_word, 64*(base_word +
/// words.len()))`; values below or above that range are simply absent. This
/// offset representation keeps dense clusters far from zero compact, which
/// matters for dictionary-encoded RDF data where each predicate's ids are
/// clustered.
///
/// Membership is `O(1)` — the constant-time equality-selection probe the
/// paper's +Layout optimization relies on (§III-A).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    base_word: usize,
    words: Box<[u64]>,
    /// Rank directory: `ranks[i]` = number of set bits in `words[..i]`.
    /// Makes [`BitSet::rank`] O(1) — tries call rank per descend, so a
    /// scan here would make trie iteration quadratic.
    ranks: Box<[u32]>,
    len: usize,
}

impl BitSet {
    /// Build from a sorted, duplicate-free slice.
    pub fn from_sorted(values: &[u32]) -> Self {
        debug_assert!(values.windows(2).all(|w| w[0] < w[1]), "input must be strictly increasing");
        if values.is_empty() {
            return BitSet::default();
        }
        let base_word = (values[0] / 64) as usize;
        let last_word = (values[values.len() - 1] / 64) as usize;
        let mut words = vec![0u64; last_word - base_word + 1];
        for &v in values {
            let w = (v / 64) as usize - base_word;
            words[w] |= 1u64 << (v % 64);
        }
        Self::from_words(base_word, words, values.len())
    }

    fn from_words(base_word: usize, words: Vec<u64>, len: usize) -> Self {
        let mut ranks = Vec::with_capacity(words.len());
        let mut acc = 0u32;
        for w in &words {
            ranks.push(acc);
            acc += w.count_ones();
        }
        debug_assert_eq!(acc as usize, len);
        BitSet { base_word, words: words.into_boxed_slice(), ranks: ranks.into_boxed_slice(), len }
    }

    /// Rank of `v`: its index in sorted order, if present. O(1) via the
    /// rank directory.
    pub fn rank(&self, v: u32) -> Option<usize> {
        let w = (v / 64) as usize;
        if w < self.base_word || w - self.base_word >= self.words.len() {
            return None;
        }
        let word = w - self.base_word;
        let bit = 1u64 << (v % 64);
        if self.words[word] & bit == 0 {
            return None;
        }
        let below = (self.words[word] & (bit - 1)).count_ones();
        Some(self.ranks[word] as usize + below as usize)
    }

    /// Number of elements (cached popcount).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Constant-time membership probe.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        let w = (v / 64) as usize;
        if w < self.base_word || w - self.base_word >= self.words.len() {
            return false;
        }
        self.words[w - self.base_word] & (1u64 << (v % 64)) != 0
    }

    /// First word index covered by this bitset.
    #[inline]
    pub(crate) fn base_word(&self) -> usize {
        self.base_word
    }

    /// Backing words.
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Smallest element.
    pub fn min(&self) -> Option<u32> {
        self.words
            .iter()
            .enumerate()
            .find(|(_, w)| **w != 0)
            .map(|(i, w)| ((self.base_word + i) as u32) * 64 + w.trailing_zeros())
    }

    /// Largest element.
    pub fn max(&self) -> Option<u32> {
        self.words
            .iter()
            .enumerate()
            .rev()
            .find(|(_, w)| **w != 0)
            .map(|(i, w)| ((self.base_word + i) as u32) * 64 + 63 - w.leading_zeros())
    }

    /// Iterate elements in increasing order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            base_word: self.base_word,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
            remaining: self.len,
        }
    }

    /// Memory footprint of the payload in bytes.
    pub fn bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Word-wise AND intersection with another bitset, producing a new
    /// bitset over the overlapping word range.
    pub fn intersect_bitset(&self, other: &BitSet) -> BitSet {
        let lo = self.base_word.max(other.base_word);
        let hi = (self.base_word + self.words.len()).min(other.base_word + other.words.len());
        if lo >= hi {
            return BitSet::default();
        }
        let mut words = vec![0u64; hi - lo];
        let mut len = 0usize;
        for (i, w) in words.iter_mut().enumerate() {
            let a = self.words[lo + i - self.base_word];
            let b = other.words[lo + i - other.base_word];
            *w = a & b;
            len += w.count_ones() as usize;
        }
        // Trim zero words at both ends so `base_word`/extent stay tight.
        let first = words.iter().position(|w| *w != 0);
        match first {
            None => BitSet::default(),
            Some(f) => {
                let l = words.iter().rposition(|w| *w != 0).unwrap();
                Self::from_words(lo + f, words[f..=l].to_vec(), len)
            }
        }
    }

    /// Count of the word-wise AND without materialising the result.
    pub fn intersect_bitset_count(&self, other: &BitSet) -> usize {
        let lo = self.base_word.max(other.base_word);
        let hi = (self.base_word + self.words.len()).min(other.base_word + other.words.len());
        if lo >= hi {
            return 0;
        }
        (lo..hi)
            .map(|w| {
                (self.words[w - self.base_word] & other.words[w - other.base_word]).count_ones()
                    as usize
            })
            .sum()
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
pub struct BitIter<'a> {
    words: &'a [u64],
    base_word: usize,
    word_idx: usize,
    current: u64,
    remaining: usize,
}

impl Iterator for BitIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1; // clear lowest set bit
        self.remaining -= 1;
        Some(((self.base_word + self.word_idx) as u32) * 64 + bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for BitIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let vals = [0u32, 1, 63, 64, 65, 1000];
        let b = BitSet::from_sorted(&vals);
        assert_eq!(b.len(), vals.len());
        assert_eq!(b.iter().collect::<Vec<_>>(), vals);
    }

    #[test]
    fn contains_in_and_out_of_range() {
        let b = BitSet::from_sorted(&[128, 130, 200]);
        assert!(b.contains(130));
        assert!(!b.contains(129));
        assert!(!b.contains(0)); // below base word
        assert!(!b.contains(100_000)); // above extent
    }

    #[test]
    fn offset_base_is_compact() {
        let b = BitSet::from_sorted(&[6400, 6401]);
        assert_eq!(b.base_word(), 100);
        assert_eq!(b.words().len(), 1);
    }

    #[test]
    fn min_max() {
        let b = BitSet::from_sorted(&[65, 128, 129, 513]);
        assert_eq!(b.min(), Some(65));
        assert_eq!(b.max(), Some(513));
        assert_eq!(BitSet::default().min(), None);
    }

    #[test]
    fn intersect_overlapping() {
        let a = BitSet::from_sorted(&[1, 2, 3, 64, 65]);
        let b = BitSet::from_sorted(&[2, 64, 66, 700]);
        let c = a.intersect_bitset(&b);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![2, 64]);
        assert_eq!(c.len(), 2);
        assert_eq!(a.intersect_bitset_count(&b), 2);
    }

    #[test]
    fn intersect_disjoint_ranges() {
        let a = BitSet::from_sorted(&[1, 2]);
        let b = BitSet::from_sorted(&[1000, 2000]);
        assert!(a.intersect_bitset(&b).is_empty());
        assert_eq!(a.intersect_bitset_count(&b), 0);
    }

    #[test]
    fn intersect_trims_result_extent() {
        let a = BitSet::from_sorted(&[0, 640]);
        let b = BitSet::from_sorted(&[640, 1000]);
        let c = a.intersect_bitset(&b);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![640]);
        assert_eq!(c.base_word(), 10);
        assert_eq!(c.words().len(), 1);
    }

    #[test]
    fn empty_bitset() {
        let b = BitSet::from_sorted(&[]);
        assert!(b.is_empty());
        assert_eq!(b.iter().count(), 0);
        assert!(!b.contains(0));
    }

    #[test]
    fn iter_size_hint_is_exact() {
        let b = BitSet::from_sorted(&[3, 9, 300]);
        let it = b.iter();
        assert_eq!(it.size_hint(), (3, Some(3)));
        assert_eq!(it.len(), 3);
    }
}
