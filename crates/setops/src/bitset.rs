//! Word-aligned bitset layout (paper §II-A2).

use crate::view::BitsRef;

/// A set of `u32` values stored as an uncompressed bitset over **32-bit
/// words**, so the payload is representable inside the `u32`-aligned
/// frozen arenas ([`SetRef`](crate::SetRef) borrows the words directly).
///
/// The bitset covers the word-aligned range `[32*base_word, 32*(base_word +
/// words.len()))`; values below or above that range are simply absent. This
/// offset representation keeps dense clusters far from zero compact, which
/// matters for dictionary-encoded RDF data where each predicate's ids are
/// clustered.
///
/// Membership is `O(1)` — the constant-time equality-selection probe the
/// paper's +Layout optimization relies on (§III-A).
///
/// Every read operation (membership, rank, iteration, intersection)
/// delegates to the borrowed [`BitsRef`] view, so owned and frozen bitsets
/// execute through one code path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    base_word: u32,
    words: Box<[u32]>,
    /// Rank directory: `ranks[i]` = number of set bits in `words[..i]`.
    /// Makes [`BitSet::rank`] O(1) — tries call rank per descend, so a
    /// scan here would make trie iteration quadratic.
    ranks: Box<[u32]>,
    len: usize,
}

/// Bits per payload word.
pub(crate) const WORD_BITS: u32 = 32;

impl BitSet {
    /// Build from a sorted, duplicate-free slice.
    pub fn from_sorted(values: &[u32]) -> Self {
        debug_assert!(values.windows(2).all(|w| w[0] < w[1]), "input must be strictly increasing");
        if values.is_empty() {
            return BitSet::default();
        }
        let base_word = values[0] / WORD_BITS;
        let last_word = values[values.len() - 1] / WORD_BITS;
        let mut words = vec![0u32; (last_word - base_word + 1) as usize];
        for &v in values {
            let w = (v / WORD_BITS - base_word) as usize;
            words[w] |= 1u32 << (v % WORD_BITS);
        }
        Self::from_words(base_word, words, values.len())
    }

    /// Adopt pre-computed parts (payload copy, no rank recomputation) —
    /// the materialisation path of [`SetRef::to_set`](crate::SetRef).
    pub(crate) fn from_raw(base_word: u32, words: Vec<u32>, ranks: Vec<u32>, len: usize) -> Self {
        debug_assert_eq!(ranks, rank_directory(&words));
        BitSet { base_word, words: words.into_boxed_slice(), ranks: ranks.into_boxed_slice(), len }
    }

    pub(crate) fn from_words(base_word: u32, words: Vec<u32>, len: usize) -> Self {
        let ranks = rank_directory(&words);
        debug_assert_eq!(
            ranks.last().map_or(0, |&r| r as usize)
                + words.last().map_or(0, |w| w.count_ones() as usize),
            len
        );
        BitSet { base_word, words: words.into_boxed_slice(), ranks: ranks.into_boxed_slice(), len }
    }

    /// Borrow this bitset as the layout-shared view all kernels run on.
    #[inline]
    pub fn as_bits_ref(&self) -> BitsRef<'_> {
        BitsRef::new(self.base_word, &self.words, &self.ranks, self.len as u32)
    }

    /// Rank of `v`: its index in sorted order, if present. O(1) via the
    /// rank directory.
    pub fn rank(&self, v: u32) -> Option<usize> {
        self.as_bits_ref().rank(v)
    }

    /// Number of elements (cached popcount).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Constant-time membership probe.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        self.as_bits_ref().contains(v)
    }

    /// First word index covered by this bitset.
    #[cfg(test)]
    pub(crate) fn base_word(&self) -> u32 {
        self.base_word
    }

    /// Backing words.
    #[cfg(test)]
    pub(crate) fn words(&self) -> &[u32] {
        &self.words
    }

    /// Smallest element.
    pub fn min(&self) -> Option<u32> {
        self.as_bits_ref().min()
    }

    /// Largest element.
    pub fn max(&self) -> Option<u32> {
        self.as_bits_ref().max()
    }

    /// Iterate elements in increasing order.
    pub fn iter(&self) -> BitIter<'_> {
        self.as_bits_ref().iter()
    }

    /// Memory footprint of the payload in bytes.
    pub fn bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u32>()
    }

    /// Word-wise AND intersection with another bitset, producing a new
    /// bitset over the overlapping word range.
    pub fn intersect_bitset(&self, other: &BitSet) -> BitSet {
        crate::view::intersect_bits(self.as_bits_ref(), other.as_bits_ref())
    }

    /// Count of the word-wise AND without materialising the result.
    pub fn intersect_bitset_count(&self, other: &BitSet) -> usize {
        self.as_bits_ref().intersect_count(other.as_bits_ref())
    }
}

/// The rank directory for a word slice: prefix popcounts.
pub(crate) fn rank_directory(words: &[u32]) -> Vec<u32> {
    let mut ranks = Vec::with_capacity(words.len());
    let mut acc = 0u32;
    for w in words {
        ranks.push(acc);
        acc += w.count_ones();
    }
    ranks
}

/// Iterator over the elements of a bitset in increasing order, shared by
/// the owned [`BitSet`] and borrowed [`BitsRef`] representations.
pub struct BitIter<'a> {
    pub(crate) words: &'a [u32],
    pub(crate) base_word: u32,
    pub(crate) word_idx: usize,
    pub(crate) current: u32,
    pub(crate) remaining: usize,
}

impl Iterator for BitIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1; // clear lowest set bit
        self.remaining -= 1;
        Some((self.base_word + self.word_idx as u32) * WORD_BITS + bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for BitIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let vals = [0u32, 1, 31, 32, 65, 1000];
        let b = BitSet::from_sorted(&vals);
        assert_eq!(b.len(), vals.len());
        assert_eq!(b.iter().collect::<Vec<_>>(), vals);
    }

    #[test]
    fn contains_in_and_out_of_range() {
        let b = BitSet::from_sorted(&[128, 130, 200]);
        assert!(b.contains(130));
        assert!(!b.contains(129));
        assert!(!b.contains(0)); // below base word
        assert!(!b.contains(100_000)); // above extent
    }

    #[test]
    fn offset_base_is_compact() {
        let b = BitSet::from_sorted(&[6400, 6401]);
        assert_eq!(b.base_word(), 200);
        assert_eq!(b.words().len(), 1);
    }

    #[test]
    fn min_max() {
        let b = BitSet::from_sorted(&[65, 128, 129, 513]);
        assert_eq!(b.min(), Some(65));
        assert_eq!(b.max(), Some(513));
        assert_eq!(BitSet::default().min(), None);
    }

    #[test]
    fn rank_agrees_with_iteration_order() {
        let vals = [3u32, 31, 32, 33, 95, 96, 300];
        let b = BitSet::from_sorted(&vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(b.rank(v), Some(i), "rank of {v}");
        }
        assert_eq!(b.rank(4), None);
        assert_eq!(b.rank(0), None);
    }

    #[test]
    fn intersect_overlapping() {
        let a = BitSet::from_sorted(&[1, 2, 3, 64, 65]);
        let b = BitSet::from_sorted(&[2, 64, 66, 700]);
        let c = a.intersect_bitset(&b);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![2, 64]);
        assert_eq!(c.len(), 2);
        assert_eq!(a.intersect_bitset_count(&b), 2);
    }

    #[test]
    fn intersect_disjoint_ranges() {
        let a = BitSet::from_sorted(&[1, 2]);
        let b = BitSet::from_sorted(&[1000, 2000]);
        assert!(a.intersect_bitset(&b).is_empty());
        assert_eq!(a.intersect_bitset_count(&b), 0);
    }

    #[test]
    fn intersect_trims_result_extent() {
        let a = BitSet::from_sorted(&[0, 640]);
        let b = BitSet::from_sorted(&[640, 1000]);
        let c = a.intersect_bitset(&b);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![640]);
        assert_eq!(c.base_word(), 20);
        assert_eq!(c.words().len(), 1);
    }

    #[test]
    fn empty_bitset() {
        let b = BitSet::from_sorted(&[]);
        assert!(b.is_empty());
        assert_eq!(b.iter().count(), 0);
        assert!(!b.contains(0));
    }

    #[test]
    fn iter_size_hint_is_exact() {
        let b = BitSet::from_sorted(&[3, 9, 300]);
        let it = b.iter();
        assert_eq!(it.size_hint(), (3, Some(3)));
        assert_eq!(it.len(), 3);
    }
}
