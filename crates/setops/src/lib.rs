//! # eh-setops
//!
//! Set layouts and layout-aware set operations for the worst-case optimal
//! join engine, reproducing §II-A2 and §III-A of Aberger et al. (ICDE 2016).
//!
//! EmptyHeaded stores every trie level as a set of 32-bit dictionary-encoded
//! values in one of two layouts:
//!
//! * [`UintSet`] — a sorted array of unique `u32` values. Membership is
//!   `O(log n)` binary search; intersection is merge- or galloping-based.
//! * [`BitSet`] — an uncompressed bitset over 64-bit words, offset by the
//!   word index of the minimum element. Membership is `O(1)`; intersection
//!   is word-wise `AND`.
//!
//! The [`choose_layout`] optimizer picks the bitset "when more than one out
//! of every 256 values appears in the set" (paper footnote 1: 256 is the
//! bit-width of an AVX register), else the uint array. The paper reports
//! that mixing layouts yields up to an 8.22× speedup on selective queries
//! (Table I, +Layout) — `crates/bench` reproduces that ablation.
//!
//! ```
//! use eh_setops::{Set, Layout};
//!
//! let dense = Set::from_sorted(&(0..512).collect::<Vec<u32>>());
//! let sparse = Set::from_sorted(&[3, 300, 100_000]);
//! assert_eq!(dense.layout(), Layout::Bitset);
//! assert_eq!(sparse.layout(), Layout::UintArray);
//! let both = dense.intersect(&sparse);
//! assert_eq!(both.iter().collect::<Vec<_>>(), vec![3, 300]);
//! ```

mod bitset;
mod intersect;
mod optimizer;
mod set;
mod uint;
mod union;
mod view;

pub use bitset::BitSet;
pub use intersect::{
    intersect, intersect_all, intersect_all_refs, intersect_count, intersect_count_all,
    intersect_count_all_refs, intersect_count_refs, intersect_refs, intersects, intersects_refs,
};
pub use optimizer::{choose_layout, Layout, DENSITY_THRESHOLD};
pub use set::{Set, SetIter};
pub use uint::UintSet;
pub use union::{difference, union};
pub use view::{
    decode_set, encode_set_into, encode_sorted_into, validate_encoded_set, BitsRef, SetRef,
    SetRefIter, TAG_BITSET, TAG_UINT,
};

#[cfg(test)]
mod proptests;
