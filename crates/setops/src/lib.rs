//! # eh-setops
//!
//! Set layouts and layout-aware set operations for the worst-case optimal
//! join engine, reproducing §II-A2 and §III-A of Aberger et al. (ICDE 2016).
//!
//! EmptyHeaded stores every trie level as a set of 32-bit dictionary-encoded
//! values in one of two layouts:
//!
//! * [`UintSet`] — a sorted array of unique `u32` values. Membership is
//!   `O(log n)` binary search; intersection is merge- or galloping-based.
//! * [`BitSet`] — an uncompressed bitset over 32-bit words, offset by the
//!   word index of the minimum element. Membership is `O(1)`; intersection
//!   is word-wise `AND`.
//!
//! The [`choose_layout`] optimizer picks the bitset "when more than one out
//! of every 256 values appears in the set" (paper footnote 1: 256 is the
//! bit-width of an AVX register), else the uint array. The paper reports
//! that mixing layouts yields up to an 8.22× speedup on selective queries
//! (Table I, +Layout) — `crates/bench` reproduces that ablation.
//!
//! Intersections dispatch along two axes (the "old techniques" of §IV):
//!
//! * **instruction set** — runtime-detected SSE/AVX2 kernels with a
//!   proptest-pinned byte-identical portable fallback (`simd` module,
//!   `EH_SIMD` override);
//! * **operand shape** — the multiway driver picks word-`AND` /
//!   probe-smallest / vectorized-fold per the [`choose_multiway`] cost
//!   model, writes into caller-provided [`IntersectScratch`] buffers
//!   (zero allocation in Generic-Join's inner loop), and serves COUNT /
//!   EXISTS shapes without materialising anything
//!   ([`intersect_count_all_refs`], [`intersects_all_refs`]).
//!
//! ```
//! use eh_setops::{Set, Layout};
//!
//! let dense = Set::from_sorted(&(0..512).collect::<Vec<u32>>());
//! let sparse = Set::from_sorted(&[3, 300, 100_000]);
//! assert_eq!(dense.layout(), Layout::Bitset);
//! assert_eq!(sparse.layout(), Layout::UintArray);
//! let both = dense.intersect(&sparse);
//! assert_eq!(both.iter().collect::<Vec<_>>(), vec![3, 300]);
//! ```

mod bitset;
mod intersect;
mod multiway;
mod optimizer;
mod set;
mod simd;
mod uint;
mod union;
mod view;

pub use bitset::BitSet;
pub use intersect::{
    intersect, intersect_all, intersect_all_refs, intersect_count, intersect_count_all,
    intersect_count_refs, intersect_refs, intersects, intersects_refs,
};
pub use multiway::{
    choose_for, intersect_all_into, intersect_all_refs_fold, intersect_count_all_refs,
    intersects_all_refs, IntersectScratch,
};
pub use optimizer::{
    choose_layout, choose_multiway, choose_uint_strategy, Layout, MultiwayKernel, UintStrategy,
    DENSITY_THRESHOLD, GALLOP_SKEW, MULTIWAY_PROBE_SKEW,
};
pub use set::{Set, SetIter};
pub use simd::{
    and_words_k_any, and_words_k_count, and_words_k_count_with, and_words_k_into,
    and_words_k_into_with, available_levels, detected_level, intersect_merge_count_v_with,
    intersect_merge_v_with, simd_level, SimdLevel,
};
pub use uint::UintSet;
pub use union::{difference, overlay_merge_into, union};
pub use view::{
    decode_set, encode_set_into, encode_sorted_into, validate_encoded_set, BitsRef, SetRef,
    SetRefIter, TAG_BITSET, TAG_UINT,
};

/// Test-only bookkeeping, compiled under `cfg(test)` or the `instrument`
/// feature (which downstream crates enable from *dev*-dependencies only,
/// so it never reaches a release build):
///
/// * a thread-local counter of intermediate `Set` materialisations, used
///   to pin the COUNT/EXISTS and scratch-driver paths as allocation-free
///   (they must never mint a `Set`);
/// * process-global tallies of which [`MultiwayKernel`] the driver ran,
///   the ground truth that `QueryProfile`'s per-depth kernel counts are
///   checked against.
#[cfg(any(test, feature = "instrument"))]
pub mod instrument {
    use crate::optimizer::MultiwayKernel;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    thread_local! {
        static SET_BUILDS: Cell<usize> = const { Cell::new(0) };
    }

    /// Record one `Set` materialisation on this thread.
    pub fn note_materialization() {
        SET_BUILDS.with(|c| c.set(c.get() + 1));
    }

    /// Materialisations recorded on this thread so far.
    pub fn materializations() -> usize {
        SET_BUILDS.with(|c| c.get())
    }

    static KERNEL_COUNTS: [AtomicU64; 3] =
        [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];

    fn slot(kernel: MultiwayKernel) -> usize {
        match kernel {
            MultiwayKernel::WordAnd => 0,
            MultiwayKernel::ProbeSmallest => 1,
            MultiwayKernel::FoldMerge => 2,
        }
    }

    /// Record one multiway-driver dispatch of `kernel` (process-global,
    /// all threads).
    pub fn note_kernel(kernel: MultiwayKernel) {
        KERNEL_COUNTS[slot(kernel)].fetch_add(1, Ordering::Relaxed);
    }

    /// Driver dispatches per kernel since the last reset, indexed
    /// `[WordAnd, ProbeSmallest, FoldMerge]`.
    pub fn kernel_counts() -> [u64; 3] {
        [
            KERNEL_COUNTS[0].load(Ordering::Relaxed),
            KERNEL_COUNTS[1].load(Ordering::Relaxed),
            KERNEL_COUNTS[2].load(Ordering::Relaxed),
        ]
    }

    /// Zero the kernel tallies. Callers comparing before/after counts
    /// must serialise against other engine activity in the process.
    pub fn reset_kernel_counts() {
        for c in &KERNEL_COUNTS {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod proptests;
