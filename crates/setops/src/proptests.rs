//! Property-based tests: every layout combination must agree with a
//! `BTreeSet` oracle on membership, iteration order, rank, and all
//! intersection kernels.

use std::collections::BTreeSet;

use proptest::prelude::*;

use crate::{
    and_words_k_count_with, and_words_k_into_with, available_levels, difference, intersect_all,
    intersect_all_into, intersect_all_refs_fold, intersect_count_all, intersect_count_all_refs,
    intersect_merge_count_v_with, intersect_merge_v_with, intersects_all_refs, union,
    IntersectScratch, Layout, Set, SetRef, SimdLevel,
};

fn sorted_unique(vals: &[u32]) -> Vec<u32> {
    let s: BTreeSet<u32> = vals.iter().copied().collect();
    s.into_iter().collect()
}

/// Strategy producing moderately clustered value sets so both layouts get
/// exercised (purely random u32s would almost never pick the bitset).
fn value_set() -> impl Strategy<Value = Vec<u32>> {
    (0u32..50_000, proptest::collection::vec(0u32..2_000, 0..300)).prop_map(|(base, offsets)| {
        sorted_unique(&offsets.iter().map(|o| base + o).collect::<Vec<_>>())
    })
}

/// One multiway operand: a size class spanning four orders of magnitude
/// (so operand pairs reach skew ratios up to ~1:10⁴), a clustered value
/// population, and a forced layout bit.
fn multiway_operand() -> impl Strategy<Value = (Vec<u32>, Layout)> {
    (0u32..5, 0u32..30_000, any::<u64>(), any::<bool>()).prop_map(
        |(magnitude, base, seed, dense)| {
            // Sizes 1, 10, 100, 1000, 10000 — arity-many of these mix
            // into every skew ratio between 1:1 and 1:10⁴.
            let n = 10usize.pow(magnitude);
            // Deterministic LCG so huge operands don't need huge proptest
            // draws; stride keeps density near the bitset threshold.
            let stride = if dense { 3 } else { 700 };
            let mut state = seed | 1;
            let mut v = base;
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                v = v.wrapping_add(1 + ((state >> 33) as u32 % stride));
                vals.push(v);
            }
            let layout = if dense { Layout::Bitset } else { Layout::UintArray };
            (sorted_unique(&vals), layout)
        },
    )
}

/// 1 to 6 multiway operands (Generic-Join arities).
fn multiway_operands() -> impl Strategy<Value = Vec<(Vec<u32>, Layout)>> {
    proptest::collection::vec(multiway_operand(), 1..=6)
}

proptest! {
    #[test]
    fn roundtrip_matches_oracle(vals in value_set()) {
        for layout in [Layout::UintArray, Layout::Bitset] {
            let s = Set::from_sorted_with(&vals, layout);
            prop_assert_eq!(s.len(), vals.len());
            prop_assert_eq!(s.to_vec(), vals.clone());
            prop_assert_eq!(s.min(), vals.first().copied());
            prop_assert_eq!(s.max(), vals.last().copied());
        }
    }

    #[test]
    fn membership_matches_oracle(vals in value_set(), probes in proptest::collection::vec(0u32..60_000, 0..50)) {
        let oracle: BTreeSet<u32> = vals.iter().copied().collect();
        for layout in [Layout::UintArray, Layout::Bitset] {
            let s = Set::from_sorted_with(&vals, layout);
            for &p in &probes {
                prop_assert_eq!(s.contains(p), oracle.contains(&p));
            }
        }
    }

    #[test]
    fn rank_is_sorted_position(vals in value_set()) {
        for layout in [Layout::UintArray, Layout::Bitset] {
            let s = Set::from_sorted_with(&vals, layout);
            for (i, &v) in vals.iter().enumerate() {
                prop_assert_eq!(s.rank(v), Some(i));
            }
        }
    }

    #[test]
    fn intersection_matches_oracle(a in value_set(), b in value_set()) {
        let oa: BTreeSet<u32> = a.iter().copied().collect();
        let ob: BTreeSet<u32> = b.iter().copied().collect();
        let expect: Vec<u32> = oa.intersection(&ob).copied().collect();
        for la in [Layout::UintArray, Layout::Bitset] {
            for lb in [Layout::UintArray, Layout::Bitset] {
                let x = Set::from_sorted_with(&a, la);
                let y = Set::from_sorted_with(&b, lb);
                prop_assert_eq!(x.intersect(&y).to_vec(), expect.clone());
                prop_assert_eq!(x.intersect_count(&y), expect.len());
                prop_assert_eq!(x.intersects(&y), !expect.is_empty());
            }
        }
    }

    #[test]
    fn intersection_is_commutative(a in value_set(), b in value_set()) {
        let x = Set::from_sorted(&a);
        let y = Set::from_sorted(&b);
        prop_assert_eq!(x.intersect(&y).to_vec(), y.intersect(&x).to_vec());
    }

    #[test]
    fn multiway_matches_fold(a in value_set(), b in value_set(), c in value_set()) {
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();
        let sc: BTreeSet<u32> = c.iter().copied().collect();
        let expect: Vec<u32> = sa.iter().filter(|v| sb.contains(v) && sc.contains(v)).copied().collect();
        let (x, y, z) = (Set::from_sorted(&a), Set::from_sorted(&b), Set::from_sorted(&c));
        prop_assert_eq!(intersect_all(&[&x, &y, &z]).unwrap().to_vec(), expect.clone());
        prop_assert_eq!(intersect_count_all(&[&x, &y, &z]), expect.len());
    }

    #[test]
    fn skewed_intersection_takes_gallop_path(
        large_vals in proptest::collection::vec(0u32..5_000, 200..800),
        picks in proptest::collection::vec((0usize..10_000, any::<bool>()), 0..8),
    ) {
        // Force the galloping kernel: |small| * 32 < |large|, with small
        // drawn half from large's own elements (hits) and half offset by
        // one (mostly misses) so probe-boundary matches are exercised.
        let large = sorted_unique(&large_vals);
        prop_assume!(large.len() >= 200);
        let small_raw: Vec<u32> = picks
            .iter()
            .map(|&(i, hit)| {
                let v = large[i % large.len()];
                if hit { v } else { v.saturating_add(1) }
            })
            .collect();
        let small = sorted_unique(&small_raw);
        let oa: BTreeSet<u32> = small.iter().copied().collect();
        let ob: BTreeSet<u32> = large.iter().copied().collect();
        let expect: Vec<u32> = oa.intersection(&ob).copied().collect();
        let x = Set::from_sorted_with(&small, Layout::UintArray);
        let y = Set::from_sorted_with(&large, Layout::UintArray);
        prop_assert_eq!(x.intersect(&y).to_vec(), expect.clone());
        prop_assert_eq!(y.intersect(&x).to_vec(), expect);
    }

    #[test]
    fn union_and_difference_match_oracle(a in value_set(), b in value_set()) {
        let oa: BTreeSet<u32> = a.iter().copied().collect();
        let ob: BTreeSet<u32> = b.iter().copied().collect();
        let expect_union: Vec<u32> = oa.union(&ob).copied().collect();
        let expect_diff: Vec<u32> = oa.difference(&ob).copied().collect();
        for la in [Layout::UintArray, Layout::Bitset] {
            for lb in [Layout::UintArray, Layout::Bitset] {
                let x = Set::from_sorted_with(&a, la);
                let y = Set::from_sorted_with(&b, lb);
                prop_assert_eq!(union(&x, &y).to_vec(), expect_union.clone());
                prop_assert_eq!(difference(&x, &y).to_vec(), expect_diff.clone());
            }
        }
    }

    #[test]
    fn demorgan_identity(a in value_set(), b in value_set()) {
        // |a| = |a ∩ b| + |a \ b|.
        let x = Set::from_sorted(&a);
        let y = Set::from_sorted(&b);
        prop_assert_eq!(x.len(), x.intersect_count(&y) + difference(&x, &y).len());
    }

    #[test]
    fn optimize_preserves_contents(vals in value_set()) {
        for layout in [Layout::UintArray, Layout::Bitset] {
            let s = Set::from_sorted_with(&vals, layout);
            prop_assert_eq!(s.optimize().to_vec(), vals.clone());
        }
    }

    /// The satellite matrix: the adaptive k-way driver must agree with the
    /// naive pairwise fold (and a BTreeSet oracle) across layout mixes,
    /// skew ratios from 1:1 up to 1:10⁴, arities 1–6, and frozen-arena vs
    /// owned operands — for materialisation, count, and existence alike.
    #[test]
    fn adaptive_driver_matches_fold(operands in multiway_operands()) {
        // Oracle.
        let mut expect: Vec<u32> = operands[0].0.clone();
        for (vals, _) in &operands[1..] {
            let s: BTreeSet<u32> = vals.iter().copied().collect();
            expect.retain(|v| s.contains(v));
        }

        // Owned operands.
        let owned: Vec<Set> =
            operands.iter().map(|(v, l)| Set::from_sorted_with(v, *l)).collect();
        let owned_refs: Vec<SetRef<'_>> = owned.iter().map(|s| s.as_ref()).collect();

        // The same operands frozen into one contiguous arena.
        let mut arena: Vec<u32> = Vec::new();
        let mut offsets = Vec::new();
        for (vals, layout) in &operands {
            offsets.push(arena.len());
            crate::encode_sorted_into(vals, Some(*layout), &mut arena);
        }
        let frozen_refs: Vec<SetRef<'_>> =
            offsets.iter().map(|&o| crate::decode_set(&arena[o..]).0).collect();

        let mut scratch = IntersectScratch::new();
        for refs in [&owned_refs, &frozen_refs] {
            prop_assert_eq!(intersect_all_into(refs, &mut scratch), &expect[..]);
            prop_assert_eq!(intersect_count_all_refs(refs), expect.len());
            prop_assert_eq!(intersects_all_refs(refs), !expect.is_empty());
            let fold = intersect_all_refs_fold(refs).unwrap();
            prop_assert_eq!(fold.to_vec(), expect.clone());
        }
    }

    /// SIMD kernels are byte-identical to the portable fallback at every
    /// level this CPU supports.
    #[test]
    fn simd_levels_are_byte_identical(a in value_set(), b in value_set(), c in value_set()) {
        // uint merge kernel.
        let mut reference = Vec::new();
        intersect_merge_v_with(SimdLevel::Portable, &a, &b, &mut reference);
        for &level in available_levels() {
            let mut out = Vec::new();
            intersect_merge_v_with(level, &a, &b, &mut out);
            prop_assert_eq!(&out, &reference, "merge at {}", level);
            prop_assert_eq!(
                intersect_merge_count_v_with(level, &a, &b),
                reference.len(),
                "merge count at {}", level
            );
        }
        // Word-AND kernel over equal extents.
        let n = 40usize;
        let pack = |vals: &[u32]| -> Vec<u32> {
            let mut words = vec![0u32; n];
            for &v in vals {
                let w = (v / 32) as usize % n;
                words[w] |= 1 << (v % 32);
            }
            words
        };
        let (wa, wb, wc) = (pack(&a), pack(&b), pack(&c));
        let srcs = [&wa[..], &wb[..], &wc[..]];
        let mut reference = Vec::new();
        let ref_count = and_words_k_into_with(SimdLevel::Portable, &srcs, &mut reference);
        for &level in available_levels() {
            let mut out = Vec::new();
            prop_assert_eq!(and_words_k_into_with(level, &srcs, &mut out), ref_count);
            prop_assert_eq!(&out, &reference, "and at {}", level);
            prop_assert_eq!(and_words_k_count_with(level, &srcs), ref_count);
        }
    }
}
