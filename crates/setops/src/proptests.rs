//! Property-based tests: every layout combination must agree with a
//! `BTreeSet` oracle on membership, iteration order, rank, and all
//! intersection kernels.

use std::collections::BTreeSet;

use proptest::prelude::*;

use crate::{difference, intersect_all, intersect_count_all, union, Layout, Set};

fn sorted_unique(vals: &[u32]) -> Vec<u32> {
    let s: BTreeSet<u32> = vals.iter().copied().collect();
    s.into_iter().collect()
}

/// Strategy producing moderately clustered value sets so both layouts get
/// exercised (purely random u32s would almost never pick the bitset).
fn value_set() -> impl Strategy<Value = Vec<u32>> {
    (0u32..50_000, proptest::collection::vec(0u32..2_000, 0..300)).prop_map(|(base, offsets)| {
        sorted_unique(&offsets.iter().map(|o| base + o).collect::<Vec<_>>())
    })
}

proptest! {
    #[test]
    fn roundtrip_matches_oracle(vals in value_set()) {
        for layout in [Layout::UintArray, Layout::Bitset] {
            let s = Set::from_sorted_with(&vals, layout);
            prop_assert_eq!(s.len(), vals.len());
            prop_assert_eq!(s.to_vec(), vals.clone());
            prop_assert_eq!(s.min(), vals.first().copied());
            prop_assert_eq!(s.max(), vals.last().copied());
        }
    }

    #[test]
    fn membership_matches_oracle(vals in value_set(), probes in proptest::collection::vec(0u32..60_000, 0..50)) {
        let oracle: BTreeSet<u32> = vals.iter().copied().collect();
        for layout in [Layout::UintArray, Layout::Bitset] {
            let s = Set::from_sorted_with(&vals, layout);
            for &p in &probes {
                prop_assert_eq!(s.contains(p), oracle.contains(&p));
            }
        }
    }

    #[test]
    fn rank_is_sorted_position(vals in value_set()) {
        for layout in [Layout::UintArray, Layout::Bitset] {
            let s = Set::from_sorted_with(&vals, layout);
            for (i, &v) in vals.iter().enumerate() {
                prop_assert_eq!(s.rank(v), Some(i));
            }
        }
    }

    #[test]
    fn intersection_matches_oracle(a in value_set(), b in value_set()) {
        let oa: BTreeSet<u32> = a.iter().copied().collect();
        let ob: BTreeSet<u32> = b.iter().copied().collect();
        let expect: Vec<u32> = oa.intersection(&ob).copied().collect();
        for la in [Layout::UintArray, Layout::Bitset] {
            for lb in [Layout::UintArray, Layout::Bitset] {
                let x = Set::from_sorted_with(&a, la);
                let y = Set::from_sorted_with(&b, lb);
                prop_assert_eq!(x.intersect(&y).to_vec(), expect.clone());
                prop_assert_eq!(x.intersect_count(&y), expect.len());
                prop_assert_eq!(x.intersects(&y), !expect.is_empty());
            }
        }
    }

    #[test]
    fn intersection_is_commutative(a in value_set(), b in value_set()) {
        let x = Set::from_sorted(&a);
        let y = Set::from_sorted(&b);
        prop_assert_eq!(x.intersect(&y).to_vec(), y.intersect(&x).to_vec());
    }

    #[test]
    fn multiway_matches_fold(a in value_set(), b in value_set(), c in value_set()) {
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();
        let sc: BTreeSet<u32> = c.iter().copied().collect();
        let expect: Vec<u32> = sa.iter().filter(|v| sb.contains(v) && sc.contains(v)).copied().collect();
        let (x, y, z) = (Set::from_sorted(&a), Set::from_sorted(&b), Set::from_sorted(&c));
        prop_assert_eq!(intersect_all(&[&x, &y, &z]).unwrap().to_vec(), expect.clone());
        prop_assert_eq!(intersect_count_all(&[&x, &y, &z]), expect.len());
    }

    #[test]
    fn skewed_intersection_takes_gallop_path(
        large_vals in proptest::collection::vec(0u32..5_000, 200..800),
        picks in proptest::collection::vec((0usize..10_000, any::<bool>()), 0..8),
    ) {
        // Force the galloping kernel: |small| * 32 < |large|, with small
        // drawn half from large's own elements (hits) and half offset by
        // one (mostly misses) so probe-boundary matches are exercised.
        let large = sorted_unique(&large_vals);
        prop_assume!(large.len() >= 200);
        let small_raw: Vec<u32> = picks
            .iter()
            .map(|&(i, hit)| {
                let v = large[i % large.len()];
                if hit { v } else { v.saturating_add(1) }
            })
            .collect();
        let small = sorted_unique(&small_raw);
        let oa: BTreeSet<u32> = small.iter().copied().collect();
        let ob: BTreeSet<u32> = large.iter().copied().collect();
        let expect: Vec<u32> = oa.intersection(&ob).copied().collect();
        let x = Set::from_sorted_with(&small, Layout::UintArray);
        let y = Set::from_sorted_with(&large, Layout::UintArray);
        prop_assert_eq!(x.intersect(&y).to_vec(), expect.clone());
        prop_assert_eq!(y.intersect(&x).to_vec(), expect);
    }

    #[test]
    fn union_and_difference_match_oracle(a in value_set(), b in value_set()) {
        let oa: BTreeSet<u32> = a.iter().copied().collect();
        let ob: BTreeSet<u32> = b.iter().copied().collect();
        let expect_union: Vec<u32> = oa.union(&ob).copied().collect();
        let expect_diff: Vec<u32> = oa.difference(&ob).copied().collect();
        for la in [Layout::UintArray, Layout::Bitset] {
            for lb in [Layout::UintArray, Layout::Bitset] {
                let x = Set::from_sorted_with(&a, la);
                let y = Set::from_sorted_with(&b, lb);
                prop_assert_eq!(union(&x, &y).to_vec(), expect_union.clone());
                prop_assert_eq!(difference(&x, &y).to_vec(), expect_diff.clone());
            }
        }
    }

    #[test]
    fn demorgan_identity(a in value_set(), b in value_set()) {
        // |a| = |a ∩ b| + |a \ b|.
        let x = Set::from_sorted(&a);
        let y = Set::from_sorted(&b);
        prop_assert_eq!(x.len(), x.intersect_count(&y) + difference(&x, &y).len());
    }

    #[test]
    fn optimize_preserves_contents(vals in value_set()) {
        for layout in [Layout::UintArray, Layout::Bitset] {
            let s = Set::from_sorted_with(&vals, layout);
            prop_assert_eq!(s.optimize().to_vec(), vals.clone());
        }
    }
}
