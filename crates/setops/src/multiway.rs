//! The adaptive k-way intersection driver — Generic-Join's hottest loop.
//!
//! Every unselected attribute of a worst-case optimal join binds to the
//! multiway intersection of its participants' current trie sets. The
//! pre-adaptive implementation folded pairwise and minted a fresh
//! [`Set`] per operand — allocation plus layout re-encoding in the inner
//! loop, exactly the costs the paper's §IV kernels engineer away. This
//! module replaces the fold with:
//!
//! * **kernel selection** by the [`choose_multiway`] cost model
//!   (operand census → [`MultiwayKernel`]):
//!   - all bitsets → one-pass k-way SIMD word `AND` over the shared
//!     extent;
//!   - skewed or mixed layouts → leapfrog-style probing of the smallest
//!     operand with monotone galloping cursors;
//!   - balanced all-uint → pairwise vectorized merges ping-ponging
//!     between two scratch buffers;
//! * **caller-provided scratch** ([`IntersectScratch`]) so the steady
//!   state performs zero heap allocation per intersection — the join
//!   executor keeps one scratch per depth per morsel;
//! * **non-materializing COUNT / EXISTS paths**
//!   ([`intersect_count_all_refs`], [`intersects_all_refs`]) that never
//!   build a `Set` or touch a buffer at all.
//!
//! All kernels produce the identical sorted value sequence (pinned
//! against the pairwise fold by proptest), so parallel/sequential
//! byte-identity of join results is preserved.

use crate::intersect::{intersect_count_refs, intersects_refs};
use crate::optimizer::{choose_multiway, MultiwayKernel};
use crate::set::Set;
use crate::simd::{and_words_k_any, and_words_k_count, and_words_k_into};
use crate::uint::{gallop_seek, intersect_uint};
use crate::view::SetRef;

/// Operand count the driver handles with stack-resident cursors and
/// window tables; wider intersections (which Generic-Join over RDF never
/// produces — arity tops out at the query's atom count) fall back to a
/// heap-allocated path.
const INLINE_K: usize = 8;

/// Reusable buffers for the multiway driver. One scratch serves any
/// number of sequential intersections; the executor keeps one per join
/// depth per morsel so nested intersections never alias. Deliberately
/// not `Clone`: the buffers are transient kernel state, not data —
/// forking call sites (e.g. the executor's per-morsel state split)
/// construct fresh scratches instead.
#[derive(Debug, Default)]
pub struct IntersectScratch {
    /// Final result values, sorted ascending.
    out: Vec<u32>,
    /// Pong buffer for pairwise folds.
    tmp: Vec<u32>,
    /// Word buffer for the k-way bitset `AND`.
    words: Vec<u32>,
    /// Kernel dispatched by the most recent drive, if one ran.
    last_kernel: Option<MultiwayKernel>,
}

impl IntersectScratch {
    /// A scratch with empty buffers (they grow to the high-water mark of
    /// the intersections driven through them).
    pub fn new() -> IntersectScratch {
        IntersectScratch::default()
    }

    /// The values produced by the most recent [`intersect_all_into`].
    #[inline]
    pub fn values(&self) -> &[u32] {
        &self.out
    }

    /// The kernel the most recent [`intersect_all_into`] dispatched, or
    /// `None` when the driver short-circuited without running one
    /// (arity < 2 or an empty smallest operand). This is the executor's
    /// truthful per-intersection provenance: it reports what actually
    /// ran, set by the driver itself at dispatch.
    #[inline]
    pub fn last_kernel(&self) -> Option<MultiwayKernel> {
        self.last_kernel
    }
}

/// Multiway intersection into caller-provided scratch: the sorted result
/// values are returned as a slice borrowed from `scratch` (also readable
/// afterwards via [`IntersectScratch::values`]). Performs no heap
/// allocation once the scratch buffers have grown to workload size.
///
/// An empty `sets` produces an empty result (there is no universe to
/// return); Generic-Join callers always pass at least one operand.
pub fn intersect_all_into<'s>(sets: &[SetRef<'_>], scratch: &'s mut IntersectScratch) -> &'s [u32] {
    scratch.out.clear();
    scratch.last_kernel = None;
    match sets.len() {
        0 => {}
        1 => scratch.out.extend(sets[0].iter()),
        _ => drive(sets, scratch),
    }
    &scratch.out
}

/// The kernel the driver would dispatch for `sets`, or `None` when it
/// short-circuits without running one (arity < 2 or an empty smallest
/// operand). This is the same census + [`choose_multiway`] the driver
/// itself performs — exposed so profiling and tests can predict kernel
/// choices without driving an intersection.
pub fn choose_for(sets: &[SetRef<'_>]) -> Option<MultiwayKernel> {
    if sets.len() < 2 {
        return None;
    }
    let (smallest, largest, num_bits) = census(sets);
    let smallest_len = sets[smallest].len();
    if smallest_len == 0 {
        return None;
    }
    Some(choose_multiway(smallest_len, largest, num_bits, sets.len()))
}

/// Operand census: index of the smallest operand, largest cardinality,
/// and number of bitset operands.
fn census(sets: &[SetRef<'_>]) -> (usize, usize, usize) {
    let mut smallest = 0usize;
    let mut largest = 0usize;
    let mut num_bits = 0usize;
    for (i, s) in sets.iter().enumerate() {
        if s.len() < sets[smallest].len() {
            smallest = i;
        }
        largest = largest.max(s.len());
        if matches!(s, SetRef::Bits(_)) {
            num_bits += 1;
        }
    }
    (smallest, largest, num_bits)
}

fn drive(sets: &[SetRef<'_>], scratch: &mut IntersectScratch) {
    let (smallest, largest, num_bits) = census(sets);
    let smallest_len = sets[smallest].len();
    if smallest_len == 0 {
        return;
    }
    let kernel = choose_multiway(smallest_len, largest, num_bits, sets.len());
    scratch.last_kernel = Some(kernel);
    #[cfg(any(test, feature = "instrument"))]
    crate::instrument::note_kernel(kernel);
    match kernel {
        MultiwayKernel::WordAnd => word_and_into(sets, scratch),
        MultiwayKernel::ProbeSmallest => probe_smallest_into(sets, smallest, &mut scratch.out),
        MultiwayKernel::FoldMerge => fold_merge_into(sets, scratch),
    }
}

/// Run `f` over the operands' aligned word windows on the shared extent
/// (first shared word index, equal-length slices), or return `default`
/// when the extents are disjoint. Windows live in a stack table for
/// arity ≤ [`INLINE_K`]. All operands must be bitsets.
fn with_bit_windows<'a, R>(
    sets: &[SetRef<'a>],
    default: R,
    f: impl FnOnce(u32, &[&[u32]]) -> R,
) -> R {
    fn bits<'a>(s: &SetRef<'a>) -> crate::view::BitsRef<'a> {
        match *s {
            SetRef::Bits(b) => b,
            SetRef::Uint(_) => unreachable!("word-AND kernel requires all-bitset operands"),
        }
    }
    let mut lo = 0u32;
    let mut hi = u32::MAX;
    for s in sets {
        let b = bits(s);
        lo = lo.max(b.base_word());
        hi = hi.min(b.base_word() + b.words().len() as u32);
    }
    if lo >= hi {
        return default;
    }
    let n = (hi - lo) as usize;
    let window = |s: &SetRef<'a>| -> &'a [u32] {
        let b = bits(s);
        &b.words()[(lo - b.base_word()) as usize..][..n]
    };
    let mut table: [&[u32]; INLINE_K] = [&[]; INLINE_K];
    let heap: Vec<&[u32]>;
    let windows: &[&[u32]] = if sets.len() <= INLINE_K {
        for (slot, s) in table.iter_mut().zip(sets) {
            *slot = window(s);
        }
        &table[..sets.len()]
    } else {
        heap = sets.iter().map(window).collect();
        &heap
    };
    f(lo, windows)
}

/// k-way word `AND` over the shared extent, decoded into sorted values.
fn word_and_into(sets: &[SetRef<'_>], scratch: &mut IntersectScratch) {
    let IntersectScratch { out, words, .. } = scratch;
    with_bit_windows(sets, (), |lo, windows| {
        let count = and_words_k_into(windows, words);
        if count == 0 {
            return;
        }
        out.reserve(count);
        for (wi, &w) in words.iter().enumerate() {
            let mut w = w;
            let base = (lo + wi as u32) * crate::bitset::WORD_BITS;
            while w != 0 {
                out.push(base + w.trailing_zeros());
                w &= w - 1;
            }
        }
    });
}

/// Leapfrog-style probe driver: iterate the smallest operand, checking
/// each element against every other operand — O(1) bitset probes,
/// monotone galloping cursors for uint operands (stack-resident for
/// arity ≤ [`INLINE_K`]). `sink` receives each surviving value and
/// returns `false` to stop early; the driver also stops as soon as any
/// uint cursor runs off its slice (no further value can match).
///
/// The single source of the cursor-advance rules — the materialising,
/// counting, and existence kernels below differ only in their sink and
/// monomorphize to the same tight loop.
fn probe_smallest(sets: &[SetRef<'_>], smallest: usize, sink: &mut impl FnMut(u32) -> bool) {
    let mut inline_cursors = [0usize; INLINE_K];
    let mut heap_cursors: Vec<usize>;
    let cursors: &mut [usize] = if sets.len() <= INLINE_K {
        &mut inline_cursors[..sets.len()]
    } else {
        heap_cursors = vec![0usize; sets.len()];
        &mut heap_cursors
    };
    'vals: for v in sets[smallest].iter() {
        for (idx, s) in sets.iter().enumerate() {
            if idx == smallest {
                continue;
            }
            match s {
                SetRef::Bits(b) => {
                    if !b.contains(v) {
                        continue 'vals;
                    }
                }
                SetRef::Uint(u) => {
                    let c = gallop_seek(u, cursors[idx], v);
                    if c >= u.len() {
                        return; // no further value can appear in u
                    }
                    cursors[idx] = c;
                    if u[c] != v {
                        continue 'vals;
                    }
                    cursors[idx] = c + 1;
                }
            }
        }
        if !sink(v) {
            return;
        }
    }
}

fn probe_smallest_into(sets: &[SetRef<'_>], smallest: usize, out: &mut Vec<u32>) {
    probe_smallest(sets, smallest, &mut |v| {
        out.push(v);
        true
    });
}

fn probe_smallest_count(sets: &[SetRef<'_>], smallest: usize) -> usize {
    let mut n = 0usize;
    probe_smallest(sets, smallest, &mut |_| {
        n += 1;
        true
    });
    n
}

fn probe_smallest_any(sets: &[SetRef<'_>], smallest: usize) -> bool {
    let mut found = false;
    probe_smallest(sets, smallest, &mut |_| {
        found = true;
        false // first witness suffices
    });
    found
}

/// Pairwise vectorized merges, smallest operands first, ping-ponging
/// between the scratch `out`/`tmp` buffers — no `Set` is ever minted.
/// All operands are uint arrays (guaranteed by [`choose_multiway`]).
fn fold_merge_into(sets: &[SetRef<'_>], scratch: &mut IntersectScratch) {
    let mut inline_order: [(usize, usize); INLINE_K] = [(0, 0); INLINE_K];
    let mut heap_order: Vec<(usize, usize)>;
    let order: &mut [(usize, usize)] = if sets.len() <= INLINE_K {
        for (slot, (i, s)) in inline_order.iter_mut().zip(sets.iter().enumerate()) {
            *slot = (s.len(), i);
        }
        &mut inline_order[..sets.len()]
    } else {
        heap_order = sets.iter().enumerate().map(|(i, s)| (s.len(), i)).collect();
        &mut heap_order
    };
    order.sort_unstable();
    let slice = |i: usize| match sets[order[i].1] {
        SetRef::Uint(u) => u,
        SetRef::Bits(_) => unreachable!("fold-merge kernel requires all-uint operands"),
    };
    intersect_uint(slice(0), slice(1), &mut scratch.out);
    for i in 2..order.len() {
        if scratch.out.is_empty() {
            return;
        }
        std::mem::swap(&mut scratch.out, &mut scratch.tmp);
        scratch.out.clear();
        intersect_uint(&scratch.tmp, slice(i), &mut scratch.out);
    }
}

/// Cardinality of a multiway intersection **without materialising
/// anything** — no intermediate `Set`, no scratch buffer. The COUNT path
/// for aggregate-shaped queries.
pub fn intersect_count_all_refs(sets: &[SetRef<'_>]) -> usize {
    match sets.len() {
        0 => 0,
        1 => sets[0].len(),
        2 => intersect_count_refs(sets[0], sets[1]),
        _ => {
            let (smallest, _, num_bits) = census(sets);
            if sets[smallest].is_empty() {
                return 0;
            }
            if num_bits == sets.len() {
                return with_bit_windows(sets, 0, |_, windows| and_words_k_count(windows));
            }
            probe_smallest_count(sets, smallest)
        }
    }
}

/// True when the multiway intersection is non-empty, with early exit and
/// zero materialisation — the EXISTS path Generic-Join's trailing
/// existence checks use. An empty `sets` returns `false`, mirroring
/// [`intersect_count_all_refs`] (`count > 0 ⟺ intersects`).
pub fn intersects_all_refs(sets: &[SetRef<'_>]) -> bool {
    match sets.len() {
        0 => false,
        1 => !sets[0].is_empty(),
        2 => intersects_refs(sets[0], sets[1]),
        _ => {
            let (smallest, _, num_bits) = census(sets);
            if sets[smallest].is_empty() {
                return false;
            }
            if num_bits == sets.len() {
                return with_bit_windows(sets, false, |_, windows| and_words_k_any(windows));
            }
            probe_smallest_any(sets, smallest)
        }
    }
}

/// The pre-adaptive reference: pairwise fold materialising a [`Set`] per
/// operand, smallest first, using the **pre-SIMD scalar kernels**
/// (element-wise merge with the old gallop ratio of 32, scalar word
/// `AND`). Kept verbatim as (a) the semantic baseline the adaptive
/// driver is proptest-pinned against — deliberately sharing no code with
/// the kernels under test — and (b) the "before" side of the
/// `setops_kernels` microbench and its CI speedup gate. Production code
/// routes through [`intersect_all_into`].
#[doc(hidden)]
pub fn intersect_all_refs_fold(sets: &[SetRef<'_>]) -> Option<Set> {
    match sets.len() {
        0 => None,
        1 => Some(sets[0].to_set()),
        _ => {
            let mut order: Vec<SetRef<'_>> = sets.to_vec();
            order.sort_by_key(|s| s.len());
            let mut acc = fold_reference::intersect_refs_scalar(order[0], order[1]);
            for s in &order[2..] {
                if acc.is_empty() {
                    break;
                }
                acc = fold_reference::intersect_refs_scalar(acc.as_ref(), *s);
            }
            Some(acc)
        }
    }
}

/// The pre-PR pairwise kernels, preserved for [`intersect_all_refs_fold`].
mod fold_reference {
    use crate::bitset::BitSet;
    use crate::set::Set;
    use crate::uint::UintSet;
    use crate::view::{BitsRef, SetRef};

    /// The pre-SIMD gallop crossover.
    const GALLOP_RATIO: usize = 32;

    pub(super) fn intersect_refs_scalar(a: SetRef<'_>, b: SetRef<'_>) -> Set {
        #[cfg(test)]
        crate::instrument::note_materialization();
        match (a, b) {
            (SetRef::Uint(x), SetRef::Uint(y)) => {
                let mut out = Vec::with_capacity(x.len().min(y.len()));
                let (small, large) = if x.len() <= y.len() { (x, y) } else { (y, x) };
                if small.len().saturating_mul(GALLOP_RATIO) < large.len() {
                    gallop_scalar(small, large, &mut out);
                } else {
                    merge_scalar(x, y, &mut out);
                }
                Set::Uint(UintSet::from_sorted_vec(out))
            }
            (SetRef::Bits(x), SetRef::Bits(y)) => Set::Bits(and_scalar(x, y)),
            (SetRef::Uint(x), SetRef::Bits(y)) | (SetRef::Bits(y), SetRef::Uint(x)) => {
                let mut out = Vec::with_capacity(x.len().min(y.len()));
                out.extend(x.iter().copied().filter(|&v| y.contains(v)));
                Set::Uint(UintSet::from_sorted_vec(out))
            }
        }
    }

    fn merge_scalar(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// Private copy of the exponential seek, so the baseline really does
    /// share no code with the kernels under test (a bug in the crate's
    /// `gallop_seek` must not corrupt both sides identically).
    fn gallop_seek_scalar(list: &[u32], lo: usize, v: u32) -> usize {
        let mut step = 1usize;
        let mut prev = lo;
        let mut probe = lo;
        while probe < list.len() && list[probe] < v {
            prev = probe + 1;
            probe += step;
            step <<= 1;
        }
        let hi = probe.min(list.len());
        prev + list[prev..hi].partition_point(|&x| x < v)
    }

    fn gallop_scalar(small: &[u32], large: &[u32], out: &mut Vec<u32>) {
        let mut lo = 0usize;
        for &v in small {
            if lo >= large.len() {
                break;
            }
            let idx = gallop_seek_scalar(large, lo, v);
            if idx < large.len() && large[idx] == v {
                out.push(v);
                lo = idx + 1;
            } else {
                lo = idx;
            }
        }
    }

    fn and_scalar(a: BitsRef<'_>, b: BitsRef<'_>) -> BitSet {
        let (lo, wa, wb) = match a.overlap(&b) {
            None => return BitSet::default(),
            Some(o) => o,
        };
        let mut words = vec![0u32; wa.len()];
        let mut len = 0usize;
        for (i, w) in words.iter_mut().enumerate() {
            *w = wa[i] & wb[i];
            len += w.count_ones() as usize;
        }
        match words.iter().position(|w| *w != 0) {
            None => BitSet::default(),
            Some(f) => {
                let l = words.iter().rposition(|w| *w != 0).unwrap();
                BitSet::from_words(lo + f as u32, words[f..=l].to_vec(), len)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument;
    use crate::optimizer::Layout;

    fn mk(vals: &[u32], layout: Layout) -> Set {
        Set::from_sorted_with(vals, layout)
    }

    fn check_all(owned: &[Set], expect: &[u32]) {
        let refs: Vec<SetRef<'_>> = owned.iter().map(|s| s.as_ref()).collect();
        let mut scratch = IntersectScratch::new();
        assert_eq!(intersect_all_into(&refs, &mut scratch), expect);
        // Scratch reuse: driving again through the same scratch is stable.
        assert_eq!(intersect_all_into(&refs, &mut scratch), expect);
        assert_eq!(intersect_count_all_refs(&refs), expect.len());
        assert_eq!(intersects_all_refs(&refs), !expect.is_empty());
        let fold = intersect_all_refs_fold(&refs).unwrap();
        assert_eq!(fold.to_vec(), expect, "fold reference diverged");
    }

    #[test]
    fn all_kernels_agree_on_layout_mixes() {
        let a: Vec<u32> = (0..600).step_by(2).collect();
        let b: Vec<u32> = (0..600).step_by(3).collect();
        let c: Vec<u32> = (0..600).step_by(5).collect();
        let expect: Vec<u32> = (0..600).step_by(30).collect();
        for la in [Layout::UintArray, Layout::Bitset] {
            for lb in [Layout::UintArray, Layout::Bitset] {
                for lc in [Layout::UintArray, Layout::Bitset] {
                    check_all(&[mk(&a, la), mk(&b, lb), mk(&c, lc)], &expect);
                }
            }
        }
    }

    #[test]
    fn skewed_probe_path() {
        let tiny = vec![3u32, 9_000, 54_321, 400_000];
        let large: Vec<u32> = (0..500_000).step_by(3).collect();
        let large2: Vec<u32> = (0..500_000).filter(|v| v % 9 != 1).collect();
        let expect: Vec<u32> = tiny.iter().copied().filter(|v| v % 3 == 0 && v % 9 != 1).collect();
        check_all(
            &[
                mk(&tiny, Layout::UintArray),
                mk(&large, Layout::UintArray),
                mk(&large2, Layout::UintArray),
            ],
            &expect,
        );
    }

    #[test]
    fn probe_cursor_runoff_terminates_early() {
        // The large operand ends before the driver's later values: the
        // probe must stop cleanly, not scan past the end.
        let small = vec![1u32, 2, 1_000_000];
        let big: Vec<u32> = (0..2_000).collect();
        let other: Vec<u32> = (0..3_000).collect();
        check_all(
            &[
                mk(&small, Layout::UintArray),
                mk(&big, Layout::UintArray),
                mk(&other, Layout::UintArray),
            ],
            &[1, 2],
        );
    }

    #[test]
    fn bitset_extent_disjoint() {
        let lo: Vec<u32> = (0..300).collect();
        let hi: Vec<u32> = (100_000..100_300).collect();
        let mid: Vec<u32> = (0..200_000).step_by(64).collect();
        check_all(&[mk(&lo, Layout::Bitset), mk(&hi, Layout::Bitset)], &[]);
        check_all(
            &[mk(&lo, Layout::Bitset), mk(&hi, Layout::Bitset), mk(&mid, Layout::Bitset)],
            &[],
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let mut scratch = IntersectScratch::new();
        assert!(intersect_all_into(&[], &mut scratch).is_empty());
        assert_eq!(intersect_count_all_refs(&[]), 0);
        assert!(!intersects_all_refs(&[]));
        let s = Set::from_sorted(&[7, 8]);
        assert_eq!(intersect_all_into(&[s.as_ref()], &mut scratch), &[7, 8]);
        assert_eq!(intersect_count_all_refs(&[s.as_ref()]), 2);
        assert!(intersects_all_refs(&[s.as_ref()]));
        let e = Set::default();
        assert!(intersect_all_into(&[s.as_ref(), e.as_ref(), s.as_ref()], &mut scratch).is_empty());
        assert_eq!(intersect_count_all_refs(&[s.as_ref(), e.as_ref(), s.as_ref()]), 0);
        assert!(!intersects_all_refs(&[s.as_ref(), e.as_ref(), s.as_ref()]));
    }

    #[test]
    fn count_and_exists_paths_materialize_nothing() {
        // The regression the satellite task demands: COUNT/EXISTS and the
        // scratch driver must not construct a single intermediate `Set`.
        let a: Vec<u32> = (0..4_000).step_by(2).collect();
        let b: Vec<u32> = (0..4_000).step_by(3).collect();
        let c = vec![6u32, 600, 660, 3_000];
        for layouts in [
            [Layout::UintArray, Layout::UintArray, Layout::UintArray],
            [Layout::Bitset, Layout::Bitset, Layout::Bitset],
            [Layout::UintArray, Layout::Bitset, Layout::UintArray],
        ] {
            let sets = [mk(&a, layouts[0]), mk(&b, layouts[1]), mk(&c, layouts[2])];
            let refs: Vec<SetRef<'_>> = sets.iter().map(|s| s.as_ref()).collect();
            let mut scratch = IntersectScratch::new();
            let before = instrument::materializations();
            let count = intersect_count_all_refs(&refs);
            let exists = intersects_all_refs(&refs);
            let driven = intersect_all_into(&refs, &mut scratch).len();
            assert_eq!(
                instrument::materializations(),
                before,
                "count/exists/driver materialized a Set ({layouts:?})"
            );
            assert_eq!(count, driven);
            assert_eq!(exists, count > 0);
            // Positive control: the fold reference does materialize, so
            // the counter is actually wired up.
            let _ = intersect_all_refs_fold(&refs);
            assert!(instrument::materializations() > before, "counter not wired");
        }
    }

    #[test]
    fn last_kernel_reports_what_drove() {
        let mut scratch = IntersectScratch::new();
        let dense: Vec<u32> = (0..512).collect();
        let sparse = vec![3u32, 300, 100_000];
        let bits = [mk(&dense, Layout::Bitset), mk(&dense, Layout::Bitset)];
        let refs: Vec<SetRef<'_>> = bits.iter().map(|s| s.as_ref()).collect();
        intersect_all_into(&refs, &mut scratch);
        assert_eq!(scratch.last_kernel(), Some(MultiwayKernel::WordAnd));
        assert_eq!(choose_for(&refs), Some(MultiwayKernel::WordAnd));
        let mixed = [mk(&sparse, Layout::UintArray), mk(&dense, Layout::Bitset)];
        let refs: Vec<SetRef<'_>> = mixed.iter().map(|s| s.as_ref()).collect();
        intersect_all_into(&refs, &mut scratch);
        assert_eq!(scratch.last_kernel(), Some(MultiwayKernel::ProbeSmallest));
        assert_eq!(choose_for(&refs), scratch.last_kernel());
        // Short circuits report no kernel.
        let one = [mk(&sparse, Layout::UintArray)];
        let refs: Vec<SetRef<'_>> = one.iter().map(|s| s.as_ref()).collect();
        intersect_all_into(&refs, &mut scratch);
        assert_eq!(scratch.last_kernel(), None);
        assert_eq!(choose_for(&refs), None);
        let empty = Set::default();
        let pair = [empty.as_ref(), one[0].as_ref()];
        intersect_all_into(&pair, &mut scratch);
        assert_eq!(scratch.last_kernel(), None);
        assert_eq!(choose_for(&pair), None);
    }

    #[test]
    fn kernel_tallies_count_dispatches() {
        let a: Vec<u32> = (0..256).collect();
        let sets = [mk(&a, Layout::Bitset), mk(&a, Layout::Bitset)];
        let refs: Vec<SetRef<'_>> = sets.iter().map(|s| s.as_ref()).collect();
        let mut scratch = IntersectScratch::new();
        let before = instrument::kernel_counts();
        intersect_all_into(&refs, &mut scratch);
        intersect_all_into(&refs, &mut scratch);
        let after = instrument::kernel_counts();
        assert_eq!(after[0] - before[0], 2, "two WordAnd dispatches");
    }

    #[test]
    fn values_reflect_latest_drive() {
        let mut scratch = IntersectScratch::new();
        let s = Set::from_sorted(&[1, 2, 3]);
        intersect_all_into(&[s.as_ref(), s.as_ref()], &mut scratch);
        assert_eq!(scratch.values(), &[1, 2, 3]);
        let t = Set::from_sorted(&[2, 9]);
        intersect_all_into(&[s.as_ref(), t.as_ref()], &mut scratch);
        assert_eq!(scratch.values(), &[2]);
    }
}
