//! The layout-polymorphic [`Set`] type used by trie levels.

use crate::bitset::BitSet;
use crate::optimizer::{choose_layout, Layout};
use crate::uint::UintSet;
use crate::view::{SetRef, SetRefIter};

/// A set of dictionary-encoded `u32` values in one of EmptyHeaded's two
/// physical layouts (paper §II-A2).
///
/// Constructors pick the layout with the [`choose_layout`] optimizer unless
/// a layout is forced (the Table I "+Layout" ablation forces
/// [`Layout::UintArray`] everywhere to measure the mixed-layout speedup).
///
/// Every read operation borrows the payload as a [`SetRef`] first, so
/// owned sets and frozen (arena-resident) sets execute through the same
/// kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Set {
    /// Sorted unique `u32` array.
    Uint(UintSet),
    /// Offset word-aligned bitset.
    Bits(BitSet),
}

impl Default for Set {
    fn default() -> Self {
        Set::Uint(UintSet::default())
    }
}

impl Set {
    /// Build from a sorted duplicate-free slice, letting the optimizer pick
    /// the layout from cardinality and range.
    pub fn from_sorted(values: &[u32]) -> Self {
        if values.is_empty() {
            return Set::default();
        }
        let layout = choose_layout(values.len(), values[0], values[values.len() - 1]);
        Set::from_sorted_with(values, layout)
    }

    /// Build from a sorted duplicate-free slice in a forced layout.
    pub fn from_sorted_with(values: &[u32], layout: Layout) -> Self {
        match layout {
            Layout::UintArray => Set::Uint(UintSet::from_sorted(values)),
            Layout::Bitset => Set::Bits(BitSet::from_sorted(values)),
        }
    }

    /// Build from an arbitrary slice (sorts + dedups), auto layout.
    ///
    /// Fast path: input that is already strictly increasing — the common
    /// case when rebuilding from committed, already-sorted `PairTable`
    /// runs — skips the clone-sort-dedup entirely and produces the
    /// identical layout the slow path would.
    pub fn from_unsorted(values: &[u32]) -> Self {
        if values.windows(2).all(|w| w[0] < w[1]) {
            return Set::from_sorted(values);
        }
        let mut v = values.to_vec();
        v.sort_unstable();
        v.dedup();
        Set::from_sorted(&v)
    }

    /// Borrow this set as the layout-shared view every kernel runs on.
    #[inline]
    pub fn as_ref(&self) -> SetRef<'_> {
        match self {
            Set::Uint(s) => SetRef::Uint(s.as_slice()),
            Set::Bits(b) => SetRef::Bits(b.as_bits_ref()),
        }
    }

    /// The physical layout of this set.
    pub fn layout(&self) -> Layout {
        match self {
            Set::Uint(_) => Layout::UintArray,
            Set::Bits(_) => Layout::Bitset,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Set::Uint(s) => s.len(),
            Set::Bits(s) => s.len(),
        }
    }

    /// True when the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership probe: `O(1)` for bitsets, `O(log n)` for uint arrays —
    /// the asymmetry behind the paper's §III-A index-layout optimization.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        self.as_ref().contains(v)
    }

    /// Smallest element.
    pub fn min(&self) -> Option<u32> {
        self.as_ref().min()
    }

    /// Largest element.
    pub fn max(&self) -> Option<u32> {
        self.as_ref().max()
    }

    /// Iterate elements in increasing order regardless of layout.
    pub fn iter(&self) -> SetIter<'_> {
        self.as_ref().iter()
    }

    /// Rank (index in sorted order) of `v`, if present.
    ///
    /// Used by tries to map an element to its child block. `O(log n)` for
    /// uint arrays, `O(1)` for bitsets (rank directory).
    pub fn rank(&self, v: u32) -> Option<usize> {
        self.as_ref().rank(v)
    }

    /// Copy out the elements as a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<u32> {
        self.as_ref().to_vec()
    }

    /// Payload bytes (for layout ablation reporting).
    pub fn bytes(&self) -> usize {
        match self {
            Set::Uint(s) => s.bytes(),
            Set::Bits(s) => s.bytes(),
        }
    }

    /// Intersect two sets, dispatching on the layout pair
    /// (uint∩uint = merge/gallop, bitset∩bitset = word AND,
    /// mixed = probe the bitset for each array element).
    pub fn intersect(&self, other: &Set) -> Set {
        crate::intersect::intersect_refs(self.as_ref(), other.as_ref())
    }

    /// Cardinality of the intersection without materialising it.
    pub fn intersect_count(&self, other: &Set) -> usize {
        crate::intersect::intersect_count_refs(self.as_ref(), other.as_ref())
    }

    /// True when the intersection is non-empty (early-exit probe used for
    /// the existence-check/semijoin fast path in Generic-Join).
    pub fn intersects(&self, other: &Set) -> bool {
        crate::intersect::intersects_refs(self.as_ref(), other.as_ref())
    }

    /// Re-apply the layout optimizer to this set (e.g. after an
    /// intersection materialised in a layout the optimizer would not pick).
    pub fn optimize(self) -> Set {
        let (len, min, max) = match self.len() {
            0 => return Set::default(),
            l => (l, self.min().unwrap(), self.max().unwrap()),
        };
        let target = choose_layout(len, min, max);
        if target == self.layout() {
            return self;
        }
        let v = self.to_vec();
        Set::from_sorted_with(&v, target)
    }
}

/// Layout-polymorphic iterator over a [`Set`] — the same iterator that
/// walks borrowed [`SetRef`]s.
pub type SetIter<'a> = SetRefIter<'a>;

impl FromIterator<u32> for Set {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let v: Vec<u32> = iter.into_iter().collect();
        Set::from_unsorted(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_layout_selection() {
        let dense: Vec<u32> = (100..400).collect();
        assert_eq!(Set::from_sorted(&dense).layout(), Layout::Bitset);
        let sparse = [1u32, 100_000, 4_000_000];
        assert_eq!(Set::from_sorted(&sparse).layout(), Layout::UintArray);
    }

    #[test]
    fn forced_layout() {
        let dense: Vec<u32> = (0..1000).collect();
        let s = Set::from_sorted_with(&dense, Layout::UintArray);
        assert_eq!(s.layout(), Layout::UintArray);
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn rank_agrees_across_layouts() {
        let vals = [3u32, 64, 65, 127, 128, 300];
        let u = Set::from_sorted_with(&vals, Layout::UintArray);
        let b = Set::from_sorted_with(&vals, Layout::Bitset);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(u.rank(v), Some(i));
            assert_eq!(b.rank(v), Some(i), "bitset rank of {v}");
        }
        assert_eq!(b.rank(4), None);
        assert_eq!(u.rank(4), None);
    }

    #[test]
    fn iter_across_layouts() {
        let vals = [0u32, 5, 64, 200];
        for layout in [Layout::UintArray, Layout::Bitset] {
            let s = Set::from_sorted_with(&vals, layout);
            assert_eq!(s.to_vec(), vals);
        }
    }

    #[test]
    fn optimize_converts_layout() {
        let dense: Vec<u32> = (0..512).collect();
        let forced = Set::from_sorted_with(&dense, Layout::UintArray);
        let opt = forced.optimize();
        assert_eq!(opt.layout(), Layout::Bitset);
        assert_eq!(opt.to_vec(), dense);
    }

    #[test]
    fn from_iterator() {
        let s: Set = vec![9u32, 1, 9, 5].into_iter().collect();
        assert_eq!(s.to_vec(), vec![1, 5, 9]);
    }

    #[test]
    fn from_unsorted_fast_path_layout_identical() {
        // Already-sorted input takes the no-copy fast path; the resulting
        // layout and contents must be indistinguishable from the sorted
        // constructor AND from the slow (shuffled) path.
        for vals in [
            (0u32..600).collect::<Vec<_>>(),    // dense -> bitset
            vec![1, 70_000, 3_000_000],         // sparse -> uint
            vec![],                             // empty
            (0..64).map(|i| i * 257).collect(), // boundary density
        ] {
            let fast = Set::from_unsorted(&vals);
            assert_eq!(fast, Set::from_sorted(&vals), "sorted ctor, {} vals", vals.len());
            let mut shuffled = vals.clone();
            shuffled.reverse();
            shuffled.extend_from_slice(&vals); // duplicates too
            let slow = Set::from_unsorted(&shuffled);
            assert_eq!(fast, slow, "slow path, {} vals", vals.len());
            assert_eq!(fast.layout(), slow.layout());
        }
    }

    #[test]
    fn from_unsorted_detects_duplicates_and_disorder() {
        // Neither duplicates nor disorder may sneak through the fast path.
        assert_eq!(Set::from_unsorted(&[5, 5, 5]).to_vec(), vec![5]);
        assert_eq!(Set::from_unsorted(&[3, 2, 1]).to_vec(), vec![1, 2, 3]);
        assert_eq!(Set::from_unsorted(&[1, 2, 2, 3]).to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn empty_set_behaviour() {
        let e = Set::default();
        assert!(e.is_empty());
        assert_eq!(e.layout(), Layout::UintArray);
        assert_eq!(e.iter().count(), 0);
        assert_eq!(e.clone().optimize(), e);
    }
}
