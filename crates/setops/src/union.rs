//! Set union and difference. The join core only needs intersections, but
//! a set library without the rest of the algebra is a trap for downstream
//! users (SPARQL `UNION` / `MINUS` land exactly here).

use crate::bitset::BitSet;
use crate::set::Set;
use crate::uint::UintSet;

/// Union of two sets. The result re-runs the layout optimizer, since a
/// union can push a sparse pair over the bitset density threshold.
pub fn union(a: &Set, b: &Set) -> Set {
    match (a, b) {
        (Set::Bits(x), Set::Bits(y)) => Set::Bits(union_bitset(x, y)).optimize(),
        _ => {
            let mut out = Vec::with_capacity(a.len() + b.len());
            let (mut ia, mut ib) = (a.iter(), b.iter());
            let (mut va, mut vb) = (ia.next(), ib.next());
            loop {
                match (va, vb) {
                    (Some(x), Some(y)) => match x.cmp(&y) {
                        std::cmp::Ordering::Less => {
                            out.push(x);
                            va = ia.next();
                        }
                        std::cmp::Ordering::Greater => {
                            out.push(y);
                            vb = ib.next();
                        }
                        std::cmp::Ordering::Equal => {
                            out.push(x);
                            va = ia.next();
                            vb = ib.next();
                        }
                    },
                    (Some(x), None) => {
                        out.push(x);
                        out.extend(ia.by_ref());
                        break;
                    }
                    (None, Some(y)) => {
                        out.push(y);
                        out.extend(ib.by_ref());
                        break;
                    }
                    (None, None) => break,
                }
            }
            Set::from_sorted(&out)
        }
    }
}

fn union_bitset(a: &BitSet, b: &BitSet) -> BitSet {
    if a.is_empty() {
        return b.clone();
    }
    if b.is_empty() {
        return a.clone();
    }
    // Merge over the combined extent via the element iterators; word-wise
    // OR would need extent alignment and this path is not hot.
    let mut vals: Vec<u32> = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (a.iter(), b.iter());
    let (mut va, mut vb) = (ia.next(), ib.next());
    loop {
        match (va, vb) {
            (Some(x), Some(y)) => match x.cmp(&y) {
                std::cmp::Ordering::Less => {
                    vals.push(x);
                    va = ia.next();
                }
                std::cmp::Ordering::Greater => {
                    vals.push(y);
                    vb = ib.next();
                }
                std::cmp::Ordering::Equal => {
                    vals.push(x);
                    va = ia.next();
                    vb = ib.next();
                }
            },
            (Some(x), None) => {
                vals.push(x);
                vals.extend(ia.by_ref());
                break;
            }
            (None, Some(y)) => {
                vals.push(y);
                vals.extend(ib.by_ref());
                break;
            }
            (None, None) => break,
        }
    }
    BitSet::from_sorted(&vals)
}

/// Difference `a \ b`: elements of `a` not in `b`. The result keeps the
/// uint layout (differences shrink sets, so density rarely pays) and is
/// re-optimized by the caller if needed.
pub fn difference(a: &Set, b: &Set) -> Set {
    let mut out = Vec::with_capacity(a.len());
    for v in a.iter() {
        if !b.contains(v) {
            out.push(v);
        }
    }
    Set::Uint(UintSet::from_sorted_vec(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Layout;

    fn layouts(vals: &[u32]) -> [Set; 2] {
        [
            Set::from_sorted_with(vals, Layout::UintArray),
            Set::from_sorted_with(vals, Layout::Bitset),
        ]
    }

    #[test]
    fn union_across_layouts() {
        for a in layouts(&[1, 3, 64]) {
            for b in layouts(&[2, 3, 128]) {
                assert_eq!(union(&a, &b).to_vec(), vec![1, 2, 3, 64, 128]);
            }
        }
    }

    #[test]
    fn union_with_empty() {
        let a = Set::from_sorted(&[5, 9]);
        let e = Set::default();
        assert_eq!(union(&a, &e).to_vec(), vec![5, 9]);
        assert_eq!(union(&e, &a).to_vec(), vec![5, 9]);
        assert!(union(&e, &e).is_empty());
    }

    #[test]
    fn union_densifies_layout() {
        let a: Vec<u32> = (0..256).step_by(2).collect();
        let b: Vec<u32> = (0..256).skip(1).step_by(2).collect();
        let u = union(&Set::from_sorted(&a), &Set::from_sorted(&b));
        assert_eq!(u.len(), 256);
        assert_eq!(u.layout(), Layout::Bitset);
    }

    #[test]
    fn difference_across_layouts() {
        for a in layouts(&[1, 2, 3, 64]) {
            for b in layouts(&[2, 64, 100]) {
                assert_eq!(difference(&a, &b).to_vec(), vec![1, 3]);
            }
        }
    }

    #[test]
    fn difference_identities() {
        let a = Set::from_sorted(&[1, 2, 3]);
        assert_eq!(difference(&a, &Set::default()).to_vec(), vec![1, 2, 3]);
        assert!(difference(&a, &a).is_empty());
    }
}
