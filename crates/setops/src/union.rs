//! Set union and difference. The join core only needs intersections, but
//! a set library without the rest of the algebra is a trap for downstream
//! users (SPARQL `UNION` / `MINUS` land exactly here).

use crate::bitset::BitSet;
use crate::set::Set;
use crate::uint::UintSet;
use crate::view::{SetRef, SetRefIter};

/// Union of two sets. The result re-runs the layout optimizer, since a
/// union can push a sparse pair over the bitset density threshold.
pub fn union(a: &Set, b: &Set) -> Set {
    match (a, b) {
        (Set::Bits(x), Set::Bits(y)) => Set::Bits(union_bitset(x, y)).optimize(),
        _ => {
            let mut out = Vec::with_capacity(a.len() + b.len());
            let (mut ia, mut ib) = (a.iter(), b.iter());
            let (mut va, mut vb) = (ia.next(), ib.next());
            loop {
                match (va, vb) {
                    (Some(x), Some(y)) => match x.cmp(&y) {
                        std::cmp::Ordering::Less => {
                            out.push(x);
                            va = ia.next();
                        }
                        std::cmp::Ordering::Greater => {
                            out.push(y);
                            vb = ib.next();
                        }
                        std::cmp::Ordering::Equal => {
                            out.push(x);
                            va = ia.next();
                            vb = ib.next();
                        }
                    },
                    (Some(x), None) => {
                        out.push(x);
                        out.extend(ia.by_ref());
                        break;
                    }
                    (None, Some(y)) => {
                        out.push(y);
                        out.extend(ib.by_ref());
                        break;
                    }
                    (None, None) => break,
                }
            }
            Set::from_sorted(&out)
        }
    }
}

fn union_bitset(a: &BitSet, b: &BitSet) -> BitSet {
    if a.is_empty() {
        return b.clone();
    }
    if b.is_empty() {
        return a.clone();
    }
    // Merge over the combined extent via the element iterators; word-wise
    // OR would need extent alignment and this path is not hot.
    let mut vals: Vec<u32> = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (a.iter(), b.iter());
    let (mut va, mut vb) = (ia.next(), ib.next());
    loop {
        match (va, vb) {
            (Some(x), Some(y)) => match x.cmp(&y) {
                std::cmp::Ordering::Less => {
                    vals.push(x);
                    va = ia.next();
                }
                std::cmp::Ordering::Greater => {
                    vals.push(y);
                    vb = ib.next();
                }
                std::cmp::Ordering::Equal => {
                    vals.push(x);
                    va = ia.next();
                    vb = ib.next();
                }
            },
            (Some(x), None) => {
                vals.push(x);
                vals.extend(ia.by_ref());
                break;
            }
            (None, Some(y)) => {
                vals.push(y);
                vals.extend(ib.by_ref());
                break;
            }
            (None, None) => break,
        }
    }
    BitSet::from_sorted(&vals)
}

/// Merge an LSM-style delta over a base view: `(base − del) ∪ ins`,
/// appended to `out` in sorted order. Any operand may be absent (treated
/// as empty) and each may be either layout. The pass is one linear
/// three-way merge over the borrowed views — no intermediate `Set` is
/// materialised, which is what lets the join executor assemble a
/// delta-patched trie level straight into a reusable buffer.
///
/// Tombstones (`del`) are expected to be a subset of `base`; a tombstone
/// for an absent value simply matches nothing.
pub fn overlay_merge_into(
    base: Option<SetRef<'_>>,
    del: Option<SetRef<'_>>,
    ins: Option<SetRef<'_>>,
    out: &mut Vec<u32>,
) {
    fn next(it: &mut Option<SetRefIter<'_>>) -> Option<u32> {
        it.as_mut().and_then(|i| i.next())
    }
    let mut bi = base.map(|s| s.iter());
    let mut di = del.map(|s| s.iter());
    let mut ii = ins.map(|s| s.iter());
    let mut bv = next(&mut bi);
    let mut dv = next(&mut di);
    let mut iv = next(&mut ii);
    loop {
        // Advance the base cursor past tombstoned values.
        while let (Some(b), Some(d)) = (bv, dv) {
            match d.cmp(&b) {
                std::cmp::Ordering::Less => dv = next(&mut di),
                std::cmp::Ordering::Equal => {
                    dv = next(&mut di);
                    bv = next(&mut bi);
                }
                std::cmp::Ordering::Greater => break,
            }
        }
        match (bv, iv) {
            (None, None) => break,
            (Some(b), None) => {
                out.push(b);
                bv = next(&mut bi);
            }
            (None, Some(x)) => {
                out.push(x);
                iv = next(&mut ii);
            }
            (Some(b), Some(x)) => match b.cmp(&x) {
                std::cmp::Ordering::Less => {
                    out.push(b);
                    bv = next(&mut bi);
                }
                std::cmp::Ordering::Greater => {
                    out.push(x);
                    iv = next(&mut ii);
                }
                std::cmp::Ordering::Equal => {
                    out.push(b);
                    bv = next(&mut bi);
                    iv = next(&mut ii);
                }
            },
        }
    }
}

/// Difference `a \ b`: elements of `a` not in `b`. The result keeps the
/// uint layout (differences shrink sets, so density rarely pays) and is
/// re-optimized by the caller if needed.
pub fn difference(a: &Set, b: &Set) -> Set {
    let mut out = Vec::with_capacity(a.len());
    for v in a.iter() {
        if !b.contains(v) {
            out.push(v);
        }
    }
    Set::Uint(UintSet::from_sorted_vec(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Layout;

    fn layouts(vals: &[u32]) -> [Set; 2] {
        [
            Set::from_sorted_with(vals, Layout::UintArray),
            Set::from_sorted_with(vals, Layout::Bitset),
        ]
    }

    #[test]
    fn union_across_layouts() {
        for a in layouts(&[1, 3, 64]) {
            for b in layouts(&[2, 3, 128]) {
                assert_eq!(union(&a, &b).to_vec(), vec![1, 2, 3, 64, 128]);
            }
        }
    }

    #[test]
    fn union_with_empty() {
        let a = Set::from_sorted(&[5, 9]);
        let e = Set::default();
        assert_eq!(union(&a, &e).to_vec(), vec![5, 9]);
        assert_eq!(union(&e, &a).to_vec(), vec![5, 9]);
        assert!(union(&e, &e).is_empty());
    }

    #[test]
    fn union_densifies_layout() {
        let a: Vec<u32> = (0..256).step_by(2).collect();
        let b: Vec<u32> = (0..256).skip(1).step_by(2).collect();
        let u = union(&Set::from_sorted(&a), &Set::from_sorted(&b));
        assert_eq!(u.len(), 256);
        assert_eq!(u.layout(), Layout::Bitset);
    }

    #[test]
    fn difference_across_layouts() {
        for a in layouts(&[1, 2, 3, 64]) {
            for b in layouts(&[2, 64, 100]) {
                assert_eq!(difference(&a, &b).to_vec(), vec![1, 3]);
            }
        }
    }

    #[test]
    fn difference_identities() {
        let a = Set::from_sorted(&[1, 2, 3]);
        assert_eq!(difference(&a, &Set::default()).to_vec(), vec![1, 2, 3]);
        assert!(difference(&a, &a).is_empty());
    }

    #[test]
    fn overlay_merge_across_layouts() {
        for base in layouts(&[1, 3, 64, 65, 200]) {
            for del in layouts(&[3, 200]) {
                for ins in layouts(&[2, 64, 300]) {
                    let mut out = Vec::new();
                    overlay_merge_into(
                        Some(base.as_ref()),
                        Some(del.as_ref()),
                        Some(ins.as_ref()),
                        &mut out,
                    );
                    // 64 appears in both base and ins: emitted once.
                    assert_eq!(out, vec![1, 2, 64, 65, 300]);
                }
            }
        }
    }

    #[test]
    fn overlay_merge_with_absent_operands() {
        let base = Set::from_sorted(&[5, 9]);
        let ins = Set::from_sorted(&[1, 9, 12]);
        let del = Set::from_sorted(&[9]);
        let mut out = Vec::new();
        overlay_merge_into(Some(base.as_ref()), None, None, &mut out);
        assert_eq!(out, vec![5, 9]);
        out.clear();
        overlay_merge_into(None, None, Some(ins.as_ref()), &mut out);
        assert_eq!(out, vec![1, 9, 12]);
        out.clear();
        overlay_merge_into(Some(base.as_ref()), Some(del.as_ref()), Some(ins.as_ref()), &mut out);
        assert_eq!(out, vec![1, 5, 9, 12]);
        out.clear();
        // A tombstone for an absent value matches nothing.
        overlay_merge_into(
            Some(base.as_ref()),
            Some(Set::from_sorted(&[7]).as_ref()),
            None,
            &mut out,
        );
        assert_eq!(out, vec![5, 9]);
        out.clear();
        overlay_merge_into(None, Some(del.as_ref()), None, &mut out);
        assert!(out.is_empty());
    }
}
