//! Runtime-dispatched vectorized intersection kernels (paper §IV-B).
//!
//! The paper attributes Generic-Join's edge over LogicBlox to exactly
//! these loops: layout-specialized, SIMD-friendly set intersections. This
//! module holds the hardware-facing kernels every intersection routes
//! through:
//!
//! | kernel | AVX2 | SSE2 | portable fallback |
//! |---|---|---|---|
//! | word `AND` (bitset ∩ bitset, k-way) | 8 words/iter [`core::arch`] `vpand` | 4 words/iter `pand` | 4-word unrolled scalar |
//! | uint ∩ uint merge | 4×4 cyclic `pcmpeqd` compare | same (SSE2 suffices) | block-skipping unrolled merge |
//!
//! Dispatch is decided **once per process** by [`simd_level`]:
//! `is_x86_feature_detected!` picks the widest available instruction set,
//! and the `EH_SIMD` environment variable (`portable` / `sse` / `avx2`)
//! caps it — the byte-identity CI job runs the whole suite under
//! `EH_SIMD=portable` to pin the fallback to the vectorized kernels.
//!
//! Every kernel in this module is **byte-identical** across levels (a
//! sorted-unique intersection has exactly one correct output), which the
//! `proptests` module asserts by running each kernel at every level this
//! CPU supports.

use std::sync::OnceLock;

/// Instruction-set tier a kernel dispatch can land on, in increasing
/// width. On x86_64, SSE2 is part of the baseline ABI, so `Portable` is
/// only ever *chosen* (via `EH_SIMD=portable`), never detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Unrolled scalar `u32` kernels; runs on every target.
    Portable,
    /// 128-bit `core::arch` kernels (x86_64 baseline).
    Sse2,
    /// 256-bit word-`AND` kernels (runtime-detected).
    Avx2,
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimdLevel::Portable => write!(f, "portable"),
            SimdLevel::Sse2 => write!(f, "sse2"),
            SimdLevel::Avx2 => write!(f, "avx2"),
        }
    }
}

/// Widest level this CPU supports, ignoring any `EH_SIMD` override.
pub fn detected_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            SimdLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::Portable
    }
}

/// All levels this CPU can execute, narrowest first — the matrix the
/// byte-identity tests iterate.
pub fn available_levels() -> &'static [SimdLevel] {
    match detected_level() {
        SimdLevel::Portable => &[SimdLevel::Portable],
        SimdLevel::Sse2 => &[SimdLevel::Portable, SimdLevel::Sse2],
        SimdLevel::Avx2 => &[SimdLevel::Portable, SimdLevel::Sse2, SimdLevel::Avx2],
    }
}

/// The level the dispatching kernels use: hardware detection capped by
/// the `EH_SIMD` environment variable. Cached after the first call.
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let detected = detected_level();
        match std::env::var("EH_SIMD").as_deref() {
            Ok("portable") => SimdLevel::Portable,
            Ok("sse") | Ok("sse2") => detected.min(SimdLevel::Sse2),
            Ok("avx2") | Err(_) => detected,
            Ok(other) => {
                // The variable exists to *pin* kernels for byte-identity
                // testing; failing open silently would quietly disable
                // exactly that, so make the typo loud.
                eprintln!(
                    "warning: unrecognized EH_SIMD value {other:?} \
                     (expected portable|sse|avx2); using detected level {detected}"
                );
                detected
            }
        }
    })
}

// ---------------------------------------------------------------------------
// k-way word AND (bitset ∩ ... ∩ bitset over a shared word extent)
// ---------------------------------------------------------------------------

/// `out := srcs[0] & srcs[1] & ...` over equal-length word slices;
/// returns the popcount of the result. `out` is cleared and resized to
/// the operand length (reusing its allocation), so a caller-provided
/// scratch buffer makes the steady state allocation-free.
pub fn and_words_k_into(srcs: &[&[u32]], out: &mut Vec<u32>) -> usize {
    and_words_k_into_with(simd_level(), srcs, out)
}

/// [`and_words_k_into`] at an explicit level (byte-identity tests and the
/// kernel microbench; production code uses the dispatching entry point).
#[doc(hidden)]
pub fn and_words_k_into_with(level: SimdLevel, srcs: &[&[u32]], out: &mut Vec<u32>) -> usize {
    let n = srcs[0].len();
    debug_assert!(srcs.iter().all(|s| s.len() == n), "operands must share the word extent");
    out.clear();
    out.resize(n, 0);
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { and_k_avx2(srcs, out) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { and_k_sse2(srcs, out) },
        _ => and_k_portable(srcs, out),
    }
}

/// Popcount of `srcs[0] & srcs[1] & ...` without materialising the AND —
/// the non-materializing COUNT path for bitset-only multiway
/// intersections. Allocation-free.
pub fn and_words_k_count(srcs: &[&[u32]]) -> usize {
    and_words_k_count_with(simd_level(), srcs)
}

/// [`and_words_k_count`] at an explicit level.
#[doc(hidden)]
pub fn and_words_k_count_with(level: SimdLevel, srcs: &[&[u32]]) -> usize {
    let n = srcs[0].len();
    debug_assert!(srcs.iter().all(|s| s.len() == n));
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { and_k_count_avx2(srcs, n) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { and_k_count_sse2(srcs, n) },
        _ => and_k_count_portable(srcs, n),
    }
}

/// Portable count fallback, 4-word unrolled like [`and_k_portable`].
fn and_k_count_portable(srcs: &[&[u32]], n: usize) -> usize {
    let mut count = 0usize;
    let mut i = 0;
    while i + 4 <= n {
        let (mut w0, mut w1, mut w2, mut w3) =
            (srcs[0][i], srcs[0][i + 1], srcs[0][i + 2], srcs[0][i + 3]);
        for s in &srcs[1..] {
            w0 &= s[i];
            w1 &= s[i + 1];
            w2 &= s[i + 2];
            w3 &= s[i + 3];
        }
        count += (w0.count_ones() + w1.count_ones() + w2.count_ones() + w3.count_ones()) as usize;
        i += 4;
    }
    while i < n {
        let mut w = srcs[0][i];
        for s in &srcs[1..] {
            w &= s[i];
        }
        count += w.count_ones() as usize;
        i += 1;
    }
    count
}

/// True when `srcs[0] & srcs[1] & ...` has any set bit, with early exit —
/// the non-materializing EXISTS path for bitset-only intersections.
pub fn and_words_k_any(srcs: &[&[u32]]) -> bool {
    let n = srcs[0].len();
    debug_assert!(srcs.iter().all(|s| s.len() == n));
    for i in 0..n {
        let mut w = srcs[0][i];
        for s in &srcs[1..] {
            w &= s[i];
        }
        if w != 0 {
            return true;
        }
    }
    false
}

/// Portable fallback: 4-word unrolled scalar AND, byte-identical to the
/// vector kernels.
fn and_k_portable(srcs: &[&[u32]], out: &mut [u32]) -> usize {
    let n = out.len();
    let mut count = 0usize;
    let mut i = 0;
    while i + 4 <= n {
        let (mut w0, mut w1, mut w2, mut w3) =
            (srcs[0][i], srcs[0][i + 1], srcs[0][i + 2], srcs[0][i + 3]);
        for s in &srcs[1..] {
            w0 &= s[i];
            w1 &= s[i + 1];
            w2 &= s[i + 2];
            w3 &= s[i + 3];
        }
        out[i] = w0;
        out[i + 1] = w1;
        out[i + 2] = w2;
        out[i + 3] = w3;
        count += (w0.count_ones() + w1.count_ones() + w2.count_ones() + w3.count_ones()) as usize;
        i += 4;
    }
    while i < n {
        let mut w = srcs[0][i];
        for s in &srcs[1..] {
            w &= s[i];
        }
        out[i] = w;
        count += w.count_ones() as usize;
        i += 1;
    }
    count
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn and_k_avx2(srcs: &[&[u32]], out: &mut [u32]) -> usize {
    use std::arch::x86_64::*;
    let n = out.len();
    let mut count = 0usize;
    let mut i = 0;
    while i + 8 <= n {
        let mut acc = _mm256_loadu_si256(srcs[0].as_ptr().add(i) as *const __m256i);
        for s in &srcs[1..] {
            acc = _mm256_and_si256(acc, _mm256_loadu_si256(s.as_ptr().add(i) as *const __m256i));
        }
        _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, acc);
        for w in &out[i..i + 8] {
            count += w.count_ones() as usize;
        }
        i += 8;
    }
    while i < n {
        let mut w = srcs[0][i];
        for s in &srcs[1..] {
            w &= s[i];
        }
        out[i] = w;
        count += w.count_ones() as usize;
        i += 1;
    }
    count
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn and_k_sse2(srcs: &[&[u32]], out: &mut [u32]) -> usize {
    use std::arch::x86_64::*;
    let n = out.len();
    let mut count = 0usize;
    let mut i = 0;
    while i + 4 <= n {
        let mut acc = _mm_loadu_si128(srcs[0].as_ptr().add(i) as *const __m128i);
        for s in &srcs[1..] {
            acc = _mm_and_si128(acc, _mm_loadu_si128(s.as_ptr().add(i) as *const __m128i));
        }
        _mm_storeu_si128(out.as_mut_ptr().add(i) as *mut __m128i, acc);
        for w in &out[i..i + 4] {
            count += w.count_ones() as usize;
        }
        i += 4;
    }
    while i < n {
        let mut w = srcs[0][i];
        for s in &srcs[1..] {
            w &= s[i];
        }
        out[i] = w;
        count += w.count_ones() as usize;
        i += 1;
    }
    count
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn and_k_count_sse2(srcs: &[&[u32]], n: usize) -> usize {
    use std::arch::x86_64::*;
    let mut count = 0usize;
    let mut i = 0;
    let mut chunk = [0u32; 4];
    while i + 4 <= n {
        let mut acc = _mm_loadu_si128(srcs[0].as_ptr().add(i) as *const __m128i);
        for s in &srcs[1..] {
            acc = _mm_and_si128(acc, _mm_loadu_si128(s.as_ptr().add(i) as *const __m128i));
        }
        _mm_storeu_si128(chunk.as_mut_ptr() as *mut __m128i, acc);
        for w in &chunk {
            count += w.count_ones() as usize;
        }
        i += 4;
    }
    while i < n {
        let mut w = srcs[0][i];
        for s in &srcs[1..] {
            w &= s[i];
        }
        count += w.count_ones() as usize;
        i += 1;
    }
    count
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn and_k_count_avx2(srcs: &[&[u32]], n: usize) -> usize {
    use std::arch::x86_64::*;
    let mut count = 0usize;
    let mut i = 0;
    let mut chunk = [0u32; 8];
    while i + 8 <= n {
        let mut acc = _mm256_loadu_si256(srcs[0].as_ptr().add(i) as *const __m256i);
        for s in &srcs[1..] {
            acc = _mm256_and_si256(acc, _mm256_loadu_si256(s.as_ptr().add(i) as *const __m256i));
        }
        _mm256_storeu_si256(chunk.as_mut_ptr() as *mut __m256i, acc);
        for w in &chunk {
            count += w.count_ones() as usize;
        }
        i += 8;
    }
    while i < n {
        let mut w = srcs[0][i];
        for s in &srcs[1..] {
            w &= s[i];
        }
        count += w.count_ones() as usize;
        i += 1;
    }
    count
}

// ---------------------------------------------------------------------------
// uint ∩ uint merge (sorted unique u32 slices)
// ---------------------------------------------------------------------------

/// Merge-shaped intersection of two sorted-unique slices, appended to
/// `out`: 4×4 cyclic SIMD compare on x86_64, block-skipping unrolled
/// merge elsewhere. Use when cardinalities are comparable; skewed pairs
/// go through [`crate::uint::intersect_gallop`] instead (the dispatch
/// lives in [`crate::uint::intersect_uint`]).
pub(crate) fn intersect_merge_v(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    intersect_merge_v_with(simd_level(), a, b, out)
}

/// [`intersect_merge_v`] at an explicit level (byte-identity tests).
#[doc(hidden)]
pub fn intersect_merge_v_with(level: SimdLevel, a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Sse2 => unsafe { intersect_merge_sse2(a, b, out) },
        _ => intersect_merge_blockskip(a, b, out),
    }
}

/// Cardinality of the merge-shaped intersection without materialising it.
pub(crate) fn intersect_merge_count_v(a: &[u32], b: &[u32]) -> usize {
    intersect_merge_count_v_with(simd_level(), a, b)
}

/// [`intersect_merge_count_v`] at an explicit level.
#[doc(hidden)]
pub fn intersect_merge_count_v_with(level: SimdLevel, a: &[u32], b: &[u32]) -> usize {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Sse2 => unsafe { intersect_merge_count_sse2(a, b) },
        _ => intersect_merge_count_blockskip(a, b),
    }
}

/// Scalar merge over the ragged tails the 4-wide kernels leave behind.
fn scalar_merge_tail(a: &[u32], b: &[u32], mut i: usize, mut j: usize, out: &mut Vec<u32>) {
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

fn scalar_merge_count_tail(a: &[u32], b: &[u32], mut i: usize, mut j: usize) -> usize {
    let mut n = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Portable block-skipping merge: whole 4-element blocks whose ranges
/// don't overlap are skipped with two comparisons, so runs of misses cost
/// ~1/4 of a plain element-wise merge.
fn intersect_merge_blockskip(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i + 4 <= a.len() && j + 4 <= b.len() {
        if a[i + 3] < b[j] {
            i += 4;
            continue;
        }
        if b[j + 3] < a[i] {
            j += 4;
            continue;
        }
        // Overlapping blocks: element-wise merge until one block drains.
        let (ae, be) = (i + 4, j + 4);
        while i < ae && j < be {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    scalar_merge_tail(a, b, i, j, out);
}

fn intersect_merge_count_blockskip(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j) = (0usize, 0usize);
    let mut n = 0usize;
    while i + 4 <= a.len() && j + 4 <= b.len() {
        if a[i + 3] < b[j] {
            i += 4;
            continue;
        }
        if b[j + 3] < a[i] {
            j += 4;
            continue;
        }
        let (ae, be) = (i + 4, j + 4);
        while i < ae && j < be {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    n + scalar_merge_count_tail(a, b, i, j)
}

/// 4×4 cyclic compare intersection: each 4-element window of `a` is
/// compared against all four rotations of the current `b` window with
/// `pcmpeqd`, matched lanes are emitted from the movemask, and whichever
/// window has the smaller maximum advances — the classic SIMD galloping
/// merge the paper's §IV-B "old techniques" refer to.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn intersect_merge_sse2(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    use std::arch::x86_64::*;
    let (mut i, mut j) = (0usize, 0usize);
    while i + 4 <= a.len() && j + 4 <= b.len() {
        let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
        let vb = _mm_loadu_si128(b.as_ptr().add(j) as *const __m128i);
        let r1 = _mm_shuffle_epi32(vb, 0b00_11_10_01);
        let r2 = _mm_shuffle_epi32(vb, 0b01_00_11_10);
        let r3 = _mm_shuffle_epi32(vb, 0b10_01_00_11);
        let eq = _mm_or_si128(
            _mm_or_si128(_mm_cmpeq_epi32(va, vb), _mm_cmpeq_epi32(va, r1)),
            _mm_or_si128(_mm_cmpeq_epi32(va, r2), _mm_cmpeq_epi32(va, r3)),
        );
        let mut mask = _mm_movemask_ps(_mm_castsi128_ps(eq)) as u32;
        while mask != 0 {
            let lane = mask.trailing_zeros() as usize;
            out.push(a[i + lane]);
            mask &= mask - 1;
        }
        let (amax, bmax) = (a[i + 3], b[j + 3]);
        if amax <= bmax {
            i += 4;
        }
        if bmax <= amax {
            j += 4;
        }
    }
    scalar_merge_tail(a, b, i, j, out);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn intersect_merge_count_sse2(a: &[u32], b: &[u32]) -> usize {
    use std::arch::x86_64::*;
    let (mut i, mut j) = (0usize, 0usize);
    let mut n = 0usize;
    while i + 4 <= a.len() && j + 4 <= b.len() {
        let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
        let vb = _mm_loadu_si128(b.as_ptr().add(j) as *const __m128i);
        let r1 = _mm_shuffle_epi32(vb, 0b00_11_10_01);
        let r2 = _mm_shuffle_epi32(vb, 0b01_00_11_10);
        let r3 = _mm_shuffle_epi32(vb, 0b10_01_00_11);
        let eq = _mm_or_si128(
            _mm_or_si128(_mm_cmpeq_epi32(va, vb), _mm_cmpeq_epi32(va, r1)),
            _mm_or_si128(_mm_cmpeq_epi32(va, r2), _mm_cmpeq_epi32(va, r3)),
        );
        n += (_mm_movemask_ps(_mm_castsi128_ps(eq)) as u32).count_ones() as usize;
        let (amax, bmax) = (a[i + 3], b[j + 3]);
        if amax <= bmax {
            i += 4;
        }
        if bmax <= amax {
            j += 4;
        }
    }
    n + scalar_merge_count_tail(a, b, i, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_detection() {
        assert!(SimdLevel::Portable < SimdLevel::Sse2);
        assert!(SimdLevel::Sse2 < SimdLevel::Avx2);
        let levels = available_levels();
        assert_eq!(levels[0], SimdLevel::Portable);
        assert_eq!(*levels.last().unwrap(), detected_level());
        // The dispatch level is never wider than the hardware allows.
        assert!(simd_level() <= detected_level());
    }

    #[test]
    fn and_kernels_agree_across_levels() {
        let a: Vec<u32> = (0u32..67).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        let b: Vec<u32> = (0u32..67).map(|i| i.wrapping_mul(0x85eb_ca6b) ^ 0xffff).collect();
        let c: Vec<u32> = (0u32..67).map(|i| !(i * 31)).collect();
        for srcs in [vec![&a[..], &b[..]], vec![&a[..], &b[..], &c[..]]] {
            let mut reference = Vec::new();
            let ref_count = and_words_k_into_with(SimdLevel::Portable, &srcs, &mut reference);
            for &level in available_levels() {
                let mut out = Vec::new();
                let count = and_words_k_into_with(level, &srcs, &mut out);
                assert_eq!(out, reference, "and_words at {level}");
                assert_eq!(count, ref_count, "and_words count at {level}");
                assert_eq!(and_words_k_count_with(level, &srcs), ref_count);
            }
            assert_eq!(and_words_k_any(&srcs), ref_count > 0);
        }
    }

    #[test]
    fn and_any_early_exit_and_empty() {
        let zero = vec![0u32; 9];
        let one = vec![1u32; 9];
        assert!(!and_words_k_any(&[&zero, &one]));
        assert!(and_words_k_any(&[&one, &one]));
        let empty: Vec<u32> = vec![];
        let mut out = vec![7u32; 3];
        assert_eq!(and_words_k_into(&[&empty, &empty], &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn merge_kernels_agree_across_levels() {
        let a: Vec<u32> = (0..503).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..401).map(|i| i * 5 + 1).collect();
        let mut reference = Vec::new();
        intersect_merge_v_with(SimdLevel::Portable, &a, &b, &mut reference);
        for &level in available_levels() {
            let mut out = Vec::new();
            intersect_merge_v_with(level, &a, &b, &mut out);
            assert_eq!(out, reference, "merge at {level}");
            assert_eq!(intersect_merge_count_v_with(level, &a, &b), reference.len());
            // Asymmetric operand order too.
            let mut swapped = Vec::new();
            intersect_merge_v_with(level, &b, &a, &mut swapped);
            assert_eq!(swapped, reference, "swapped merge at {level}");
        }
    }

    #[test]
    fn merge_handles_short_and_boundary_inputs() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[], &[]),
            (&[1], &[1]),
            (&[1, 2, 3], &[3]),
            (&[0, 1, 2, 3], &[0, 1, 2, 3]),
            (&[0, 1, 2, 3, 4], &[4, 5, 6, 7]),
            (&[3, 7, 11, 15, 19], &[1, 2, 3, 4, 19]),
        ];
        for &(a, b) in cases {
            let mut expect = Vec::new();
            scalar_merge_tail(a, b, 0, 0, &mut expect);
            for &level in available_levels() {
                let mut out = Vec::new();
                intersect_merge_v_with(level, a, b, &mut out);
                assert_eq!(out, expect, "{a:?} x {b:?} at {level}");
                assert_eq!(intersect_merge_count_v_with(level, a, b), expect.len());
            }
        }
    }
}
