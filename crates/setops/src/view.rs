//! Borrowed set views and the frozen (arena) set encoding.
//!
//! [`SetRef`] is the layout-shared read interface of the crate: every
//! membership, rank, iteration, and intersection kernel is written once
//! over these views, and both representations of a set route through
//! them —
//!
//! * an **owned** [`Set`](crate::Set) borrows its heap payload via
//!   [`Set::as_ref`](crate::Set::as_ref);
//! * a **frozen** set decodes in place from the `u32` words of a trie
//!   arena ([`decode_set`]), with no per-block allocation.
//!
//! This is what lets snapshot-loaded (frozen) tries and freshly built
//! (mutable) tries execute through one code path.
//!
//! ## Frozen encoding
//!
//! A set occupies a contiguous run of `u32` words:
//!
//! ```text
//! uint:   [TAG_UINT,   len, v0, v1, ... v(len-1)]
//! bitset: [TAG_BITSET, len, base_word, nwords, words..., ranks...]
//! ```
//!
//! The bitset's rank directory is materialised in the arena so frozen
//! tries keep the O(1) rank (= child lookup) of owned ones.

use crate::bitset::{rank_directory, BitIter, BitSet, WORD_BITS};
use crate::optimizer::{choose_layout, Layout};
use crate::set::Set;
use crate::uint::UintSet;

/// Frozen-encoding tag for a sorted uint array payload.
pub const TAG_UINT: u32 = 0;
/// Frozen-encoding tag for a bitset payload.
pub const TAG_BITSET: u32 = 1;

/// A borrowed bitset: base word plus word and rank slices (either owned
/// by a [`BitSet`] or living inside a frozen arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitsRef<'a> {
    base_word: u32,
    words: &'a [u32],
    ranks: &'a [u32],
    len: u32,
}

impl<'a> BitsRef<'a> {
    pub(crate) fn new(base_word: u32, words: &'a [u32], ranks: &'a [u32], len: u32) -> BitsRef<'a> {
        debug_assert_eq!(words.len(), ranks.len());
        BitsRef { base_word, words, ranks, len }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First covered word index.
    #[inline]
    pub(crate) fn base_word(&self) -> u32 {
        self.base_word
    }

    /// The payload words.
    #[inline]
    pub(crate) fn words(&self) -> &'a [u32] {
        self.words
    }

    /// Constant-time membership probe.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        let w = v / WORD_BITS;
        if w < self.base_word || (w - self.base_word) as usize >= self.words.len() {
            return false;
        }
        self.words[(w - self.base_word) as usize] & (1u32 << (v % WORD_BITS)) != 0
    }

    /// Rank of `v` (its index in sorted order), if present — O(1) via the
    /// rank directory.
    pub fn rank(&self, v: u32) -> Option<usize> {
        let w = v / WORD_BITS;
        if w < self.base_word || (w - self.base_word) as usize >= self.words.len() {
            return None;
        }
        let word = (w - self.base_word) as usize;
        let bit = 1u32 << (v % WORD_BITS);
        if self.words[word] & bit == 0 {
            return None;
        }
        let below = (self.words[word] & (bit - 1)).count_ones();
        Some(self.ranks[word] as usize + below as usize)
    }

    /// Smallest element.
    pub fn min(&self) -> Option<u32> {
        self.words
            .iter()
            .enumerate()
            .find(|(_, w)| **w != 0)
            .map(|(i, w)| (self.base_word + i as u32) * WORD_BITS + w.trailing_zeros())
    }

    /// Largest element.
    pub fn max(&self) -> Option<u32> {
        self.words.iter().enumerate().rev().find(|(_, w)| **w != 0).map(|(i, w)| {
            (self.base_word + i as u32) * WORD_BITS + WORD_BITS - 1 - w.leading_zeros()
        })
    }

    /// Iterate elements in increasing order.
    pub fn iter(&self) -> BitIter<'a> {
        BitIter {
            words: self.words,
            base_word: self.base_word,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
            remaining: self.len as usize,
        }
    }

    /// The overlapping word windows of two bitsets, as equal-length
    /// slices ready for the word-`AND` kernels, plus the first shared
    /// word index. `None` when the extents don't overlap.
    pub(crate) fn overlap<'b>(&self, other: &BitsRef<'b>) -> Option<(u32, &'a [u32], &'b [u32])> {
        let lo = self.base_word.max(other.base_word);
        let hi = (self.base_word + self.words.len() as u32)
            .min(other.base_word + other.words.len() as u32);
        if lo >= hi {
            return None;
        }
        let n = (hi - lo) as usize;
        let a = &self.words[(lo - self.base_word) as usize..][..n];
        let b = &other.words[(lo - other.base_word) as usize..][..n];
        Some((lo, a, b))
    }

    /// Count of the word-wise AND with another bitset view (SIMD where
    /// available), without materialising the result.
    pub fn intersect_count(&self, other: BitsRef<'_>) -> usize {
        match self.overlap(&other) {
            None => 0,
            Some((_, a, b)) => crate::simd::and_words_k_count(&[a, b]),
        }
    }

    /// True when the word-wise AND is non-empty (early exit per word).
    pub fn intersects(&self, other: BitsRef<'_>) -> bool {
        match self.overlap(&other) {
            None => false,
            Some((_, a, b)) => crate::simd::and_words_k_any(&[a, b]),
        }
    }
}

/// Word-wise AND of two bitset views, materialised as an owned [`BitSet`]
/// over the overlapping (and then trimmed) word range. The single bitset
/// intersection kernel: owned `Set`s and frozen arena sets both land here.
pub(crate) fn intersect_bits(a: BitsRef<'_>, b: BitsRef<'_>) -> BitSet {
    let (lo, wa, wb) = match a.overlap(&b) {
        None => return BitSet::default(),
        Some(o) => o,
    };
    let mut words = Vec::new();
    let len = crate::simd::and_words_k_into(&[wa, wb], &mut words);
    if len == 0 {
        return BitSet::default();
    }
    // Trim zero words at both ends so `base_word`/extent stay tight.
    let f = words.iter().position(|w| *w != 0).expect("len > 0");
    let l = words.iter().rposition(|w| *w != 0).unwrap();
    BitSet::from_words(lo + f as u32, words[f..=l].to_vec(), len)
}

/// A borrowed, layout-polymorphic set view — the read-side currency of
/// the crate (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetRef<'a> {
    /// A sorted unique `u32` slice.
    Uint(&'a [u32]),
    /// A borrowed bitset.
    Bits(BitsRef<'a>),
}

impl<'a> SetRef<'a> {
    /// The physical layout of the viewed set.
    pub fn layout(&self) -> Layout {
        match self {
            SetRef::Uint(_) => Layout::UintArray,
            SetRef::Bits(_) => Layout::Bitset,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            SetRef::Uint(v) => v.len(),
            SetRef::Bits(b) => b.len(),
        }
    }

    /// True when the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership probe: `O(1)` for bitsets, `O(log n)` for uint arrays.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        match self {
            SetRef::Uint(s) => s.binary_search(&v).is_ok(),
            SetRef::Bits(b) => b.contains(v),
        }
    }

    /// Rank (index in sorted order) of `v`, if present.
    #[inline]
    pub fn rank(&self, v: u32) -> Option<usize> {
        match self {
            SetRef::Uint(s) => s.binary_search(&v).ok(),
            SetRef::Bits(b) => b.rank(v),
        }
    }

    /// Smallest element.
    pub fn min(&self) -> Option<u32> {
        match self {
            SetRef::Uint(s) => s.first().copied(),
            SetRef::Bits(b) => b.min(),
        }
    }

    /// Largest element.
    pub fn max(&self) -> Option<u32> {
        match self {
            SetRef::Uint(s) => s.last().copied(),
            SetRef::Bits(b) => b.max(),
        }
    }

    /// Iterate elements in increasing order regardless of layout.
    pub fn iter(&self) -> SetRefIter<'a> {
        match self {
            SetRef::Uint(s) => SetRefIter::Uint(s.iter()),
            SetRef::Bits(b) => SetRefIter::Bits(b.iter()),
        }
    }

    /// Copy out the elements as a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<u32> {
        match self {
            SetRef::Uint(s) => s.to_vec(),
            SetRef::Bits(b) => b.iter().collect(),
        }
    }

    /// Materialise an owned [`Set`] in this view's layout. Both arms are
    /// straight payload copies — this sits on the single-participant
    /// join path (`intersect_all_refs` with one set), so a per-element
    /// rebuild would be a measurable regression on dense predicates.
    pub fn to_set(&self) -> Set {
        #[cfg(test)]
        crate::instrument::note_materialization();
        match self {
            SetRef::Uint(s) => Set::Uint(UintSet::from_sorted(s)),
            SetRef::Bits(b) => Set::Bits(BitSet::from_raw(
                b.base_word,
                b.words.to_vec(),
                b.ranks.to_vec(),
                b.len as usize,
            )),
        }
    }

    /// Payload bytes of the viewed set.
    pub fn bytes(&self) -> usize {
        match self {
            SetRef::Uint(s) => std::mem::size_of_val(*s),
            SetRef::Bits(b) => std::mem::size_of_val(b.words()),
        }
    }
}

/// Layout-polymorphic iterator over a [`SetRef`] (and, via delegation,
/// over an owned [`Set`]).
pub enum SetRefIter<'a> {
    /// Iterating a sorted uint slice.
    Uint(std::slice::Iter<'a, u32>),
    /// Iterating a bitset.
    Bits(BitIter<'a>),
}

impl Iterator for SetRefIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        match self {
            SetRefIter::Uint(it) => it.next().copied(),
            SetRefIter::Bits(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            SetRefIter::Uint(it) => it.size_hint(),
            SetRefIter::Bits(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for SetRefIter<'_> {}

/// Append the frozen encoding of a sorted duplicate-free slice to `out`,
/// choosing the layout with the standard optimizer unless `forced` pins
/// one. Returns the number of words written. This writes the arena
/// directly — no intermediate [`Set`] is built.
pub fn encode_sorted_into(vals: &[u32], forced: Option<Layout>, out: &mut Vec<u32>) -> usize {
    debug_assert!(vals.windows(2).all(|w| w[0] < w[1]), "input must be strictly increasing");
    let start = out.len();
    let layout = match (forced, vals.is_empty()) {
        (_, true) => Layout::UintArray,
        (Some(l), _) => l,
        (None, _) => choose_layout(vals.len(), vals[0], vals[vals.len() - 1]),
    };
    match layout {
        Layout::UintArray => {
            out.push(TAG_UINT);
            out.push(vals.len() as u32);
            out.extend_from_slice(vals);
        }
        Layout::Bitset => {
            out.push(TAG_BITSET);
            out.push(vals.len() as u32);
            let base_word = vals[0] / WORD_BITS;
            let last_word = vals[vals.len() - 1] / WORD_BITS;
            let nwords = (last_word - base_word + 1) as usize;
            out.push(base_word);
            out.push(nwords as u32);
            let word_start = out.len();
            out.resize(word_start + nwords, 0);
            for &v in vals {
                out[word_start + (v / WORD_BITS - base_word) as usize] |= 1u32 << (v % WORD_BITS);
            }
            // Rank directory, computed from the words just written.
            let mut acc = 0u32;
            for i in 0..nwords {
                let ones = out[word_start + i].count_ones();
                out.push(acc);
                acc += ones;
            }
        }
    }
    out.len() - start
}

/// Append the frozen encoding of an owned [`Set`] to `out` (payload words
/// copied verbatim — freezing a set and re-decoding it views identical
/// content). Returns the number of words written.
pub fn encode_set_into(set: &Set, out: &mut Vec<u32>) -> usize {
    let start = out.len();
    match set {
        Set::Uint(s) => {
            out.push(TAG_UINT);
            out.push(s.len() as u32);
            out.extend_from_slice(s.as_slice());
        }
        Set::Bits(b) => {
            let r = b.as_bits_ref();
            out.push(TAG_BITSET);
            out.push(r.len() as u32);
            out.push(r.base_word());
            out.push(r.words().len() as u32);
            out.extend_from_slice(r.words());
            out.extend_from_slice(&rank_directory(r.words()));
        }
    }
    out.len() - start
}

/// Decode a frozen set starting at `words[0]`, returning the view and the
/// number of words the encoding occupies.
///
/// # Panics
/// Panics (via slice indexing) when `words` is not a valid encoding —
/// arena content is produced by the encoders above and integrity-checked
/// (checksummed) before it is trusted; see [`validate_encoded_set`] for
/// the non-panicking structural check used at snapshot load.
#[inline]
pub fn decode_set(words: &[u32]) -> (SetRef<'_>, usize) {
    let len = words[1] as usize;
    match words[0] {
        TAG_UINT => (SetRef::Uint(&words[2..2 + len]), 2 + len),
        TAG_BITSET => {
            let base_word = words[2];
            let nwords = words[3] as usize;
            let payload = &words[4..4 + 2 * nwords];
            (
                SetRef::Bits(BitsRef::new(
                    base_word,
                    &payload[..nwords],
                    &payload[nwords..],
                    len as u32,
                )),
                4 + 2 * nwords,
            )
        }
        tag => panic!("corrupt frozen set: unknown tag {tag}"),
    }
}

/// Structurally validate a frozen set encoding at `words[0]`: bounds, tag,
/// element count, sortedness (uint) / rank-directory consistency (bitset).
/// Returns `(encoded length, cardinality)`, or `None` when the bytes are
/// not a valid encoding — the defence that turns a corrupt-but-
/// checksum-valid snapshot into an `Err` instead of a later panic.
pub fn validate_encoded_set(words: &[u32]) -> Option<(usize, usize)> {
    if words.len() < 2 {
        return None;
    }
    let len = words[1] as usize;
    match words[0] {
        TAG_UINT => {
            let vals = words.get(2..2 + len)?;
            if !vals.windows(2).all(|w| w[0] < w[1]) {
                return None;
            }
            Some((2 + len, len))
        }
        TAG_BITSET => {
            let base_word = *words.get(2)? as u64;
            let nwords = *words.get(3)? as usize;
            if nwords == 0 {
                return None;
            }
            // The largest representable element must fit in u32, or later
            // navigation arithmetic ((base + i) * 32) would overflow.
            if (base_word + nwords as u64) * WORD_BITS as u64 - 1 > u32::MAX as u64 {
                return None;
            }
            let payload = words.get(4..4 + 2 * nwords)?;
            let (bits, ranks) = payload.split_at(nwords);
            let mut acc = 0u32;
            for (w, &r) in bits.iter().zip(ranks) {
                if r != acc {
                    return None;
                }
                acc += w.count_ones();
            }
            if acc as usize != len {
                return None;
            }
            Some((4 + 2 * nwords, len))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layouts(vals: &[u32]) -> [Set; 2] {
        [
            Set::from_sorted_with(vals, Layout::UintArray),
            Set::from_sorted_with(vals, Layout::Bitset),
        ]
    }

    #[test]
    fn set_ref_agrees_with_owned_set() {
        let vals = [3u32, 31, 32, 64, 65, 127, 128, 300];
        for s in layouts(&vals) {
            let r = s.as_ref();
            assert_eq!(r.layout(), s.layout());
            assert_eq!(r.len(), s.len());
            assert_eq!(r.to_vec(), s.to_vec());
            assert_eq!(r.min(), s.min());
            assert_eq!(r.max(), s.max());
            for probe in 0..400u32 {
                assert_eq!(r.contains(probe), s.contains(probe), "contains {probe}");
                assert_eq!(r.rank(probe), s.rank(probe), "rank {probe}");
            }
            assert_eq!(r.to_set(), s);
        }
    }

    #[test]
    fn frozen_roundtrip_both_layouts() {
        let vals = [0u32, 5, 31, 32, 200, 4096];
        for forced in [Some(Layout::UintArray), Some(Layout::Bitset), None] {
            let mut arena = vec![0xdead_beef]; // offset != 0 start
            let written = encode_sorted_into(&vals, forced, &mut arena);
            let (r, consumed) = decode_set(&arena[1..]);
            assert_eq!(consumed, written);
            assert_eq!(r.to_vec(), vals);
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(r.rank(v), Some(i));
            }
            assert_eq!(validate_encoded_set(&arena[1..]), Some((written, vals.len())));
        }
    }

    #[test]
    fn encode_set_matches_encode_sorted() {
        let vals: Vec<u32> = (100..400).chain([5000, 9000]).collect();
        for s in layouts(&vals) {
            let mut a = Vec::new();
            let mut b = Vec::new();
            encode_set_into(&s, &mut a);
            encode_sorted_into(&vals, Some(s.layout()), &mut b);
            assert_eq!(a, b, "{:?}", s.layout());
        }
    }

    #[test]
    fn empty_set_encodes_as_uint() {
        let mut out = Vec::new();
        let n = encode_sorted_into(&[], None, &mut out);
        assert_eq!(out, vec![TAG_UINT, 0]);
        let (r, consumed) = decode_set(&out);
        assert_eq!(consumed, n);
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn validate_rejects_corruption() {
        let mut out = Vec::new();
        encode_sorted_into(&(0..200).collect::<Vec<u32>>(), None, &mut out);
        assert_eq!(validate_encoded_set(&out), Some((out.len(), 200)));
        // Unknown tag.
        assert_eq!(validate_encoded_set(&[7, 0]), None);
        // Truncated payloads.
        assert_eq!(validate_encoded_set(&out[..out.len() - 1]), None);
        assert_eq!(validate_encoded_set(&[TAG_UINT, 3, 1]), None);
        // Unsorted uint payload.
        assert_eq!(validate_encoded_set(&[TAG_UINT, 2, 9, 4]), None);
        // Bitset whose rank directory disagrees with its words.
        let mut bits = Vec::new();
        encode_sorted_into(&[0, 1, 64], Some(Layout::Bitset), &mut bits);
        let last = bits.len() - 1;
        bits[last] ^= 1;
        assert_eq!(validate_encoded_set(&bits), None);
        // Bitset whose cardinality disagrees with its popcount.
        let mut bits2 = Vec::new();
        encode_sorted_into(&[0, 1, 64], Some(Layout::Bitset), &mut bits2);
        bits2[1] = 9;
        assert_eq!(validate_encoded_set(&bits2), None);
        // Too short to even carry a header.
        assert_eq!(validate_encoded_set(&[TAG_UINT]), None);
        // Bitset whose base_word would overflow element arithmetic: a
        // crafted arena must be rejected up front, not wrap to aliased
        // ids during navigation.
        assert_eq!(validate_encoded_set(&[TAG_BITSET, 1, u32::MAX, 1, 1, 0]), None);
        // The largest legitimate base word still validates.
        let top = u32::MAX / WORD_BITS;
        assert_eq!(validate_encoded_set(&[TAG_BITSET, 1, top, 1, 1, 0]), Some((6, 1)));
    }

    #[test]
    fn bits_ref_intersections_agree_with_owned() {
        let a: Vec<u32> = (0..128).step_by(3).collect();
        let b: Vec<u32> = (60..300).step_by(2).collect();
        let (sa, sb) = (BitSet::from_sorted(&a), BitSet::from_sorted(&b));
        let expect: Vec<u32> = a.iter().copied().filter(|v| b.contains(v)).collect();
        assert_eq!(sa.intersect_bitset(&sb).iter().collect::<Vec<_>>(), expect);
        assert_eq!(sa.as_bits_ref().intersect_count(sb.as_bits_ref()), expect.len());
        assert!(sa.as_bits_ref().intersects(sb.as_bits_ref()));
    }
}
