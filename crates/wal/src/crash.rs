//! Fault-injection crash points.
//!
//! Durability code is only trustworthy if it survives dying at its worst
//! moments, and those moments cannot be reached from outside: no test
//! can SIGKILL a process *between* the frame-header write and the
//! payload write of one append. So the WAL and the engine thread named
//! [`crash_point`] calls through every boundary of the append → stage →
//! SAVE → truncate protocol, and the kill-matrix test re-runs a child
//! process once per point, each run dying at a different instant.
//!
//! Armed through the environment so the hook crosses the process
//! boundary to the child: `EH_CRASH_POINT="<name>:<n>"` kills the
//! process at the *n*-th hit (1-based) of the point called `<name>`.
//! Unset (the production case) every call is a branch on a cold
//! `OnceLock` — no syscall, no lock.
//!
//! Death is `SIGKILL`-to-self on unix (no destructors, no flushes, no
//! poisoned-lock unwinding — exactly what a power cut looks like to the
//! file system) and `process::abort` elsewhere.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The armed point, parsed once from `EH_CRASH_POINT`.
fn armed() -> &'static Option<(String, u64)> {
    static ARMED: OnceLock<Option<(String, u64)>> = OnceLock::new();
    ARMED.get_or_init(|| parse_spec(&std::env::var("EH_CRASH_POINT").ok()?))
}

/// `"<name>:<n>"`, split from the right so point names may contain `:`.
fn parse_spec(spec: &str) -> Option<(String, u64)> {
    let (name, n) = spec.rsplit_once(':')?;
    Some((name.to_owned(), n.parse().ok()?))
}

fn die() -> ! {
    #[cfg(unix)]
    {
        // Raw libc binding, same idiom as eh-rdf's mmap shim: the
        // workspace vendors no libc crate. SIGKILL cannot be caught, so
        // the process dies without running any Rust cleanup.
        extern "C" {
            fn getpid() -> i32;
            fn kill(pid: i32, sig: i32) -> i32;
        }
        const SIGKILL: i32 = 9;
        // SAFETY: both calls are async-signal-safe libc functions with
        // no memory arguments.
        unsafe {
            kill(getpid(), SIGKILL);
        }
    }
    // Unreachable on unix; the portable hard-stop elsewhere.
    std::process::abort()
}

/// Kill the process if `EH_CRASH_POINT` arms this point's *n*-th hit.
///
/// Hidden from docs: this is a fault-injection hook for the durability
/// test harness, not API. It is compiled unconditionally (not
/// `cfg(test)`) because the kill-matrix arms it in a *child process*
/// running the normal release build — the paths under test must be the
/// shipped paths.
#[doc(hidden)]
pub fn crash_point(name: &str) {
    let Some((armed_name, armed_hit)) = armed() else { return };
    if armed_name != name {
        return;
    }
    static HITS: AtomicU64 = AtomicU64::new(0);
    // HITS is shared across points, but only the armed point ever
    // increments it, so it counts hits of exactly that point.
    if HITS.fetch_add(1, Ordering::Relaxed) + 1 == *armed_hit {
        die();
    }
}

/// Whether `name` is the armed crash point. Hot paths that must do
/// extra work to make a crash *landable* (e.g. splitting one append
/// into two writes so a kill between them leaves a torn frame) check
/// this first and keep the fast path when the answer is no — which it
/// always is outside the fault-injection harness.
#[doc(hidden)]
pub fn crash_point_armed(name: &str) -> bool {
    matches!(armed(), Some((armed_name, _)) if armed_name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_is_inert() {
        // The test runner does not set EH_CRASH_POINT, so every point
        // must be a no-op.
        for _ in 0..3 {
            crash_point("wal-append-pre");
            crash_point("anything");
        }
    }

    #[test]
    fn spec_parser() {
        assert_eq!(parse_spec("wal-append-pre:3"), Some(("wal-append-pre".to_owned(), 3)));
        assert_eq!(parse_spec("with:colon:7"), Some(("with:colon".to_owned(), 7)));
        assert_eq!(parse_spec("nocount"), None);
        assert_eq!(parse_spec("bad:count"), None);
    }
}
