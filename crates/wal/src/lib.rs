//! # eh-wal
//!
//! An append-only write-ahead log. Each applied `UpdateBatch` is framed
//! and appended *before* its deltas stage, so every acknowledged write
//! survives a crash: recovery reopens the last snapshot and replays the
//! log tail through the normal update machinery.
//!
//! ## File format
//!
//! All integers little-endian, matching the snapshot family:
//!
//! ```text
//! header (24 bytes):
//!   [magic: b"EHWAL001"][base_seq: u64][xxh64(magic ++ base_seq): u64]
//! then zero or more frames, contiguous sequence numbers starting at
//! base_seq + 1:
//!   [len: u32][xxh64(seq ++ payload): u64][seq: u64][payload: len bytes]
//! ```
//!
//! The checksum sits *before* what it covers so that its input —
//! sequence number then payload — is one contiguous run of bytes both
//! in the append buffer and in a scanned file: hashing never copies.
//!
//! `base_seq` is the last sequence number already folded into the
//! snapshot this log pairs with; truncation (on `SAVE`) rewrites the log
//! with a new `base_seq` via a temp-file + atomic-rename, mirroring the
//! snapshot writer, so a crash anywhere leaves either the old log or the
//! new one — never a half-truncated hybrid.
//!
//! ## Torn tail vs. corruption
//!
//! A crash mid-append leaves a *torn tail*: a final frame whose bytes
//! end at end-of-file without checksumming clean. That record was never
//! acknowledged as durable, so [`Wal::open`] drops it with a logged
//! warning and physically truncates it away. A frame that fails its
//! checksum with more log *after* it cannot be explained by a crash —
//! appends are sequential — so it is real corruption, and the scan
//! refuses with a typed [`WalError::Corrupt`] rather than silently
//! replaying a hole into the store.

mod crash;

pub use crash::{crash_point, crash_point_armed};

use eh_rdf::xxh64;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::time::{Duration, Instant};

/// Magic prefix of a WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"EHWAL001";

/// Header: magic + base_seq + checksum.
const HEADER_BYTES: u64 = 8 + 8 + 8;

/// Frame header: payload length + checksum + sequence.
const FRAME_HEADER: u64 = 4 + 8 + 8;

/// Offset within a frame where the checksummed bytes (seq ++ payload)
/// begin.
const FRAME_SUMMED_AT: usize = 4 + 8;

/// Upper bound on a single record's payload. A batch this large would
/// have exhausted memory long before reaching the log, so a bigger
/// declared length is garbage, not data.
const MAX_RECORD_BYTES: u64 = 1 << 30;

/// When to push appended bytes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append: an acknowledged batch survives
    /// power loss. The durable default.
    Always,
    /// `fdatasync` at most once per this many milliseconds: bounds the
    /// loss window while amortising the sync over many appends.
    Interval(u64),
    /// Never sync explicitly: the OS flushes on its own schedule. A
    /// kernel crash can lose recent batches; a process crash cannot.
    Never,
}

impl FsyncPolicy {
    /// The flag surface: `always`, `never`, `interval:<ms>`.
    pub const USAGE: &'static str = "always | never | interval:<ms>";
}

impl Default for FsyncPolicy {
    /// Durable by default: an engine that attaches a log without
    /// choosing a policy gets the one that never loses an acknowledged
    /// batch.
    fn default() -> FsyncPolicy {
        FsyncPolicy::Always
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval(ms) => write!(f, "interval:{ms}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

impl FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            _ => {
                let ms =
                    s.strip_prefix("interval:").and_then(|ms| ms.parse::<u64>().ok()).ok_or_else(
                        || format!("bad fsync policy {s:?} (expected {})", FsyncPolicy::USAGE),
                    )?;
                Ok(FsyncPolicy::Interval(ms))
            }
        }
    }
}

/// Why a log could not be opened, scanned, or written.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a WAL (bad magic or mangled header with content
    /// after it).
    BadHeader(&'static str),
    /// A frame *before* the tail fails its checksum or breaks the
    /// sequence: the log is damaged where a crash cannot reach, and
    /// replaying around it would silently drop an acknowledged batch.
    Corrupt {
        /// Sequence number the scan expected at the bad frame.
        seq: u64,
        /// Byte offset of the bad frame.
        offset: u64,
        /// What failed.
        reason: &'static str,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::BadHeader(what) => write!(f, "not a wal file: {what}"),
            WalError::Corrupt { seq, offset, reason } => {
                write!(f, "wal corrupt at seq {seq} (offset {offset}): {reason}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One logged record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Sequence number, contiguous from `base_seq + 1`.
    pub seq: u64,
    /// The opaque payload the caller appended.
    pub payload: Vec<u8>,
}

/// A dropped torn tail: bytes a crash left after the last clean frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Offset of the first torn byte.
    pub offset: u64,
    /// How many bytes were dropped.
    pub bytes: u64,
}

/// Result of scanning a log file.
#[derive(Debug)]
pub struct WalScan {
    /// Last sequence number already folded into the paired snapshot.
    pub base_seq: u64,
    /// Every clean record after `base_seq`, in append order.
    pub records: Vec<WalRecord>,
    /// The torn tail, if the file ended mid-frame.
    pub torn: Option<TornTail>,
    /// Length of the clean prefix (header + whole frames).
    pub valid_bytes: u64,
}

impl WalScan {
    /// Sequence number of the last clean record (or `base_seq` if none).
    pub fn last_seq(&self) -> u64 {
        self.records.last().map_or(self.base_seq, |r| r.seq)
    }
}

fn header_bytes(base_seq: u64) -> [u8; HEADER_BYTES as usize] {
    let mut h = [0u8; HEADER_BYTES as usize];
    h[..8].copy_from_slice(&WAL_MAGIC);
    h[8..16].copy_from_slice(&base_seq.to_le_bytes());
    let sum = xxh64(&h[..16]);
    h[16..24].copy_from_slice(&sum.to_le_bytes());
    h
}

fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("fixed slice"))
}

fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("fixed slice"))
}

/// Scan a log held in memory. `Ok` means the clean prefix is usable;
/// `Err` means the file must not be replayed at all.
fn scan_bytes(bytes: &[u8]) -> Result<WalScan, WalError> {
    let len = bytes.len() as u64;
    // Header. A file shorter than the header can only be a crash during
    // the initial create (truncation goes through an atomic rename and
    // never shortens in place), so as long as what *is* there matches a
    // fresh header's prefix, treat it as empty. Anything else is a
    // foreign file.
    if len < HEADER_BYTES {
        let fresh = header_bytes(0);
        if bytes == &fresh[..bytes.len()] {
            return Ok(WalScan { base_seq: 0, records: Vec::new(), torn: None, valid_bytes: 0 });
        }
        return Err(WalError::BadHeader("shorter than a wal header"));
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(WalError::BadHeader("bad magic"));
    }
    let base_seq = read_u64(&bytes[8..16]);
    if read_u64(&bytes[16..24]) != xxh64(&bytes[..16]) {
        // A mangled header checksum with nothing after it is the same
        // torn-create case as above; with frames after it, the header
        // itself is damaged and nothing downstream can be trusted.
        if len == HEADER_BYTES {
            return Ok(WalScan { base_seq: 0, records: Vec::new(), torn: None, valid_bytes: 0 });
        }
        return Err(WalError::BadHeader("header checksum mismatch"));
    }

    let mut records = Vec::new();
    let mut off = HEADER_BYTES;
    let mut next_seq = base_seq.wrapping_add(1);
    loop {
        let rem = len - off;
        if rem == 0 {
            return Ok(WalScan { base_seq, records, torn: None, valid_bytes: off });
        }
        let torn = |records: Vec<WalRecord>| {
            Ok(WalScan {
                base_seq,
                records,
                torn: Some(TornTail { offset: off, bytes: rem }),
                valid_bytes: off,
            })
        };
        if rem < FRAME_HEADER {
            return torn(records);
        }
        let at = off as usize;
        let plen = read_u32(&bytes[at..]) as u64;
        let sum = read_u64(&bytes[at + 4..]);
        let seq = read_u64(&bytes[at + FRAME_SUMMED_AT..]);
        let end = off + FRAME_HEADER + plen.min(MAX_RECORD_BYTES + 1);
        if plen > MAX_RECORD_BYTES || end > len {
            // The declared frame overruns the file (or is implausibly
            // long, which overruns any real file): only a torn final
            // write can leave that, because a clean append wrote the
            // whole frame before the next one started.
            return torn(records);
        }
        let payload = &bytes[at + FRAME_HEADER as usize..end as usize];
        if sum != xxh64(&bytes[at + FRAME_SUMMED_AT..end as usize]) {
            if end == len {
                // Checksum-bad final frame: torn payload write.
                return torn(records);
            }
            return Err(WalError::Corrupt {
                seq: next_seq,
                offset: off,
                reason: "frame checksum mismatch before tail",
            });
        }
        if seq != next_seq {
            // The checksum covers the sequence number, so a torn write
            // cannot forge a clean frame with the wrong seq — this is a
            // spliced or rewritten log, corrupt wherever it sits.
            return Err(WalError::Corrupt { seq: next_seq, offset: off, reason: "sequence break" });
        }
        records.push(WalRecord { seq, payload: payload.to_vec() });
        next_seq += 1;
        off = end;
    }
}

/// Scan a log file without opening it for writing — the read side of
/// `REPLAY <path>` and of recovery tooling.
pub fn scan_path(path: &Path) -> Result<WalScan, WalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    scan_bytes(&bytes)
}

/// What one append did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendInfo {
    /// Sequence number assigned to the record.
    pub seq: u64,
    /// Total log size after the append (header + frames).
    pub wal_bytes: u64,
    /// Whether this append hit stable storage before returning.
    pub fsynced: bool,
    /// Microseconds spent in `fdatasync` (0 when not synced).
    pub fsync_us: u64,
}

/// An open, writable write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    base_seq: u64,
    last_seq: u64,
    bytes: u64,
    last_sync: Instant,
    unsynced: bool,
    /// Reused frame buffer: append is on the apply path's critical
    /// section, so it should not allocate per record.
    frame: Vec<u8>,
}

impl Wal {
    /// Open (or create) the log at `path`, recovering its clean prefix.
    ///
    /// A torn tail is physically truncated away (with a warning on
    /// stderr) so subsequent appends extend a clean file; real
    /// corruption refuses with [`WalError::Corrupt`]. Returns the open
    /// writer and the scan — the caller replays `scan.records` before
    /// appending anything new.
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<(Wal, WalScan), WalError> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut scan = scan_bytes(&bytes)?;
        if let Some(t) = scan.torn {
            eprintln!(
                "[eh-wal] dropping torn tail of {}: {} byte(s) at offset {} (unacknowledged final record)",
                path.display(),
                t.bytes,
                t.offset
            );
            file.set_len(scan.valid_bytes)?;
        }
        if scan.valid_bytes < HEADER_BYTES {
            // Fresh (or torn-create) file: write a clean header.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&header_bytes(scan.base_seq))?;
            scan.valid_bytes = HEADER_BYTES;
        }
        file.seek(SeekFrom::Start(scan.valid_bytes))?;
        let wal = Wal {
            file,
            path: path.to_owned(),
            policy,
            base_seq: scan.base_seq,
            last_seq: scan.last_seq(),
            bytes: scan.valid_bytes,
            last_sync: Instant::now(),
            unsynced: false,
            frame: Vec::new(),
        };
        Ok((wal, scan))
    }

    /// Append one record, returning its assigned sequence number.
    pub fn append(&mut self, payload: &[u8]) -> Result<AppendInfo, WalError> {
        self.append_with(|buf| buf.extend_from_slice(payload))
    }

    /// Append a record whose payload is produced directly into the
    /// frame buffer by `fill` (which must only extend the buffer, never
    /// touch existing bytes). This is the apply path's entry: the
    /// caller's encoder writes straight into the reused frame, so an
    /// append allocates nothing and copies the payload zero times.
    ///
    /// The frame is deliberately written in two halves with a crash
    /// point between them: the kill-matrix uses it to manufacture real
    /// torn tails through the real write path.
    pub fn append_with(&mut self, fill: impl FnOnce(&mut Vec<u8>)) -> Result<AppendInfo, WalError> {
        crash_point("wal-append-pre");
        let seq = self.last_seq + 1;
        let frame = &mut self.frame;
        frame.clear();
        frame.extend_from_slice(&[0u8; FRAME_SUMMED_AT]); // len + checksum, patched below
        frame.extend_from_slice(&seq.to_le_bytes());
        fill(frame);
        let payload_len = frame.len() - FRAME_HEADER as usize;
        frame[..4].copy_from_slice(&(payload_len as u32).to_le_bytes());
        let sum = xxh64(&frame[FRAME_SUMMED_AT..]);
        frame[4..FRAME_SUMMED_AT].copy_from_slice(&sum.to_le_bytes());
        if crash_point_armed("wal-append-torn") {
            // Fault-injection path: split the frame so the armed kill
            // between the halves leaves a genuinely torn tail on disk.
            let half = frame.len() / 2;
            self.file.write_all(&frame[..half])?;
            crash_point("wal-append-torn");
            self.file.write_all(&frame[half..])?;
        } else {
            self.file.write_all(frame)?;
        }
        self.unsynced = true;
        self.last_seq = seq;
        self.bytes += frame.len() as u64;
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Interval(ms) => self.last_sync.elapsed() >= Duration::from_millis(ms),
            FsyncPolicy::Never => false,
        };
        let mut fsync_us = 0;
        if due {
            let start = Instant::now();
            self.sync()?;
            fsync_us = start.elapsed().as_micros() as u64;
        }
        crash_point("wal-append-post");
        Ok(AppendInfo { seq, wal_bytes: self.bytes, fsynced: due, fsync_us })
    }

    /// Push appended bytes to stable storage now.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data()?;
        self.last_sync = Instant::now();
        self.unsynced = false;
        Ok(())
    }

    /// Drop every record with `seq <= through` by atomically rewriting
    /// the log: a temp sibling gets a header with `base_seq = through`
    /// plus the surviving suffix verbatim, is synced, and renamed over
    /// the original — the same protocol as the snapshot writer, so a
    /// crash at any instant leaves one complete log or the other.
    ///
    /// Returns the number of records kept.
    pub fn truncate_through(&mut self, through: u64) -> Result<usize, WalError> {
        assert!(
            through >= self.base_seq && through <= self.last_seq,
            "truncate_through({through}) outside logged range {}..={}",
            self.base_seq,
            self.last_seq
        );
        crash_point("wal-truncate-pre");
        // Re-scan our own file to find the cut offset. The file up to
        // `self.bytes` is clean by construction (we wrote it).
        self.file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        self.file.read_to_end(&mut bytes)?;
        bytes.truncate(self.bytes as usize);
        let scan = scan_bytes(&bytes)?;
        let mut cut = HEADER_BYTES;
        let mut kept = 0;
        for r in &scan.records {
            if r.seq <= through {
                cut += FRAME_HEADER + r.payload.len() as u64;
            } else {
                kept += 1;
            }
        }
        let tmp = {
            let mut name = self.path.as_os_str().to_owned();
            name.push(format!(".tmp.{}", std::process::id()));
            PathBuf::from(name)
        };
        let write_tmp = || -> Result<(), WalError> {
            let mut f = File::create(&tmp)?;
            f.write_all(&header_bytes(through))?;
            f.write_all(&bytes[cut as usize..])?;
            f.sync_data()?;
            Ok(())
        };
        if let Err(e) = write_tmp() {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        crash_point("wal-truncate-staged");
        if let Err(e) = std::fs::rename(&tmp, &self.path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        crash_point("wal-truncate-post");
        // Swap the live handle onto the renamed file.
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.bytes = file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.base_seq = through;
        self.unsynced = false;
        self.last_sync = Instant::now();
        Ok(kept)
    }

    /// Last appended (or replayed) sequence number.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Last sequence number folded into the paired snapshot.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// Current log size in bytes (header + frames).
    pub fn log_bytes(&self) -> u64 {
        self.bytes
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best-effort: a clean shutdown should not lose `Never`-policy
        // appends still sitting in the OS cache only because the
        // process exited.
        if self.unsynced {
            let _ = self.file.sync_data();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("eh-wal-{tag}-{}.wal", std::process::id()))
    }

    fn fresh(tag: &str) -> PathBuf {
        let p = temp_path(tag);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn policy_parse_display_roundtrip() {
        for p in [FsyncPolicy::Always, FsyncPolicy::Never, FsyncPolicy::Interval(25)] {
            assert_eq!(p.to_string().parse::<FsyncPolicy>().unwrap(), p);
        }
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert!("interval:ms".parse::<FsyncPolicy>().is_err());
    }

    #[test]
    fn append_reopen_resumes_sequence() {
        let path = fresh("resume");
        {
            let (mut wal, scan) = Wal::open(&path, FsyncPolicy::Always).unwrap();
            assert_eq!(scan.records.len(), 0);
            for i in 0..3u8 {
                let info = wal.append(&[i; 5]).unwrap();
                assert_eq!(info.seq, u64::from(i) + 1);
                assert!(info.fsynced);
            }
        }
        let (mut wal, scan) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(scan.base_seq, 0);
        assert_eq!(
            scan.records,
            (0..3u8)
                .map(|i| WalRecord { seq: u64::from(i) + 1, payload: vec![i; 5] })
                .collect::<Vec<_>>()
        );
        let info = wal.append(b"next").unwrap();
        assert_eq!(info.seq, 4);
        assert!(!info.fsynced);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_dropped_and_truncated() {
        // Cut the file mid-final-frame at every possible length: the
        // scan must keep exactly the whole frames and reopen must
        // physically shed the tail.
        let path = fresh("torn");
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        for i in 0..3u8 {
            wal.append(&[i; 9]).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        let frame = FRAME_HEADER as usize + 9;
        for cut in 1..frame {
            let torn_len = full.len() - cut;
            std::fs::write(&path, &full[..torn_len]).unwrap();
            let scan = scan_path(&path).unwrap();
            assert_eq!(scan.records.len(), 2, "cut {cut} bytes");
            let torn = scan.torn.unwrap();
            assert_eq!(torn.offset, (full.len() - frame) as u64);
            let (mut wal, scan) = Wal::open(&path, FsyncPolicy::Never).unwrap();
            assert_eq!(scan.records.len(), 2);
            assert_eq!(std::fs::metadata(&path).unwrap().len(), (full.len() - frame) as u64);
            // The log stays appendable and the new record takes the
            // dropped record's sequence number.
            assert_eq!(wal.append(b"replacement").unwrap().seq, 3);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_bad_final_frame_is_torn_not_corrupt() {
        let path = fresh("tail-flip");
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        wal.append(b"first").unwrap();
        wal.append(b"final").unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1; // last payload byte of the final frame
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_path(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn.is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_bad_before_tail_refuses() {
        let path = fresh("corrupt");
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        wal.append(b"aaaa").unwrap();
        wal.append(b"bbbb").unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let first_payload = (HEADER_BYTES + FRAME_HEADER) as usize;
        bytes[first_payload] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match scan_path(&path) {
            Err(WalError::Corrupt { seq: 1, offset, reason }) => {
                assert_eq!(offset, HEADER_BYTES);
                assert!(reason.contains("checksum"));
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // And open must refuse too — no silent truncation of the
        // middle of a log.
        assert!(matches!(Wal::open(&path, FsyncPolicy::Never), Err(WalError::Corrupt { .. })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_file_is_bad_header() {
        let path = fresh("foreign");
        std::fs::write(&path, b"definitely not a wal file, but long enough").unwrap();
        assert!(matches!(scan_path(&path), Err(WalError::BadHeader(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_create_reinitialises() {
        // A crash during the very first header write leaves a short
        // prefix of a fresh header; open must re-init, not refuse.
        let path = fresh("torn-create");
        let h = header_bytes(0);
        for cut in 0..h.len() {
            std::fs::write(&path, &h[..cut]).unwrap();
            let (mut wal, scan) = Wal::open(&path, FsyncPolicy::Never).unwrap();
            assert_eq!(scan.records.len(), 0, "cut {cut}");
            assert_eq!(wal.append(b"x").unwrap().seq, 1);
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn truncate_through_keeps_suffix_and_base() {
        let path = fresh("truncate");
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Always).unwrap();
        for i in 0..5u8 {
            wal.append(&[i; 4]).unwrap();
        }
        assert_eq!(wal.truncate_through(3).unwrap(), 2);
        assert_eq!(wal.base_seq(), 3);
        assert_eq!(wal.last_seq(), 5);
        // Appends continue across the rewrite.
        assert_eq!(wal.append(b"six").unwrap().seq, 6);
        drop(wal);
        let (mut wal, scan) = Wal::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(scan.base_seq, 3);
        assert_eq!(scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![4, 5, 6]);
        // Truncating everything leaves an empty log that still resumes
        // the sequence.
        assert_eq!(wal.truncate_through(6).unwrap(), 0);
        assert_eq!(wal.append(b"seven").unwrap().seq, 7);
        std::fs::remove_file(&path).unwrap();
    }

    mod framing_proptests {
        use super::*;
        use proptest::prelude::*;

        fn build_log(base_seq: u64, payloads: &[Vec<u8>]) -> Vec<u8> {
            let mut bytes = header_bytes(base_seq).to_vec();
            for (i, p) in payloads.iter().enumerate() {
                let seq = base_seq + 1 + i as u64;
                let mut summed = seq.to_le_bytes().to_vec();
                summed.extend_from_slice(p);
                bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
                bytes.extend_from_slice(&xxh64(&summed).to_le_bytes());
                bytes.extend_from_slice(&summed);
            }
            bytes
        }

        proptest! {
            #[test]
            fn scan_roundtrips_clean_logs(
                base in 0u64..1000,
                payloads in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 0..40), 0..8),
            ) {
                let scan = scan_bytes(&build_log(base, &payloads)).unwrap();
                prop_assert_eq!(scan.base_seq, base);
                prop_assert!(scan.torn.is_none());
                prop_assert_eq!(
                    scan.records.iter().map(|r| r.payload.clone()).collect::<Vec<_>>(),
                    payloads
                );
            }

            // The satellite pin: mutate ONE byte anywhere in a framed
            // log. The scan must never panic, and must never invent
            // records — on success the records are a prefix of the
            // original (possibly with a bent payload only in the final
            // kept record if the flip hit the tail... no: a flipped
            // payload fails its checksum, so every surviving record is
            // byte-identical to the original at its position).
            #[test]
            fn single_byte_mutation_never_panics_or_invents(
                payloads in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 1..24), 1..6),
                at in 0usize..4096,
                flip in 1u8..=255,
            ) {
                let clean = build_log(7, &payloads);
                let mut bent = clean.clone();
                let at = at % bent.len();
                bent[at] ^= flip;
                match scan_bytes(&bent) {
                    Err(_) => {}
                    Ok(scan) => {
                        // Every surviving record matches the original
                        // log at its position: flips either surface as
                        // errors/torn tails or hit bytes the frames
                        // never covered (none exist — so a clean scan
                        // means the flip landed in the final frame and
                        // tore it, or forged a checksum, which xxh64
                        // makes vanishingly unlikely).
                        for (i, r) in scan.records.iter().enumerate() {
                            prop_assert_eq!(r.seq, 8 + i as u64);
                            prop_assert_eq!(&r.payload, &payloads[i]);
                        }
                        prop_assert!(scan.records.len() <= payloads.len());
                    }
                }
            }

            // Truncating a clean log at ANY byte boundary must yield a
            // whole-frame prefix — never an error, never a half-record.
            #[test]
            fn any_truncation_is_a_clean_prefix(
                payloads in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 0..24), 1..6),
                cut_pick in 0usize..4096,
            ) {
                let clean = build_log(0, &payloads);
                let body = clean.len() - HEADER_BYTES as usize;
                let cut = HEADER_BYTES as usize + cut_pick % (body + 1);
                let scan = scan_bytes(&clean[..cut]).unwrap();
                for (i, r) in scan.records.iter().enumerate() {
                    prop_assert_eq!(&r.payload, &payloads[i]);
                }
                prop_assert!(scan.records.len() <= payloads.len());
                prop_assert_eq!(scan.torn.is_some(), cut != clean.len() && {
                    // torn iff the cut fell mid-frame
                    let mut off = HEADER_BYTES as usize;
                    let mut on_boundary = cut == off;
                    for p in &payloads {
                        off += FRAME_HEADER as usize + p.len();
                        on_boundary |= cut == off;
                    }
                    !on_boundary
                });
            }
        }
    }
}
