//! The query service: one shared engine, two caches, many callers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock, RwLockReadGuard};
use std::time::Instant;

use eh_query::{canonicalize, parse_sparql, CanonicalQuery, ConjunctiveQuery};
use eh_rdf::TripleStore;
use emptyheaded::{
    Engine, EngineError, FsyncPolicy, LoadMode, Plan, PlannerConfig, QueryResult, SharedStore,
    SnapshotError, UpdateBatch, UpdateSummary, WalError, WalRecovery,
};
use std::collections::HashMap;

use crate::cache::ResultLru;
use crate::metrics::ServiceMetrics;

/// Service knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Planner flags and execution runtime shared by every session: the
    /// runtime's `num_threads` parallelizes each query's join execution
    /// (session concurrency is a separate knob, `server_sessions`).
    pub planner: PlannerConfig,
    /// Byte budget of the LRU result cache. Results larger than the whole
    /// budget are recomputed on every request rather than cached.
    pub result_cache_bytes: usize,
    /// Maximum cached plans (clamped to ≥ 1). Canonical keys embed
    /// selection constants, so parameterized traffic (`... ?x <name>
    /// "user1"`, `"user2"`, ...) mints unbounded distinct shapes; the
    /// oldest plan is dropped once the cap is reached.
    pub plan_cache_entries: usize,
    /// Concurrent TCP sessions the front end serves (clamped to ≥ 1).
    /// Deliberately decoupled from the engine's `num_threads`: a session
    /// occupies its worker while *connected*, not just while executing,
    /// so an idle client must never starve the pool that runs joins.
    pub server_sessions: usize,
    /// Record service metrics (latency histograms, per-verb counters,
    /// cache counters) exposed by the `METRICS` verb. The recording path
    /// is a handful of relaxed atomics per request; turning it off exists
    /// mainly so the overhead benchmark has an uninstrumented baseline.
    pub record_metrics: bool,
    /// Queries slower than this many milliseconds are counted and kept in
    /// a bounded slow-query log. `None` (the default) disables the log;
    /// `EH_SLOW_QUERY_MS` sets it for [`ServiceConfig::default`].
    pub slow_query_ms: Option<u64>,
}

impl ServiceConfig {
    /// Default budget: 64 MiB of materialised results.
    pub const DEFAULT_RESULT_CACHE_BYTES: usize = 64 << 20;
    /// Default plan-cache capacity.
    pub const DEFAULT_PLAN_CACHE_ENTRIES: usize = 4096;
    /// Default concurrent-session capacity of the TCP front end.
    pub const DEFAULT_SERVER_SESSIONS: usize = 8;

    /// The slow-query threshold from `EH_SLOW_QUERY_MS` (unset, empty,
    /// `0`, or unparsable all mean "off").
    pub fn slow_query_ms_from_env() -> Option<u64> {
        std::env::var("EH_SLOW_QUERY_MS").ok()?.parse::<u64>().ok().filter(|&ms| ms > 0)
    }
}

impl Default for ServiceConfig {
    /// All optimizations on, runtime from `EH_THREADS` (sequential when
    /// unset), 64 MiB result budget, 4096 cached plans, 8 sessions,
    /// metrics on, slow-query log from `EH_SLOW_QUERY_MS` (off when
    /// unset).
    fn default() -> Self {
        ServiceConfig {
            planner: PlannerConfig::default().with_runtime(eh_par::RuntimeConfig::from_env()),
            result_cache_bytes: Self::DEFAULT_RESULT_CACHE_BYTES,
            plan_cache_entries: Self::DEFAULT_PLAN_CACHE_ENTRIES,
            server_sessions: Self::DEFAULT_SERVER_SESSIONS,
            record_metrics: true,
            slow_query_ms: Self::slow_query_ms_from_env(),
        }
    }
}

/// A cached plan: the canonical query it was built for (the engine
/// executes this rebuilt form) plus the plan itself.
struct CachedPlan {
    query: ConjunctiveQuery,
    plan: Plan,
}

/// The bounded plan store: map plus FIFO insertion order for eviction.
/// Keys are shared (`Arc`) between the two, as in the result LRU.
#[derive(Default)]
struct PlanCache {
    map: HashMap<Arc<CanonicalQuery>, Arc<CachedPlan>>,
    order: std::collections::VecDeque<Arc<CanonicalQuery>>,
}

/// Cache counters, readable while the service runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceStats {
    /// Plan-cache hits / misses.
    pub plan_hits: u64,
    /// Plan-cache misses (each one paid GHD enumeration + the LP solve).
    pub plan_misses: u64,
    /// Result-cache hits / misses.
    pub result_hits: u64,
    /// Result-cache misses (each one paid a join execution).
    pub result_misses: u64,
    /// Plans currently cached (bounded by
    /// [`ServiceConfig::plan_cache_entries`]).
    pub plan_cache_entries: u64,
    /// Bytes currently held by the result cache.
    pub result_cache_bytes: u64,
    /// Entries currently held by the result cache.
    pub result_cache_entries: u64,
    /// Current catalog epoch.
    pub epoch: u64,
    /// Update batches that actually changed data. No-op batches are
    /// counted separately in [`ServiceStats::updates_noop`], so apply
    /// latency percentiles and throughput math describe real work.
    pub updates_applied: u64,
    /// Update batches that changed nothing (every insert already
    /// resident, every delete already absent).
    pub updates_noop: u64,
    /// Delta pairs (staged inserts + tombstones) currently resident in
    /// the store's novelty overlays, awaiting compaction. Bounds the
    /// overlay memory the write path has deferred.
    pub staged_pairs: u64,
    /// Triples actually inserted across all applied batches.
    pub triples_inserted: u64,
    /// Triples actually deleted across all applied batches.
    pub triples_deleted: u64,
    /// Median end-to-end query latency in microseconds (0 until the
    /// first recorded query, or when metrics recording is off).
    pub query_p50_us: u64,
    /// 99th-percentile end-to-end query latency in microseconds.
    pub query_p99_us: u64,
    /// Subject-hash shards the store is partitioned into (1 = the
    /// unpartitioned layout).
    pub partitions: u64,
    /// Load imbalance across shards: the largest shard's logical triple
    /// count over the per-shard average (`1.0` = perfectly balanced,
    /// also reported for an empty or single-shard store). Subject-hash
    /// placement keeps this near 1 unless the data is pathologically
    /// concentrated on few subjects.
    pub max_shard_skew: f64,
    /// How the engine's snapshot loaded: [`LoadMode::Mmap`] when trie
    /// arenas serve from mapped pages, [`LoadMode::Copy`] otherwise
    /// (including engines never built from a snapshot).
    pub load_mode: LoadMode,
    /// Snapshot bytes held mapped (0 on a copy load).
    pub mapped_bytes: u64,
    /// Last WAL sequence number appended (0 without a log).
    pub wal_seq: u64,
    /// Write-ahead log size in bytes (0 without a log).
    pub wal_bytes: u64,
    /// The WAL fsync policy, `None` when no log is attached.
    pub wal_fsync: Option<FsyncPolicy>,
}

/// A cacheable result: the engine's [`QueryResult`] plus a lazily
/// rendered protocol row block, so repeated identical requests skip not
/// only the join but also per-row dictionary decoding and formatting.
/// Derefs to [`QueryResult`] for row access.
#[derive(Debug)]
pub struct CachedResult {
    result: QueryResult,
    rendered: std::sync::OnceLock<String>,
}

impl CachedResult {
    pub(crate) fn new(result: QueryResult) -> CachedResult {
        CachedResult { result, rendered: std::sync::OnceLock::new() }
    }

    /// The result's rows as protocol text — one tab-separated line of
    /// N-Triples-rendered terms per row — computed once per cached entry
    /// (the miss path renders eagerly so the cache charges real bytes).
    /// Control characters inside IRIs are escaped (`\n` → `\\n` etc.):
    /// they are invalid in N-Triples anyway, and raw ones would corrupt
    /// the line framing. (Literal bodies are escaped by [`Term`]'s
    /// `Display` already.)
    pub fn rendered_rows(&self, store: &TripleStore) -> &str {
        self.rendered.get_or_init(|| {
            let mut out = String::new();
            for i in 0..self.result.cardinality() {
                for (j, term) in self.result.decode_row(store, i).iter().enumerate() {
                    if j > 0 {
                        out.push('\t');
                    }
                    let text = term.to_string();
                    if text.contains(['\n', '\r', '\t']) {
                        out.push_str(
                            &text.replace('\n', "\\n").replace('\r', "\\r").replace('\t', "\\t"),
                        );
                    } else {
                        out.push_str(&text);
                    }
                }
                out.push('\n');
            }
            out
        })
    }
}

impl std::ops::Deref for CachedResult {
    type Target = QueryResult;

    fn deref(&self) -> &QueryResult {
        &self.result
    }
}

/// One answered query: the rows (shared, possibly served straight from
/// cache) plus the caller's column names and cache provenance.
#[derive(Debug, Clone)]
pub struct Answer {
    /// Column names in the *caller's* `SELECT` order and spelling. The
    /// cached [`QueryResult`] carries canonical names (`v0, v1, ...`);
    /// these are the names the response must print.
    pub columns: Vec<String>,
    /// The materialised rows (canonical column names inside).
    pub result: Arc<CachedResult>,
    /// True when the plan came from the plan cache. (Unset on a result
    /// hit, which skips planning entirely.)
    pub plan_cache_hit: bool,
    /// True when the rows came from the result cache.
    pub result_cache_hit: bool,
}

/// A concurrent, caching query service over one warmed engine.
///
/// Sessions call [`QueryService::query_sparql`] through `&self` from any
/// number of threads. Internally:
///
/// 1. the SPARQL text is parsed and [canonicalized](eh_query::canonicalize),
///    so α-equivalent query strings share one cache identity;
/// 2. the **result cache** (LRU, byte-budgeted, keyed by canonical query +
///    catalog epoch) is consulted;
/// 3. on a miss, the **plan cache** supplies (or planning builds) the
///    `Plan` for the canonical form — GHD enumeration and the fractional
///    cover LP run once per query shape, not once per request;
/// 4. the engine executes the plan on its configured runtime, and the
///    result is published to the cache.
///
/// Cached and freshly computed answers are byte-identical: a cached entry
/// *is* the deterministic engine's output, and parallel execution is
/// bit-identical to sequential by the runtime's merge contract.
pub struct QueryService {
    engine: Engine,
    config: ServiceConfig,
    // Both cache locks recover from poisoning
    // (`unwrap_or_else(PoisonError::into_inner)`): they guard *derived*
    // data that is safe to serve or retire after a panicking session,
    // and one crashed request must not wedge every later one.
    plans: RwLock<PlanCache>,
    results: Mutex<ResultLru>,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    updates_applied: AtomicU64,
    updates_noop: AtomicU64,
    triples_inserted: AtomicU64,
    triples_deleted: AtomicU64,
    metrics: ServiceMetrics,
}

impl QueryService {
    /// A service over `store` with the given configuration.
    pub fn new(store: impl Into<SharedStore>, config: ServiceConfig) -> QueryService {
        QueryService::from_engine(Engine::with_config(store, config.planner), config)
    }

    fn from_engine(engine: Engine, config: ServiceConfig) -> QueryService {
        QueryService {
            engine,
            config,
            plans: RwLock::new(PlanCache::default()),
            results: Mutex::new(ResultLru::new(config.result_cache_bytes)),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            result_hits: AtomicU64::new(0),
            result_misses: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
            updates_noop: AtomicU64::new(0),
            triples_inserted: AtomicU64::new(0),
            triples_deleted: AtomicU64::new(0),
            metrics: ServiceMetrics::new(),
        }
    }

    /// A service with default configuration.
    pub fn with_defaults(store: impl Into<SharedStore>) -> QueryService {
        QueryService::new(store, ServiceConfig::default())
    }

    /// A service restored from a snapshot file ([`Engine::from_snapshot`]):
    /// the store loads without parsing or sorting and the catalog starts
    /// warm with the snapshot's frozen tries, so even the *first* query
    /// skips index construction.
    pub fn from_snapshot(
        path: impl AsRef<std::path::Path>,
        config: ServiceConfig,
    ) -> Result<QueryService, SnapshotError> {
        Ok(QueryService::from_engine(Engine::from_snapshot(path, config.planner)?, config))
    }

    /// [`QueryService::from_snapshot`], zero-copy: trie arenas serve
    /// from the `mmap`ed snapshot file ([`Engine::from_snapshot_mmap`]),
    /// falling back to the copy path on unmappable files or platforms.
    /// `STATS` reports `load_mode=mmap|copy` and the `eh_mapped_bytes`
    /// gauge shows how much of the file is held mapped.
    pub fn from_snapshot_mmap(
        path: impl AsRef<std::path::Path>,
        config: ServiceConfig,
    ) -> Result<QueryService, SnapshotError> {
        Ok(QueryService::from_engine(Engine::from_snapshot_mmap(path, config.planner)?, config))
    }

    /// Persist the current store (and freshly frozen hot-order tries) to
    /// `path` — the protocol's `SAVE` verb. Returns the bytes written
    /// and the triple count of the image. The store is cloned under its
    /// read lock and serialized from the clone, so the image is a
    /// consistent point in time and concurrent `APPLY` traffic is never
    /// stalled behind trie freezing or file I/O.
    pub fn save_snapshot(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(u64, usize), SnapshotError> {
        self.engine.save_snapshot(path)
    }

    /// Attach (or create) a write-ahead log, replaying any records it
    /// holds through the staging machinery first (see
    /// [`Engine::open_wal`]). Call before serving: the restart protocol
    /// is load snapshot → `open_wal` → serve, after which every
    /// `INSERT`/`DELETE`/`APPLY` batch is logged (and fsynced per
    /// [`PlannerConfig::wal_fsync`]) before it stages, and `SAVE`
    /// truncates the log down to the new image.
    pub fn open_wal(&mut self, path: impl AsRef<std::path::Path>) -> Result<WalRecovery, WalError> {
        let recovery = self.engine.open_wal(path)?;
        if recovery.replayed > 0 {
            // Replayed batches moved the epoch past anything cached.
            self.drop_derived_caches();
        }
        Ok(recovery)
    }

    /// Replay a foreign log file through the service's update path — the
    /// protocol's `REPLAY <path>` verb and the replica catch-up entry
    /// point. Each record flows through [`QueryService::update`], so
    /// cache retirement, update counters, apply-latency metrics, and
    /// (when this service has its own WAL) re-logging all behave exactly
    /// as for live write traffic.
    pub fn replay(&self, path: impl AsRef<std::path::Path>) -> Result<WalRecovery, WalError> {
        let scan = eh_wal::scan_path(path.as_ref())?;
        let mut recovery = WalRecovery {
            base_seq: scan.base_seq,
            last_seq: scan.last_seq(),
            torn_tail_dropped: scan.torn.is_some(),
            ..WalRecovery::default()
        };
        for record in &scan.records {
            let (deletes, inserts) = eh_rdf::decode_update(&record.payload).map_err(|_| {
                WalError::Corrupt { seq: record.seq, offset: 0, reason: "payload decode failed" }
            })?;
            let summary = self.update(UpdateBatch { inserts, deletes });
            recovery.replayed += 1;
            recovery.inserted += summary.inserted;
            recovery.deleted += summary.deleted;
        }
        Ok(recovery)
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Read access to the underlying store (short-lived guard).
    pub fn store(&self) -> RwLockReadGuard<'_, TripleStore> {
        self.engine.store()
    }

    /// The service configuration.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Parse, canonicalize, and answer a SPARQL query through the caches.
    pub fn query_sparql(&self, text: &str) -> Result<Answer, EngineError> {
        let t0 = self.config.record_metrics.then(Instant::now);
        let q = {
            let store = self.store();
            parse_sparql(text, &store)?
        };
        let out = self.query_inner(&q);
        if let Some(t0) = t0 {
            self.record_query(t0, &out, Some(text));
        }
        out
    }

    /// Answer an already-built query through the caches.
    pub fn query(&self, q: &ConjunctiveQuery) -> Result<Answer, EngineError> {
        let t0 = self.config.record_metrics.then(Instant::now);
        let out = self.query_inner(q);
        if let Some(t0) = t0 {
            self.record_query(t0, &out, None);
        }
        out
    }

    /// Record one answered (or failed) query into the metric surface:
    /// the end-to-end latency histogram, cache hit/miss counters, and —
    /// past the configured threshold — the slow-query log.
    fn record_query(&self, t0: Instant, out: &Result<Answer, EngineError>, text: Option<&str>) {
        let us = t0.elapsed().as_micros() as u64;
        self.metrics.query_latency_us.record(us);
        if let Ok(a) = out {
            if a.result_cache_hit {
                self.metrics.result_cache_hits.inc();
            } else {
                self.metrics.result_cache_misses.inc();
                if a.plan_cache_hit {
                    self.metrics.plan_cache_hits.inc();
                } else {
                    self.metrics.plan_cache_misses.inc();
                }
            }
        }
        if let Some(threshold_ms) = self.config.slow_query_ms {
            let ms = us / 1_000;
            if ms >= threshold_ms {
                let text = text.unwrap_or("<prebuilt query>");
                eprintln!("slow query ({ms} ms): {text}");
                self.metrics.note_slow_query(ms, text);
            }
        }
    }

    fn query_inner(&self, q: &ConjunctiveQuery) -> Result<Answer, EngineError> {
        let columns: Vec<String> =
            q.projection().iter().map(|&v| q.var_name(v).to_string()).collect();
        let canonical = canonicalize(q);
        let epoch = self.engine.catalog().epoch();
        let key = (canonical, epoch);

        if let Some(result) = self.results.lock().unwrap_or_else(PoisonError::into_inner).get(&key)
        {
            self.result_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Answer { columns, result, plan_cache_hit: false, result_cache_hit: true });
        }
        self.result_misses.fetch_add(1, Ordering::Relaxed);

        let (canonical, _) = key;
        let (cached, plan_cache_hit) = self.plan_for(&canonical)?;
        let result = Arc::new(CachedResult::new(self.engine.run_plan(&cached.query, &cached.plan)));
        // When the entry can be cached, render the protocol text now so
        // the budget charges what the entry actually holds — rendered
        // terms dominate the raw ids (LUBM IRIs are ~50 bytes per 4-byte
        // id), so accounting only the tuple payload would blow the
        // budget by an order of magnitude. Results whose payload alone
        // busts the budget skip rendering: they cannot be cached, and a
        // protocol caller will render lazily if it needs the text.
        let bytes = if result.approx_bytes() <= self.config.result_cache_bytes {
            result.approx_bytes() + result.rendered_rows(&self.store()).len()
        } else {
            result.approx_bytes()
        };
        self.results.lock().unwrap_or_else(PoisonError::into_inner).insert(
            (canonical, epoch),
            Arc::clone(&result),
            bytes,
        );
        Ok(Answer { columns, result, plan_cache_hit, result_cache_hit: false })
    }

    /// The plan for a canonical query, from cache or built fresh. Two
    /// racing builders may both plan; the first insert wins and both run
    /// the same (deterministic) plan. The cache is FIFO-bounded by
    /// [`ServiceConfig::plan_cache_entries`].
    fn plan_for(&self, canonical: &CanonicalQuery) -> Result<(Arc<CachedPlan>, bool), EngineError> {
        if let Some(p) =
            self.plans.read().unwrap_or_else(PoisonError::into_inner).map.get(canonical)
        {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(p), true));
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        let planned_epoch = self.engine.catalog().epoch();
        let query = canonical.to_query()?;
        let plan = self.engine.plan(&query)?;
        let entry = Arc::new(CachedPlan { query, plan });
        let mut plans = self.plans.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(existing) = plans.map.get(canonical) {
            return Ok((Arc::clone(existing), false));
        }
        // Plan entries carry no epoch in their key, so an insert must not
        // outlive the clear that [`QueryService::update`] performs: a
        // plan computed from pre-update cardinalities (whose attribute
        // order shapes the byte-exact row order) could otherwise be
        // published into the post-update cache and served indefinitely.
        // Planning is per-shape, so running this one uncached is cheap.
        if self.engine.catalog().epoch() != planned_epoch {
            return Ok((entry, false));
        }
        let cap = self.config.plan_cache_entries.max(1);
        while plans.map.len() >= cap {
            let Some(oldest) = plans.order.pop_front() else { break };
            plans.map.remove(&*oldest);
        }
        let key = Arc::new(canonical.clone());
        plans.map.insert(Arc::clone(&key), Arc::clone(&entry));
        plans.order.push_back(key);
        Ok((entry, false))
    }

    /// Drop every cached plan and result and advance the catalog epoch
    /// (also clearing cached tries). In-flight queries keyed by the old
    /// epoch may still publish stale entries; the epoch in the key keeps
    /// them unreachable, and LRU pressure retires them.
    pub fn invalidate(&self) -> u64 {
        self.drop_derived_caches();
        self.engine.catalog().invalidate()
    }

    /// Apply a batch of live updates through the engine and retire every
    /// derived cache entry the change invalidates.
    ///
    /// The division of labour: [`Engine::update`] touches only the
    /// *changed* predicates' tries (untouched predicates keep theirs),
    /// while this layer drops **all** cached plans and results — a plan
    /// embeds cardinality-driven decisions (GHD choice, attribute order)
    /// that the mutation may have shifted, and a materialised result can
    /// join across any predicate, so neither can be retained per
    /// predicate. Old-epoch result entries would be unreachable anyway
    /// (the epoch is in the key); clearing just frees their bytes now. A
    /// batch that changes nothing leaves epoch and caches untouched.
    pub fn update(&self, batch: UpdateBatch) -> UpdateSummary {
        let t0 = self.config.record_metrics.then(Instant::now);
        let summary = self.engine.update(batch);
        // WAL accounting runs before the no-op early return: a no-op
        // batch is still appended (replaying it is harmless), so the
        // append/bytes/fsync series must see it.
        if let (true, Some(w)) = (t0.is_some(), summary.wal) {
            self.metrics.wal_appends.inc();
            self.metrics.wal_bytes.set(w.wal_bytes as i64);
            if w.fsynced {
                self.metrics.wal_fsync_us.record(w.fsync_us);
            }
        }
        if summary.changed_predicates == 0 {
            // Nothing changed: no caches to retire, and recording the
            // batch into the applied counter or the apply-latency
            // histogram would dilute both — a no-op APPLY costs a store
            // probe, not a staging pass. Count it under its own series.
            self.updates_noop.fetch_add(1, Ordering::Relaxed);
            if t0.is_some() {
                self.metrics.updates_noop.inc();
            }
            return summary;
        }
        self.drop_derived_caches();
        self.updates_applied.fetch_add(1, Ordering::Relaxed);
        self.triples_inserted.fetch_add(summary.inserted as u64, Ordering::Relaxed);
        self.triples_deleted.fetch_add(summary.deleted as u64, Ordering::Relaxed);
        if let Some(t0) = t0 {
            self.metrics.update_apply_latency_us.record(t0.elapsed().as_micros() as u64);
            self.metrics.updates_applied.inc();
            self.metrics.triples_inserted.add(summary.inserted as u64);
            self.metrics.triples_deleted.add(summary.deleted as u64);
            if summary.compacted_predicates > 0 {
                self.metrics.compactions.add(summary.compacted_predicates as u64);
            }
            for &(shard, us) in &summary.shard_pauses {
                self.metrics.record_shard_pause(shard, us);
            }
        }
        summary
    }

    /// Fold every staged delta overlay into fresh frozen base tables —
    /// the protocol's `COMPACT` verb. Threshold-triggered compaction
    /// already runs inside [`Engine::update`]; this is the operator's
    /// explicit handle for reclaiming overlay memory (and restoring
    /// pure-base query speed) at a moment of their choosing. Folding
    /// advances the epoch, so derived caches are retired; with nothing
    /// staged this is a free no-op that touches neither.
    pub fn compact(&self) -> UpdateSummary {
        let t0 = self.config.record_metrics.then(Instant::now);
        let summary = self.engine.compact();
        if summary.compacted_predicates == 0 {
            return summary;
        }
        self.drop_derived_caches();
        if let Some(t0) = t0 {
            self.metrics.compaction_pause_us.record(t0.elapsed().as_micros() as u64);
            self.metrics.compactions.add(summary.compacted_predicates as u64);
            for &(shard, us) in &summary.shard_pauses {
                self.metrics.record_shard_pause(shard, us);
            }
        }
        summary
    }

    fn drop_derived_caches(&self) {
        {
            let mut plans = self.plans.write().unwrap_or_else(PoisonError::into_inner);
            plans.map.clear();
            plans.order.clear();
        }
        self.results.lock().unwrap_or_else(PoisonError::into_inner).clear();
    }

    /// Current cache counters.
    pub fn stats(&self) -> ServiceStats {
        let (bytes, entries) = {
            let results = self.results.lock().unwrap_or_else(PoisonError::into_inner);
            (results.bytes() as u64, results.len() as u64)
        };
        let wal = self.engine.wal_status();
        let (partitions, max_shard_skew) = {
            let shards = self.store().shard_stats();
            let total: u64 = shards.iter().map(|s| s.triples as u64).sum();
            let max = shards.iter().map(|s| s.triples as u64).max().unwrap_or(0);
            let skew =
                if total == 0 { 1.0 } else { max as f64 * shards.len() as f64 / total as f64 };
            (shards.len() as u64, skew)
        };
        ServiceStats {
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            result_hits: self.result_hits.load(Ordering::Relaxed),
            result_misses: self.result_misses.load(Ordering::Relaxed),
            plan_cache_entries: self.plans.read().unwrap_or_else(PoisonError::into_inner).map.len()
                as u64,
            result_cache_bytes: bytes,
            result_cache_entries: entries,
            epoch: self.engine.catalog().epoch(),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            updates_noop: self.updates_noop.load(Ordering::Relaxed),
            staged_pairs: self.store().staged_pairs() as u64,
            triples_inserted: self.triples_inserted.load(Ordering::Relaxed),
            triples_deleted: self.triples_deleted.load(Ordering::Relaxed),
            query_p50_us: self.metrics.query_latency_us.p50(),
            query_p99_us: self.metrics.query_latency_us.p99(),
            partitions,
            max_shard_skew,
            load_mode: self.engine.load_info().map_or(LoadMode::Copy, |l| l.mode),
            mapped_bytes: self.engine.load_info().map_or(0, |l| l.mapped_bytes),
            wal_seq: wal.map_or(0, |w| w.seq),
            wal_bytes: wal.map_or(0, |w| w.bytes),
            wal_fsync: wal.map(|w| w.fsync),
        }
    }

    /// The service's metric handles (the TCP front end records per-verb
    /// counters and the session gauge through these).
    pub(crate) fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Whether this service records metrics (see
    /// [`ServiceConfig::record_metrics`]).
    pub(crate) fn metrics_on(&self) -> bool {
        self.config.record_metrics
    }

    /// Render the full metric exposition (Prometheus text format) — the
    /// `METRICS` verb's payload. Cache-occupancy and epoch gauges are
    /// synchronised from live state at scrape time; counters and
    /// histograms are whatever the recording paths accumulated.
    pub fn metrics_text(&self) -> String {
        let (bytes, entries) = {
            let results = self.results.lock().unwrap_or_else(PoisonError::into_inner);
            (results.bytes() as i64, results.len() as i64)
        };
        self.metrics.result_cache_bytes.set(bytes);
        self.metrics.result_cache_entries.set(entries);
        self.metrics
            .plan_cache_entries
            .set(self.plans.read().unwrap_or_else(PoisonError::into_inner).map.len() as i64);
        self.metrics.epoch.set(self.engine.catalog().epoch() as i64);
        self.metrics.staged_pairs.set(self.store().staged_pairs() as i64);
        self.metrics.mapped_bytes.set(self.engine.load_info().map_or(0, |l| l.mapped_bytes) as i64);
        if let Some(w) = self.engine.wal_status() {
            self.metrics.wal_bytes.set(w.bytes as i64);
        }
        let arena = self.engine.catalog().arena_bytes_by_shard();
        for s in self.store().shard_stats() {
            let bytes = arena.get(s.shard).copied().unwrap_or(0);
            self.metrics.set_shard_gauges(
                s.shard,
                s.triples as i64,
                s.staged_pairs as i64,
                bytes as i64,
            );
        }
        self.metrics.expose()
    }

    /// Recent slow queries (oldest first; empty unless
    /// [`ServiceConfig::slow_query_ms`] is set and was exceeded).
    pub fn slow_queries(&self) -> Vec<String> {
        self.metrics.slow_log()
    }

    /// `EXPLAIN ANALYZE` for the `PROFILE` verb: parse the SPARQL text,
    /// plan it, execute it with full profiling, and render the plan with
    /// measured numbers. Deliberately bypasses the result cache — the
    /// point is to measure a real execution — but shares the service's
    /// engine, so it profiles against the live store and warm tries.
    pub fn profile_sparql(&self, text: &str) -> Result<String, EngineError> {
        self.engine.explain_analyze_sparql(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_lubm::queries::{lubm_query, QUERY_NUMBERS};
    use eh_lubm::{generate_store, GeneratorConfig};
    use emptyheaded::OptFlags;

    fn service(store: &SharedStore) -> QueryService {
        QueryService::new(
            store.clone(),
            ServiceConfig {
                planner: PlannerConfig::with_flags(OptFlags::all()),
                result_cache_bytes: 1 << 20,
                plan_cache_entries: ServiceConfig::DEFAULT_PLAN_CACHE_ENTRIES,
                server_sessions: ServiceConfig::DEFAULT_SERVER_SESSIONS,
                record_metrics: true,
                slow_query_ms: None,
            },
        )
    }

    #[test]
    fn repeat_queries_hit_both_caches() {
        let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
        let svc = service(&store);
        let q = lubm_query(2, &store.read()).unwrap();
        let first = svc.query(&q).unwrap();
        assert!(!first.plan_cache_hit && !first.result_cache_hit);
        let second = svc.query(&q).unwrap();
        assert!(second.result_cache_hit);
        assert!(Arc::ptr_eq(&first.result, &second.result));
        let stats = svc.stats();
        assert_eq!((stats.result_hits, stats.result_misses), (1, 1));
        assert_eq!((stats.plan_hits, stats.plan_misses), (0, 1));
        assert!(stats.result_cache_bytes > 0);
    }

    #[test]
    fn alpha_equivalent_sparql_strings_share_entries() {
        let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
        let svc = service(&store);
        let a = svc
            .query_sparql(
                "PREFIX ub: <http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#>\n\
                 SELECT ?s ?c WHERE { ?s ub:takesCourse ?c . ?t ub:teacherOf ?c }",
            )
            .unwrap();
        // Renamed variables, reordered atoms, duplicated pattern.
        let b = svc
            .query_sparql(
                "PREFIX ub: <http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#>\n\
                 SELECT ?x ?y WHERE { ?z ub:teacherOf ?y . ?x ub:takesCourse ?y . \
                 ?x ub:takesCourse ?y }",
            )
            .unwrap();
        assert!(b.result_cache_hit, "α-equivalent text must hit the result cache");
        assert!(Arc::ptr_eq(&a.result, &b.result));
        // Caller-facing names track each query's own SELECT clause.
        assert_eq!(a.columns, vec!["s", "c"]);
        assert_eq!(b.columns, vec!["x", "y"]);
    }

    #[test]
    fn plan_cache_hits_when_results_do_not_fit() {
        let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
        // Zero-byte result budget: nothing is ever cached, so repeats
        // exercise the plan cache in isolation.
        let svc = QueryService::new(
            store.clone(),
            ServiceConfig {
                planner: PlannerConfig::with_flags(OptFlags::all()),
                result_cache_bytes: 0,
                plan_cache_entries: ServiceConfig::DEFAULT_PLAN_CACHE_ENTRIES,
                server_sessions: ServiceConfig::DEFAULT_SERVER_SESSIONS,
                record_metrics: true,
                slow_query_ms: None,
            },
        );
        let q = lubm_query(2, &store.read()).unwrap();
        let reference = svc.query(&q).unwrap();
        for _ in 0..3 {
            let again = svc.query(&q).unwrap();
            assert!(again.plan_cache_hit && !again.result_cache_hit);
            assert_eq!(again.result.tuples(), reference.result.tuples());
        }
        let stats = svc.stats();
        assert_eq!((stats.plan_hits, stats.plan_misses), (3, 1));
        assert_eq!((stats.result_hits, stats.result_misses), (0, 4));
        assert_eq!(stats.result_cache_entries, 0);
    }

    #[test]
    fn plan_cache_is_bounded_by_config() {
        let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
        // Result caching off and a 2-plan cap: the distinct shapes of the
        // workload churn through the bounded plan store.
        let svc = QueryService::new(
            store.clone(),
            ServiceConfig {
                planner: PlannerConfig::with_flags(OptFlags::all()),
                result_cache_bytes: 0,
                plan_cache_entries: 2,
                server_sessions: ServiceConfig::DEFAULT_SERVER_SESSIONS,
                record_metrics: true,
                slow_query_ms: None,
            },
        );
        for &n in QUERY_NUMBERS.iter() {
            svc.query(&lubm_query(n, &store.read()).unwrap()).unwrap();
            assert!(svc.stats().plan_cache_entries <= 2);
        }
        assert_eq!(svc.stats().plan_cache_entries, 2);
        // Evicted plans rebuild transparently: same answers, extra miss.
        let q = lubm_query(1, &store.read()).unwrap();
        let again = svc.query(&q).unwrap();
        assert!(!again.plan_cache_hit);
        assert!(!again.result.is_empty());
    }

    #[test]
    fn cached_answers_match_direct_execution_for_the_whole_workload() {
        let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
        let svc = service(&store);
        let engine = Engine::new(store.clone(), OptFlags::all());
        for n in QUERY_NUMBERS {
            let q = lubm_query(n, &store.read()).unwrap();
            let direct = engine.run(&q).unwrap();
            let cold = svc.query(&q).unwrap();
            let warm = svc.query(&q).unwrap();
            assert!(warm.result_cache_hit, "query {n}");
            for answer in [&cold, &warm] {
                assert_eq!(answer.result.tuples(), direct.tuples(), "query {n}");
                let names: Vec<String> =
                    q.projection().iter().map(|&v| q.var_name(v).to_string()).collect();
                assert_eq!(answer.columns, names, "query {n}");
            }
        }
    }

    #[test]
    fn invalidate_bumps_epoch_and_forces_recompute() {
        let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
        let svc = service(&store);
        let q = lubm_query(14, &store.read()).unwrap();
        let before = svc.query(&q).unwrap();
        assert_eq!(svc.invalidate(), 1);
        assert_eq!(svc.stats().epoch, 1);
        assert_eq!(svc.stats().result_cache_entries, 0);
        let after = svc.query(&q).unwrap();
        assert!(!after.result_cache_hit && !after.plan_cache_hit);
        // Same store contents, so the recomputed answer is identical.
        assert_eq!(after.result.tuples(), before.result.tuples());
    }

    #[test]
    fn update_retires_caches_and_answers_like_a_cold_engine() {
        use eh_rdf::{Term, Triple};
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
        let store = SharedStore::from_triples(vec![t("a", "p", "b")]);
        let svc = service(&store);
        let q = "SELECT ?x ?y WHERE { ?x <p> ?y }";
        assert_eq!(svc.query_sparql(q).unwrap().result.cardinality(), 1);
        assert!(svc.query_sparql(q).unwrap().result_cache_hit);

        let mut batch = UpdateBatch::new();
        batch.insert(t("c", "p", "d")).delete(t("a", "p", "b"));
        let summary = svc.update(batch);
        assert_eq!((summary.inserted, summary.deleted), (1, 1));
        assert_eq!(summary.epoch, 1);
        let stats = svc.stats();
        assert_eq!(stats.epoch, 1);
        assert_eq!(
            (stats.updates_applied, stats.triples_inserted, stats.triples_deleted),
            (1, 1, 1)
        );
        assert_eq!((stats.plan_cache_entries, stats.result_cache_entries), (0, 0));

        // Post-update answers equal a cold engine over the same store.
        let answer = svc.query_sparql(q).unwrap();
        assert!(!answer.result_cache_hit && !answer.plan_cache_hit);
        let cold = Engine::new(store.clone(), OptFlags::all()).run_sparql(q).unwrap();
        assert_eq!(answer.result.tuples(), cold.tuples());

        // A no-op batch (re-inserting a resident triple) leaves the epoch
        // and the freshly warmed caches alone.
        assert!(svc.query_sparql(q).unwrap().result_cache_hit);
        let mut noop = UpdateBatch::new();
        noop.insert(t("c", "p", "d"));
        let summary = svc.update(noop);
        assert_eq!((summary.inserted, summary.changed_predicates), (0, 0));
        assert_eq!(summary.epoch, 1);
        assert_eq!(svc.stats().result_cache_entries, 1);
        assert!(svc.query_sparql(q).unwrap().result_cache_hit);

        // The no-op batch lands in its own counter: the applied count and
        // the apply-latency histogram keep describing batches that did
        // real work.
        let stats = svc.stats();
        assert_eq!((stats.updates_applied, stats.updates_noop), (1, 1));
        let text = svc.metrics_text();
        assert!(text.contains("eh_updates_applied_total 1"), "{text}");
        assert!(text.contains("eh_updates_noop_total 1"), "{text}");
        assert!(text.contains("eh_update_apply_latency_us_count 1"), "{text}");
    }

    #[test]
    fn poisoned_cache_locks_recover_instead_of_wedging_the_service() {
        use eh_rdf::{Term, Triple};
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
        let store = SharedStore::from_triples(vec![t("a", "p", "b")]);
        let svc = service(&store);
        let q = "SELECT ?x ?y WHERE { ?x <p> ?y }";
        svc.query_sparql(q).unwrap();

        // Two sessions die while holding the cache locks — the classic
        // poisoning scenario a panicking request used to leave behind.
        let svc_ref = &svc;
        std::thread::scope(|scope| {
            let victim = scope.spawn(move || {
                let _guard = svc_ref.results.lock().unwrap();
                panic!("session dies holding the result cache");
            });
            assert!(victim.join().is_err());
            let victim = scope.spawn(move || {
                let _guard = svc_ref.plans.write().unwrap();
                panic!("session dies holding the plan cache");
            });
            assert!(victim.join().is_err());
        });

        // Later sessions still get full service through both caches.
        let warm = svc.query_sparql(q).unwrap();
        assert!(warm.result_cache_hit);
        let stats = svc.stats();
        assert_eq!(stats.result_hits, 1, "{stats:?}");
        assert!(!svc.metrics_text().is_empty());
        let mut batch = UpdateBatch::new();
        batch.insert(t("c", "p", "d"));
        assert_eq!(svc.update(batch).inserted, 1);
        assert_eq!(svc.query_sparql(q).unwrap().result.cardinality(), 2);
    }

    #[test]
    fn partitioned_service_reports_shards_in_stats_and_metrics() {
        use eh_rdf::{Term, Triple};
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
        let triples: Vec<Triple> = (0..32).map(|i| t(&format!("s{i}"), "p", "o")).collect();
        let store = SharedStore::new(TripleStore::from_triples_partitioned(triples, 4));
        let svc = service(&store);
        let q = "SELECT ?x WHERE { ?x <p> <o> }";
        assert_eq!(svc.query_sparql(q).unwrap().result.cardinality(), 32);

        let stats = svc.stats();
        assert_eq!(stats.partitions, 4);
        assert!(stats.max_shard_skew >= 1.0, "{stats:?}");
        // 32 hashed subjects over 4 shards: nothing pathological.
        assert!(stats.max_shard_skew < 4.0, "{stats:?}");

        // Every shard gets its labeled occupancy series, and the warmed
        // shard tries show up as cached arena bytes somewhere.
        let text = svc.metrics_text();
        for shard in 0..4 {
            assert!(text.contains(&format!("eh_shard_triples{{shard=\"{shard}\"}}")), "{text}");
            assert!(
                text.contains(&format!("eh_shard_staged_pairs{{shard=\"{shard}\"}}")),
                "{text}"
            );
            assert!(text.contains(&format!("eh_shard_arena_bytes{{shard=\"{shard}\"}}")), "{text}");
        }
        assert!(!text.contains("eh_shard_triples{shard=\"4\"}"), "{text}");

        // A COMPACT that folds one shard's staged delta records its pause
        // in that shard's labeled series of the pause family.
        let mut batch = UpdateBatch::new();
        batch.insert(t("s99", "p", "o"));
        assert_eq!(svc.update(batch).inserted, 1);
        let summary = svc.compact();
        assert_eq!(summary.compacted_predicates, 1);
        assert_eq!(summary.shard_pauses.len(), 1, "{summary:?}");
        let shard = summary.shard_pauses[0].0;
        let text = svc.metrics_text();
        assert!(
            text.contains(&format!("eh_compaction_pause_us_count{{shard=\"{shard}\"}} 1")),
            "{text}"
        );
    }

    #[test]
    fn parse_errors_surface_not_panic() {
        let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
        let svc = service(&store);
        let err = svc.query_sparql("SELECT ?x WHERE { ?x ").unwrap_err();
        assert!(err.to_string().contains("byte"), "{err}");
    }

    #[test]
    fn concurrent_sessions_agree_with_sequential_answers() {
        let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
        let svc = service(&store);
        let reference: Vec<_> = QUERY_NUMBERS
            .iter()
            .map(|&n| {
                let q = lubm_query(n, &store.read()).unwrap();
                Engine::new(store.clone(), OptFlags::all()).run(&q).unwrap()
            })
            .collect();
        // 8 sessions × 2 passes over the mix, racing on both caches.
        std::thread::scope(|scope| {
            for worker in 0..8 {
                let (svc, reference, store) = (&svc, &reference, &store);
                scope.spawn(move || {
                    for pass in 0..2 {
                        for i in 0..QUERY_NUMBERS.len() {
                            let idx = (i + worker + pass) % QUERY_NUMBERS.len();
                            let q = lubm_query(QUERY_NUMBERS[idx], &store.read()).unwrap();
                            let a = svc.query(&q).unwrap();
                            assert_eq!(a.result.tuples(), reference[idx].tuples());
                        }
                    }
                });
            }
        });
        let stats = svc.stats();
        assert!(stats.result_hits > 0, "{stats:?}");
        assert_eq!(stats.result_hits + stats.result_misses, 8 * 2 * 12);
    }
}
