//! The line-delimited TCP front end and its client.
//!
//! ## Protocol
//!
//! Requests are single lines (`\n`-terminated; SPARQL must be flattened
//! to one line — any whitespace works for the parser):
//!
//! | Request | Response |
//! |---|---|
//! | `QUERY <sparql>` | `OK <rows> <col> <col> ...` then one tab-separated N-Triples-encoded line per row, then `END` |
//! | `PROFILE <sparql>` | `OK PROFILE` then the `EXPLAIN ANALYZE` text (plan + measured execution profile), then `END` |
//! | `METRICS` | `OK METRICS` then the Prometheus text-format exposition, then `END` |
//! | `INSERT <s> <p> <o> .` | `OK pending inserts=<n> deletes=<n>` (staged, N-Triples term syntax) |
//! | `DELETE <s> <p> <o> .` | `OK pending inserts=<n> deletes=<n>` (staged) |
//! | `APPLY` | `OK applied inserted=<n> deleted=<n> predicates=<n> compacted=<n> epoch=<n>` (staged batch applied atomically) |
//! | `COMPACT` | `OK compacted predicates=<n> rebuilt=<n> epoch=<n>` (staged deltas folded into fresh base tables) |
//! | `STATS` | `OK plan_hits=<n> plan_misses=<n> result_hits=<n> result_misses=<n> plan_entries=<n> cache_entries=<n> cache_bytes=<n> epoch=<n> updates=<n> updates_noop=<n> inserted=<n> deleted=<n> staged=<n> query_p50_us=<n> query_p99_us=<n> partitions=<n> max_shard_skew=<x.xx> load_mode=<mmap\|copy> mapped_bytes=<n> wal_seq=<n> wal_bytes=<n> wal_fsync_mode=<always\|never\|interval:<ms>\|off>` |
//! | `INVALIDATE` | `OK epoch=<n>` (caches dropped, catalog epoch advanced) |
//! | `SAVE <path>` | `OK saved bytes=<n> triples=<n>` (snapshot written server-side; restart with `--snapshot <path>`; with a WAL attached, also truncates the log down to the new image) |
//! | `REPLAY <path>` | `OK replayed records=<n> inserted=<n> deleted=<n> epoch=<n>` (a WAL file on the server's filesystem replayed through the update path — replica catch-up) |
//! | `QUIT` | `OK bye`, then the connection closes |
//! | anything else | `ERR <message>` (single line; the connection stays open) |
//!
//! `PROFILE` executes the query with full instrumentation (bypassing the
//! result cache — the point is to measure a real run) and renders the
//! plan annotated with per-depth kernel choices, candidate counts, and
//! wall times; timing lines are `~`-prefixed, the rest is deterministic.
//! `METRICS` dumps every service metric (latency histograms, per-verb
//! request counters, cache hit/miss counters, occupancy gauges) in
//! Prometheus text format, `END`-framed like a query response.
//!
//! `SAVE` writes to — and `REPLAY` reads from — a path on the
//! **server's** filesystem: they are operator verbs for the trusted
//! deployments this line protocol serves, not something to expose to
//! untrusted internet traffic.
//!
//! When the server was started with `--wal <path>`, every applied batch
//! is appended to the write-ahead log (fsynced per `--fsync`) *before*
//! it stages, `STATS` reports `wal_seq=`/`wal_bytes=`/`wal_fsync_mode=`,
//! and a restart with the same `--wal` replays the tail since the last
//! `SAVE` — no acknowledged batch is lost.
//!
//! Updates are **batched per connection**: `INSERT`/`DELETE` lines stage
//! triples into the session's pending batch and nothing changes until
//! `APPLY`, which applies the whole batch atomically (deletes first, then
//! inserts — SPARQL Update convention) and reports what actually changed.
//! A connection that drops (or `QUIT`s) with a pending batch discards it.
//! The applied counts reflect real change: inserting a resident triple or
//! deleting an absent one counts zero and a fully no-op batch does not
//! advance the epoch.
//!
//! An applied batch stages its triples into per-predicate delta overlays
//! (cost proportional to the batch, not the predicate); `compacted=` in
//! the reply counts predicates whose overlays crossed the compaction
//! threshold and were folded inline. `COMPACT` folds everything staged on
//! demand — `STATS`' `staged=` gauge shows how many delta pairs are
//! resident and therefore what a `COMPACT` would reclaim.
//!
//! Responses are deterministic bytes: a `QUERY` answer is a pure function
//! of the store contents and the query text, whether it came from cache
//! or from a fresh (sequential or parallel) execution — tests assert this
//! byte-for-byte.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use eh_par::WorkQueue;
use eh_rdf::parse_ntriples;
use emptyheaded::UpdateBatch;

use crate::service::QueryService;

/// Per-connection protocol state: the update batch staged by
/// `INSERT`/`DELETE` lines, waiting for `APPLY`.
#[derive(Debug, Default)]
pub struct Session {
    pending: UpdateBatch,
}

impl Session {
    /// A fresh session with nothing staged.
    pub fn new() -> Session {
        Session::default()
    }

    /// Triples currently staged (inserts + deletes).
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }
}

/// Compute the full response (including trailing newline) for one request
/// line of a *stateful* session. This is the protocol's single source of
/// truth: the TCP server writes exactly these bytes, and tests can call
/// it directly to obtain reference responses without a socket.
pub fn respond_in_session(service: &QueryService, session: &mut Session, line: &str) -> String {
    let line = line.trim();
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((cmd, rest)) => (cmd, rest.trim()),
        None => (line, ""),
    };
    let verb = cmd.to_ascii_uppercase();
    if service.metrics_on() {
        const VERBS: &[&str] = &[
            "QUERY",
            "PROFILE",
            "METRICS",
            "INSERT",
            "DELETE",
            "APPLY",
            "COMPACT",
            "STATS",
            "INVALIDATE",
            "SAVE",
            "REPLAY",
            "QUIT",
        ];
        let label = if VERBS.contains(&verb.as_str()) {
            verb.to_ascii_lowercase()
        } else {
            "other".to_string()
        };
        service.metrics().note_request(&label);
    }
    match verb.as_str() {
        "QUERY" if !rest.is_empty() => match service.query_sparql(rest) {
            Ok(answer) => {
                let mut out = String::new();
                out.push_str(&format!("OK {}", answer.result.cardinality()));
                for col in &answer.columns {
                    out.push(' ');
                    out.push_str(col);
                }
                out.push('\n');
                // Row text is rendered once per cached result and reused
                // by every subsequent hit (see CachedResult).
                out.push_str(answer.result.rendered_rows(&service.store()));
                out.push_str("END\n");
                out
            }
            Err(e) => format!("ERR {}\n", e.to_string().replace(['\n', '\r'], " ")),
        },
        "QUERY" => "ERR QUERY needs a SPARQL string on the same line\n".to_string(),
        "PROFILE" if !rest.is_empty() => match service.profile_sparql(rest) {
            Ok(report) => {
                let mut out = String::from("OK PROFILE\n");
                out.push_str(&report);
                if !out.ends_with('\n') {
                    out.push('\n');
                }
                out.push_str("END\n");
                out
            }
            Err(e) => format!("ERR {}\n", e.to_string().replace(['\n', '\r'], " ")),
        },
        "PROFILE" => "ERR PROFILE needs a SPARQL string on the same line\n".to_string(),
        "METRICS" => {
            let mut out = String::from("OK METRICS\n");
            out.push_str(&service.metrics_text());
            out.push_str("END\n");
            out
        }
        verb @ ("INSERT" | "DELETE") if !rest.is_empty() => match parse_ntriples(rest) {
            Ok(mut triples) if triples.len() == 1 => {
                let t = triples.pop().expect("length checked");
                if verb == "INSERT" {
                    session.pending.insert(t);
                } else {
                    session.pending.delete(t);
                }
                format!(
                    "OK pending inserts={} deletes={}\n",
                    session.pending.inserts.len(),
                    session.pending.deletes.len()
                )
            }
            Ok(_) => format!("ERR {verb} stages exactly one triple per line\n"),
            Err(e) => format!("ERR {}\n", e.to_string().replace(['\n', '\r'], " ")),
        },
        "INSERT" => "ERR INSERT needs an N-Triples triple on the same line\n".to_string(),
        "DELETE" => "ERR DELETE needs an N-Triples triple on the same line\n".to_string(),
        "APPLY" => {
            let batch = std::mem::take(&mut session.pending);
            let s = service.update(batch);
            format!(
                "OK applied inserted={} deleted={} predicates={} compacted={} epoch={}\n",
                s.inserted, s.deleted, s.changed_predicates, s.compacted_predicates, s.epoch
            )
        }
        "COMPACT" => {
            let s = service.compact();
            format!(
                "OK compacted predicates={} rebuilt={} epoch={}\n",
                s.compacted_predicates, s.rebuilt_tries, s.epoch
            )
        }
        "STATS" => {
            let s = service.stats();
            format!(
                "OK plan_hits={} plan_misses={} result_hits={} result_misses={} \
                 plan_entries={} cache_entries={} cache_bytes={} epoch={} \
                 updates={} updates_noop={} inserted={} deleted={} staged={} \
                 query_p50_us={} query_p99_us={} partitions={} max_shard_skew={:.2} \
                 load_mode={} mapped_bytes={} wal_seq={} wal_bytes={} wal_fsync_mode={}\n",
                s.plan_hits,
                s.plan_misses,
                s.result_hits,
                s.result_misses,
                s.plan_cache_entries,
                s.result_cache_entries,
                s.result_cache_bytes,
                s.epoch,
                s.updates_applied,
                s.updates_noop,
                s.triples_inserted,
                s.triples_deleted,
                s.staged_pairs,
                s.query_p50_us,
                s.query_p99_us,
                s.partitions,
                s.max_shard_skew,
                s.load_mode,
                s.mapped_bytes,
                s.wal_seq,
                s.wal_bytes,
                s.wal_fsync.map_or("off".to_string(), |p| p.to_string())
            )
        }
        "INVALIDATE" => format!("OK epoch={}\n", service.invalidate()),
        "SAVE" if !rest.is_empty() => match service.save_snapshot(rest) {
            // The count comes from the saved image itself, so the reply
            // can't disagree with the file when an APPLY lands mid-save.
            Ok((bytes, triples)) => format!("OK saved bytes={bytes} triples={triples}\n"),
            Err(e) => format!("ERR {}\n", e.to_string().replace(['\n', '\r'], " ")),
        },
        "SAVE" => "ERR SAVE needs a file path on the same line\n".to_string(),
        "REPLAY" if !rest.is_empty() => match service.replay(rest) {
            Ok(r) => format!(
                "OK replayed records={} inserted={} deleted={} epoch={}\n",
                r.replayed,
                r.inserted,
                r.deleted,
                service.engine().catalog().epoch()
            ),
            Err(e) => format!("ERR {}\n", e.to_string().replace(['\n', '\r'], " ")),
        },
        "REPLAY" => "ERR REPLAY needs a wal file path on the same line\n".to_string(),
        "QUIT" => "OK bye\n".to_string(),
        "" => "ERR empty request\n".to_string(),
        other => format!(
            "ERR unknown command '{other}' \
             (try QUERY/PROFILE/METRICS/INSERT/DELETE/APPLY/COMPACT/STATS/INVALIDATE/SAVE/REPLAY/QUIT)\n"
        ),
    }
}

/// Stateless convenience for read-only traffic (`QUERY`/`STATS`/...):
/// each call gets a throwaway [`Session`]. The update verbs need state
/// that survives across lines, so here they answer `ERR` instead of
/// silently staging into a batch nobody can ever `APPLY`.
pub fn respond(service: &QueryService, line: &str) -> String {
    let verb = line.split_whitespace().next().unwrap_or("").to_ascii_uppercase();
    if matches!(verb.as_str(), "INSERT" | "DELETE" | "APPLY") {
        return format!("ERR {verb} needs a stateful session (connect over TCP)\n");
    }
    respond_in_session(service, &mut Session::new(), line)
}

/// Longest accepted request line (1 MiB — generous for any SPARQL text).
/// Longer lines answer `ERR` and drop the session: without a cap, one
/// client streaming bytes with no newline would grow server memory
/// without bound.
const MAX_REQUEST_BYTES: u64 = 1 << 20;

/// Serve one accepted connection: answer request lines until the client
/// sends `QUIT` or disconnects. Each connection owns a [`Session`], so
/// its staged updates die with it unless `APPLY`ed. I/O errors end the
/// session quietly — the peer is gone, there is nobody left to report to.
fn handle_connection(service: &QueryService, stream: TcpStream) {
    let mut reader = BufReader::new(stream);
    let mut session = Session::new();
    let mut line = String::new();
    loop {
        line.clear();
        match std::io::Read::take(&mut reader, MAX_REQUEST_BYTES).read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // The cap cut a multi-byte character in half, or the
                // bytes were never valid UTF-8 — either way, explain
                // before dropping the session.
                let _ =
                    reader.get_mut().write_all(b"ERR request line too long or not valid UTF-8\n");
                return;
            }
            Err(_) => return,
        }
        if line.len() as u64 >= MAX_REQUEST_BYTES && !line.ends_with('\n') {
            let _ = reader.get_mut().write_all(b"ERR request line too long\n");
            return;
        }
        // Same command parse as respond(): QUIT with trailing text still
        // quits, so the "OK bye" reply and the close always agree.
        let quitting =
            line.split_whitespace().next().is_some_and(|cmd| cmd.eq_ignore_ascii_case("QUIT"));
        let response = respond_in_session(service, &mut session, &line);
        if reader.get_mut().write_all(response.as_bytes()).is_err() {
            return;
        }
        if quitting {
            return;
        }
    }
}

/// Run the TCP front end until `shutdown` turns true: the calling thread
/// accepts connections and a pool of
/// [`server_sessions`](crate::ServiceConfig::server_sessions) workers
/// answers them, so N clients execute concurrently against the one shared
/// catalog (each request still runs on the engine's
/// [`eh_par::RuntimeConfig`] for execution parallelism — the two pools
/// are deliberately separate, because a session occupies its worker for
/// the whole connection, idle time included).
///
/// Shutdown drains rather than hangs: in-flight requests finish and their
/// responses are written, then every session's read side is shut down, so
/// workers blocked waiting for a next request wake with EOF and exit —
/// an idle client cannot pin the server open. The listener is switched to
/// non-blocking so the accept loop can observe the flag.
///
/// Known limit: a connected session occupies its pool worker until it
/// disconnects, so `server_sessions` *idle* clients stall later arrivals
/// (accepted, queued, not yet served) until one leaves — there is no idle
/// timeout yet. Size the pool for the expected number of concurrent
/// connections, not concurrent queries.
pub fn serve(service: &QueryService, listener: TcpListener, shutdown: &AtomicBool) {
    let workers = service.config().server_sessions.max(1);
    listener.set_nonblocking(true).expect("listener into non-blocking mode");
    let queue: WorkQueue<(u64, TcpStream)> = WorkQueue::new();
    // Read-side handles of live sessions, for shutdown wake-up. Workers
    // remove their entry when a session ends, so the map tracks only
    // open connections.
    let sessions: std::sync::Mutex<std::collections::HashMap<u64, TcpStream>> =
        std::sync::Mutex::new(std::collections::HashMap::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (queue, sessions) = (&queue, &sessions);
            scope.spawn(move || {
                while let Some((id, stream)) = queue.pop() {
                    // The gauge counts sessions being *served* (connected
                    // and assigned a worker), bracketing the whole
                    // connection lifetime including idle stretches.
                    if service.metrics_on() {
                        service.metrics().active_sessions.inc();
                    }
                    handle_connection(service, stream);
                    if service.metrics_on() {
                        service.metrics().active_sessions.dec();
                    }
                    sessions.lock().unwrap_or_else(std::sync::PoisonError::into_inner).remove(&id);
                }
            });
        }
        let mut next_id = 0u64;
        while !shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Hand the connection to the pool in blocking mode. A
                    // session that cannot be registered (fd exhaustion)
                    // is refused outright: unregistered sessions would be
                    // unreachable by the shutdown wake-up below.
                    let _ = stream.set_nonblocking(false);
                    match stream.try_clone() {
                        Ok(handle) => {
                            sessions
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .insert(next_id, handle);
                            queue.push((next_id, stream));
                            next_id += 1;
                        }
                        Err(_) => drop(stream),
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Idle poll: 20 ms bounds both shutdown latency and
                    // the wakeup rate of an otherwise quiet server.
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => break,
            }
        }
        queue.close();
        // Wake workers parked in read_line on idle sessions: closing the
        // read side delivers EOF without cutting off a response that is
        // still being written.
        for stream in sessions.lock().unwrap_or_else(std::sync::PoisonError::into_inner).values() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    });
}

/// A minimal blocking client for the line protocol, used by the examples,
/// the stress test, and the throughput harness.
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a serving [`QueryService`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let addr: SocketAddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("no address resolved"))?;
        let stream = TcpStream::connect(addr)?;
        Ok(Client { reader: BufReader::new(stream) })
    }

    /// Send one request line and read the complete framed response
    /// (multi-line for `QUERY`/`PROFILE`/`METRICS`, single-line
    /// otherwise), returned verbatim.
    pub fn send(&mut self, request: &str) -> std::io::Result<String> {
        let line = request.replace(['\n', '\r'], " ");
        let upper = line.trim_start().to_ascii_uppercase();
        let is_query = ["QUERY", "PROFILE", "METRICS"].iter().any(|v| upper.starts_with(v));
        self.reader.get_mut().write_all(format!("{line}\n").as_bytes())?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::other("server closed the connection"));
        }
        if is_query && response.starts_with("OK") {
            loop {
                let mark = response.len();
                if self.reader.read_line(&mut response)? == 0 {
                    return Err(std::io::Error::other("response truncated"));
                }
                if response[mark..].trim_end() == "END" {
                    break;
                }
            }
        }
        Ok(response)
    }

    /// `QUERY` convenience: newlines in the SPARQL text are flattened.
    pub fn query(&mut self, sparql: &str) -> std::io::Result<String> {
        self.send(&format!("QUERY {sparql}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use eh_rdf::{Term, Triple, TripleStore};
    use emptyheaded::{OptFlags, PlannerConfig, SharedStore};

    fn store() -> SharedStore {
        SharedStore::from_triples(vec![
            Triple::new(Term::iri("a"), Term::iri("p"), Term::iri("b")),
            Triple::new(Term::iri("b"), Term::iri("p"), Term::iri("c")),
            Triple::new(Term::iri("a"), Term::iri("q"), Term::literal("lit")),
        ])
    }

    fn config(threads: usize) -> ServiceConfig {
        ServiceConfig {
            planner: PlannerConfig::with_flags(OptFlags::all()).with_threads(threads),
            result_cache_bytes: 1 << 20,
            plan_cache_entries: ServiceConfig::DEFAULT_PLAN_CACHE_ENTRIES,
            server_sessions: ServiceConfig::DEFAULT_SERVER_SESSIONS,
            record_metrics: true,
            slow_query_ms: None,
        }
    }

    #[test]
    fn respond_formats_queries_stats_and_errors() {
        let store = store();
        let svc = QueryService::new(store.clone(), config(1));
        let r = respond(&svc, "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }");
        assert_eq!(r, "OK 2 x y\n<a>\t<b>\n<b>\t<c>\nEND\n");
        let r = respond(&svc, "QUERY SELECT ?x WHERE { ?x <q> \"lit\" }");
        assert_eq!(r, "OK 1 x\n<a>\nEND\n");
        assert!(respond(&svc, "QUERY SELECT nope").starts_with("ERR "));
        assert!(respond(&svc, "QUERY").starts_with("ERR "));
        assert!(respond(&svc, "").starts_with("ERR empty"));
        assert!(respond(&svc, "FLY me to the moon").starts_with("ERR unknown command"));
        let stats = respond(&svc, "STATS");
        assert!(stats.starts_with("OK plan_hits=") && stats.contains("epoch=0"), "{stats}");
        assert_eq!(respond(&svc, "INVALIDATE"), "OK epoch=1\n");
        assert_eq!(respond(&svc, "quit"), "OK bye\n");
    }

    #[test]
    fn update_verbs_stage_and_apply_in_a_session() {
        let store = store();
        let svc = QueryService::new(store.clone(), config(1));
        let mut session = Session::new();
        let before =
            respond_in_session(&svc, &mut session, "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }");
        assert!(before.starts_with("OK 2"), "{before}");

        // Stage: nothing visible until APPLY.
        let r = respond_in_session(&svc, &mut session, "INSERT <c> <p> <d> .");
        assert_eq!(r, "OK pending inserts=1 deletes=0\n");
        let r = respond_in_session(&svc, &mut session, "delete <a> <p> <b> .");
        assert_eq!(r, "OK pending inserts=1 deletes=1\n");
        assert_eq!(session.pending_ops(), 2);
        let unchanged =
            respond_in_session(&svc, &mut session, "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }");
        assert_eq!(unchanged, before);

        let r = respond_in_session(&svc, &mut session, "APPLY");
        assert_eq!(r, "OK applied inserted=1 deleted=1 predicates=1 compacted=0 epoch=1\n");
        assert_eq!(session.pending_ops(), 0);
        let after =
            respond_in_session(&svc, &mut session, "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }");
        assert_eq!(after, "OK 2 x y\n<b>\t<c>\n<c>\t<d>\nEND\n");

        // Malformed and empty stagings answer ERR without side effects.
        assert!(respond_in_session(&svc, &mut session, "INSERT <a> <b>").starts_with("ERR "));
        assert!(respond_in_session(&svc, &mut session, "INSERT").starts_with("ERR "));
        // An empty APPLY is a no-op: nothing changed, epoch stays, and it
        // lands in the updates_noop series, not the applied counter.
        let r = respond_in_session(&svc, &mut session, "APPLY");
        assert_eq!(r, "OK applied inserted=0 deleted=0 predicates=0 compacted=0 epoch=1\n");
        let stats = respond_in_session(&svc, &mut session, "STATS");
        assert!(stats.contains("updates=1 updates_noop=1 inserted=1 deleted=1"), "{stats}");

        // The applied batch staged its triples as overlay deltas (visible
        // in STATS) and an explicit COMPACT folds them into the base,
        // advancing the epoch; a second COMPACT has nothing to fold.
        assert!(stats.contains("staged=2"), "{stats}");
        let r = respond_in_session(&svc, &mut session, "COMPACT");
        assert!(r.starts_with("OK compacted predicates=1 rebuilt="), "{r}");
        assert!(r.ends_with("epoch=2\n"), "{r}");
        let stats = respond_in_session(&svc, &mut session, "STATS");
        assert!(stats.contains("staged=0"), "{stats}");
        let r = respond_in_session(&svc, &mut session, "COMPACT");
        assert_eq!(r, "OK compacted predicates=0 rebuilt=0 epoch=2\n");
        // Query answers are unchanged by compaction.
        let post = respond_in_session(&svc, &mut session, "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }");
        assert_eq!(post, "OK 2 x y\n<b>\t<c>\n<c>\t<d>\nEND\n");
    }

    #[test]
    fn profile_verb_reports_a_measured_run() {
        let store = store();
        let svc = QueryService::new(store.clone(), config(1));
        let r = respond(&svc, "PROFILE SELECT ?x ?y WHERE { ?x <p> ?y }");
        assert!(r.starts_with("OK PROFILE\n"), "{r}");
        assert!(r.ends_with("END\n"), "{r}");
        assert!(r.contains("profile:"), "{r}");
        assert!(r.contains("kernels {"), "{r}");
        assert!(r.contains("result rows: 2"), "{r}");
        assert!(respond(&svc, "PROFILE").starts_with("ERR PROFILE needs"));
        assert!(respond(&svc, "PROFILE SELECT nope").starts_with("ERR "));
    }

    #[test]
    fn metrics_verb_exposes_parseable_nonzero_series() {
        let store = store();
        let svc = QueryService::new(store.clone(), config(1));
        // Traffic: one miss, one hit, one update.
        respond(&svc, "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }");
        respond(&svc, "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }");
        let mut session = Session::new();
        respond_in_session(&svc, &mut session, "INSERT <c> <p> <d> .");
        respond_in_session(&svc, &mut session, "APPLY");

        let m = respond(&svc, "METRICS");
        assert!(m.starts_with("OK METRICS\n") && m.ends_with("END\n"), "{m}");
        let body = &m["OK METRICS\n".len()..m.len() - "END\n".len()];
        let samples = eh_obs::parse_exposition(body).expect("exposition parses");
        let total = |name: &str| -> f64 {
            samples.iter().filter(|s| s.name == name).map(|s| s.value).sum()
        };
        assert!(total("eh_query_latency_us_count") >= 2.0, "{body}");
        assert!(total("eh_result_cache_hits_total") >= 1.0, "{body}");
        assert!(total("eh_result_cache_misses_total") >= 1.0, "{body}");
        assert!(total("eh_update_apply_latency_us_count") >= 1.0, "{body}");
        assert!(total("eh_updates_applied_total") >= 1.0, "{body}");
        // Per-verb counters carry the verb label.
        let query_requests: f64 = samples
            .iter()
            .filter(|s| s.name == "eh_requests_total" && s.label("verb") == Some("query"))
            .map(|s| s.value)
            .sum();
        assert!(query_requests >= 2.0, "{body}");
    }

    #[test]
    fn stats_reports_latency_percentiles() {
        let store = store();
        let svc = QueryService::new(store.clone(), config(1));
        respond(&svc, "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }");
        let stats = respond(&svc, "STATS");
        assert!(stats.contains("query_p50_us="), "{stats}");
        assert!(stats.contains("query_p99_us="), "{stats}");
        let p50: u64 = stats
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix("query_p50_us="))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        // The histogram quantizes to bucket upper bounds (>= 1), so any
        // recorded query yields a non-zero percentile.
        assert!(p50 >= 1, "{stats}");
    }

    #[test]
    fn metrics_off_records_nothing() {
        let store = store();
        let mut cfg = config(1);
        cfg.record_metrics = false;
        let svc = QueryService::new(store.clone(), cfg);
        respond(&svc, "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }");
        let stats = respond(&svc, "STATS");
        assert!(stats.contains("query_p50_us=0 query_p99_us=0"), "{stats}");
        let m = respond(&svc, "METRICS");
        let body = &m["OK METRICS\n".len()..m.len() - "END\n".len()];
        let samples = eh_obs::parse_exposition(body).expect("exposition parses");
        let count: f64 =
            samples.iter().filter(|s| s.name == "eh_query_latency_us_count").map(|s| s.value).sum();
        assert_eq!(count, 0.0, "{body}");
    }

    #[test]
    fn slow_query_log_captures_over_threshold_queries() {
        let store = store();
        let mut cfg = config(1);
        cfg.slow_query_ms = Some(0); // everything is "slow"
        let svc = QueryService::new(store.clone(), cfg);
        assert!(svc.slow_queries().is_empty());
        respond(&svc, "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }");
        let log = svc.slow_queries();
        assert_eq!(log.len(), 1, "{log:?}");
        assert!(log[0].contains("SELECT ?x ?y"), "{log:?}");
        let m = respond(&svc, "METRICS");
        assert!(m.contains("eh_slow_queries_total 1"), "{m}");
    }

    #[test]
    fn save_verb_writes_a_loadable_snapshot() {
        let store = store();
        let svc = QueryService::new(store.clone(), config(1));
        let q = "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }";
        let expect = respond(&svc, q);

        let path = std::env::temp_dir().join(format!("eh-save-verb-{}.snap", std::process::id()));
        let r = respond(&svc, &format!("SAVE {}", path.display()));
        assert!(r.starts_with("OK saved bytes="), "{r}");
        assert!(r.contains("triples=3"), "{r}");

        // A service restarted from the snapshot serves identical bytes —
        // and starts warm (tries preloaded before any query ran).
        let restarted = QueryService::from_snapshot(&path, config(1)).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(restarted.engine().catalog().cached_tries() > 0);
        assert_eq!(respond(&restarted, q), expect);

        // Failure modes answer ERR, they don't kill the session.
        assert!(respond(&svc, "SAVE").starts_with("ERR SAVE needs"));
        assert!(respond(&svc, "SAVE /nonexistent-dir-zzz/x.snap").starts_with("ERR "));
    }

    #[test]
    fn mmap_loaded_service_reports_its_mode_and_serves_identical_bytes() {
        let store = store();
        let svc = QueryService::new(store.clone(), config(1));
        let q = "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }";
        let expect = respond(&svc, q);
        // A cold-built service is a copy load with nothing mapped.
        let stats = respond(&svc, "STATS");
        assert!(stats.contains("load_mode=copy mapped_bytes=0"), "{stats}");

        let path = std::env::temp_dir().join(format!("eh-mmap-verb-{}.snap", std::process::id()));
        assert!(respond(&svc, &format!("SAVE {}", path.display())).starts_with("OK saved"));

        let mapped = QueryService::from_snapshot_mmap(&path, config(1)).unwrap();
        let copied = QueryService::from_snapshot(&path, config(1)).unwrap();
        assert_eq!(respond(&mapped, q), expect);
        assert_eq!(respond(&copied, q), expect);

        let file_len = std::fs::metadata(&path).unwrap().len();
        let stats = respond(&mapped, "STATS");
        assert!(
            stats.contains(&format!("load_mode=mmap mapped_bytes={file_len}")),
            "{stats} (file is {file_len} bytes)"
        );
        let stats = respond(&copied, "STATS");
        assert!(stats.contains("load_mode=copy mapped_bytes=0"), "{stats}");

        // The gauge tracks the same number through the METRICS verb.
        let m = respond(&mapped, "METRICS");
        assert!(m.contains(&format!("eh_mapped_bytes {file_len}")), "{m}");
        let m = respond(&copied, "METRICS");
        assert!(m.contains("eh_mapped_bytes 0"), "{m}");

        // Updates keep working on the mapped service: the overlays and
        // later compactions own their memory, independent of the mapping.
        let mut session = Session::new();
        let r = respond_in_session(&mapped, &mut session, "INSERT <c> <p> <d> .");
        assert!(r.starts_with("OK pending"), "{r}");
        let r = respond_in_session(&mapped, &mut session, "APPLY");
        assert!(r.starts_with("OK applied inserted=1"), "{r}");
        let r = respond_in_session(&mapped, &mut session, "COMPACT");
        assert!(r.starts_with("OK compacted predicates=1"), "{r}");
        let after = respond(&mapped, q);
        assert_eq!(after, "OK 3 x y\n<a>\t<b>\n<b>\t<c>\n<c>\t<d>\nEND\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stateless_respond_rejects_update_verbs() {
        let store = store();
        let svc = QueryService::new(store.clone(), config(1));
        assert!(respond(&svc, "INSERT <c> <p> <d> .").starts_with("ERR INSERT"));
        assert!(respond(&svc, "delete <a> <p> <b> .").starts_with("ERR DELETE"));
        assert!(respond(&svc, "APPLY").starts_with("ERR APPLY"));
        // Read-only verbs still answer normally.
        assert!(respond(&svc, "STATS").starts_with("OK "));
    }

    #[test]
    fn updates_over_tcp_match_a_cold_engine_on_the_new_data() {
        let store = store();
        let svc = QueryService::new(store.clone(), config(2));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let (svc_ref, shutdown_ref) = (&svc, &shutdown);
            scope.spawn(move || serve(svc_ref, listener, shutdown_ref));

            let mut writer = Client::connect(addr).unwrap();
            let mut reader = Client::connect(addr).unwrap();
            let q = "SELECT ?x ?y WHERE { ?x <p> ?y }";
            // Warm the caches pre-update from a second connection.
            let warm = reader.query(q).unwrap();
            assert!(warm.starts_with("OK 2"), "{warm}");

            assert!(writer.send("INSERT <c> <p> <d> .").unwrap().starts_with("OK pending"));
            assert!(writer.send("DELETE <b> <p> <c> .").unwrap().starts_with("OK pending"));
            let applied = writer.send("APPLY").unwrap();
            assert_eq!(
                applied,
                "OK applied inserted=1 deleted=1 predicates=1 compacted=0 epoch=1\n"
            );

            // Both connections now see the post-update rows, and the bytes
            // equal a cold service built directly over the new contents.
            let cold_store = TripleStore::from_triples(vec![
                Triple::new(Term::iri("a"), Term::iri("p"), Term::iri("b")),
                Triple::new(Term::iri("c"), Term::iri("p"), Term::iri("d")),
                Triple::new(Term::iri("a"), Term::iri("q"), Term::literal("lit")),
            ]);
            let cold_svc = QueryService::new(cold_store, config(1));
            let expect = respond(&cold_svc, &format!("QUERY {q}"));
            assert_eq!(reader.query(q).unwrap(), expect);
            assert_eq!(writer.query(q).unwrap(), expect);

            writer.send("QUIT").ok();
            reader.send("QUIT").ok();
            drop(writer);
            drop(reader);
            shutdown.store(true, Ordering::Release);
        });
    }

    #[test]
    fn idle_clients_do_not_starve_active_ones() {
        let store = store();
        // Single engine thread, but the session pool (default 8) is
        // sized independently: idle connections must not block service.
        let svc = QueryService::new(store.clone(), config(1));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let (svc_ref, shutdown_ref) = (&svc, &shutdown);
            scope.spawn(move || serve(svc_ref, listener, shutdown_ref));

            // Three clients connect and say nothing...
            let idlers: Vec<Client> = (0..3).map(|_| Client::connect(addr).unwrap()).collect();
            // ... and a fourth still gets answered.
            let mut active = Client::connect(addr).unwrap();
            let r = active.query("SELECT ?x ?y WHERE { ?x <p> ?y }").unwrap();
            assert!(r.starts_with("OK 2"), "{r}");
            active.send("QUIT").ok();
            drop(active);
            drop(idlers);
            shutdown.store(true, Ordering::Release);
        });
    }

    #[test]
    fn control_characters_in_terms_cannot_break_framing() {
        // An IRI containing newline/tab is invalid N-Triples, but a store
        // built through the API can hold one; the wire format must escape
        // it rather than let a row masquerade as the END marker.
        let store = TripleStore::from_triples(vec![Triple::new(
            Term::iri("a\nEND\nb"),
            Term::iri("p"),
            Term::iri("c\td"),
        )]);
        let svc = QueryService::new(store.clone(), config(1));
        let r = respond(&svc, "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }");
        assert_eq!(r, "OK 1 x y\n<a\\nEND\\nb>\t<c\\td>\nEND\n");
    }

    #[test]
    fn shutdown_drains_despite_idle_and_sloppy_clients() {
        let store = store();
        let svc = QueryService::new(store.clone(), config(2));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let (svc_ref, shutdown_ref) = (&svc, &shutdown);
            let server = scope.spawn(move || serve(svc_ref, listener, shutdown_ref));

            // An idle client that connects and never sends anything, and
            // one that sends "QUIT now" (trailing text must still quit).
            let idle = Client::connect(addr).unwrap();
            let mut sloppy = Client::connect(addr).unwrap();
            assert_eq!(sloppy.send("QUIT now").unwrap(), "OK bye\n");
            // Give the acceptor a moment to hand both sessions to workers.
            std::thread::sleep(std::time::Duration::from_millis(50));
            shutdown.store(true, Ordering::Release);
            // The idle session must not pin the server open: serve()
            // returns, so this join completes (a regression hangs here).
            server.join().unwrap();
            drop(idle);
        });
    }

    #[test]
    fn stats_reports_wal_off_without_a_log() {
        let svc = QueryService::new(store(), config(1));
        let stats = respond(&svc, "STATS");
        assert!(stats.contains("wal_seq=0 wal_bytes=0 wal_fsync_mode=off"), "{stats}");
    }

    #[test]
    fn wal_surfaces_in_stats_metrics_and_recovery() {
        let wal_path = std::env::temp_dir().join(format!("eh-srv-wal-{}.wal", std::process::id()));
        std::fs::remove_file(&wal_path).ok();

        let mut svc = QueryService::new(store(), config(1));
        let r = svc.open_wal(&wal_path).unwrap();
        assert_eq!(r.replayed, 0);
        let mut session = Session::new();
        respond_in_session(&svc, &mut session, "INSERT <c> <p> <d> .");
        let applied = respond_in_session(&svc, &mut session, "APPLY");
        assert!(applied.starts_with("OK applied inserted=1"), "{applied}");
        // A no-op batch is logged too (it held the sequence when it ran).
        respond_in_session(&svc, &mut session, "INSERT <c> <p> <d> .");
        respond_in_session(&svc, &mut session, "APPLY");

        let stats = respond(&svc, "STATS");
        assert!(stats.contains("wal_seq=2"), "{stats}");
        assert!(stats.contains("wal_fsync_mode=always"), "{stats}");
        let wal_bytes: u64 = stats
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix("wal_bytes="))
            .unwrap()
            .parse()
            .unwrap();
        assert!(wal_bytes > 24, "{stats}");

        let m = respond(&svc, "METRICS");
        assert!(m.contains("eh_wal_appends_total 2"), "{m}");
        assert!(m.contains(&format!("eh_wal_bytes {wal_bytes}")), "{m}");
        assert!(m.contains("eh_wal_fsync_us_count 2"), "{m}");

        // Recovery: fresh service over the same base store + the log
        // serves the same bytes as the crashed one would have.
        let expect = respond(&svc, "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }");
        let mut recovered = QueryService::new(store(), config(1));
        let r = recovered.open_wal(&wal_path).unwrap();
        assert_eq!((r.replayed, r.inserted), (2, 1));
        assert_eq!(respond(&recovered, "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }"), expect);
        std::fs::remove_file(&wal_path).ok();
    }

    #[test]
    fn replay_verb_applies_a_shipped_log() {
        let wal_path =
            std::env::temp_dir().join(format!("eh-srv-replay-{}.wal", std::process::id()));
        std::fs::remove_file(&wal_path).ok();

        // A primary logs one batch.
        let mut primary = QueryService::new(store(), config(1));
        primary.open_wal(&wal_path).unwrap();
        let mut session = Session::new();
        respond_in_session(&primary, &mut session, "INSERT <c> <p> <d> .");
        respond_in_session(&primary, &mut session, "APPLY");
        let expect = respond(&primary, "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }");

        // A follower replays the shipped log over the same base store.
        let follower = QueryService::new(store(), config(1));
        let r = respond(&follower, &format!("REPLAY {}", wal_path.display()));
        assert_eq!(r, "OK replayed records=1 inserted=1 deleted=0 epoch=1\n");
        assert_eq!(respond(&follower, "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }"), expect);

        // Failure modes answer ERR, they don't kill the session.
        assert!(respond(&follower, "REPLAY").starts_with("ERR REPLAY needs"));
        assert!(respond(&follower, "REPLAY /nonexistent-zzz/x.wal").starts_with("ERR "));
        std::fs::remove_file(&wal_path).ok();
    }

    #[test]
    fn save_verb_truncates_an_attached_wal() {
        let wal_path =
            std::env::temp_dir().join(format!("eh-srv-wal-save-{}.wal", std::process::id()));
        let snap_path =
            std::env::temp_dir().join(format!("eh-srv-wal-save-{}.snap", std::process::id()));
        std::fs::remove_file(&wal_path).ok();

        let mut svc = QueryService::new(store(), config(1));
        svc.open_wal(&wal_path).unwrap();
        let mut session = Session::new();
        respond_in_session(&svc, &mut session, "INSERT <c> <p> <d> .");
        respond_in_session(&svc, &mut session, "APPLY");
        assert!(std::fs::metadata(&wal_path).unwrap().len() > 24);

        let r = respond(&svc, &format!("SAVE {}", snap_path.display()));
        assert!(r.starts_with("OK saved"), "{r}");
        // The folded record is gone; only the 24-byte header remains.
        assert_eq!(std::fs::metadata(&wal_path).unwrap().len(), 24);
        let stats = respond(&svc, "STATS");
        assert!(stats.contains("wal_seq=1 wal_bytes=24"), "{stats}");
        std::fs::remove_file(&wal_path).ok();
        std::fs::remove_file(&snap_path).ok();
    }

    #[test]
    fn server_round_trip_over_tcp() {
        let store = store();
        let svc = QueryService::new(store.clone(), config(2));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let svc_ref = &svc;
            let shutdown_ref = &shutdown;
            scope.spawn(move || serve(svc_ref, listener, shutdown_ref));

            let mut client = Client::connect(addr).unwrap();
            let direct = respond(&svc, "QUERY SELECT ?x ?y WHERE { ?x <p> ?y }");
            let wire = client.query("SELECT ?x ?y\nWHERE { ?x <p> ?y }").unwrap();
            assert_eq!(wire, direct);
            // Second client: the same bytes again (now cache-served).
            let mut second = Client::connect(addr).unwrap();
            assert_eq!(second.query("SELECT ?x ?y WHERE { ?x <p> ?y }").unwrap(), direct);
            // The direct respond() call was the miss; both wire queries hit.
            let stats = second.send("STATS").unwrap();
            assert!(stats.contains("result_hits=2"), "{stats}");
            // Multi-line verbs frame correctly through the client too,
            // and the session gauge sees both live connections.
            let profile = second.send("PROFILE SELECT ?x ?y WHERE { ?x <p> ?y }").unwrap();
            assert!(profile.starts_with("OK PROFILE\n") && profile.ends_with("END\n"), "{profile}");
            let metrics = second.send("METRICS").unwrap();
            assert!(metrics.starts_with("OK METRICS\n") && metrics.ends_with("END\n"), "{metrics}");
            assert!(metrics.contains("eh_active_sessions 2"), "{metrics}");
            assert_eq!(client.send("QUIT").unwrap(), "OK bye\n");
            drop(client);
            drop(second);
            shutdown.store(true, Ordering::Release);
        });
    }
}
