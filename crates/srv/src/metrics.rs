//! The service's metric surface: every series the `METRICS` verb exposes.
//!
//! Each [`QueryService`](crate::QueryService) owns a private
//! [`Registry`] (not the process-global one), so concurrently running
//! services — and tests — never share counters. Handles are resolved once
//! at construction; the hot recording paths touch only relaxed atomics.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

use eh_obs::{Counter, Gauge, Histogram, Registry};

/// Slow-query log capacity: a bounded ring, oldest entries dropped.
pub(crate) const SLOW_LOG_CAPACITY: usize = 128;

/// Every request-counter label the protocol can produce: the known verbs
/// plus the `"other"` bucket unrecognized commands fall into.
const REQUEST_LABELS: &[&str] = &[
    "query",
    "profile",
    "metrics",
    "insert",
    "delete",
    "apply",
    "compact",
    "stats",
    "invalidate",
    "save",
    "replay",
    "quit",
    "other",
];

/// Pre-resolved handles for every metric the service records.
pub(crate) struct ServiceMetrics {
    registry: Registry,
    /// Per-verb request counters, pre-resolved so the per-request path is
    /// one slice scan + one relaxed increment (no registry lock).
    requests_by_verb: Vec<(&'static str, Arc<Counter>)>,
    pub query_latency_us: Arc<Histogram>,
    pub update_apply_latency_us: Arc<Histogram>,
    pub compaction_pause_us: Arc<Histogram>,
    pub plan_cache_hits: Arc<Counter>,
    pub plan_cache_misses: Arc<Counter>,
    pub result_cache_hits: Arc<Counter>,
    pub result_cache_misses: Arc<Counter>,
    pub triples_inserted: Arc<Counter>,
    pub triples_deleted: Arc<Counter>,
    pub updates_applied: Arc<Counter>,
    pub updates_noop: Arc<Counter>,
    pub compactions: Arc<Counter>,
    pub slow_queries: Arc<Counter>,
    pub active_sessions: Arc<Gauge>,
    pub result_cache_bytes: Arc<Gauge>,
    pub result_cache_entries: Arc<Gauge>,
    pub plan_cache_entries: Arc<Gauge>,
    pub epoch: Arc<Gauge>,
    pub staged_pairs: Arc<Gauge>,
    pub mapped_bytes: Arc<Gauge>,
    pub wal_appends: Arc<Counter>,
    pub wal_bytes: Arc<Gauge>,
    pub wal_fsync_us: Arc<Histogram>,
    /// Ring of recent slow queries: `"<millis> ms: <sparql>"`.
    slow_log: Mutex<VecDeque<String>>,
}

impl ServiceMetrics {
    pub fn new() -> ServiceMetrics {
        let registry = Registry::new();
        let requests_by_verb = REQUEST_LABELS
            .iter()
            .map(|&label| {
                let counter = registry.counter_with(
                    "eh_requests_total",
                    "Protocol requests by verb",
                    &[("verb", label)],
                );
                (label, counter)
            })
            .collect();
        ServiceMetrics {
            requests_by_verb,
            query_latency_us: registry.histogram(
                "eh_query_latency_us",
                "End-to-end query latency (parse, caches, execution) in microseconds",
            ),
            update_apply_latency_us: registry.histogram(
                "eh_update_apply_latency_us",
                "APPLY batch latency (delta staging, overlay refresh, cache retirement) in microseconds",
            ),
            compaction_pause_us: registry.histogram(
                "eh_compaction_pause_us",
                "COMPACT pause (folding staged deltas into fresh base tables) in microseconds",
            ),
            plan_cache_hits: registry
                .counter("eh_plan_cache_hits_total", "Plan-cache hits"),
            plan_cache_misses: registry.counter(
                "eh_plan_cache_misses_total",
                "Plan-cache misses (each paid GHD enumeration + the LP solve)",
            ),
            result_cache_hits: registry
                .counter("eh_result_cache_hits_total", "Result-cache hits"),
            result_cache_misses: registry.counter(
                "eh_result_cache_misses_total",
                "Result-cache misses (each paid a join execution)",
            ),
            triples_inserted: registry.counter(
                "eh_triples_inserted_total",
                "Triples actually inserted across applied batches",
            ),
            triples_deleted: registry.counter(
                "eh_triples_deleted_total",
                "Triples actually deleted across applied batches",
            ),
            updates_applied: registry
                .counter("eh_updates_applied_total", "Update batches that actually changed data"),
            updates_noop: registry.counter(
                "eh_updates_noop_total",
                "Update batches that changed nothing (counted apart from applied batches)",
            ),
            compactions: registry.counter(
                "eh_compactions_total",
                "Predicates whose staged deltas were folded into fresh base tables",
            ),
            slow_queries: registry.counter(
                "eh_slow_queries_total",
                "Queries slower than the configured slow-query threshold",
            ),
            active_sessions: registry
                .gauge("eh_active_sessions", "TCP sessions currently connected"),
            result_cache_bytes: registry
                .gauge("eh_result_cache_bytes", "Bytes currently held by the result cache"),
            result_cache_entries: registry
                .gauge("eh_result_cache_entries", "Entries currently held by the result cache"),
            plan_cache_entries: registry
                .gauge("eh_plan_cache_entries", "Plans currently cached"),
            epoch: registry.gauge("eh_catalog_epoch", "Current catalog epoch"),
            staged_pairs: registry.gauge(
                "eh_staged_pairs",
                "Delta pairs (inserts + tombstones) resident in novelty overlays",
            ),
            mapped_bytes: registry.gauge(
                "eh_mapped_bytes",
                "Snapshot bytes held mapped for zero-copy trie serving (0 = copy load)",
            ),
            wal_appends: registry.counter(
                "eh_wal_appends_total",
                "Update batches appended to the write-ahead log",
            ),
            wal_bytes: registry
                .gauge("eh_wal_bytes", "Write-ahead log size in bytes (header + frames)"),
            wal_fsync_us: registry.histogram(
                "eh_wal_fsync_us",
                "Time spent in fdatasync per synced WAL append, in microseconds",
            ),
            slow_log: Mutex::new(VecDeque::new()),
            registry,
        }
    }

    /// Count one protocol request for `verb` (lowercased label).
    pub fn note_request(&self, verb: &str) {
        match self.requests_by_verb.iter().find(|(label, _)| *label == verb) {
            Some((_, counter)) => counter.inc(),
            // Unreachable through the protocol (unknown commands map to
            // "other"), but keep direct callers correct.
            None => self
                .registry
                .counter_with("eh_requests_total", "Protocol requests by verb", &[("verb", verb)])
                .inc(),
        }
    }

    /// Sync one shard's occupancy gauges (`eh_shard_triples`,
    /// `eh_shard_staged_pairs`, `eh_shard_arena_bytes`, all labeled
    /// `shard="N"`). Series are resolved get-or-create per call: shard
    /// count is a store property, not a construction-time constant, and
    /// this runs on the scrape path where the registry lock is cheap.
    pub fn set_shard_gauges(&self, shard: usize, triples: i64, staged: i64, arena: i64) {
        let shard = shard.to_string();
        let labels = [("shard", shard.as_str())];
        self.registry
            .gauge_with("eh_shard_triples", "Logical triples resident in the shard", &labels)
            .set(triples);
        self.registry
            .gauge_with(
                "eh_shard_staged_pairs",
                "Delta pairs staged in the shard's novelty overlays",
                &labels,
            )
            .set(staged);
        self.registry
            .gauge_with(
                "eh_shard_arena_bytes",
                "Frozen-trie arena bytes cached for the shard",
                &labels,
            )
            .set(arena);
    }

    /// Record one shard's fold pause into the `shard`-labeled series of
    /// the `eh_compaction_pause_us` family. The unlabeled series keeps
    /// measuring the whole verb; these per-shard series are what show
    /// that a skewed shard's fold pauses only itself.
    pub fn record_shard_pause(&self, shard: usize, micros: u64) {
        let shard = shard.to_string();
        self.registry
            .histogram_with(
                "eh_compaction_pause_us",
                "COMPACT pause (folding staged deltas into fresh base tables) in microseconds",
                &[("shard", shard.as_str())],
            )
            .record(micros);
    }

    /// Append to the bounded slow-query ring (oldest dropped) and bump
    /// the counter.
    pub fn note_slow_query(&self, millis: u64, text: &str) {
        self.slow_queries.inc();
        // Recover the ring from poisoning: a session that panicked while
        // appending leaves at worst one missing entry, and the log must
        // keep accepting entries after one bad query.
        let mut log = self.slow_log.lock().unwrap_or_else(PoisonError::into_inner);
        if log.len() >= SLOW_LOG_CAPACITY {
            log.pop_front();
        }
        log.push_back(format!("{millis} ms: {text}"));
    }

    /// Recent slow queries, oldest first.
    pub fn slow_log(&self) -> Vec<String> {
        self.slow_log.lock().unwrap_or_else(PoisonError::into_inner).iter().cloned().collect()
    }

    /// Render the full exposition (Prometheus text format).
    pub fn expose(&self) -> String {
        self.registry.expose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_query_ring_survives_a_poisoning_panic() {
        let m = ServiceMetrics::new();
        m.note_slow_query(5, "before the crash");
        let m_ref = &m;
        std::thread::scope(|scope| {
            let victim = scope.spawn(move || {
                let _guard = m_ref.slow_log.lock().unwrap();
                panic!("session dies holding the slow-query ring");
            });
            assert!(victim.join().is_err());
        });
        // The ring keeps recording and reading after the poisoning.
        m.note_slow_query(7, "after the crash");
        let log = m.slow_log();
        assert_eq!(log.len(), 2, "{log:?}");
        assert!(log[1].contains("after the crash"), "{log:?}");
        assert_eq!(m.slow_queries.get(), 2);
    }
}
