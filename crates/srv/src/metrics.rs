//! The service's metric surface: every series the `METRICS` verb exposes.
//!
//! Each [`QueryService`](crate::QueryService) owns a private
//! [`Registry`] (not the process-global one), so concurrently running
//! services — and tests — never share counters. Handles are resolved once
//! at construction; the hot recording paths touch only relaxed atomics.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use eh_obs::{Counter, Gauge, Histogram, Registry};

/// Slow-query log capacity: a bounded ring, oldest entries dropped.
pub(crate) const SLOW_LOG_CAPACITY: usize = 128;

/// Every request-counter label the protocol can produce: the known verbs
/// plus the `"other"` bucket unrecognized commands fall into.
const REQUEST_LABELS: &[&str] = &[
    "query",
    "profile",
    "metrics",
    "insert",
    "delete",
    "apply",
    "stats",
    "invalidate",
    "save",
    "quit",
    "other",
];

/// Pre-resolved handles for every metric the service records.
pub(crate) struct ServiceMetrics {
    registry: Registry,
    /// Per-verb request counters, pre-resolved so the per-request path is
    /// one slice scan + one relaxed increment (no registry lock).
    requests_by_verb: Vec<(&'static str, Arc<Counter>)>,
    pub query_latency_us: Arc<Histogram>,
    pub update_apply_latency_us: Arc<Histogram>,
    pub plan_cache_hits: Arc<Counter>,
    pub plan_cache_misses: Arc<Counter>,
    pub result_cache_hits: Arc<Counter>,
    pub result_cache_misses: Arc<Counter>,
    pub triples_inserted: Arc<Counter>,
    pub triples_deleted: Arc<Counter>,
    pub updates_applied: Arc<Counter>,
    pub slow_queries: Arc<Counter>,
    pub active_sessions: Arc<Gauge>,
    pub result_cache_bytes: Arc<Gauge>,
    pub result_cache_entries: Arc<Gauge>,
    pub plan_cache_entries: Arc<Gauge>,
    pub epoch: Arc<Gauge>,
    /// Ring of recent slow queries: `"<millis> ms: <sparql>"`.
    slow_log: Mutex<VecDeque<String>>,
}

impl ServiceMetrics {
    pub fn new() -> ServiceMetrics {
        let registry = Registry::new();
        let requests_by_verb = REQUEST_LABELS
            .iter()
            .map(|&label| {
                let counter = registry.counter_with(
                    "eh_requests_total",
                    "Protocol requests by verb",
                    &[("verb", label)],
                );
                (label, counter)
            })
            .collect();
        ServiceMetrics {
            requests_by_verb,
            query_latency_us: registry.histogram(
                "eh_query_latency_us",
                "End-to-end query latency (parse, caches, execution) in microseconds",
            ),
            update_apply_latency_us: registry.histogram(
                "eh_update_apply_latency_us",
                "APPLY batch latency (store mutation, trie rebuild, cache retirement) in microseconds",
            ),
            plan_cache_hits: registry
                .counter("eh_plan_cache_hits_total", "Plan-cache hits"),
            plan_cache_misses: registry.counter(
                "eh_plan_cache_misses_total",
                "Plan-cache misses (each paid GHD enumeration + the LP solve)",
            ),
            result_cache_hits: registry
                .counter("eh_result_cache_hits_total", "Result-cache hits"),
            result_cache_misses: registry.counter(
                "eh_result_cache_misses_total",
                "Result-cache misses (each paid a join execution)",
            ),
            triples_inserted: registry.counter(
                "eh_triples_inserted_total",
                "Triples actually inserted across applied batches",
            ),
            triples_deleted: registry.counter(
                "eh_triples_deleted_total",
                "Triples actually deleted across applied batches",
            ),
            updates_applied: registry
                .counter("eh_updates_applied_total", "Update batches applied (including no-ops)"),
            slow_queries: registry.counter(
                "eh_slow_queries_total",
                "Queries slower than the configured slow-query threshold",
            ),
            active_sessions: registry
                .gauge("eh_active_sessions", "TCP sessions currently connected"),
            result_cache_bytes: registry
                .gauge("eh_result_cache_bytes", "Bytes currently held by the result cache"),
            result_cache_entries: registry
                .gauge("eh_result_cache_entries", "Entries currently held by the result cache"),
            plan_cache_entries: registry
                .gauge("eh_plan_cache_entries", "Plans currently cached"),
            epoch: registry.gauge("eh_catalog_epoch", "Current catalog epoch"),
            slow_log: Mutex::new(VecDeque::new()),
            registry,
        }
    }

    /// Count one protocol request for `verb` (lowercased label).
    pub fn note_request(&self, verb: &str) {
        match self.requests_by_verb.iter().find(|(label, _)| *label == verb) {
            Some((_, counter)) => counter.inc(),
            // Unreachable through the protocol (unknown commands map to
            // "other"), but keep direct callers correct.
            None => self
                .registry
                .counter_with("eh_requests_total", "Protocol requests by verb", &[("verb", verb)])
                .inc(),
        }
    }

    /// Append to the bounded slow-query ring (oldest dropped) and bump
    /// the counter.
    pub fn note_slow_query(&self, millis: u64, text: &str) {
        self.slow_queries.inc();
        let mut log = self.slow_log.lock().expect("slow log poisoned");
        if log.len() >= SLOW_LOG_CAPACITY {
            log.pop_front();
        }
        log.push_back(format!("{millis} ms: {text}"));
    }

    /// Recent slow queries, oldest first.
    pub fn slow_log(&self) -> Vec<String> {
        self.slow_log.lock().expect("slow log poisoned").iter().cloned().collect()
    }

    /// Render the full exposition (Prometheus text format).
    pub fn expose(&self) -> String {
        self.registry.expose()
    }
}
