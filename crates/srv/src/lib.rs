//! # eh-srv
//!
//! The serving tier over the worst-case optimal join engine: the step
//! from "benchmark reproduction" to "system that answers traffic".
//!
//! The paper's engine (Aberger et al., ICDE 2016) executes one query over
//! a warmed, read-only trie catalog — exactly the shape of a read-mostly,
//! high-QPS service. What a single-shot engine lacks is *reuse*: every
//! [`Engine::run`](emptyheaded::Engine::run) re-parses, re-plans (GHD
//! enumeration plus the fractional-cover LP), and re-executes. This crate
//! adds the reuse layer:
//!
//! * [`QueryService`] — a shareable (`&self`) session front end holding
//!   one engine, a **plan cache** keyed by the
//!   [canonical query form](eh_query::canonicalize) (α-equivalent SPARQL
//!   strings plan once), and a byte-budgeted **LRU result cache** keyed
//!   by canonical query + catalog epoch.
//! * [`serve`] — a threaded TCP front end speaking a line-delimited
//!   protocol (`QUERY` / `PROFILE` / `METRICS` / `INSERT` / `DELETE` /
//!   `APPLY` / `STATS` / `INVALIDATE` / `QUIT`), its session pool sized
//!   by [`ServiceConfig::server_sessions`] while each query executes on
//!   the engine's [`eh_par::RuntimeConfig`].
//! * [`Client`] — a minimal blocking client for tests, examples, and the
//!   throughput harness.
//!
//! The store behind the service is **live**: `INSERT`/`DELETE` lines
//! stage triples into a per-connection [`Session`] batch and `APPLY`
//! pushes them through [`QueryService::update`], which invalidates only
//! the changed predicates' tries and advances the epoch that keys the
//! result cache — queries after an update are answered exactly as a cold
//! engine over the new data would.
//!
//! Determinism is load-bearing: cached, fresh-sequential, and
//! fresh-parallel answers are all byte-identical, so a cache is never
//! observable except through latency and [`ServiceStats`].
//!
//! The service is **observable**: every request records into a private
//! [`eh_obs`] registry (latency histograms with p50/p99, per-verb
//! counters, cache hit/miss counters, occupancy gauges), dumped by the
//! `METRICS` verb in Prometheus text format; `PROFILE <sparql>` runs one
//! query with full executor instrumentation and returns `EXPLAIN
//! ANALYZE` output (per-depth kernel choices, candidate counts, wall
//! times); and queries slower than [`ServiceConfig::slow_query_ms`]
//! (`EH_SLOW_QUERY_MS`) land in a bounded slow-query log.
//!
//! ```
//! use eh_rdf::{Term, Triple, TripleStore};
//! use eh_srv::QueryService;
//!
//! let store = TripleStore::from_triples(vec![Triple::new(
//!     Term::iri("alice"),
//!     Term::iri("knows"),
//!     Term::iri("bob"),
//! )]);
//! let service = QueryService::with_defaults(store);
//! let cold = service.query_sparql("SELECT ?x WHERE { ?x <knows> ?y }").unwrap();
//! let warm = service.query_sparql("SELECT ?a WHERE { ?a <knows> ?b }").unwrap();
//! assert!(warm.result_cache_hit); // α-equivalent text, same cached rows
//! assert_eq!(cold.result.cardinality(), 1);
//! ```

mod cache;
mod metrics;
mod server;
mod service;

pub use emptyheaded::{SharedStore, UpdateBatch, UpdateSummary};
pub use server::{respond, respond_in_session, serve, Client, Session};
pub use service::{Answer, QueryService, ServiceConfig, ServiceStats};
