//! A byte-budgeted LRU cache for materialised query results.
//!
//! Keys are `(canonical query, catalog epoch)`: α-equivalent SPARQL
//! strings share an entry, and bumping the engine's catalog epoch
//! (invalidation) strands every old entry — stale results are never
//! served, and the strays age out through normal LRU eviction.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use eh_query::CanonicalQuery;

use crate::service::CachedResult;

/// Cache key: canonical query plus the catalog epoch it was computed at.
pub(crate) type ResultKey = (CanonicalQuery, u64);

struct Entry {
    result: Arc<CachedResult>,
    bytes: usize,
    tick: u64,
}

/// Least-recently-used result store with a byte budget. Results larger
/// than the whole budget are simply not cached (the query still answers —
/// it just always recomputes). Keys are shared (`Arc`) between the entry
/// map and the recency index, so a hit never deep-clones the canonical
/// query.
pub(crate) struct ResultLru {
    budget: usize,
    bytes: usize,
    next_tick: u64,
    entries: HashMap<Arc<ResultKey>, Entry>,
    /// Recency index: tick → key, smallest tick = least recently used.
    order: BTreeMap<u64, Arc<ResultKey>>,
}

impl ResultLru {
    pub fn new(budget: usize) -> ResultLru {
        ResultLru {
            budget,
            bytes: 0,
            next_tick: 0,
            entries: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    /// Look up a result, refreshing its recency on a hit.
    pub fn get(&mut self, key: &ResultKey) -> Option<Arc<CachedResult>> {
        let (shared_key, entry) = self.entries.get_key_value(key)?;
        let (shared_key, old_tick, result) =
            (Arc::clone(shared_key), entry.tick, Arc::clone(&entry.result));
        let tick = self.next_tick;
        self.next_tick += 1;
        self.order.remove(&old_tick);
        self.order.insert(tick, shared_key);
        self.entries.get_mut(key).expect("entry vanished between lookups").tick = tick;
        Some(result)
    }

    /// Insert a result, evicting least-recently-used entries until the
    /// budget holds. Oversized results and duplicate keys are no-ops, and
    /// both checks come *before* any eviction: an entry that can never be
    /// admitted must not first flush every resident entry. A zero-budget
    /// cache is a total no-op — even zero-byte entries are refused, since
    /// nothing could ever evict them from a cache with no byte pressure.
    pub fn insert(&mut self, key: ResultKey, result: Arc<CachedResult>, bytes: usize) {
        if self.budget == 0 || bytes > self.budget || self.entries.contains_key(&key) {
            return;
        }
        while self.bytes + bytes > self.budget {
            let Some((&tick, _)) = self.order.iter().next() else { break };
            let victim = self.order.remove(&tick).expect("order index out of sync");
            let evicted = self.entries.remove(&*victim).expect("entry index out of sync");
            self.bytes -= evicted.bytes;
        }
        let key = Arc::new(key);
        let tick = self.next_tick;
        self.next_tick += 1;
        self.bytes += bytes;
        self.entries.insert(Arc::clone(&key), Entry { result, bytes, tick });
        self.order.insert(tick, key);
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.bytes = 0;
    }

    /// Bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_query::{canonicalize, QueryBuilder};

    fn key(rel: &str, epoch: u64) -> ResultKey {
        let mut qb = QueryBuilder::new();
        let (x, y) = (qb.var("x"), qb.var("y"));
        qb.atom(rel, 0, x, y);
        (canonicalize(&qb.select(vec![x]).build().unwrap()), epoch)
    }

    /// Any real result will do — byte accounting is passed explicitly.
    fn result() -> Arc<CachedResult> {
        use eh_rdf::{Term, Triple, TripleStore};
        use emptyheaded::{Engine, OptFlags};
        let store = TripleStore::from_triples(vec![Triple::new(
            Term::iri("s"),
            Term::iri("p"),
            Term::iri("o"),
        )]);
        let engine = Engine::new(store, OptFlags::all());
        Arc::new(CachedResult::new(engine.run_sparql("SELECT ?x WHERE { ?x <p> ?y }").unwrap()))
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let mut lru = ResultLru::new(100);
        let r = result();
        lru.insert(key("a", 0), Arc::clone(&r), 40);
        lru.insert(key("b", 0), Arc::clone(&r), 40);
        assert_eq!((lru.len(), lru.bytes()), (2, 80));
        // Touch "a" so "b" becomes the eviction victim.
        assert!(lru.get(&key("a", 0)).is_some());
        lru.insert(key("c", 0), Arc::clone(&r), 40);
        assert_eq!(lru.len(), 2);
        assert!(lru.get(&key("a", 0)).is_some());
        assert!(lru.get(&key("b", 0)).is_none());
        assert!(lru.get(&key("c", 0)).is_some());
    }

    #[test]
    fn oversized_results_are_not_cached() {
        let mut lru = ResultLru::new(10);
        lru.insert(key("a", 0), result(), 11);
        assert_eq!((lru.len(), lru.bytes()), (0, 0));
    }

    #[test]
    fn oversized_insert_does_not_evict_residents() {
        // The failure mode under test: an entry larger than the whole
        // budget must be refused up front, not admitted after pointlessly
        // evicting every resident entry.
        let mut lru = ResultLru::new(100);
        let r = result();
        lru.insert(key("a", 0), Arc::clone(&r), 40);
        lru.insert(key("b", 0), Arc::clone(&r), 40);
        lru.insert(key("huge", 0), Arc::clone(&r), 101);
        assert_eq!((lru.len(), lru.bytes()), (2, 80));
        assert!(lru.get(&key("a", 0)).is_some());
        assert!(lru.get(&key("b", 0)).is_some());
        assert!(lru.get(&key("huge", 0)).is_none());
    }

    #[test]
    fn entry_exactly_filling_the_budget_is_admitted() {
        let mut lru = ResultLru::new(100);
        let r = result();
        lru.insert(key("a", 0), Arc::clone(&r), 40);
        // Exactly the budget: fits, at the cost of evicting residents.
        lru.insert(key("full", 0), Arc::clone(&r), 100);
        assert_eq!((lru.len(), lru.bytes()), (1, 100));
        assert!(lru.get(&key("full", 0)).is_some());
    }

    #[test]
    fn zero_budget_cache_is_a_noop_even_for_zero_byte_entries() {
        // A zero-byte entry "fits" any budget arithmetically; admitting
        // it into a zero-budget cache would grow the entry map without
        // bound (no byte pressure ever evicts it). The cache must refuse
        // outright — and must neither loop nor panic doing so.
        let mut lru = ResultLru::new(0);
        let r = result();
        for i in 0..16 {
            lru.insert(key(&format!("k{i}"), 0), Arc::clone(&r), 0);
            lru.insert(key(&format!("p{i}"), 0), Arc::clone(&r), 1);
        }
        assert_eq!((lru.len(), lru.bytes()), (0, 0));
        assert!(lru.get(&key("k0", 0)).is_none());
    }

    #[test]
    fn epoch_partitions_the_key_space() {
        let mut lru = ResultLru::new(100);
        lru.insert(key("a", 0), result(), 10);
        assert!(lru.get(&key("a", 1)).is_none());
        assert!(lru.get(&key("a", 0)).is_some());
    }

    #[test]
    fn clear_resets_accounting() {
        let mut lru = ResultLru::new(100);
        lru.insert(key("a", 0), result(), 10);
        lru.clear();
        assert_eq!((lru.len(), lru.bytes()), (0, 0));
        assert!(lru.get(&key("a", 0)).is_none());
    }
}
