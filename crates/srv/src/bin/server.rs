//! The standalone serving daemon for the WCOJ engine.
//!
//! ```text
//! # Cold start: parse N-Triples, build everything from scratch.
//! cargo run --release -p eh-srv --bin server -- --data graph.nt --port 7878
//!
//! # Warm start: memory-load a snapshot written by the SAVE verb (or
//! # eh-bench's coldstart harness) — milliseconds instead of a re-parse.
//! cargo run --release -p eh-srv --bin server -- --snapshot store.snap --port 7878
//!
//! # Demo data: generate an N-Triples file first (keeps the benchmark
//! # generator out of the serving crate's dependencies).
//! cargo run --release -p eh-lubm --bin lubm-gen -- --universities 1 --out lubm1.nt
//! cargo run --release -p eh-srv --bin server -- --data lubm1.nt --port 7878
//! ```
//!
//! Exactly one data source (`--snapshot` or `--data`) must be given.
//! `--threads N` sets join-execution workers, `--sessions N` the
//! concurrent-connection pool, and `--partitions P` the number of
//! subject-hash shards the store is split into (omitted: `--data` builds
//! unpartitioned, `--snapshot` keeps the image's partitioning).
//! Snapshots load zero-copy by default — trie arenas serve straight from
//! `mmap`ed page cache when the file is v3 and aligned, with an automatic
//! (logged) fallback to the memory-load path otherwise; `--no-mmap`
//! forces the copy path. The server runs until killed; clients can
//! persist the live store at any time with `SAVE <path>`.
//!
//! `--wal <path>` attaches a write-ahead log: any records the file holds
//! are replayed before serving (crash recovery — pair it with the same
//! `--snapshot` the log was started against), then every applied batch
//! is logged before it stages and `SAVE` truncates the log down to the
//! new image. `--fsync always|never|interval:<ms>` picks the durability
//! / latency trade (default `always`).

use std::net::TcpListener;
use std::sync::atomic::AtomicBool;
use std::time::Instant;

use eh_rdf::{parse_ntriples, TripleStore};
use eh_srv::{serve, QueryService, ServiceConfig};
use emptyheaded::{FsyncPolicy, PlannerConfig, SharedStore};

struct Args {
    snapshot: Option<String>,
    data: Option<String>,
    port: u16,
    threads: usize,
    sessions: usize,
    partitions: Option<usize>,
    mmap: bool,
    wal: Option<String>,
    fsync: FsyncPolicy,
}

fn usage() -> ! {
    eprintln!(
        "usage: server (--snapshot <path> | --data <file.nt>) \
         [--port P] [--threads N] [--sessions N] [--partitions P] [--mmap|--no-mmap] \
         [--wal <path>] [--fsync always|never|interval:<ms>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        snapshot: None,
        data: None,
        port: 0,
        threads: 1,
        sessions: 8,
        partitions: None,
        mmap: true,
        wal: None,
        fsync: FsyncPolicy::Always,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value =
            |i: usize| -> &str { argv.get(i + 1).map(|s| s.as_str()).unwrap_or_else(|| usage()) };
        match argv[i].as_str() {
            "--snapshot" => args.snapshot = Some(value(i).to_string()),
            "--data" => args.data = Some(value(i).to_string()),
            "--port" => args.port = value(i).parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = value(i).parse().unwrap_or_else(|_| usage()),
            "--sessions" => args.sessions = value(i).parse().unwrap_or_else(|_| usage()),
            "--partitions" => args.partitions = Some(value(i).parse().unwrap_or_else(|_| usage())),
            "--wal" => args.wal = Some(value(i).to_string()),
            "--fsync" => args.fsync = value(i).parse().unwrap_or_else(|_| usage()),
            "--mmap" => {
                args.mmap = true;
                i += 1;
                continue;
            }
            "--no-mmap" => {
                args.mmap = false;
                i += 1;
                continue;
            }
            _ => usage(),
        }
        i += 2;
    }
    if args.snapshot.is_some() == args.data.is_some() {
        usage();
    }
    if args.partitions == Some(0) {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    let config = ServiceConfig {
        planner: PlannerConfig::default().with_threads(args.threads).with_wal_fsync(args.fsync),
        result_cache_bytes: ServiceConfig::DEFAULT_RESULT_CACHE_BYTES,
        plan_cache_entries: ServiceConfig::DEFAULT_PLAN_CACHE_ENTRIES,
        server_sessions: args.sessions,
        record_metrics: true,
        slow_query_ms: ServiceConfig::slow_query_ms_from_env(),
    };

    let t0 = Instant::now();
    let service = if let Some(path) = &args.snapshot {
        let svc = if args.mmap {
            QueryService::from_snapshot_mmap(path, config)
        } else {
            QueryService::from_snapshot(path, config)
        }
        .unwrap_or_else(|e| {
            eprintln!("failed to load snapshot {path}: {e}");
            std::process::exit(1);
        });
        let load = svc.engine().load_info().expect("snapshot-built engine records its load");
        if let Some(reason) = load.fallback {
            eprintln!("mmap load of {path} fell back to copy: {reason}");
        }
        println!(
            "loaded snapshot {path} in {:.1} ms ({} tries preloaded, load_mode={})",
            t0.elapsed().as_secs_f64() * 1e3,
            svc.engine().catalog().cached_tries(),
            load.mode
        );
        // Re-shard only on an explicit request that disagrees with the
        // image: repartitioning discards the snapshot's preloaded tries
        // (placement moved), so the silent default keeps them.
        if let Some(p) = args.partitions {
            if p != svc.store().partitions() {
                svc.engine().repartition(p);
                svc.invalidate();
                println!("repartitioned into {p} subject shards");
            }
        }
        svc
    } else {
        let path = args.data.as_deref().expect("one source is set");
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(1);
        });
        let triples = parse_ntriples(&text).unwrap_or_else(|e| {
            eprintln!("failed to parse {path}: {e}");
            std::process::exit(1);
        });
        let store = match args.partitions {
            Some(p) => SharedStore::new(TripleStore::from_triples_partitioned(triples, p)),
            None => SharedStore::from_triples(triples),
        };
        let svc = QueryService::new(store, config);
        println!("parsed {path} in {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);
        svc
    };

    let service = match &args.wal {
        None => service,
        Some(path) => {
            let mut service = service;
            let t0 = Instant::now();
            let recovery = service.open_wal(path).unwrap_or_else(|e| {
                eprintln!("failed to open wal {path}: {e}");
                std::process::exit(1);
            });
            println!(
                "wal {path} attached in {:.1} ms (replayed {} records, seq {}..={}, \
                 +{} -{} triples{}, fsync={})",
                t0.elapsed().as_secs_f64() * 1e3,
                recovery.replayed,
                recovery.base_seq,
                recovery.last_seq,
                recovery.inserted,
                recovery.deleted,
                if recovery.torn_tail_dropped { ", torn tail dropped" } else { "" },
                args.fsync
            );
            service
        }
    };

    let stats = service.store().stats();
    let partitions = service.store().partitions();
    let listener = TcpListener::bind(("127.0.0.1", args.port)).unwrap_or_else(|e| {
        eprintln!("failed to bind port {}: {e}", args.port);
        std::process::exit(1);
    });
    println!(
        "serving {} triples / {} predicates on {} ({} threads, {} sessions, {} partitions)",
        stats.triples,
        stats.predicates,
        listener.local_addr().expect("bound socket has an address"),
        args.threads,
        args.sessions,
        partitions
    );
    // Runs until the process is killed; SAVE snapshots can be taken live.
    let shutdown = AtomicBool::new(false);
    serve(&service, listener, &shutdown);
}
