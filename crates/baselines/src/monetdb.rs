//! The MonetDB-style baseline: a vertically partitioned column store with
//! pairwise hash joins.
//!
//! Substitution fidelity (DESIGN.md): the paper ran MonetDB Jul2015 over
//! vertically partitioned tables (§IV-A2). Its Table II costs come from
//! (a) selections executed as column scans, (b) pairwise hash joins with
//! fully materialised intermediates, and (c) a join order driven by base
//! table sizes rather than bound-constant selectivities. This analogue
//! implements exactly those mechanics over the shared [`TripleStore`].

use eh_query::{ConjunctiveQuery, Var};
use eh_rdf::TripleStore;
use eh_trie::TupleBuffer;

use crate::pairwise::{distinct_project, hash_join, Bindings};
use crate::traits::QueryEngine;

/// Pairwise column-store engine (see module docs).
pub struct MonetDbStyle<'s> {
    store: &'s TripleStore,
}

impl<'s> MonetDbStyle<'s> {
    /// An engine over `store`.
    pub fn new(store: &'s TripleStore) -> MonetDbStyle<'s> {
        MonetDbStyle { store }
    }

    /// Scan one atom's predicate column pair, applying equality selections
    /// by filtering during the scan (no point indexes).
    fn scan(&self, q: &ConjunctiveQuery, i: usize) -> Bindings {
        let a = &q.atoms()[i];
        let s_sel = q.selection(a.vars[0]).map(|c| c.unwrap());
        let o_sel = q.selection(a.vars[1]).map(|c| c.unwrap());
        let mut vars: Vec<Var> = Vec::new();
        if s_sel.is_none() {
            vars.push(a.vars[0]);
        }
        if o_sel.is_none() {
            vars.push(a.vars[1]);
        }
        let mut rows = TupleBuffer::new(vars.len());
        if let Some(table) = self.store.table_by_name(&a.relation) {
            for &(s, o) in table.so_pairs() {
                if s_sel.is_some_and(|c| c != s) || o_sel.is_some_and(|c| c != o) {
                    continue;
                }
                match (s_sel.is_none(), o_sel.is_none()) {
                    (true, true) => rows.push(&[s, o]),
                    (true, false) => rows.push(&[s]),
                    (false, true) => rows.push(&[o]),
                    (false, false) => rows.push(&[]),
                }
            }
        }
        Bindings { vars, rows }
    }

    fn table_len(&self, q: &ConjunctiveQuery, i: usize) -> usize {
        self.store.table_by_name(&q.atoms()[i].relation).map_or(0, |t| t.len())
    }
}

impl QueryEngine for MonetDbStyle<'_> {
    fn name(&self) -> &'static str {
        "MonetDB-style"
    }

    fn execute(&self, q: &ConjunctiveQuery) -> TupleBuffer {
        let empty = || TupleBuffer::new(q.projection().len());
        if q.has_missing_constant() {
            return empty();
        }
        // Fully-constant atoms: scan-based existence checks (no point
        // index — MonetDB reads the column pair).
        let mut remaining: Vec<usize> = Vec::new();
        for i in 0..q.atoms().len() {
            let a = &q.atoms()[i];
            let s_sel = q.selection(a.vars[0]).map(|c| c.unwrap());
            let o_sel = q.selection(a.vars[1]).map(|c| c.unwrap());
            if let (Some(s), Some(o)) = (s_sel, o_sel) {
                let hit = self
                    .store
                    .table_by_name(&a.relation)
                    .is_some_and(|t| t.so_pairs().contains(&(s, o)));
                if !hit {
                    return empty();
                }
            } else {
                remaining.push(i);
            }
        }
        if remaining.is_empty() {
            return empty();
        }
        // Left-deep order by raw table size — deliberately blind to
        // selection selectivity (the design gap the paper measures).
        remaining.sort_by_key(|&i| self.table_len(q, i));
        let first = remaining.remove(0);
        let mut cur = self.scan(q, first);
        while !remaining.is_empty() {
            let shares = |i: usize| {
                q.atoms()[i].vars.iter().any(|&v| !q.is_selected(v) && cur.col(v).is_some())
            };
            let pick = remaining
                .iter()
                .copied()
                .filter(|&i| shares(i))
                .min_by_key(|&i| self.table_len(q, i))
                .or_else(|| remaining.first().copied())
                .unwrap();
            remaining.retain(|&i| i != pick);
            let scanned = self.scan(q, pick);
            cur = hash_join(&cur, &scanned);
            if cur.rows.is_empty() {
                return empty();
            }
        }
        distinct_project(&cur, q.projection())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_query::QueryBuilder;
    use eh_rdf::{Term, Triple};

    fn store() -> TripleStore {
        TripleStore::from_triples(vec![
            Triple::new(Term::iri("a"), Term::iri("p"), Term::iri("b")),
            Triple::new(Term::iri("b"), Term::iri("p"), Term::iri("c")),
            Triple::new(Term::iri("a"), Term::iri("q"), Term::iri("c")),
        ])
    }

    #[test]
    fn two_hop_path() {
        let s = store();
        let p = s.resolve_iri("p").unwrap();
        let mut qb = QueryBuilder::new();
        let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
        qb.atom("p", p, x, y).atom("p", p, y, z);
        let q = qb.select(vec![x, z]).build().unwrap();
        let out = MonetDbStyle::new(&s).execute(&q);
        assert_eq!(out.len(), 1);
        let a = s.resolve_iri("a").unwrap();
        let c = s.resolve_iri("c").unwrap();
        assert_eq!(out.row(0), &[a, c]);
    }

    #[test]
    fn selection_scan() {
        let s = store();
        let p = s.resolve_iri("p").unwrap();
        let b = s.resolve_iri("b");
        let mut qb = QueryBuilder::new();
        let x = qb.var("x");
        let o = qb.selection_var(b);
        qb.atom("p", p, x, o);
        let q = qb.select(vec![x]).build().unwrap();
        let out = MonetDbStyle::new(&s).execute(&q);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn missing_predicate_empty() {
        let s = store();
        let mut qb = QueryBuilder::new();
        let (x, y) = (qb.var("x"), qb.var("y"));
        qb.atom("absent", u32::MAX, x, y);
        let q = qb.select(vec![x]).build().unwrap();
        assert!(MonetDbStyle::new(&s).execute(&q).is_empty());
    }

    #[test]
    fn fully_constant_atom_filters() {
        let s = store();
        let p = s.resolve_iri("p").unwrap();
        let a = s.resolve_iri("a");
        let b = s.resolve_iri("b");
        let c = s.resolve_iri("c");
        // Satisfied constant atom: result unaffected.
        let mut qb = QueryBuilder::new();
        let x = qb.var("x");
        let y = qb.var("y");
        let s1 = qb.selection_var(a);
        let o1 = qb.selection_var(b);
        qb.atom("p", p, s1, o1).atom("p", p, x, y);
        let q = qb.select(vec![x]).build().unwrap();
        assert_eq!(MonetDbStyle::new(&s).execute(&q).len(), 2);
        // Violated constant atom: empty.
        let mut qb = QueryBuilder::new();
        let x = qb.var("x");
        let y = qb.var("y");
        let s1 = qb.selection_var(a);
        let o1 = qb.selection_var(c);
        qb.atom("p", p, s1, o1).atom("p", p, x, y);
        let q = qb.select(vec![x]).build().unwrap();
        assert!(MonetDbStyle::new(&s).execute(&q).is_empty());
    }
}
