//! The LogicBlox-style baseline: worst-case optimal joins without
//! EmptyHeaded's optimizations.
//!
//! Substitution fidelity (DESIGN.md): the paper characterises LogicBlox as
//! the first commercial engine with a worst-case optimal join, but
//! "LogicBlox does not come with fully optimized query plans or indexes"
//! (§I) and attributes EmptyHeaded's advantage over it to the set layouts
//! (§IV-B) and the §III plan optimizations. This analogue therefore
//! delegates to the same `emptyheaded` executor with every optimization
//! disabled and the decomposition forced to a single node (the shape a
//! generic-join-only engine executes): sorted uint arrays only, attribute
//! order by query appearance, no selection pushdown, no pipelining.

use eh_query::ConjunctiveQuery;
use eh_rdf::TripleStore;
use eh_trie::TupleBuffer;

use crate::traits::QueryEngine;
use emptyheaded::{Engine, PlannerConfig};

/// Unoptimized worst-case optimal engine (see module docs).
pub struct LogicBloxStyle {
    engine: Engine,
}

impl LogicBloxStyle {
    /// An engine over a snapshot of `store`. The borrowed store is cloned
    /// into the engine's [`SharedStore`](emptyheaded::SharedStore) —
    /// dictionary keys are preserved, so encoded results compare directly
    /// against the other baselines over the original store. (The live
    /// baselines stay read-only; updates are the real engine's concern.)
    pub fn new(store: &TripleStore) -> LogicBloxStyle {
        LogicBloxStyle {
            engine: Engine::with_config(store.clone(), PlannerConfig::logicblox_style()),
        }
    }

    /// The wrapped worst-case optimal engine (for plan inspection).
    pub fn inner(&self) -> &Engine {
        &self.engine
    }
}

impl QueryEngine for LogicBloxStyle {
    fn name(&self) -> &'static str {
        "LogicBlox-style"
    }

    fn execute(&self, q: &ConjunctiveQuery) -> TupleBuffer {
        self.engine.run(q).expect("valid workload query").tuples().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_query::QueryBuilder;
    use eh_rdf::{Term, Triple};

    #[test]
    fn single_node_unoptimized_plan() {
        let store = TripleStore::from_triples(vec![Triple::new(
            Term::iri("a"),
            Term::iri("p"),
            Term::iri("b"),
        )]);
        let p = store.resolve_iri("p").unwrap();
        let lb = LogicBloxStyle::new(&store);
        let mut qb = QueryBuilder::new();
        let (x, y) = (qb.var("x"), qb.var("y"));
        qb.atom("p", p, x, y);
        let q = qb.select(vec![x, y]).build().unwrap();
        let plan = lb.inner().plan(&q).unwrap();
        assert_eq!(plan.ghd.num_nodes(), 1);
        assert!(!plan.pipelined);
        assert_eq!(lb.execute(&q).len(), 1);
    }
}
