//! The RDF-3X-style baseline: a full triple table with all six
//! SPO-permutation clustered indexes and aggregate statistics.
//!
//! Substitution fidelity (DESIGN.md): RDF-3X (Neumann & Weikum) "builds a
//! full set of permutations on all triples and uses selectivity estimates
//! to choose the best join order" (paper §IV-A2 and Appendix A). This
//! analogue materialises the six sorted permutations plus per-predicate
//! aggregate statistics, picks a greedy selectivity-minimal pairwise
//! order, and executes joins by clustered-index range lookups — strong on
//! selective acyclic patterns, pairwise-suboptimal on cycles, which is
//! precisely the profile Table II measures.

use std::collections::HashMap;

use eh_query::{Atom, ConjunctiveQuery};
use eh_rdf::TripleStore;
use eh_trie::TupleBuffer;

use crate::pairwise::{greedy_inl_execute, InlBackend};
use crate::traits::QueryEngine;

/// One sorted triple permutation with binary-search range access.
#[derive(Debug)]
struct Permutation {
    rows: Vec<[u32; 3]>,
}

impl Permutation {
    fn build(triples: impl Iterator<Item = [u32; 3]>) -> Permutation {
        let mut rows: Vec<[u32; 3]> = triples.collect();
        rows.sort_unstable();
        rows.dedup();
        Permutation { rows }
    }

    fn range1(&self, a: u32) -> &[[u32; 3]] {
        let lo = self.rows.partition_point(|r| r[0] < a);
        let hi = self.rows.partition_point(|r| r[0] <= a);
        &self.rows[lo..hi]
    }

    fn range2(&self, a: u32, b: u32) -> &[[u32; 3]] {
        let lo = self.rows.partition_point(|r| (r[0], r[1]) < (a, b));
        let hi = self.rows.partition_point(|r| (r[0], r[1]) <= (a, b));
        &self.rows[lo..hi]
    }

    fn contains(&self, t: [u32; 3]) -> bool {
        self.rows.binary_search(&t).is_ok()
    }
}

/// Per-predicate aggregate statistics (RDF-3X's aggregated indexes,
/// reduced to what the join-order heuristic consumes).
#[derive(Debug, Clone, Copy, Default)]
struct PredStats {
    triples: usize,
    distinct_s: usize,
    distinct_o: usize,
}

/// RDF-3X analogue (see module docs).
pub struct Rdf3xStyle<'s> {
    store: &'s TripleStore,
    /// (p, s, o) — the PSO clustered index.
    pso: Permutation,
    /// (p, o, s) — the POS clustered index.
    pos: Permutation,
    /// (s, p, o), (o, p, s) — for fully-bound membership and the
    /// remaining access paths of the full permutation set.
    spo: Permutation,
    ops: Permutation,
    /// (s, o, p) and (o, s, p) complete the six permutations; unused by
    /// the fixed-predicate LUBM workload but kept for design fidelity.
    sop: Permutation,
    osp: Permutation,
    stats: HashMap<u32, PredStats>,
}

impl<'s> Rdf3xStyle<'s> {
    /// Build the six permutation indexes and aggregate statistics
    /// (construction is "load time" — excluded from query timing, like
    /// the paper's methodology).
    pub fn new(store: &'s TripleStore) -> Rdf3xStyle<'s> {
        let t = || store.encoded_triples();
        let pso = Permutation::build(t().map(|t| [t.p, t.s, t.o]));
        let pos = Permutation::build(t().map(|t| [t.p, t.o, t.s]));
        let spo = Permutation::build(t().map(|t| [t.s, t.p, t.o]));
        let ops = Permutation::build(t().map(|t| [t.o, t.p, t.s]));
        let sop = Permutation::build(t().map(|t| [t.s, t.o, t.p]));
        let osp = Permutation::build(t().map(|t| [t.o, t.s, t.p]));
        let mut stats: HashMap<u32, PredStats> = HashMap::new();
        for table in store.tables() {
            stats.insert(
                table.pred(),
                PredStats {
                    triples: table.len(),
                    distinct_s: table.distinct_subjects(),
                    distinct_o: table.distinct_objects(),
                },
            );
        }
        Rdf3xStyle { store, pso, pos, spo, ops, sop, osp, stats }
    }

    fn pred(&self, atom: &Atom) -> Option<u32> {
        self.store.resolve_iri(&atom.relation)
    }

    /// Aggregate-index statistics for one predicate.
    fn stat(&self, atom: &Atom) -> PredStats {
        self.pred(atom).and_then(|p| self.stats.get(&p).copied()).unwrap_or_default()
    }

    /// Total triples in the ingested table (diagnostics).
    pub fn num_triples(&self) -> usize {
        self.pso.rows.len()
    }

    /// Access the rarely-used permutations so the full index set stays
    /// exercised by tests.
    #[doc(hidden)]
    pub fn permutation_sizes(&self) -> [usize; 6] {
        [
            self.spo.rows.len(),
            self.sop.rows.len(),
            self.pso.rows.len(),
            self.pos.rows.len(),
            self.osp.rows.len(),
            self.ops.rows.len(),
        ]
    }
}

impl InlBackend for Rdf3xStyle<'_> {
    fn pattern_count(&self, atom: &Atom, s: Option<u32>, o: Option<u32>) -> usize {
        let Some(p) = self.pred(atom) else { return 0 };
        match (s, o) {
            (None, None) => self.stat(atom).triples,
            (Some(s), None) => self.pso.range2(p, s).len(),
            (None, Some(o)) => self.pos.range2(p, o).len(),
            (Some(s), Some(o)) => usize::from(self.spo.contains([s, p, o])),
        }
    }

    fn for_each_object(&self, atom: &Atom, s: u32, f: &mut dyn FnMut(u32)) {
        if let Some(p) = self.pred(atom) {
            for r in self.pso.range2(p, s) {
                f(r[2]);
            }
        }
    }

    fn for_each_subject(&self, atom: &Atom, o: u32, f: &mut dyn FnMut(u32)) {
        if let Some(p) = self.pred(atom) {
            for r in self.pos.range2(p, o) {
                f(r[2]);
            }
        }
    }

    fn contains_pair(&self, atom: &Atom, s: u32, o: u32) -> bool {
        self.pred(atom).is_some_and(|p| self.spo.contains([s, p, o]))
    }

    fn avg_fanout_subject(&self, atom: &Atom) -> usize {
        let st = self.stat(atom);
        (st.triples / st.distinct_s.max(1)).max(1)
    }

    fn avg_fanout_object(&self, atom: &Atom) -> usize {
        let st = self.stat(atom);
        (st.triples / st.distinct_o.max(1)).max(1)
    }

    fn scan_pairs(&self, atom: &Atom, s: Option<u32>, o: Option<u32>) -> Vec<(u32, u32)> {
        let Some(p) = self.pred(atom) else { return Vec::new() };
        match (s, o) {
            (None, None) => self.pso.range1(p).iter().map(|r| (r[1], r[2])).collect(),
            (Some(s), None) => self.pso.range2(p, s).iter().map(|r| (s, r[2])).collect(),
            (None, Some(o)) => self.pos.range2(p, o).iter().map(|r| (r[2], o)).collect(),
            (Some(s), Some(o)) => {
                if self.spo.contains([s, p, o]) {
                    vec![(s, o)]
                } else {
                    Vec::new()
                }
            }
        }
    }
}

impl QueryEngine for Rdf3xStyle<'_> {
    fn name(&self) -> &'static str {
        "RDF-3X-style"
    }

    fn execute(&self, q: &ConjunctiveQuery) -> TupleBuffer {
        greedy_inl_execute(self, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_query::QueryBuilder;
    use eh_rdf::{Term, Triple};

    fn store() -> TripleStore {
        TripleStore::from_triples(vec![
            Triple::new(Term::iri("a"), Term::iri("p"), Term::iri("b")),
            Triple::new(Term::iri("b"), Term::iri("p"), Term::iri("c")),
            Triple::new(Term::iri("b"), Term::iri("q"), Term::iri("d")),
        ])
    }

    #[test]
    fn permutations_cover_all_triples() {
        let s = store();
        let e = Rdf3xStyle::new(&s);
        assert_eq!(e.num_triples(), 3);
        assert_eq!(e.permutation_sizes(), [3; 6]);
    }

    #[test]
    fn pattern_counts_are_exact() {
        let s = store();
        let e = Rdf3xStyle::new(&s);
        let p = s.resolve_iri("p").unwrap();
        let b = s.resolve_iri("b").unwrap();
        let mut qb = QueryBuilder::new();
        let (x, y) = (qb.var("x"), qb.var("y"));
        qb.atom("p", p, x, y);
        let q = qb.select(vec![x]).build().unwrap();
        let atom = &q.atoms()[0];
        assert_eq!(e.pattern_count(atom, None, None), 2);
        assert_eq!(e.pattern_count(atom, Some(b), None), 1);
        assert_eq!(e.pattern_count(atom, None, Some(b)), 1);
        assert_eq!(e.pattern_count(atom, Some(b), Some(b)), 0);
    }

    #[test]
    fn join_two_predicates() {
        let s = store();
        let e = Rdf3xStyle::new(&s);
        let p = s.resolve_iri("p").unwrap();
        let qp = s.resolve_iri("q").unwrap();
        let mut qb = QueryBuilder::new();
        let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
        qb.atom("p", p, x, y).atom("q", qp, y, z);
        let q = qb.select(vec![x, z]).build().unwrap();
        let out = e.execute(&q);
        assert_eq!(out.len(), 1);
        assert_eq!(out.row(0), &[s.resolve_iri("a").unwrap(), s.resolve_iri("d").unwrap()]);
    }

    #[test]
    fn missing_predicate_is_empty() {
        let s = store();
        let e = Rdf3xStyle::new(&s);
        let mut qb = QueryBuilder::new();
        let (x, y) = (qb.var("x"), qb.var("y"));
        qb.atom("absent", u32::MAX, x, y);
        let q = qb.select(vec![x]).build().unwrap();
        assert!(e.execute(&q).is_empty());
    }
}
