//! The engine interface shared by every baseline.

use eh_query::ConjunctiveQuery;
use eh_trie::TupleBuffer;

/// A query engine producing distinct rows over the query's projection, in
/// `SELECT` column order — the common currency the benchmark harness uses
/// to check that all engines agree before timing them.
pub trait QueryEngine {
    /// Engine name as reported in harness output.
    fn name(&self) -> &'static str;

    /// Execute a conjunctive query, returning distinct projected rows.
    fn execute(&self, q: &ConjunctiveQuery) -> TupleBuffer;
}
