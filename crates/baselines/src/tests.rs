//! Cross-engine agreement: all four baselines and the EmptyHeaded engine
//! must return identical result sets on the full LUBM workload and on
//! randomized conjunctive queries.

use std::collections::BTreeSet;

use eh_lubm::queries::{lubm_query, QUERY_NUMBERS};
use eh_lubm::{generate_store, GeneratorConfig};
use eh_query::{ConjunctiveQuery, QueryBuilder};
use eh_rdf::{Term, Triple, TripleStore};
use eh_trie::TupleBuffer;

use crate::{LogicBloxStyle, MonetDbStyle, QueryEngine, Rdf3xStyle, TripleBitStyle};
use emptyheaded::{Engine, OptFlags};

fn rows(t: &TupleBuffer) -> BTreeSet<Vec<u32>> {
    t.rows().map(|r| r.to_vec()).collect()
}

fn check_all_engines(store: &TripleStore, q: &ConjunctiveQuery, label: &str) {
    let eh = Engine::new(store.clone(), OptFlags::all());
    let reference = rows(eh.run(q).expect("EH executes workload queries").tuples());
    let engines: Vec<Box<dyn QueryEngine + '_>> = vec![
        Box::new(MonetDbStyle::new(store)),
        Box::new(Rdf3xStyle::new(store)),
        Box::new(TripleBitStyle::new(store)),
        Box::new(LogicBloxStyle::new(store)),
    ];
    for e in &engines {
        let got = rows(&e.execute(q));
        assert_eq!(
            got,
            reference,
            "{label}: {} disagrees with EmptyHeaded ({} vs {} rows)",
            e.name(),
            got.len(),
            reference.len()
        );
    }
}

#[test]
fn lubm_workload_all_engines_agree() {
    let store = generate_store(&GeneratorConfig::tiny(2));
    for n in QUERY_NUMBERS {
        let q = lubm_query(n, &store).unwrap();
        check_all_engines(&store, &q, &format!("LUBM query {n}"));
    }
}

#[test]
fn triangle_query_all_engines_agree() {
    // A dense random-ish graph with triangles.
    let mut triples = Vec::new();
    for i in 0u32..30 {
        for j in 0u32..30 {
            if i != j && (i * 7 + j * 13) % 5 == 0 {
                triples.push(Triple::new(
                    Term::iri(format!("n{i}")),
                    Term::iri("edge"),
                    Term::iri(format!("n{j}")),
                ));
            }
        }
    }
    let store = TripleStore::from_triples(triples);
    let p = store.resolve_iri("edge").unwrap();
    let mut qb = QueryBuilder::new();
    let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
    qb.atom("edge", p, x, y).atom("edge", p, y, z).atom("edge", p, x, z);
    let q = qb.select(vec![x, y, z]).build().unwrap();
    check_all_engines(&store, &q, "triangle");
}

#[test]
fn randomized_queries_all_engines_agree() {
    // Deterministic pseudo-random stores and queries (no rand dependency
    // drift): a small LCG drives shapes.
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) % m) as u32
    };
    for round in 0..12 {
        let preds = ["p0", "p1", "p2"];
        let mut triples = Vec::new();
        let n = 20 + next(40);
        for _ in 0..n {
            triples.push(Triple::new(
                Term::iri(format!("n{}", next(10))),
                Term::iri(preds[next(3) as usize]),
                Term::iri(format!("n{}", next(10))),
            ));
        }
        let store = TripleStore::from_triples(triples);
        let mut qb = QueryBuilder::new();
        let n_atoms = 1 + next(3);
        let mut named = Vec::new();
        let mut any_atom = false;
        for _ in 0..n_atoms {
            let pred_name = preds[next(3) as usize];
            let pred = store.resolve_iri(pred_name).unwrap_or(u32::MAX);
            // Each position: 1-in-4 chance of a constant, else a shared
            // named variable. Selection vars never enter the projection.
            let mut mk = |qb: &mut QueryBuilder| {
                if next(4) == 0 {
                    let c = store.resolve_iri(&format!("n{}", next(10)));
                    (qb.selection_var(c), false)
                } else {
                    let v = qb.var(&format!("v{}", next(3)));
                    (v, true)
                }
            };
            let (s, s_named) = mk(&mut qb);
            let (o, o_named) = mk(&mut qb);
            if s == o {
                continue; // builder rejects repeated vars in an atom
            }
            qb.atom(pred_name, pred, s, o);
            any_atom = true;
            if s_named {
                named.push(s);
            }
            if o_named {
                named.push(o);
            }
        }
        if !any_atom || named.is_empty() {
            continue;
        }
        named.sort_unstable();
        named.dedup();
        let q = qb.select(named).build().expect("generated query is valid");
        check_all_engines(&store, &q, &format!("random round {round}"));
    }
}
