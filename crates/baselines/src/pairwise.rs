//! Shared machinery for pairwise (binary-join) engines: binding tables,
//! hash joins, distinct projection, and the greedy index-nested-loop
//! driver used by the specialised-RDF-engine analogues.

use std::collections::HashMap;

use eh_query::{ConjunctiveQuery, Var};
use eh_trie::TupleBuffer;

/// An intermediate result: rows over a set of bound variables.
#[derive(Debug, Clone)]
pub(crate) struct Bindings {
    pub vars: Vec<Var>,
    pub rows: TupleBuffer,
}

impl Bindings {
    /// The unit result: no variables, one empty row (join identity).
    /// Arity-0 buffers cannot hold rows, so by convention empty `vars`
    /// means "exactly one row".
    #[cfg(test)]
    pub fn unit() -> Bindings {
        Bindings { vars: Vec::new(), rows: TupleBuffer::new(0) }
    }

    pub fn is_unit(&self) -> bool {
        self.vars.is_empty()
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        if self.is_unit() {
            1
        } else {
            self.rows.len()
        }
    }

    pub fn col(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|&w| w == v)
    }
}

/// Hash join two binding tables on their shared variables (cross product
/// when none are shared). Intermediates are fully materialised — the
/// pairwise cost the paper contrasts with worst-case optimal joins.
pub(crate) fn hash_join(a: &Bindings, b: &Bindings) -> Bindings {
    if a.is_unit() {
        return b.clone();
    }
    if b.is_unit() {
        return a.clone();
    }
    let shared: Vec<Var> = a.vars.iter().copied().filter(|v| b.vars.contains(v)).collect();
    let a_key: Vec<usize> = shared.iter().map(|&v| a.col(v).unwrap()).collect();
    let b_key: Vec<usize> = shared.iter().map(|&v| b.col(v).unwrap()).collect();
    let b_extra: Vec<usize> = (0..b.vars.len()).filter(|i| !b_key.contains(i)).collect();

    let out_vars: Vec<Var> =
        a.vars.iter().copied().chain(b_extra.iter().map(|&i| b.vars[i])).collect();
    let mut out = TupleBuffer::new(out_vars.len());

    // Build on the smaller side... but output column layout is fixed as
    // (a, b_extra); building on b keeps the probe loop over a.
    let mut table: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
    for (i, row) in b.rows.rows().enumerate() {
        let key: Vec<u32> = b_key.iter().map(|&k| row[k]).collect();
        table.entry(key).or_default().push(i);
    }
    let mut row_buf = vec![0u32; out_vars.len()];
    for arow in a.rows.rows() {
        let key: Vec<u32> = a_key.iter().map(|&k| arow[k]).collect();
        if let Some(matches) = table.get(&key) {
            for &bi in matches {
                let brow = b.rows.row(bi);
                row_buf[..arow.len()].copy_from_slice(arow);
                for (j, &col) in b_extra.iter().enumerate() {
                    row_buf[arow.len() + j] = brow[col];
                }
                out.push(&row_buf);
            }
        }
    }
    Bindings { vars: out_vars, rows: out }
}

/// Project to the query's SELECT order and deduplicate.
pub(crate) fn distinct_project(b: &Bindings, projection: &[Var]) -> TupleBuffer {
    let cols: Vec<usize> =
        projection.iter().map(|&v| b.col(v).expect("projection variable must be bound")).collect();
    let mut out = b.rows.permute(&cols);
    out.sort_dedup();
    out
}

/// The index-nested-loop access paths a specialised-RDF-engine analogue
/// must provide; [`greedy_inl_execute`] drives them with
/// selectivity-ordered pairwise joins.
pub(crate) trait InlBackend {
    /// Exact matching-triple count for a pattern with optionally bound
    /// subject/object (the engines' aggregate/clustered indexes make this
    /// a range count).
    fn pattern_count(&self, atom: &eh_query::Atom, s: Option<u32>, o: Option<u32>) -> usize;

    /// Enumerate objects for a bound subject.
    fn for_each_object(&self, atom: &eh_query::Atom, s: u32, f: &mut dyn FnMut(u32));

    /// Enumerate subjects for a bound object.
    fn for_each_subject(&self, atom: &eh_query::Atom, o: u32, f: &mut dyn FnMut(u32));

    /// Exact-pair membership.
    fn contains_pair(&self, atom: &eh_query::Atom, s: u32, o: u32) -> bool;

    /// Full pattern scan with optional constants (used for the first
    /// pattern and for cross products).
    fn scan_pairs(&self, atom: &eh_query::Atom, s: Option<u32>, o: Option<u32>) -> Vec<(u32, u32)>;

    /// Engine-specific pruning hook (TripleBit's semi-join candidate
    /// sets): return false to drop a candidate binding of `var`.
    fn candidate_ok(&self, _q: &ConjunctiveQuery, _var: Var, _value: u32) -> bool {
        true
    }

    /// Average objects per subject (aggregate-index estimate; used by the
    /// greedy ordering when a pattern's subject is bound by the current
    /// intermediate rather than by a constant).
    fn avg_fanout_subject(&self, atom: &eh_query::Atom) -> usize {
        self.pattern_count(atom, None, None).max(1)
    }

    /// Average subjects per object.
    fn avg_fanout_object(&self, atom: &eh_query::Atom) -> usize {
        self.pattern_count(atom, None, None).max(1)
    }
}

/// Selection constant of an atom position, if any (`Some(None)` denotes a
/// constant missing from the dictionary — the result is empty).
fn sel_of(q: &ConjunctiveQuery, v: Var) -> Option<Option<u32>> {
    q.selection(v)
}

/// Greedy selectivity-ordered pairwise execution with index-nested-loop
/// extension — the common skeleton of the RDF-3X and TripleBit analogues.
pub(crate) fn greedy_inl_execute<B: InlBackend>(backend: &B, q: &ConjunctiveQuery) -> TupleBuffer {
    let empty = || TupleBuffer::new(q.projection().len());
    if q.has_missing_constant() {
        return empty();
    }

    // Estimated cardinality of a pattern given current selections only.
    let est = |atom: &eh_query::Atom| {
        let s = sel_of(q, atom.vars[0]).map(|c| c.unwrap());
        let o = sel_of(q, atom.vars[1]).map(|c| c.unwrap());
        backend.pattern_count(atom, s, o)
    };

    let mut remaining: Vec<usize> = (0..q.atoms().len()).collect();
    // Fully-constant patterns are existence checks.
    remaining.retain(|&i| {
        let a = &q.atoms()[i];
        let s = sel_of(q, a.vars[0]);
        let o = sel_of(q, a.vars[1]);
        !(s.is_some() && o.is_some())
    });
    for a in q.atoms() {
        let (s, o) = (sel_of(q, a.vars[0]), sel_of(q, a.vars[1]));
        if let (Some(Some(s)), Some(Some(o))) = (s, o) {
            if !backend.contains_pair(a, s, o) {
                return empty();
            }
        }
    }
    if remaining.is_empty() {
        // All atoms constant and satisfied; projection must be empty too
        // (validated upstream), nothing to produce.
        return empty();
    }

    // Start with the most selective pattern.
    remaining.sort_by_key(|&i| est(&q.atoms()[i]));
    let first = remaining.remove(0);
    let mut cur = scan_to_bindings(backend, q, first);

    while !remaining.is_empty() {
        // Next: the cheapest pattern sharing a bound variable, else the
        // cheapest overall (cross product). Cost of a shared pattern uses
        // the aggregate-index fanout estimate (selectivity estimation à
        // la RDF-3X / TripleBit): constants give exact range counts,
        // bound variables an average-fanout guess.
        let shares =
            |i: usize| q.atoms()[i].vars.iter().any(|&v| !q.is_selected(v) && cur.col(v).is_some());
        let cost = |i: usize| {
            let a = &q.atoms()[i];
            let s_bound = !q.is_selected(a.vars[0]) && cur.col(a.vars[0]).is_some();
            let o_bound = !q.is_selected(a.vars[1]) && cur.col(a.vars[1]).is_some();
            match (s_bound, o_bound) {
                (true, true) => 1, // pure filter
                (true, false) => backend.avg_fanout_subject(a),
                (false, true) => backend.avg_fanout_object(a),
                (false, false) => est(a),
            }
        };
        let pick = remaining
            .iter()
            .copied()
            .filter(|&i| shares(i))
            .min_by_key(|&i| cost(i))
            .or_else(|| remaining.iter().copied().min_by_key(|&i| est(&q.atoms()[i])))
            .unwrap();
        remaining.retain(|&i| i != pick);
        cur = if shares(pick) {
            extend_inl(backend, q, &cur, pick)
        } else {
            hash_join(&cur, &scan_to_bindings(backend, q, pick))
        };
        if cur.rows.is_empty() && !cur.is_unit() {
            return empty();
        }
    }
    distinct_project(&cur, q.projection())
}

/// Scan one pattern into a binding table over its unselected variables.
fn scan_to_bindings<B: InlBackend>(backend: &B, q: &ConjunctiveQuery, i: usize) -> Bindings {
    let a = &q.atoms()[i];
    let s_sel = sel_of(q, a.vars[0]).map(|c| c.unwrap());
    let o_sel = sel_of(q, a.vars[1]).map(|c| c.unwrap());
    let pairs = backend.scan_pairs(a, s_sel, o_sel);
    let mut vars = Vec::new();
    if s_sel.is_none() {
        vars.push(a.vars[0]);
    }
    if o_sel.is_none() {
        vars.push(a.vars[1]);
    }
    let mut rows = TupleBuffer::new(vars.len());
    for (s, o) in pairs {
        if !backend.candidate_ok(q, a.vars[0], s) || !backend.candidate_ok(q, a.vars[1], o) {
            continue;
        }
        match (s_sel.is_none(), o_sel.is_none()) {
            (true, true) => rows.push(&[s, o]),
            (true, false) => rows.push(&[s]),
            (false, true) => rows.push(&[o]),
            (false, false) => unreachable!("fully-constant atoms handled upstream"),
        }
    }
    Bindings { vars, rows }
}

/// Extend the current bindings with one pattern via index nested loops.
fn extend_inl<B: InlBackend>(
    backend: &B,
    q: &ConjunctiveQuery,
    cur: &Bindings,
    i: usize,
) -> Bindings {
    let a = &q.atoms()[i];
    let s_sel = sel_of(q, a.vars[0]).map(|c| c.unwrap());
    let o_sel = sel_of(q, a.vars[1]).map(|c| c.unwrap());
    let s_col = if s_sel.is_none() { cur.col(a.vars[0]) } else { None };
    let o_col = if o_sel.is_none() { cur.col(a.vars[1]) } else { None };
    let s_free = s_sel.is_none() && s_col.is_none();
    let o_free = o_sel.is_none() && o_col.is_none();

    let mut vars = cur.vars.clone();
    if s_free {
        vars.push(a.vars[0]);
    }
    if o_free {
        vars.push(a.vars[1]);
    }
    let mut rows = TupleBuffer::new(vars.len());
    let mut row_buf = vec![0u32; vars.len()];
    for row in cur.rows.rows() {
        row_buf[..row.len()].copy_from_slice(row);
        let s_val = s_sel.or(s_col.map(|c| row[c]));
        let o_val = o_sel.or(o_col.map(|c| row[c]));
        match (s_val, o_val) {
            (Some(s), Some(o)) => {
                if backend.contains_pair(a, s, o) {
                    rows.push(&row_buf[..row.len()]);
                }
            }
            (Some(s), None) => backend.for_each_object(a, s, &mut |o| {
                if backend.candidate_ok(q, a.vars[1], o) {
                    row_buf[row.len()] = o;
                    rows.push(&row_buf);
                }
            }),
            (None, Some(o)) => backend.for_each_subject(a, o, &mut |s| {
                if backend.candidate_ok(q, a.vars[0], s) {
                    row_buf[row.len()] = s;
                    rows.push(&row_buf);
                }
            }),
            (None, None) => unreachable!("extend_inl requires a shared variable"),
        }
    }
    Bindings { vars, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bindings(vars: Vec<Var>, rows: &[&[u32]]) -> Bindings {
        let mut t = TupleBuffer::new(vars.len());
        for r in rows {
            t.push(r);
        }
        Bindings { vars, rows: t }
    }

    #[test]
    fn hash_join_on_shared_var() {
        let a = bindings(vec![0, 1], &[&[1, 10], &[2, 20]]);
        let b = bindings(vec![1, 2], &[&[10, 100], &[10, 101], &[30, 300]]);
        let j = hash_join(&a, &b);
        assert_eq!(j.vars, vec![0, 1, 2]);
        let rows: Vec<&[u32]> = j.rows.rows().collect();
        assert_eq!(rows, vec![&[1, 10, 100][..], &[1, 10, 101][..]]);
    }

    #[test]
    fn hash_join_cross_product_when_disjoint() {
        let a = bindings(vec![0], &[&[1], &[2]]);
        let b = bindings(vec![1], &[&[7]]);
        let j = hash_join(&a, &b);
        assert_eq!(j.rows.len(), 2);
    }

    #[test]
    fn unit_is_identity() {
        let a = bindings(vec![0], &[&[5]]);
        let j = hash_join(&Bindings::unit(), &a);
        assert_eq!(j.rows.len(), 1);
        assert!(Bindings::unit().is_unit());
        assert_eq!(Bindings::unit().len(), 1);
    }

    #[test]
    fn distinct_project_dedups_and_reorders() {
        let b = bindings(vec![0, 1], &[&[1, 10], &[2, 10], &[1, 10]]);
        let out = distinct_project(&b, &[1]);
        assert_eq!(out.len(), 1);
        let out2 = distinct_project(&b, &[1, 0]);
        assert_eq!(out2.len(), 2);
        assert_eq!(out2.row(0), &[10, 1]);
    }
}
