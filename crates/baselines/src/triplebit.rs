//! The TripleBit-style baseline: per-predicate two-order compact pair
//! stores with aggregate indexes and semi-join pruning.
//!
//! Substitution fidelity (DESIGN.md): TripleBit (Yuan et al.) stores
//! triples in a predicate-partitioned compact matrix with two orderings
//! and "two auxiliary index structures and two binary aggregate indexes to
//! use the selectivity estimation of query patterns to select the most
//! effective indexes, minimize the number of indexes needed, and determine
//! the query plan" (paper §IV-A2). This analogue keeps exactly one SO and
//! one OS clustered order per predicate (reusing the store's vertically
//! partitioned tables as the matrix), per-predicate aggregate
//! subject/object lists, and prunes candidate bindings by intersecting the
//! aggregate lists of every pattern a variable occurs in — TripleBit's
//! semi-join-style reduction — before the same greedy pairwise pipeline as
//! the RDF-3X analogue.

use std::cell::RefCell;
use std::collections::HashMap;

use eh_query::{Atom, ConjunctiveQuery, Var};
use eh_rdf::TripleStore;
use eh_trie::TupleBuffer;

use crate::pairwise::{greedy_inl_execute, InlBackend};
use crate::traits::QueryEngine;

/// Aggregate index for one predicate: sorted distinct subjects/objects.
#[derive(Debug, Default)]
struct Aggregates {
    subjects: Vec<u32>,
    objects: Vec<u32>,
}

/// TripleBit analogue (see module docs).
pub struct TripleBitStyle<'s> {
    store: &'s TripleStore,
    aggregates: HashMap<u32, Aggregates>,
    /// Per-query candidate sets computed by the semi-join pruning pass;
    /// keyed by variable. Interior-mutable because [`QueryEngine`] takes
    /// `&self`.
    candidates: RefCell<HashMap<Var, Vec<u32>>>,
}

impl<'s> TripleBitStyle<'s> {
    /// Build the aggregate indexes (load time, excluded from timing).
    pub fn new(store: &'s TripleStore) -> TripleBitStyle<'s> {
        let mut aggregates = HashMap::new();
        for table in store.tables() {
            let mut subjects: Vec<u32> = table.so_pairs().iter().map(|&(s, _)| s).collect();
            subjects.dedup(); // so_pairs is subject-sorted
            let mut objects: Vec<u32> = table.os_pairs().iter().map(|&(o, _)| o).collect();
            objects.dedup();
            aggregates.insert(table.pred(), Aggregates { subjects, objects });
        }
        TripleBitStyle { store, aggregates, candidates: RefCell::new(HashMap::new()) }
    }

    fn table(&self, atom: &Atom) -> Option<&eh_rdf::PairTable> {
        self.store.table_by_name(&atom.relation)
    }

    /// TripleBit's pruning pass: for every variable occurring in more
    /// than one pattern, intersect the aggregate value lists of all its
    /// occurrences. A later binding outside the intersection can never
    /// join. Pruning is cost-gated like TripleBit's index selection: when
    /// every occurrence list is large the intersection cannot pay for
    /// itself and is skipped.
    fn prune(&self, q: &ConjunctiveQuery) {
        /// Smallest-list size beyond which pruning is skipped.
        const PRUNE_LIMIT: usize = 4096;
        let mut cands: HashMap<Var, Vec<u32>> = HashMap::new();
        for v in 0..q.num_vars() {
            if q.is_selected(v) {
                continue;
            }
            let mut lists: Vec<&[u32]> = Vec::new();
            for a in q.atoms() {
                let Some(p) = self.store.resolve_iri(&a.relation) else {
                    lists.push(&[]);
                    continue;
                };
                let agg = &self.aggregates[&p];
                if a.vars[0] == v {
                    lists.push(&agg.subjects);
                } else if a.vars[1] == v {
                    lists.push(&agg.objects);
                }
            }
            if lists.len() < 2 {
                continue; // single occurrence: nothing to intersect
            }
            if lists.iter().map(|l| l.len()).min().unwrap_or(0) > PRUNE_LIMIT {
                continue; // too coarse to pay for itself
            }
            lists.sort_by_key(|l| l.len());
            // Filter the smallest list through the others by binary
            // search: O(|smallest| · log) regardless of the large lists.
            let mut acc: Vec<u32> = lists[0].to_vec();
            for l in &lists[1..] {
                acc.retain(|v| l.binary_search(v).is_ok());
                if acc.is_empty() {
                    break;
                }
            }
            cands.insert(v, acc);
        }
        *self.candidates.borrow_mut() = cands;
    }
}

impl InlBackend for TripleBitStyle<'_> {
    fn pattern_count(&self, atom: &Atom, s: Option<u32>, o: Option<u32>) -> usize {
        let Some(t) = self.table(atom) else { return 0 };
        match (s, o) {
            (None, None) => t.len(),
            (Some(s), None) => t.pairs_for_subject(s).len(),
            (None, Some(o)) => t.pairs_for_object(o).len(),
            (Some(s), Some(o)) => usize::from(t.contains(s, o)),
        }
    }

    fn for_each_object(&self, atom: &Atom, s: u32, f: &mut dyn FnMut(u32)) {
        if let Some(t) = self.table(atom) {
            for &(_, o) in t.pairs_for_subject(s) {
                f(o);
            }
        }
    }

    fn for_each_subject(&self, atom: &Atom, o: u32, f: &mut dyn FnMut(u32)) {
        if let Some(t) = self.table(atom) {
            for &(_, s) in t.pairs_for_object(o) {
                f(s);
            }
        }
    }

    fn contains_pair(&self, atom: &Atom, s: u32, o: u32) -> bool {
        self.table(atom).is_some_and(|t| t.contains(s, o))
    }

    fn avg_fanout_subject(&self, atom: &Atom) -> usize {
        self.table(atom).map_or(1, |t| (t.len() / t.distinct_subjects().max(1)).max(1))
    }

    fn avg_fanout_object(&self, atom: &Atom) -> usize {
        self.table(atom).map_or(1, |t| (t.len() / t.distinct_objects().max(1)).max(1))
    }

    fn scan_pairs(&self, atom: &Atom, s: Option<u32>, o: Option<u32>) -> Vec<(u32, u32)> {
        let Some(t) = self.table(atom) else { return Vec::new() };
        match (s, o) {
            (None, None) => t.so_pairs().to_vec(),
            (Some(s), None) => t.pairs_for_subject(s).to_vec(),
            (None, Some(o)) => t.pairs_for_object(o).iter().map(|&(o, s)| (s, o)).collect(),
            (Some(s), Some(o)) => {
                if t.contains(s, o) {
                    vec![(s, o)]
                } else {
                    Vec::new()
                }
            }
        }
    }

    fn candidate_ok(&self, _q: &ConjunctiveQuery, var: Var, value: u32) -> bool {
        match self.candidates.borrow().get(&var) {
            Some(list) => list.binary_search(&value).is_ok(),
            None => true,
        }
    }
}

impl QueryEngine for TripleBitStyle<'_> {
    fn name(&self) -> &'static str {
        "TripleBit-style"
    }

    fn execute(&self, q: &ConjunctiveQuery) -> TupleBuffer {
        self.prune(q);
        let out = greedy_inl_execute(self, q);
        self.candidates.borrow_mut().clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_query::QueryBuilder;
    use eh_rdf::{Term, Triple};

    fn store() -> TripleStore {
        TripleStore::from_triples(vec![
            Triple::new(Term::iri("a"), Term::iri("p"), Term::iri("b")),
            Triple::new(Term::iri("b"), Term::iri("p"), Term::iri("c")),
            Triple::new(Term::iri("x"), Term::iri("p"), Term::iri("y")),
            Triple::new(Term::iri("b"), Term::iri("q"), Term::iri("d")),
        ])
    }

    #[test]
    fn pruning_intersects_aggregate_lists() {
        let s = store();
        let e = TripleBitStyle::new(&s);
        let p = s.resolve_iri("p").unwrap();
        let qp = s.resolve_iri("q").unwrap();
        let mut qb = QueryBuilder::new();
        let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
        qb.atom("p", p, x, y).atom("q", qp, y, z);
        let q = qb.select(vec![x, z]).build().unwrap();
        e.prune(&q);
        // y occurs as object of p and subject of q: candidates = {b}.
        let b = s.resolve_iri("b").unwrap();
        assert_eq!(e.candidates.borrow()[&y], vec![b]);
        // x and z occur once: unconstrained.
        assert!(!e.candidates.borrow().contains_key(&x));
    }

    #[test]
    fn join_matches_expected() {
        let s = store();
        let e = TripleBitStyle::new(&s);
        let p = s.resolve_iri("p").unwrap();
        let mut qb = QueryBuilder::new();
        let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
        qb.atom("p", p, x, y).atom("p", p, y, z);
        let q = qb.select(vec![x, z]).build().unwrap();
        let out = e.execute(&q);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn aggregates_are_sorted_distinct() {
        let s = store();
        let e = TripleBitStyle::new(&s);
        let p = s.resolve_iri("p").unwrap();
        let agg = &e.aggregates[&p];
        assert!(agg.subjects.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(agg.subjects.len(), 3);
        assert_eq!(agg.objects.len(), 3);
    }
}
