//! # eh-baselines
//!
//! Simulated comparison engines for the paper's Table II (Aberger et al.,
//! ICDE 2016, §IV-A2). The authors benchmarked four external systems we
//! cannot ship; each is replaced by an algorithmic analogue that exercises
//! the same *asymptotic* code path (substitutions documented per engine
//! and in DESIGN.md):
//!
//! * [`MonetDbStyle`] — a vertically partitioned column store executing
//!   pairwise hash joins with fully materialised intermediates, join
//!   order by base-table cardinality, selections by column scan (no point
//!   indexes). The traditional relational baseline.
//! * [`Rdf3xStyle`] — a full triple table with all six SPO-permutation
//!   clustered indexes and aggregate indexes, greedy selectivity-driven
//!   join ordering, index-nested-loop (merge-style) joins. The
//!   "specialised RDF engine" design of Neumann & Weikum.
//! * [`TripleBitStyle`] — per-predicate two-order (SO/OS) compact pair
//!   stores with binary aggregate indexes and a semi-join pruning pass
//!   before selectivity-ordered pairwise joins.
//! * [`LogicBloxStyle`] — a worst-case optimal join without EmptyHeaded's
//!   optimizations: single-node plan, sorted uint arrays only, naive
//!   attribute order (delegates to `emptyheaded` with
//!   [`PlannerConfig::logicblox_style`](emptyheaded::PlannerConfig)).
//!
//! All engines implement [`QueryEngine`] and return distinct rows in
//! `SELECT` order, so the harness can verify they agree before timing.

mod logicblox;
mod monetdb;
mod pairwise;
mod rdf3x;
mod traits;
mod triplebit;

pub use logicblox::LogicBloxStyle;
pub use monetdb::MonetDbStyle;
pub use rdf3x::Rdf3xStyle;
pub use traits::QueryEngine;
pub use triplebit::TripleBitStyle;

#[cfg(test)]
mod tests;
