//! # eh-obs
//!
//! The dependency-free metrics core for the WCOJ engine's observability
//! layer: relaxed-atomic [`Counter`]s and [`Gauge`]s, log₂-bucketed
//! latency [`Histogram`]s with rank-exact quantile extraction, a
//! [`Registry`] grouping named metrics, and Prometheus text-format
//! exposition ([`Registry::expose`]) with a matching parser
//! ([`parse_exposition`]) for scrapers and tests.
//!
//! Design constraints, in order:
//!
//! 1. **Recording is a handful of relaxed atomics.** `Counter::inc` is
//!    one `fetch_add(Relaxed)`; `Histogram::record` is two (bucket +
//!    sum). No locks, no allocation, no branches beyond the bucket index
//!    computation — cheap enough to leave on in the serving hot path
//!    (the `serving` bench gates the overhead).
//! 2. **No dependencies.** `std` only, like the rest of the workspace.
//! 3. **Deterministic, testable quantiles.** A histogram quantile is the
//!    log₂ bucket upper bound of the *exact* nearest-rank order
//!    statistic — pinned against a sorted-vector oracle under proptest,
//!    not an interpolated estimate that drifts with bucket shape.
//!
//! Reads (quantiles, exposition) take a racy-but-coherent snapshot of
//! the bucket array; concurrent recording never loses an increment
//! (`N × M` concurrent records sum exactly — tested), though a reader
//! racing a writer may observe the bucket before the sum or vice versa.
//!
//! ```
//! use eh_obs::{Histogram, Registry};
//!
//! let registry = Registry::new();
//! let latency = registry.histogram("query_latency_us", "query wall time");
//! latency.record(120);
//! latency.record(350);
//! assert_eq!(latency.count(), 2);
//! let text = registry.expose();
//! assert!(text.contains("query_latency_us_count 2"));
//! ```

mod histogram;
mod registry;
mod text;

pub use histogram::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::Registry;
pub use text::{parse_exposition, ParseError, Sample};

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter. All operations are relaxed
/// atomics: counts are exact, ordering across *different* metrics is not
/// guaranteed (nor needed — exposition is a statistical snapshot).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down (active sessions, cache bytes).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value outright (for gauges refreshed at exposition time).
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_gauge_swings() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.inc();
        g.add(10);
        g.dec();
        g.sub(4);
        assert_eq!(g.get(), 6);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
