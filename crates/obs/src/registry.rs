//! A registry of named metrics with Prometheus text-format exposition.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

use crate::histogram::{Histogram, NUM_BUCKETS};
use crate::text::escape_label_value;
use crate::{Counter, Gauge};

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Family {
    help: String,
    // BTreeMap keyed by the sorted label pairs → exposition order is
    // deterministic regardless of registration order within a family.
    series: BTreeMap<Vec<(String, String)>, Metric>,
}

/// A set of named metrics that renders itself in the Prometheus text
/// exposition format. Registration is idempotent: asking for the same
/// `(name, labels)` twice returns the same underlying metric, so call
/// sites can look metrics up on the fly without caching handles
/// (though caching the `Arc` is cheaper for hot paths).
///
/// Families are keyed by metric name; every series in a family shares
/// one type and help string. Registering the same name with a
/// different type panics — that is a programming error, not a runtime
/// condition.
#[derive(Debug, Default)]
pub struct Registry {
    families: RwLock<BTreeMap<String, Family>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
        && !name.as_bytes()[0].is_ascii_digit()
}

fn label_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut key: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    key.sort();
    key
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry, for call sites with no natural owner.
    /// Services that are constructed many times per process (tests!)
    /// should own a `Registry` instead.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_name(k), "invalid label name {k:?}");
        }
        let key = label_key(labels);
        // Both lock acquisitions recover from poisoning: a thread that
        // panicked between registry calls (metric recording itself never
        // holds this lock) leaves the map fully consistent — every
        // mutation below is a single BTreeMap entry insertion — and the
        // process-global registry especially must outlive any one
        // panicking caller.
        // Fast path: already registered.
        if let Some(fam) = self.families.read().unwrap_or_else(PoisonError::into_inner).get(name) {
            if let Some(metric) = fam.series.get(&key) {
                return metric.clone();
            }
        }
        let mut families = self.families.write().unwrap_or_else(PoisonError::into_inner);
        let fam = families
            .entry(name.to_string())
            .or_insert_with(|| Family { help: help.to_string(), series: BTreeMap::new() });
        let metric = fam.series.entry(key).or_insert_with(make).clone();
        metric
    }

    /// Get-or-create a counter with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get-or-create a counter series with the given labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, labels, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Get-or-create a gauge with no labels.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Get-or-create a gauge series with the given labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, labels, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Get-or-create a histogram with no labels.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Get-or-create a histogram series with the given labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.register(name, help, labels, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Render every registered metric in the Prometheus text exposition
    /// format: `# HELP` / `# TYPE` per family, then one line per series
    /// (histograms expand to cumulative `_bucket{le=...}` lines plus
    /// `_sum` and `_count`). Families render in name order, series in
    /// label order — the output is deterministic for a fixed state.
    pub fn expose(&self) -> String {
        let families = self.families.read().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for (name, fam) in families.iter() {
            let kind = match fam.series.values().next() {
                Some(m) => m.kind(),
                None => continue,
            };
            out.push_str(&format!("# HELP {name} {}\n", fam.help));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for (labels, metric) in fam.series.iter() {
                match metric {
                    Metric::Counter(c) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, &[]),
                            c.get()
                        ));
                    }
                    Metric::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, &[]),
                            g.get()
                        ));
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for i in 0..NUM_BUCKETS {
                            cumulative += snap.buckets[i];
                            let le = match crate::histogram::bucket_upper_bound(i) {
                                Some(b) => b.to_string(),
                                None => "+Inf".to_string(),
                            };
                            // Skip empty leading buckets except the ones
                            // needed for a well-formed cumulative series:
                            // keep any bucket whose cumulative count
                            // differs from the previous line, plus +Inf.
                            let is_last = i == NUM_BUCKETS - 1;
                            let changed = snap.buckets[i] != 0;
                            if changed || is_last {
                                out.push_str(&format!(
                                    "{name}_bucket{} {cumulative}\n",
                                    render_labels(labels, &[("le", &le)]),
                                ));
                            }
                        }
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            render_labels(labels, &[]),
                            snap.sum
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {cumulative}\n",
                            render_labels(labels, &[]),
                        ));
                    }
                }
            }
        }
        out
    }
}

fn render_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
    parts.extend(extra.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))));
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("requests_total", "requests");
        let b = r.counter("requests_total", "requests");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn labeled_series_are_distinct() {
        let r = Registry::new();
        let q = r.counter_with("requests_total", "requests", &[("verb", "QUERY")]);
        let s = r.counter_with("requests_total", "requests", &[("verb", "STATS")]);
        q.add(3);
        s.inc();
        assert_eq!(q.get(), 3);
        assert_eq!(s.get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("thing", "a thing");
        r.gauge("thing", "a thing");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        Registry::new().counter("9starts-with-digit", "nope");
    }

    #[test]
    fn exposition_renders_all_kinds() {
        let r = Registry::new();
        r.counter("c_total", "a counter").add(7);
        r.gauge("g", "a gauge").set(-2);
        let h = r.histogram("h_us", "a histogram");
        h.record(3);
        h.record(100);
        let text = r.expose();
        assert!(text.contains("# HELP c_total a counter\n"));
        assert!(text.contains("# TYPE c_total counter\n"));
        assert!(text.contains("c_total 7\n"));
        assert!(text.contains("# TYPE g gauge\n"));
        assert!(text.contains("g -2\n"));
        assert!(text.contains("# TYPE h_us histogram\n"));
        assert!(text.contains("h_us_bucket{le=\"4\"} 1\n"));
        assert!(text.contains("h_us_bucket{le=\"128\"} 2\n"));
        assert!(text.contains("h_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("h_us_sum 103\n"));
        assert!(text.contains("h_us_count 2\n"));
    }

    #[test]
    fn a_poisoned_registry_still_registers_and_exposes() {
        let r = Registry::new();
        r.counter("survivor_total", "registered before the panic").inc();
        let r_ref = &r;
        std::thread::scope(|scope| {
            let victim = scope.spawn(move || {
                let _guard = r_ref.families.write().unwrap();
                panic!("scrape thread dies holding the registry");
            });
            assert!(victim.join().is_err());
        });
        // Lookup (read path), registration (write path), and exposition
        // all keep working after the poisoning.
        r.counter("survivor_total", "registered before the panic").inc();
        r.counter("late_total", "registered after the panic").inc();
        let text = r.expose();
        assert!(text.contains("survivor_total 2"), "{text}");
        assert!(text.contains("late_total 1"), "{text}");
    }

    #[test]
    fn exposition_is_deterministic_and_sorted() {
        let r = Registry::new();
        r.counter("zzz_total", "late").inc();
        r.counter("aaa_total", "early").inc();
        let text = r.expose();
        let a = text.find("aaa_total").unwrap();
        let z = text.find("zzz_total").unwrap();
        assert!(a < z, "families must render in name order");
        assert_eq!(text, r.expose());
    }
}
