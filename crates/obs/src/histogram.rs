//! Log₂-bucketed histograms with rank-exact quantile extraction.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per power-of-two upper bound `2^0 .. 2^63`,
/// plus a final `+Inf` bucket for values above `2^63`.
pub const NUM_BUCKETS: usize = 65;

/// A fixed-shape latency histogram: bucket `i` (for `i < 64`) counts
/// values `v` with `2^(i-1) < v <= 2^i` (bucket 0 covers `0..=1`), and
/// bucket 64 counts values above `2^63`. Recording is two relaxed
/// `fetch_add`s (bucket + sum); there is no configuration, no locking,
/// and no allocation.
///
/// Quantiles are **rank-exact, value-quantized**: [`Histogram::quantile`]
/// locates the nearest-rank order statistic (`rank = ceil(q·n)`) in the
/// bucket array and returns that bucket's upper bound — the tightest
/// upper bound on the true quantile this representation can express, and
/// a deterministic function of the recorded multiset. The proptest suite
/// pins it against an exact sorted-vector oracle:
/// `quantile(q) == bucket_upper_bound(bucket_index(exact_quantile))`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket index of value `v`: the smallest `i` with `v <= 2^i`
/// (0 for `v <= 1`), or [`NUM_BUCKETS`]` - 1` when `v > 2^63`.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        64 - (v - 1).leading_zeros() as usize
    }
}

/// The inclusive upper bound of bucket `i`, or `None` for the `+Inf`
/// bucket.
#[inline]
pub(crate) fn bucket_upper_bound(i: usize) -> Option<u64> {
    if i < NUM_BUCKETS - 1 {
        Some(1u64 << i)
    } else {
        None
    }
}

/// A point-in-time copy of a histogram's buckets and sum, from which
/// count and quantiles derive consistently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (not cumulative).
    pub buckets: [u64; NUM_BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The inclusive upper bound of bucket `i` (`u64::MAX` for `+Inf`).
    pub fn upper_bound(i: usize) -> u64 {
        bucket_upper_bound(i).unwrap_or(u64::MAX)
    }

    /// Nearest-rank quantile, quantized to its bucket's upper bound:
    /// the value `u` such that at least `ceil(q·n)` recorded values are
    /// `<= u` and `u` is a bucket boundary. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::upper_bound(i);
            }
        }
        u64::MAX // unreachable: seen reaches n >= rank
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }

    /// Record one value: two relaxed atomic adds.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Snapshot buckets and sum (relaxed loads; see module docs on
    /// reader/writer races).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.snapshot().count()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile (see [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(1 << 63), 63);
        assert_eq!(bucket_index((1 << 63) + 1), 64);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every value lands in the bucket whose bound brackets it.
        for v in [0u64, 1, 2, 3, 7, 8, 9, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= HistogramSnapshot::upper_bound(i), "v={v} i={i}");
            if i > 0 {
                assert!(v > HistogramSnapshot::upper_bound(i - 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn quantiles_match_the_sorted_oracle_on_a_fixed_workload() {
        let h = Histogram::new();
        let mut values: Vec<u64> = (1..=1000).map(|i| i * 3 % 977).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.95, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let expect = HistogramSnapshot::upper_bound(bucket_index(exact));
            assert_eq!(h.quantile(q), expect, "q={q} exact={exact}");
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), values.iter().sum::<u64>());
    }

    #[test]
    fn concurrent_records_sum_exactly() {
        // N threads × M records: the bucket totals and sum must account
        // for every single record — relaxed atomics lose nothing.
        const N: usize = 8;
        const M: u64 = 5_000;
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..N {
                let h = &h;
                s.spawn(move || {
                    for i in 0..M {
                        h.record((t as u64 * 31 + i) % 4096);
                    }
                });
            }
        });
        assert_eq!(h.count(), N as u64 * M);
        let expect_sum: u64 =
            (0..N as u64).flat_map(|t| (0..M).map(move |i| (t * 31 + i) % 4096)).sum();
        assert_eq!(h.sum(), expect_sum);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn quantile_is_bucketized_nearest_rank(
                mut values in proptest::collection::vec(0u64..1_000_000, 1..300),
                // The vendored proptest has no f64 range strategy; draw
                // permille and divide.
                q_permille in 0u32..=1000,
            ) {
                let q = f64::from(q_permille) / 1000.0;
                let h = Histogram::new();
                for &v in &values {
                    h.record(v);
                }
                values.sort_unstable();
                let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
                let exact = values[rank - 1];
                let expect = HistogramSnapshot::upper_bound(bucket_index(exact));
                prop_assert_eq!(h.quantile(q), expect);
                // The quantized answer is a true upper bound on the
                // exact order statistic, within one octave of it.
                prop_assert!(h.quantile(q) >= exact);
                prop_assert!(h.quantile(q) <= exact.max(1).saturating_mul(2));
            }

            #[test]
            fn count_and_sum_are_exact(values in proptest::collection::vec(0u64..1_000_000, 0..200)) {
                let h = Histogram::new();
                for &v in &values {
                    h.record(v);
                }
                prop_assert_eq!(h.count(), values.len() as u64);
                prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
            }

            #[test]
            // Exclusive upper bound: the vendored proptest's inclusive
            // range generator overflows at u64::MAX (the MAX case is
            // pinned in the unit tests above).
            fn bucket_index_brackets_every_value(v in 0u64..u64::MAX) {
                let i = bucket_index(v);
                prop_assert!(v <= HistogramSnapshot::upper_bound(i));
                if i > 0 {
                    prop_assert!(v > HistogramSnapshot::upper_bound(i - 1));
                }
            }
        }
    }
}
