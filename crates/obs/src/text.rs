//! A minimal parser for the Prometheus text exposition format — enough
//! to round-trip [`crate::Registry::expose`] output in scrapers and
//! tests without pulling in a real Prometheus client.

use std::fmt;

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline are escaped.
pub(crate) fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One sample line from an exposition: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name, including any `_bucket`/`_sum`/`_count` suffix.
    pub name: String,
    /// Label pairs in the order they appeared.
    pub labels: Vec<(String, String)>,
    /// The sample value. Histogram `le="+Inf"` buckets parse as
    /// finite sample values; only the label is non-numeric.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A parse failure, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exposition parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

/// Parse Prometheus text exposition into samples. Comment (`#`) and
/// blank lines are skipped; every other line must be
/// `name[{label="value",...}] value`.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, ParseError> {
    let mut samples = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_and_labels, value_str) = match line.rfind(' ') {
            Some(pos) => (&line[..pos], line[pos + 1..].trim()),
            None => return Err(err(lineno, "missing value")),
        };
        let (name, labels) = match name_and_labels.find('{') {
            Some(open) => {
                let close = name_and_labels
                    .rfind('}')
                    .ok_or_else(|| err(lineno, "unterminated label set"))?;
                if close < open {
                    return Err(err(lineno, "malformed label set"));
                }
                (&name_and_labels[..open], parse_labels(&name_and_labels[open + 1..close], lineno)?)
            }
            None => (name_and_labels, Vec::new()),
        };
        if name.is_empty() {
            return Err(err(lineno, "empty metric name"));
        }
        let value = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            s => s.parse::<f64>().map_err(|_| err(lineno, format!("bad value {s:?}")))?,
        };
        samples.push(Sample { name: name.to_string(), labels, value });
    }
    Ok(samples)
}

fn parse_labels(body: &str, lineno: usize) -> Result<Vec<(String, String)>, ParseError> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        // Skip separators and trailing comma.
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err(err(lineno, "empty label name"));
        }
        if chars.next() != Some('"') {
            return Err(err(lineno, format!("label {key:?} value must be quoted")));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => {
                        return Err(err(lineno, format!("bad escape {other:?} in label {key:?}")))
                    }
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(err(lineno, format!("unterminated value for label {key:?}"))),
            }
        }
        labels.push((key, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn parses_plain_and_labeled_samples() {
        let samples = parse_exposition(
            "# HELP x help text\n# TYPE x counter\nx 3\nx_labeled{a=\"1\",b=\"two\"} 4.5\n",
        )
        .unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0], Sample { name: "x".into(), labels: vec![], value: 3.0 });
        assert_eq!(samples[1].name, "x_labeled");
        assert_eq!(samples[1].label("a"), Some("1"));
        assert_eq!(samples[1].label("b"), Some("two"));
        assert_eq!(samples[1].value, 4.5);
    }

    #[test]
    fn escaping_round_trips() {
        let tricky = "a\\b\"c\nd";
        let escaped = escape_label_value(tricky);
        let line = format!("m{{k=\"{escaped}\"}} 1\n");
        let samples = parse_exposition(&line).unwrap();
        assert_eq!(samples[0].label("k"), Some(tricky));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_exposition("novalue\n").is_err());
        assert!(parse_exposition("m{unclosed=\"v\" 1\n").is_err());
        assert!(parse_exposition("m{k=unquoted} 1\n").is_err());
        assert!(parse_exposition("m nan-ish\n").is_err());
    }

    #[test]
    fn registry_exposition_round_trips() {
        let r = Registry::new();
        r.counter("c_total", "counter").add(11);
        r.counter_with("verbs_total", "per-verb", &[("verb", "QUERY")]).add(5);
        r.gauge("g", "gauge").set(-7);
        let h = r.histogram("lat_us", "latency");
        for v in [1u64, 2, 3, 500, 70_000] {
            h.record(v);
        }
        let text = r.expose();
        let samples = parse_exposition(&text).unwrap();
        let find = |name: &str| samples.iter().find(|s| s.name == name).unwrap();
        assert_eq!(find("c_total").value, 11.0);
        assert_eq!(find("g").value, -7.0);
        let verb = find("verbs_total");
        assert_eq!(verb.label("verb"), Some("QUERY"));
        assert_eq!(verb.value, 5.0);
        assert_eq!(find("lat_us_count").value, 5.0);
        assert_eq!(find("lat_us_sum").value, 70_506.0);
        let inf_bucket = samples
            .iter()
            .find(|s| s.name == "lat_us_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf_bucket.value, 5.0);
        // Cumulative buckets are monotone non-decreasing.
        let buckets: Vec<&Sample> = samples.iter().filter(|s| s.name == "lat_us_bucket").collect();
        for pair in buckets.windows(2) {
            assert!(pair[0].value <= pair[1].value);
        }
    }
}
