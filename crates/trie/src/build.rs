//! Trie construction and navigation.

use eh_setops::{Layout, Set};

use crate::tuples::TupleBuffer;

/// Which set layouts trie levels may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutPolicy {
    /// Let the per-set layout optimizer choose (paper §II-A2).
    Auto,
    /// Force sorted uint arrays everywhere — the "index layout" baseline
    /// of the Table I +Layout ablation.
    UintOnly,
}

#[derive(Debug, Clone)]
struct Block {
    set: Set,
    /// Index of this block's first child on the next level; the child of
    /// element rank `r` is block `child_base + r`.
    child_base: usize,
}

/// A materialised trie over fixed-arity tuples (paper §II-A, Figure 1).
#[derive(Debug, Clone)]
pub struct Trie {
    arity: usize,
    levels: Vec<Vec<Block>>,
    num_tuples: usize,
}

impl Trie {
    /// Build a trie from tuples (sorted + deduplicated internally).
    pub fn build(mut tuples: TupleBuffer, policy: LayoutPolicy) -> Trie {
        tuples.sort_dedup();
        Trie::from_sorted(tuples, policy)
    }

    /// Build from tuples already sorted lexicographically and unique
    /// (e.g. a [`PairTable`](https://docs.rs)-order slice); skips the sort.
    pub fn from_sorted(tuples: TupleBuffer, policy: LayoutPolicy) -> Trie {
        debug_assert!(tuples.is_sorted_unique());
        let arity = tuples.arity();
        assert!(arity > 0, "tries need arity >= 1");
        let n = tuples.len();
        let mut levels: Vec<Vec<Block>> = Vec::with_capacity(arity);
        // Row ranges forming the blocks of the current level.
        let mut ranges: Vec<(usize, usize)> = vec![(0, n)];
        let mut vals: Vec<u32> = Vec::new();
        for level in 0..arity {
            let mut blocks = Vec::with_capacity(ranges.len());
            let mut next_ranges = Vec::new();
            for &(start, end) in &ranges {
                vals.clear();
                let child_base = next_ranges.len();
                let mut i = start;
                while i < end {
                    let v = tuples.row(i)[level];
                    let mut j = i + 1;
                    while j < end && tuples.row(j)[level] == v {
                        j += 1;
                    }
                    vals.push(v);
                    next_ranges.push((i, j));
                    i = j;
                }
                let set = match policy {
                    LayoutPolicy::Auto => Set::from_sorted(&vals),
                    LayoutPolicy::UintOnly => Set::from_sorted_with(&vals, Layout::UintArray),
                };
                blocks.push(Block { set, child_base });
            }
            levels.push(blocks);
            ranges = next_ranges;
        }
        Trie { arity, levels, num_tuples: n }
    }

    /// Tuple width (= number of levels).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of distinct tuples stored.
    pub fn num_tuples(&self) -> usize {
        self.num_tuples
    }

    /// True when the trie holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.num_tuples == 0
    }

    /// The level-0 set (distinct values of the first attribute).
    pub fn root_set(&self) -> &Set {
        &self.levels[0][0].set
    }

    /// The set of block `block` at `level`.
    pub fn set(&self, level: usize, block: usize) -> &Set {
        &self.levels[level][block].set
    }

    /// Number of blocks at a level.
    pub fn num_blocks(&self, level: usize) -> usize {
        self.levels[level].len()
    }

    /// Index of the first child block (on `level + 1`) of `block` at
    /// `level` — the `child_base` the frozen encoding persists per block.
    pub fn child_base(&self, level: usize, block: usize) -> usize {
        self.levels[level][block].child_base
    }

    /// Child block (at `level + 1`) for element `value` of `block` at
    /// `level`; `None` when the value is absent.
    pub fn child(&self, level: usize, block: usize, value: u32) -> Option<usize> {
        debug_assert!(level + 1 < self.arity, "leaf levels have no children");
        let b = &self.levels[level][block];
        b.set.rank(value).map(|r| b.child_base + r)
    }

    /// True when a full or prefix tuple is present.
    pub fn contains_prefix(&self, prefix: &[u32]) -> bool {
        assert!(prefix.len() <= self.arity);
        let mut block = 0usize;
        for (level, &v) in prefix.iter().enumerate() {
            if self.is_empty() {
                return false;
            }
            if level + 1 == self.arity {
                return self.levels[level][block].set.contains(v);
            }
            match self.child(level, block, v) {
                Some(c) => block = c,
                None => return false,
            }
        }
        true
    }

    /// Invoke `f` for every tuple in lexicographic order.
    pub fn for_each_tuple(&self, mut f: impl FnMut(&[u32])) {
        let mut tuple = vec![0u32; self.arity];
        self.walk(0, 0, &mut tuple, &mut f);
    }

    fn walk(&self, level: usize, block: usize, tuple: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
        let b = &self.levels[level][block];
        for (rank, v) in b.set.iter().enumerate() {
            tuple[level] = v;
            if level + 1 == self.arity {
                f(tuple);
            } else {
                self.walk(level + 1, b.child_base + rank, tuple, f);
            }
        }
    }

    /// Collect all tuples into a buffer (lexicographic order).
    pub fn to_tuples(&self) -> TupleBuffer {
        let mut out = TupleBuffer::with_capacity(self.arity, self.num_tuples);
        self.for_each_tuple(|row| out.push(row));
        out
    }

    /// Total bytes used by the sets (for layout ablation reporting).
    pub fn set_bytes(&self) -> usize {
        self.levels.iter().flat_map(|blocks| blocks.iter().map(|b| b.set.bytes())).sum()
    }

    /// Number of bitset-layout blocks (diagnostics for the +Layout
    /// ablation).
    pub fn bitset_blocks(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|blocks| blocks.iter())
            .filter(|b| b.set.layout() == Layout::Bitset)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_trie(policy: LayoutPolicy) -> Trie {
        // Figure 1: suborganizationOf = {(Univ0,Dept0),(Univ0,Dept1),
        // (Univ1,Dept1)} encoded as {(0,1),(0,2),(3,2)}.
        let mut t = TupleBuffer::new(2);
        t.push(&[0, 1]);
        t.push(&[0, 2]);
        t.push(&[3, 2]);
        Trie::build(t, policy)
    }

    #[test]
    fn figure1_structure() {
        let trie = figure1_trie(LayoutPolicy::Auto);
        assert_eq!(trie.arity(), 2);
        assert_eq!(trie.num_tuples(), 3);
        assert_eq!(trie.root_set().to_vec(), vec![0, 3]);
        let c0 = trie.child(0, 0, 0).unwrap();
        let c1 = trie.child(0, 0, 3).unwrap();
        assert_eq!(trie.set(1, c0).to_vec(), vec![1, 2]);
        assert_eq!(trie.set(1, c1).to_vec(), vec![2]);
        assert_eq!(trie.child(0, 0, 7), None);
    }

    #[test]
    fn build_dedups_and_sorts() {
        let mut t = TupleBuffer::new(2);
        for row in [[5, 5], [1, 2], [5, 5], [1, 1]] {
            t.push(&row);
        }
        let trie = Trie::build(t, LayoutPolicy::Auto);
        assert_eq!(trie.num_tuples(), 3);
        let out = trie.to_tuples();
        assert_eq!(out.row(0), &[1, 1]);
        assert_eq!(out.row(1), &[1, 2]);
        assert_eq!(out.row(2), &[5, 5]);
    }

    #[test]
    fn contains_prefix() {
        let trie = figure1_trie(LayoutPolicy::Auto);
        assert!(trie.contains_prefix(&[]));
        assert!(trie.contains_prefix(&[0]));
        assert!(trie.contains_prefix(&[0, 2]));
        assert!(!trie.contains_prefix(&[0, 3]));
        assert!(!trie.contains_prefix(&[1]));
    }

    #[test]
    fn uint_only_policy_has_no_bitsets() {
        let mut t = TupleBuffer::new(1);
        for v in 0..1000 {
            t.push(&[v]);
        }
        let auto = Trie::build(t.clone(), LayoutPolicy::Auto);
        let uint = Trie::build(t, LayoutPolicy::UintOnly);
        assert!(auto.bitset_blocks() > 0);
        assert_eq!(uint.bitset_blocks(), 0);
        assert_eq!(auto.num_tuples(), uint.num_tuples());
    }

    #[test]
    fn unary_trie() {
        let mut t = TupleBuffer::new(1);
        t.push(&[4]);
        t.push(&[2]);
        let trie = Trie::build(t, LayoutPolicy::Auto);
        assert_eq!(trie.root_set().to_vec(), vec![2, 4]);
        assert!(trie.contains_prefix(&[4]));
        assert!(!trie.contains_prefix(&[3]));
    }

    #[test]
    fn empty_trie() {
        let trie = Trie::build(TupleBuffer::new(2), LayoutPolicy::Auto);
        assert!(trie.is_empty());
        assert_eq!(trie.root_set().len(), 0);
        assert!(!trie.contains_prefix(&[0]));
        let mut n = 0;
        trie.for_each_tuple(|_| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn ternary_navigation() {
        let mut t = TupleBuffer::new(3);
        t.push(&[1, 2, 3]);
        t.push(&[1, 2, 4]);
        t.push(&[1, 5, 6]);
        t.push(&[7, 2, 3]);
        let trie = Trie::build(t, LayoutPolicy::Auto);
        let b1 = trie.child(0, 0, 1).unwrap();
        assert_eq!(trie.set(1, b1).to_vec(), vec![2, 5]);
        let b12 = trie.child(1, b1, 2).unwrap();
        assert_eq!(trie.set(2, b12).to_vec(), vec![3, 4]);
        assert!(trie.contains_prefix(&[7, 2, 3]));
        assert!(!trie.contains_prefix(&[7, 5]));
    }

    #[test]
    fn set_bytes_positive() {
        assert!(figure1_trie(LayoutPolicy::Auto).set_bytes() > 0);
    }
}
