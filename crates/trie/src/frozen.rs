//! The frozen trie: every level, block, child base, and set payload
//! flattened into one contiguous `u32` arena.
//!
//! A [`FrozenTrie`] is the zero-copy counterpart of [`Trie`]: identical
//! navigation semantics, but the storage is a single allocation that can
//! be written to — and memory-loaded from — a snapshot file wholesale,
//! with no per-block allocation and no re-sorting. Sets decode in place
//! as [`SetRef`] views, so frozen tries run through exactly the same
//! intersection kernels as mutable ones.
//!
//! ## Arena layout
//!
//! ```text
//! arena = [ level-0 offset table | level-1 offset table | ...
//!         | block | block | ... ]
//!
//! offset table entry  = arena index of the block's first word
//! block               = [ child_base, frozen set encoding... ]
//! ```
//!
//! Per-level table positions live in the (tiny, `arity`-sized) `levels`
//! side array; everything whose size scales with the data is inside the
//! arena. Offsets are `u32` arena indices, capping one trie's arena at
//! 16 GiB — far beyond any per-predicate index this engine builds.
//!
//! ## Arena storage
//!
//! The arena is either *owned* (one heap allocation, the build path) or a
//! *shared* window into an [`ArenaBytes`] region — a snapshot file mapped
//! into the address space, served zero-copy. Navigation never sees the
//! difference: every access goes through one `&[u32]` view, so a mapped
//! trie runs the exact same kernels over page-cache-backed memory.

use std::sync::Arc;

use eh_setops::{decode_set, encode_sorted_into, validate_encoded_set, Layout, SetRef};

use crate::build::{LayoutPolicy, Trie};
use crate::tuples::TupleBuffer;

/// A shared byte region a [`FrozenTrie`] arena may live inside — in
/// practice a memory-mapped snapshot file (`eh-rdf`'s `MappedRegion`),
/// abstracted here so this crate needs no platform code.
///
/// Contract: `bytes()` must return the same region (same address, same
/// length) for the lifetime of the value — the trie reinterprets a window
/// of it as native-endian `u32`s and holds that view across calls. The
/// constructor validates 4-byte alignment once against this stability.
pub trait ArenaBytes: Send + Sync + std::fmt::Debug {
    /// The region's bytes. Must be stable for `self`'s lifetime.
    fn bytes(&self) -> &[u8];
}

/// The arena's backing storage: one owned allocation, or a borrowed
/// window of a shared region kept alive by the `Arc`.
#[derive(Debug, Clone)]
enum ArenaStore {
    Owned(Box<[u32]>),
    Shared {
        region: Arc<dyn ArenaBytes>,
        /// Byte offset of the arena inside the region (4-byte aligned,
        /// validated at construction).
        offset: usize,
        /// Arena length in `u32` words.
        words: usize,
    },
}

impl ArenaStore {
    #[inline]
    fn words(&self) -> &[u32] {
        match self {
            ArenaStore::Owned(a) => a,
            ArenaStore::Shared { region, offset, words } => {
                let bytes = region.bytes();
                debug_assert!(offset + words * 4 <= bytes.len());
                // SAFETY: the constructor validated that the window is in
                // bounds and that `base + offset` is 4-byte aligned, and
                // the `ArenaBytes` contract pins the region's address and
                // length for the lifetime of the Arc we hold.
                unsafe {
                    std::slice::from_raw_parts(bytes.as_ptr().add(*offset).cast::<u32>(), *words)
                }
            }
        }
    }
}

/// A materialised trie over fixed-arity tuples whose entire payload lives
/// in one contiguous `u32` arena (see the module docs).
#[derive(Debug, Clone)]
pub struct FrozenTrie {
    arity: u32,
    num_tuples: u32,
    /// Per level: (arena index of the block offset table, block count).
    levels: Box<[(u32, u32)]>,
    arena: ArenaStore,
}

/// Equality is over contents — an owned trie and a mapped view of the
/// same persisted arena compare equal, which is exactly what the
/// snapshot roundtrip tests assert.
impl PartialEq for FrozenTrie {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && self.num_tuples == other.num_tuples
            && self.levels == other.levels
            && self.arena() == other.arena()
    }
}

impl Eq for FrozenTrie {}

impl FrozenTrie {
    /// Build a frozen trie from tuples (sorted + deduplicated internally).
    pub fn build(mut tuples: TupleBuffer, policy: LayoutPolicy) -> FrozenTrie {
        tuples.sort_dedup();
        FrozenTrie::from_sorted(tuples, policy)
    }

    /// Build from tuples already sorted lexicographically and unique
    /// (e.g. a `PairTable`-order slice), writing set payloads straight
    /// into the arena — no intermediate per-block `Set` allocations.
    pub fn from_sorted(tuples: TupleBuffer, policy: LayoutPolicy) -> FrozenTrie {
        debug_assert!(tuples.is_sorted_unique());
        let arity = tuples.arity();
        assert!(arity > 0, "tries need arity >= 1");
        let n = tuples.len();
        assert!(u32::try_from(n).is_ok(), "frozen tries cap at 2^32 tuples");
        let forced = match policy {
            LayoutPolicy::Auto => None,
            LayoutPolicy::UintOnly => Some(Layout::UintArray),
        };
        // Pass over the sorted tuples level by level, appending encoded
        // blocks to `payload` and recording each block's start in its
        // level's offset table (payload-relative; rebased below).
        let mut tables: Vec<Vec<u32>> = Vec::with_capacity(arity);
        let mut payload: Vec<u32> = Vec::new();
        let mut ranges: Vec<(usize, usize)> = vec![(0, n)];
        let mut vals: Vec<u32> = Vec::new();
        for level in 0..arity {
            let mut table = Vec::with_capacity(ranges.len());
            let mut next_ranges = Vec::new();
            for &(start, end) in &ranges {
                vals.clear();
                let child_base = next_ranges.len();
                let mut i = start;
                while i < end {
                    let v = tuples.row(i)[level];
                    let mut j = i + 1;
                    while j < end && tuples.row(j)[level] == v {
                        j += 1;
                    }
                    vals.push(v);
                    next_ranges.push((i, j));
                    i = j;
                }
                table.push(payload.len() as u32);
                payload.push(child_base as u32);
                encode_sorted_into(&vals, forced, &mut payload);
            }
            tables.push(table);
            ranges = next_ranges;
        }
        Self::assemble(arity as u32, n as u32, tables, payload)
    }

    /// Glue the per-level offset tables and the block payload into the
    /// final arena, rebasing payload-relative offsets past the tables.
    fn assemble(
        arity: u32,
        num_tuples: u32,
        tables: Vec<Vec<u32>>,
        payload: Vec<u32>,
    ) -> FrozenTrie {
        let tables_len: usize = tables.iter().map(|t| t.len()).sum();
        let total = tables_len + payload.len();
        assert!(u32::try_from(total).is_ok(), "frozen trie arena caps at 2^32 words");
        let mut arena = Vec::with_capacity(total);
        let mut levels = Vec::with_capacity(tables.len());
        let mut table_pos = 0u32;
        for t in &tables {
            levels.push((table_pos, t.len() as u32));
            table_pos += t.len() as u32;
        }
        for t in tables {
            arena.extend(t.into_iter().map(|off| off + tables_len as u32));
        }
        arena.extend(payload);
        FrozenTrie {
            arity,
            num_tuples,
            levels: levels.into_boxed_slice(),
            arena: ArenaStore::Owned(arena.into_boxed_slice()),
        }
    }

    /// The arena as one `u32` slice, whatever backs it.
    #[inline]
    fn arena(&self) -> &[u32] {
        self.arena.words()
    }

    /// True when the arena is a window of a shared [`ArenaBytes`] region
    /// (a mapped snapshot) rather than an owned allocation.
    pub fn is_shared(&self) -> bool {
        matches!(self.arena, ArenaStore::Shared { .. })
    }

    /// Tuple width (= number of levels).
    pub fn arity(&self) -> usize {
        self.arity as usize
    }

    /// Number of distinct tuples stored.
    pub fn num_tuples(&self) -> usize {
        self.num_tuples as usize
    }

    /// True when the trie holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.num_tuples == 0
    }

    /// The level-0 set (distinct values of the first attribute).
    pub fn root_set(&self) -> SetRef<'_> {
        self.set(0, 0)
    }

    /// The set of block `block` at `level`, decoded in place from the
    /// arena.
    pub fn set(&self, level: usize, block: usize) -> SetRef<'_> {
        let off = self.block_offset(level, block);
        decode_set(&self.arena()[off + 1..]).0
    }

    /// Number of blocks at a level.
    pub fn num_blocks(&self, level: usize) -> usize {
        self.levels[level].1 as usize
    }

    #[inline]
    fn block_offset(&self, level: usize, block: usize) -> usize {
        let (table, count) = self.levels[level];
        debug_assert!(block < count as usize, "block out of range");
        self.arena()[table as usize + block] as usize
    }

    /// Child block (at `level + 1`) for element `value` of `block` at
    /// `level`; `None` when the value is absent.
    pub fn child(&self, level: usize, block: usize, value: u32) -> Option<usize> {
        debug_assert!(level + 1 < self.arity(), "leaf levels have no children");
        let off = self.block_offset(level, block);
        let child_base = self.arena()[off] as usize;
        decode_set(&self.arena()[off + 1..]).0.rank(value).map(|r| child_base + r)
    }

    /// True when a full or prefix tuple is present.
    pub fn contains_prefix(&self, prefix: &[u32]) -> bool {
        assert!(prefix.len() <= self.arity());
        let mut block = 0usize;
        for (level, &v) in prefix.iter().enumerate() {
            if self.is_empty() {
                return false;
            }
            if level + 1 == self.arity() {
                return self.set(level, block).contains(v);
            }
            match self.child(level, block, v) {
                Some(c) => block = c,
                None => return false,
            }
        }
        true
    }

    /// Invoke `f` for every tuple in lexicographic order.
    pub fn for_each_tuple(&self, mut f: impl FnMut(&[u32])) {
        let mut tuple = vec![0u32; self.arity()];
        self.walk(0, 0, &mut tuple, &mut f);
    }

    fn walk(&self, level: usize, block: usize, tuple: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
        let off = self.block_offset(level, block);
        let child_base = self.arena()[off] as usize;
        for (rank, v) in decode_set(&self.arena()[off + 1..]).0.iter().enumerate() {
            tuple[level] = v;
            if level + 1 == self.arity() {
                f(tuple);
            } else {
                self.walk(level + 1, child_base + rank, tuple, f);
            }
        }
    }

    /// Collect all tuples into a buffer (lexicographic order).
    pub fn to_tuples(&self) -> TupleBuffer {
        let mut out = TupleBuffer::with_capacity(self.arity(), self.num_tuples());
        self.for_each_tuple(|row| out.push(row));
        out
    }

    /// Total bytes used by the set payloads (for layout ablation
    /// reporting).
    pub fn set_bytes(&self) -> usize {
        self.blocks().map(|(_, set)| set.bytes()).sum()
    }

    /// Number of bitset-layout blocks (diagnostics for the +Layout
    /// ablation).
    pub fn bitset_blocks(&self) -> usize {
        self.blocks().filter(|(_, set)| set.layout() == Layout::Bitset).count()
    }

    /// Every block of every level as `(child_base, set)`.
    fn blocks(&self) -> impl Iterator<Item = (usize, SetRef<'_>)> + '_ {
        (0..self.arity()).flat_map(move |level| {
            (0..self.num_blocks(level)).map(move |block| {
                let off = self.block_offset(level, block);
                (self.arena()[off] as usize, decode_set(&self.arena()[off + 1..]).0)
            })
        })
    }

    /// Largest value stored on any level, `None` when empty. Snapshot
    /// loading uses this to bound every id against the dictionary before
    /// the trie is served (a crafted arena must not be able to smuggle
    /// out-of-dictionary ids into query results). Bitset maxima are O(1)
    /// scans from the extent's end, so this is O(blocks), not O(values).
    pub fn max_symbol(&self) -> Option<u32> {
        self.blocks().filter_map(|(_, set)| set.max()).max()
    }

    /// True iff this is a binary trie whose tuples are exactly `pairs`,
    /// in order. This is the snapshot reader's content check — a shipped
    /// trie is served as if built from its table, so it must *be* the
    /// table — written as one flat in-place-decode pass (no recursion,
    /// no per-row allocation) because it runs on the cold-start critical
    /// path for every loaded trie.
    pub fn matches_pairs(&self, pairs: &[(u32, u32)]) -> bool {
        if self.arity() != 2 || self.num_tuples() != pairs.len() {
            return false;
        }
        if pairs.is_empty() {
            return true;
        }
        let root_off = self.block_offset(0, 0);
        let root_base = self.arena()[root_off] as usize;
        let mut i = 0usize;
        for (r, s) in decode_set(&self.arena()[root_off + 1..]).0.iter().enumerate() {
            let off = self.block_offset(1, root_base + r);
            for o in decode_set(&self.arena()[off + 1..]).0.iter() {
                if i >= pairs.len() || pairs[i] != (s, o) {
                    return false;
                }
                i += 1;
            }
        }
        i == pairs.len()
    }

    /// Total arena size in bytes (the single allocation a snapshot
    /// persists).
    pub fn arena_bytes(&self) -> usize {
        std::mem::size_of_val(self.arena())
    }

    /// The raw parts a snapshot writer persists: `(arity, num_tuples,
    /// levels, arena)`.
    pub fn raw_parts(&self) -> (u32, u32, &[(u32, u32)], &[u32]) {
        (self.arity, self.num_tuples, &self.levels, self.arena())
    }

    /// Reassemble a frozen trie from persisted raw parts, structurally
    /// validating every offset, block, and set encoding so that corrupt
    /// input yields `Err` instead of a later panic (or out-of-bounds
    /// index) during navigation.
    pub fn from_raw_parts(
        arity: u32,
        num_tuples: u32,
        levels: Vec<(u32, u32)>,
        arena: Vec<u32>,
    ) -> Result<FrozenTrie, &'static str> {
        validate_parts(arity, num_tuples, &levels, &arena)?;
        Ok(FrozenTrie {
            arity,
            num_tuples,
            levels: levels.into_boxed_slice(),
            arena: ArenaStore::Owned(arena.into_boxed_slice()),
        })
    }

    /// Reassemble a frozen trie whose arena is a window of `region` —
    /// `words` `u32`s starting `byte_offset` bytes in — without copying
    /// it. The same structural validation as [`FrozenTrie::from_raw_parts`]
    /// runs over the shared bytes, plus the window's bounds and 4-byte
    /// alignment (of the region's base address *and* the offset: the
    /// reinterpretation is only defined on an aligned window).
    ///
    /// The words are read as native-endian; the snapshot format is
    /// little-endian, so callers on big-endian targets must take the
    /// copy path instead of constructing shared arenas.
    pub fn from_shared_region(
        arity: u32,
        num_tuples: u32,
        levels: Vec<(u32, u32)>,
        region: Arc<dyn ArenaBytes>,
        byte_offset: usize,
        words: usize,
    ) -> Result<FrozenTrie, &'static str> {
        let bytes = region.bytes();
        let byte_len = words.checked_mul(4).ok_or("arena window overflows")?;
        let end = byte_offset.checked_add(byte_len).ok_or("arena window overflows")?;
        if end > bytes.len() {
            return Err("arena window outside region");
        }
        if !(bytes.as_ptr() as usize + byte_offset).is_multiple_of(4) {
            return Err("arena window is not 4-byte aligned");
        }
        let store = ArenaStore::Shared { region, offset: byte_offset, words };
        validate_parts(arity, num_tuples, &levels, store.words())?;
        Ok(FrozenTrie { arity, num_tuples, levels: levels.into_boxed_slice(), arena: store })
    }
}

/// The structural validation shared by [`FrozenTrie::from_raw_parts`] and
/// [`FrozenTrie::from_shared_region`]: every offset, block, child base,
/// and set encoding checked over a borrowed arena, so corrupt input
/// yields `Err` instead of a later panic (or out-of-bounds index) during
/// navigation — wherever the arena's bytes live.
fn validate_parts(
    arity: u32,
    num_tuples: u32,
    levels: &[(u32, u32)],
    arena: &[u32],
) -> Result<(), &'static str> {
    if arity == 0 || levels.len() != arity as usize {
        return Err("level directory does not match arity");
    }
    let mut next_level_blocks = 1u64; // level 0 always has one block
    for (level, &(table, count)) in levels.iter().enumerate() {
        if count as u64 != next_level_blocks {
            return Err("level block count does not chain");
        }
        let table = table as usize;
        let Some(offsets) = arena.get(table..table + count as usize) else {
            return Err("offset table out of bounds");
        };
        let mut child_blocks = 0u64;
        for &off in offsets {
            let off = off as usize;
            if off >= arena.len() {
                return Err("block offset out of bounds");
            }
            let Some((_, set_len)) = validate_encoded_set(&arena[off + 1..]) else {
                return Err("corrupt set encoding");
            };
            if arena[off] as u64 != child_blocks {
                return Err("child bases do not tile the next level");
            }
            child_blocks += set_len as u64;
        }
        next_level_blocks = child_blocks;
        if level + 1 == arity as usize && num_tuples as u64 != child_blocks {
            return Err("leaf cardinality does not match num_tuples");
        }
    }
    Ok(())
}

impl Trie {
    /// Freeze this trie into its arena representation. The frozen trie is
    /// identical to [`FrozenTrie::from_sorted`] over the same tuples —
    /// layouts included — because both derive each block's layout from
    /// the same optimizer inputs.
    pub fn freeze(&self) -> FrozenTrie {
        let arity = self.arity();
        let mut tables: Vec<Vec<u32>> = Vec::with_capacity(arity);
        let mut payload: Vec<u32> = Vec::new();
        for level in 0..arity {
            let mut table = Vec::with_capacity(self.num_blocks(level));
            for block in 0..self.num_blocks(level) {
                table.push(payload.len() as u32);
                payload.push(self.child_base(level, block) as u32);
                eh_setops::encode_set_into(self.set(level, block), &mut payload);
            }
            tables.push(table);
        }
        FrozenTrie::assemble(arity as u32, self.num_tuples() as u32, tables, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_tuples() -> TupleBuffer {
        // Figure 1: suborganizationOf = {(Univ0,Dept0),(Univ0,Dept1),
        // (Univ1,Dept1)} encoded as {(0,1),(0,2),(3,2)}.
        let mut t = TupleBuffer::new(2);
        t.push(&[0, 1]);
        t.push(&[0, 2]);
        t.push(&[3, 2]);
        t
    }

    #[test]
    fn figure1_structure() {
        let trie = FrozenTrie::build(figure1_tuples(), LayoutPolicy::Auto);
        assert_eq!(trie.arity(), 2);
        assert_eq!(trie.num_tuples(), 3);
        assert_eq!(trie.root_set().to_vec(), vec![0, 3]);
        let c0 = trie.child(0, 0, 0).unwrap();
        let c1 = trie.child(0, 0, 3).unwrap();
        assert_eq!(trie.set(1, c0).to_vec(), vec![1, 2]);
        assert_eq!(trie.set(1, c1).to_vec(), vec![2]);
        assert_eq!(trie.child(0, 0, 7), None);
        assert!(trie.contains_prefix(&[0, 2]));
        assert!(!trie.contains_prefix(&[1]));
    }

    #[test]
    fn matches_mutable_trie_everywhere() {
        // A mixed-density relation: frozen navigation, layouts, and
        // enumeration must agree with the Vec-of-Set trie exactly.
        let mut t = TupleBuffer::new(3);
        for a in 0..4u32 {
            for b in 0..300u32 {
                if (a + b) % 3 == 0 {
                    t.push(&[a, b, (b * 7) % 40]);
                    t.push(&[a, b, 1000 + b]);
                }
            }
        }
        for policy in [LayoutPolicy::Auto, LayoutPolicy::UintOnly] {
            let mutable = Trie::build(t.clone(), policy);
            let frozen = FrozenTrie::build(t.clone(), policy);
            assert_eq!(frozen.num_tuples(), mutable.num_tuples());
            assert_eq!(frozen.to_tuples(), mutable.to_tuples());
            assert_eq!(frozen.bitset_blocks(), mutable.bitset_blocks());
            assert_eq!(frozen.set_bytes(), mutable.set_bytes());
            for level in 0..mutable.arity() {
                assert_eq!(frozen.num_blocks(level), mutable.num_blocks(level));
                for block in 0..mutable.num_blocks(level) {
                    assert_eq!(
                        frozen.set(level, block).to_vec(),
                        mutable.set(level, block).to_vec(),
                        "level {level} block {block}"
                    );
                    if level + 1 < mutable.arity() {
                        for v in mutable.set(level, block).iter() {
                            assert_eq!(
                                frozen.child(level, block, v),
                                mutable.child(level, block, v)
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn freeze_equals_direct_build() {
        let mut t = TupleBuffer::new(2);
        for v in 0..1000u32 {
            t.push(&[v % 7, v]);
        }
        for policy in [LayoutPolicy::Auto, LayoutPolicy::UintOnly] {
            let mutable = Trie::build(t.clone(), policy);
            assert_eq!(mutable.freeze(), FrozenTrie::build(t.clone(), policy), "{policy:?}");
        }
    }

    #[test]
    fn raw_parts_roundtrip_and_validation() {
        let trie = FrozenTrie::build(figure1_tuples(), LayoutPolicy::Auto);
        let (arity, n, levels, arena) = trie.raw_parts();
        let rebuilt =
            FrozenTrie::from_raw_parts(arity, n, levels.to_vec(), arena.to_vec()).unwrap();
        assert_eq!(rebuilt, trie);

        // Structural corruption is rejected, not panicked on.
        assert!(FrozenTrie::from_raw_parts(0, n, levels.to_vec(), arena.to_vec()).is_err());
        assert!(FrozenTrie::from_raw_parts(3, n, levels.to_vec(), arena.to_vec()).is_err());
        assert!(FrozenTrie::from_raw_parts(arity, n + 1, levels.to_vec(), arena.to_vec()).is_err());
        let mut bad_levels = levels.to_vec();
        bad_levels[1].0 = arena.len() as u32;
        assert!(FrozenTrie::from_raw_parts(arity, n, bad_levels, arena.to_vec()).is_err());
        for i in 0..arena.len() {
            let mut bad = arena.to_vec();
            bad[i] = bad[i].wrapping_add(1_000_000);
            // Any single-word corruption either fails validation or still
            // decodes structurally — it must never panic.
            let _ = FrozenTrie::from_raw_parts(arity, n, levels.to_vec(), bad);
        }
        assert!(FrozenTrie::from_raw_parts(arity, n, levels.to_vec(), vec![]).is_err());
    }

    #[test]
    fn matches_pairs_detects_any_divergence() {
        let pairs: Vec<(u32, u32)> = (0..200u32).map(|i| (i / 7, i * 3)).collect();
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let trie = FrozenTrie::from_sorted(TupleBuffer::from_pairs(&sorted), LayoutPolicy::Auto);
        assert!(trie.matches_pairs(&sorted));
        // Transposed order, dropped pair, altered pair, extra pair: all
        // must be detected.
        let transposed: Vec<(u32, u32)> = {
            let mut t: Vec<(u32, u32)> = sorted.iter().map(|&(a, b)| (b, a)).collect();
            t.sort_unstable();
            t
        };
        assert!(!trie.matches_pairs(&transposed));
        assert!(!trie.matches_pairs(&sorted[1..]));
        let mut altered = sorted.clone();
        altered[17].1 ^= 1;
        assert!(!trie.matches_pairs(&altered));
        let mut extra = sorted.clone();
        extra.push((u32::MAX, u32::MAX));
        assert!(!trie.matches_pairs(&extra));
        // Arity and emptiness edges.
        let unary = FrozenTrie::build(
            {
                let mut t = TupleBuffer::new(1);
                t.push(&[1]);
                t
            },
            LayoutPolicy::Auto,
        );
        assert!(!unary.matches_pairs(&[(1, 1)]));
        let empty = FrozenTrie::build(TupleBuffer::new(2), LayoutPolicy::Auto);
        assert!(empty.matches_pairs(&[]));
        assert!(!empty.matches_pairs(&[(0, 0)]));
    }

    /// A heap-backed [`ArenaBytes`] stand-in for the mapped region the
    /// snapshot layer provides, with a controllable misalignment.
    #[derive(Debug)]
    struct HeapRegion {
        bytes: Vec<u8>,
    }

    impl ArenaBytes for HeapRegion {
        fn bytes(&self) -> &[u8] {
            &self.bytes
        }
    }

    /// `arena` serialized after `lead` zero bytes. The second return is
    /// an in-bounds window offset that is *not* 4-byte aligned relative
    /// to the region's base address (for the rejection case).
    fn region_of(arena: &[u32], lead: usize) -> (Arc<dyn ArenaBytes>, usize) {
        let mut bytes = vec![0u8; lead];
        for &w in arena {
            bytes.extend_from_slice(&w.to_ne_bytes());
        }
        let region: Arc<dyn ArenaBytes> = Arc::new(HeapRegion { bytes });
        let base = region.bytes().as_ptr() as usize;
        let misaligned = (0..4).find(|o| !(base + o).is_multiple_of(4)).expect("offset misaligns");
        (region, misaligned)
    }

    #[test]
    fn shared_region_arena_is_equal_and_validated() {
        let trie = FrozenTrie::build(figure1_tuples(), LayoutPolicy::Auto);
        let (arity, n, levels, arena) = trie.raw_parts();
        let (region, misaligned) = region_of(arena, 4);
        let base = region.bytes().as_ptr() as usize;
        // The arena sits 4 bytes in; Vec allocations are word-aligned in
        // practice, but derive the aligned offset from the base to be
        // safe rather than assume it.
        assert_eq!(base % 4, 0, "allocator returned a sub-word-aligned Vec");
        let shared = FrozenTrie::from_shared_region(
            arity,
            n,
            levels.to_vec(),
            Arc::clone(&region),
            4,
            arena.len(),
        )
        .unwrap();
        assert!(shared.is_shared() && !trie.is_shared());
        assert_eq!(shared, trie);
        assert_eq!(shared.to_tuples(), trie.to_tuples());
        // Clones share the region; equality still holds by contents.
        assert_eq!(shared.clone(), trie);

        // A misaligned window is rejected before any validation runs.
        assert!(matches!(
            FrozenTrie::from_shared_region(
                arity,
                n,
                levels.to_vec(),
                Arc::clone(&region),
                misaligned,
                arena.len()
            ),
            Err(e) if e.contains("aligned")
        ));
        // A window past the region's end is rejected.
        assert!(FrozenTrie::from_shared_region(
            arity,
            n,
            levels.to_vec(),
            Arc::clone(&region),
            4,
            arena.len() + 1
        )
        .is_err());
        // Structural corruption inside the shared bytes is rejected too:
        // point the root block offset past the arena's end.
        let mut bad = arena.to_vec();
        bad[0] = bad.len() as u32;
        let (bad_region, _) = region_of(&bad, 0);
        assert!(FrozenTrie::from_shared_region(
            arity,
            n,
            levels.to_vec(),
            bad_region,
            0,
            bad.len()
        )
        .is_err());
    }

    #[test]
    fn unary_and_empty() {
        let mut t = TupleBuffer::new(1);
        t.push(&[4]);
        t.push(&[2]);
        let trie = FrozenTrie::build(t, LayoutPolicy::Auto);
        assert_eq!(trie.root_set().to_vec(), vec![2, 4]);
        assert!(trie.contains_prefix(&[4]));
        assert!(!trie.contains_prefix(&[3]));

        let empty = FrozenTrie::build(TupleBuffer::new(2), LayoutPolicy::Auto);
        assert!(empty.is_empty());
        assert_eq!(empty.root_set().len(), 0);
        assert!(!empty.contains_prefix(&[0]));
        let mut count = 0;
        empty.for_each_tuple(|_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn uint_only_policy_has_no_bitsets() {
        let mut t = TupleBuffer::new(1);
        for v in 0..1000 {
            t.push(&[v]);
        }
        let auto = FrozenTrie::build(t.clone(), LayoutPolicy::Auto);
        let uint = FrozenTrie::build(t, LayoutPolicy::UintOnly);
        assert!(auto.bitset_blocks() > 0);
        assert_eq!(uint.bitset_blocks(), 0);
        assert_eq!(auto.num_tuples(), uint.num_tuples());
        assert!(auto.arena_bytes() < uint.arena_bytes());
    }
}
