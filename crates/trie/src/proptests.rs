//! Property tests: a trie is a lossless, ordered, deduplicated container
//! under every layout policy and column permutation.

use proptest::prelude::*;
use std::collections::BTreeSet;

use crate::{FrozenTrie, LayoutPolicy, Trie, TupleBuffer};

fn tuples(arity: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..64, arity..=arity), 0..200)
}

fn buffer_of(rows: &[Vec<u32>], arity: usize) -> TupleBuffer {
    let mut t = TupleBuffer::new(arity);
    for r in rows {
        t.push(r);
    }
    t
}

proptest! {
    #[test]
    fn roundtrip_is_sorted_distinct(rows in tuples(2)) {
        let expect: BTreeSet<Vec<u32>> = rows.iter().cloned().collect();
        for policy in [LayoutPolicy::Auto, LayoutPolicy::UintOnly] {
            let trie = Trie::build(buffer_of(&rows, 2), policy);
            prop_assert_eq!(trie.num_tuples(), expect.len());
            let mut got = Vec::new();
            trie.for_each_tuple(|r| got.push(r.to_vec()));
            prop_assert_eq!(&got, &expect.iter().cloned().collect::<Vec<_>>());
        }
    }

    #[test]
    fn ternary_roundtrip(rows in tuples(3)) {
        let expect: BTreeSet<Vec<u32>> = rows.iter().cloned().collect();
        let trie = Trie::build(buffer_of(&rows, 3), LayoutPolicy::Auto);
        let out = trie.to_tuples();
        prop_assert_eq!(out.len(), expect.len());
        for (i, r) in expect.iter().enumerate() {
            prop_assert_eq!(out.row(i), r.as_slice());
        }
    }

    #[test]
    fn contains_matches_membership(rows in tuples(2), probes in tuples(2)) {
        let set: BTreeSet<Vec<u32>> = rows.iter().cloned().collect();
        let trie = Trie::build(buffer_of(&rows, 2), LayoutPolicy::Auto);
        for p in &probes {
            prop_assert_eq!(trie.contains_prefix(p), set.contains(p));
        }
        for r in &rows {
            prop_assert!(trie.contains_prefix(r));
            prop_assert!(trie.contains_prefix(&r[..1]));
        }
    }

    #[test]
    fn child_navigation_consistent(rows in tuples(2)) {
        let trie = Trie::build(buffer_of(&rows, 2), LayoutPolicy::Auto);
        // For every root value, the child's set is exactly the objects
        // grouped under that subject.
        for v in trie.root_set().iter() {
            let child = trie.child(0, 0, v).unwrap();
            let expect: BTreeSet<u32> =
                rows.iter().filter(|r| r[0] == v).map(|r| r[1]).collect();
            prop_assert_eq!(
                trie.set(1, child).to_vec(),
                expect.into_iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn permuted_build_matches_permuted_rows(rows in tuples(3)) {
        // Building a trie on permuted columns equals permuting then building.
        let perm = [2usize, 0, 1];
        let permuted_rows: Vec<Vec<u32>> =
            rows.iter().map(|r| perm.iter().map(|&c| r[c]).collect()).collect();
        let a = Trie::build(buffer_of(&rows, 3).permute(&perm), LayoutPolicy::Auto);
        let b = Trie::build(buffer_of(&permuted_rows, 3), LayoutPolicy::Auto);
        prop_assert_eq!(a.to_tuples(), b.to_tuples());
    }

    #[test]
    fn layout_policy_never_changes_contents(rows in tuples(2)) {
        let auto = Trie::build(buffer_of(&rows, 2), LayoutPolicy::Auto);
        let uint = Trie::build(buffer_of(&rows, 2), LayoutPolicy::UintOnly);
        prop_assert_eq!(auto.to_tuples(), uint.to_tuples());
    }

    #[test]
    fn frozen_trie_is_navigation_equivalent(rows in tuples(3), probes in tuples(3)) {
        // The arena representation must agree with the Vec-of-Set trie on
        // every observable: contents, membership, per-block sets, child
        // links, and the freeze() of the mutable trie must equal the
        // directly built arena bit for bit.
        let set: BTreeSet<Vec<u32>> = rows.iter().cloned().collect();
        for policy in [LayoutPolicy::Auto, LayoutPolicy::UintOnly] {
            let mutable = Trie::build(buffer_of(&rows, 3), policy);
            let frozen = FrozenTrie::build(buffer_of(&rows, 3), policy);
            prop_assert_eq!(&mutable.freeze(), &frozen);
            prop_assert_eq!(frozen.num_tuples(), set.len());
            prop_assert_eq!(frozen.to_tuples(), mutable.to_tuples());
            for p in &probes {
                prop_assert_eq!(frozen.contains_prefix(p), set.contains(p));
            }
            for level in 0..3 {
                prop_assert_eq!(frozen.num_blocks(level), mutable.num_blocks(level));
                for block in 0..mutable.num_blocks(level) {
                    prop_assert_eq!(
                        frozen.set(level, block).to_vec(),
                        mutable.set(level, block).to_vec()
                    );
                }
            }
        }
    }

    #[test]
    fn frozen_raw_parts_roundtrip(rows in tuples(2)) {
        let frozen = FrozenTrie::build(buffer_of(&rows, 2), LayoutPolicy::Auto);
        let (arity, n, levels, arena) = frozen.raw_parts();
        let rebuilt = FrozenTrie::from_raw_parts(arity, n, levels.to_vec(), arena.to_vec());
        prop_assert_eq!(rebuilt.expect("self-produced parts validate"), frozen);
    }
}
