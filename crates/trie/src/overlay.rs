//! The LSM-style novelty overlay over a frozen base trie.
//!
//! A [`DeltaOverlay`] carries the staged mutations of one `(predicate,
//! order)` relation since its base arena was last frozen: an **insert
//! trie** of pairs not in the base and a **tombstone trie** of base pairs
//! deleted since the freeze (`del ⊆ base`, `ins ∩ base = ∅` — the staging
//! layer maintains both invariants). Both are ordinary arity-2
//! [`FrozenTrie`]s, so every set the overlay contributes to the join is
//! just another [`SetRef`] operand for the existing multiway kernels.
//!
//! The merged **root** — `{s ∈ base : some pair under s survives} ∪
//! ins-roots` — is computed lazily once per overlay and cached, because
//! the root set is probed by every join touching the relation. Leaf sets
//! are merged on demand by the executor (`(base − del) ∪ ins` via
//! [`eh_setops::overlay_merge_into`]) into per-cursor buffers; the
//! overlay only hands out the raw operand views.

use std::sync::OnceLock;

use eh_setops::SetRef;

use crate::build::LayoutPolicy;
use crate::frozen::FrozenTrie;
use crate::tuples::TupleBuffer;

/// Staged inserts and tombstones for one `(predicate, order)` relation,
/// served alongside its immutable base [`FrozenTrie`].
#[derive(Debug)]
pub struct DeltaOverlay {
    /// Pairs present in the overlay but not the base (`None` = no
    /// staged inserts). Deltas are small by construction, so sets stay
    /// in the uint layout — the kernels intersect mixed layouts anyway.
    ins: Option<FrozenTrie>,
    /// Base pairs deleted since the freeze (`None` = no tombstones).
    del: Option<FrozenTrie>,
    /// Lazily merged root set for the (base, overlay) pair; an overlay
    /// instance is always served against the one base it was built for.
    merged_root: OnceLock<Vec<u32>>,
}

impl DeltaOverlay {
    /// Build from sorted-unique delta pairs in this order's `(first,
    /// second)` orientation.
    pub fn from_pairs(ins: &[(u32, u32)], del: &[(u32, u32)]) -> DeltaOverlay {
        let freeze = |pairs: &[(u32, u32)]| {
            if pairs.is_empty() {
                None
            } else {
                Some(FrozenTrie::build(TupleBuffer::from_pairs(pairs), LayoutPolicy::UintOnly))
            }
        };
        DeltaOverlay { ins: freeze(ins), del: freeze(del), merged_root: OnceLock::new() }
    }

    /// True when the overlay stages nothing.
    pub fn is_empty(&self) -> bool {
        self.ins.is_none() && self.del.is_none()
    }

    /// Number of staged insert pairs.
    pub fn inserted(&self) -> usize {
        self.ins.as_ref().map_or(0, FrozenTrie::num_tuples)
    }

    /// Number of staged tombstone pairs.
    pub fn deleted(&self) -> usize {
        self.del.as_ref().map_or(0, FrozenTrie::num_tuples)
    }

    /// The merged root set over `base`: base roots with at least one
    /// surviving pair, unioned with the insert roots. Computed once and
    /// cached — callers must always pass the base this overlay was built
    /// against.
    pub fn root(&self, base: &FrozenTrie) -> &[u32] {
        self.merged_root.get_or_init(|| {
            debug_assert!(base.is_empty() || base.arity() == 2, "overlays patch arity-2 relations");
            let mut out: Vec<u32> = Vec::new();
            match &self.del {
                None => out.extend(base.root_set().iter()),
                Some(del) => {
                    for v in base.root_set().iter() {
                        let dead = del.child(0, 0, v).map_or(0, |b| del.set(1, b).len());
                        let held = base.child(0, 0, v).map_or(0, |b| base.set(1, b).len());
                        if held > dead {
                            out.push(v);
                        }
                    }
                }
            }
            if let Some(ins) = &self.ins {
                let mut merged = Vec::with_capacity(out.len() + ins.root_set().len());
                let mut it = out.iter().copied().peekable();
                let mut jt = ins.root_set().iter().peekable();
                loop {
                    match (it.peek().copied(), jt.peek().copied()) {
                        (None, None) => break,
                        (Some(a), None) => {
                            merged.push(a);
                            it.next();
                        }
                        (None, Some(b)) => {
                            merged.push(b);
                            jt.next();
                        }
                        (Some(a), Some(b)) => {
                            merged.push(a.min(b));
                            if a <= b {
                                it.next();
                            }
                            if b <= a {
                                jt.next();
                            }
                        }
                    }
                }
                merged
            } else {
                out
            }
        })
    }

    /// Block index of the insert-trie leaf under root value `v`.
    pub fn ins_child_block(&self, v: u32) -> Option<usize> {
        self.ins.as_ref()?.child(0, 0, v)
    }

    /// The insert-trie leaf set at `block` (from [`ins_child_block`]).
    ///
    /// [`ins_child_block`]: DeltaOverlay::ins_child_block
    pub fn ins_leaf(&self, block: usize) -> SetRef<'_> {
        self.ins.as_ref().expect("ins_leaf follows ins_child_block").set(1, block)
    }

    /// Staged inserts under root value `v`, if any.
    pub fn ins_child(&self, v: u32) -> Option<SetRef<'_>> {
        let t = self.ins.as_ref()?;
        Some(t.set(1, t.child(0, 0, v)?))
    }

    /// Tombstones under root value `v`, if any.
    pub fn del_child(&self, v: u32) -> Option<SetRef<'_>> {
        let t = self.del.as_ref()?;
        Some(t.set(1, t.child(0, 0, v)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(pairs: &[(u32, u32)]) -> FrozenTrie {
        FrozenTrie::build(TupleBuffer::from_pairs(pairs), LayoutPolicy::Auto)
    }

    #[test]
    fn root_drops_fully_tombstoned_subjects_and_adds_insert_roots() {
        let b = base(&[(1, 10), (1, 11), (2, 20), (3, 30)]);
        // Subject 2 fully deleted, subject 1 partially, subject 9 inserted.
        let ov = DeltaOverlay::from_pairs(&[(3, 31), (9, 90)], &[(1, 10), (2, 20)]);
        assert_eq!(ov.root(&b), &[1, 3, 9]);
        assert_eq!((ov.inserted(), ov.deleted()), (2, 2));
        assert!(!ov.is_empty());
    }

    #[test]
    fn root_over_empty_base_is_the_insert_roots() {
        let b = base(&[]);
        let ov = DeltaOverlay::from_pairs(&[(4, 1), (7, 2)], &[]);
        assert_eq!(ov.root(&b), &[4, 7]);
    }

    #[test]
    fn child_accessors_expose_delta_leaves() {
        let b = base(&[(1, 10), (1, 11)]);
        let ov = DeltaOverlay::from_pairs(&[(1, 12)], &[(1, 10)]);
        assert_eq!(ov.ins_child(1).unwrap().to_vec(), vec![12]);
        assert_eq!(ov.del_child(1).unwrap().to_vec(), vec![10]);
        assert!(ov.ins_child(2).is_none());
        assert!(ov.del_child(2).is_none());
        let block = ov.ins_child_block(1).unwrap();
        assert_eq!(ov.ins_leaf(block).to_vec(), vec![12]);
        assert_eq!(ov.root(&b), &[1]);
    }

    #[test]
    fn pure_tombstone_overlay_keeps_surviving_roots() {
        let b = base(&[(5, 1), (5, 2), (6, 3)]);
        let ov = DeltaOverlay::from_pairs(&[], &[(6, 3)]);
        assert_eq!(ov.root(&b), &[5]);
        assert_eq!((ov.inserted(), ov.deleted()), (0, 1));
    }
}
