//! # eh-trie
//!
//! The trie data structure EmptyHeaded stores every relation in (paper
//! §II-A, Figure 1): after dictionary encoding, a relation's tuples are
//! "grouped into sets of distinct values based on a previous (if present)
//! attribute or column. Each level of the trie corresponds to an attribute
//! or column of an input relation."
//!
//! A [`Trie`] is an arena of per-level blocks; each block is a
//! [`eh_setops::Set`] (whose physical layout the set optimizer picks per
//! block — or is forced to uint arrays for the Table I +Layout ablation via
//! [`LayoutPolicy::UintOnly`]) plus the index of its first child block.
//! Children of the `r`-th element of a block start at `child_base + r` on
//! the next level.
//!
//! ```
//! use eh_trie::{Trie, TupleBuffer, LayoutPolicy};
//!
//! // The paper's Figure 1 relation: subOrganizationOf after encoding.
//! let mut t = TupleBuffer::new(2);
//! t.push(&[0, 1]); // University0 -> Department0
//! t.push(&[0, 2]); // University0 -> Department1
//! t.push(&[3, 2]); // University1 -> Department1
//! let trie = Trie::build(t, LayoutPolicy::Auto);
//! assert_eq!(trie.num_tuples(), 3);
//! assert_eq!(trie.root_set().to_vec(), vec![0, 3]);
//! // University0's departments:
//! let child = trie.child(0, 0, 0).unwrap();
//! assert_eq!(trie.set(1, child).to_vec(), vec![1, 2]);
//! ```

mod build;
mod frozen;
mod overlay;
mod tuples;

pub use build::{LayoutPolicy, Trie};
pub use frozen::{ArenaBytes, FrozenTrie};
pub use overlay::DeltaOverlay;
pub use tuples::TupleBuffer;

// The parallel runtime shares tries (and per-morsel tuple buffers) across
// worker threads; keep that guarantee checked at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Trie>();
    assert_send_sync::<FrozenTrie>();
    assert_send_sync::<DeltaOverlay>();
    assert_send_sync::<TupleBuffer>();
};

#[cfg(test)]
mod proptests;
