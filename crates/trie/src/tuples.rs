//! A flat, row-major tuple buffer — the materialised-relation currency
//! shared by trie construction, intermediate results, and the baseline
//! engines.

/// A multiset of fixed-arity `u32` tuples stored contiguously.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TupleBuffer {
    arity: usize,
    data: Vec<u32>,
}

impl TupleBuffer {
    /// An empty buffer of the given arity (arity 0 is allowed and holds
    /// only the empty tuple count).
    pub fn new(arity: usize) -> TupleBuffer {
        TupleBuffer { arity, data: Vec::new() }
    }

    /// An empty buffer with row capacity preallocated.
    pub fn with_capacity(arity: usize, rows: usize) -> TupleBuffer {
        TupleBuffer { arity, data: Vec::with_capacity(arity * rows) }
    }

    /// Build from binary pairs (the vertically partitioned table shape).
    pub fn from_pairs(pairs: &[(u32, u32)]) -> TupleBuffer {
        let mut data = Vec::with_capacity(pairs.len() * 2);
        for &(a, b) in pairs {
            data.push(a);
            data.push(b);
        }
        TupleBuffer { arity: 2, data }
    }

    /// Tuple width.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.arity).unwrap_or(0)
    }

    /// True when no rows are present.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics when `row.len() != arity`.
    pub fn push(&mut self, row: &[u32]) {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        self.data.extend_from_slice(row);
    }

    /// Append every row of `other`, preserving order — the merge step of
    /// the parallel runtime, which concatenates per-morsel buffers in
    /// morsel order.
    ///
    /// # Panics
    /// Panics when the arities differ.
    pub fn append(&mut self, other: &TupleBuffer) {
        assert_eq!(other.arity, self.arity, "buffer arity mismatch");
        self.data.extend_from_slice(&other.data);
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterate rows.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> {
        self.data.chunks_exact(self.arity.max(1))
    }

    /// Sort rows lexicographically and remove duplicates (set semantics).
    pub fn sort_dedup(&mut self) {
        if self.arity == 0 || self.is_empty() {
            return;
        }
        let arity = self.arity;
        let n = self.len();
        let mut index: Vec<usize> = (0..n).collect();
        index.sort_unstable_by(|&a, &b| self.row(a).cmp(self.row(b)));
        index.dedup_by(|&mut a, &mut b| self.row(a) == self.row(b));
        let mut data = Vec::with_capacity(index.len() * arity);
        for i in index {
            data.extend_from_slice(self.row(i));
        }
        self.data = data;
    }

    /// True when rows are sorted lexicographically without duplicates.
    pub fn is_sorted_unique(&self) -> bool {
        if self.arity == 0 {
            return true;
        }
        (1..self.len()).all(|i| self.row(i - 1) < self.row(i))
    }

    /// A new buffer with columns permuted: output column `j` is input
    /// column `perm[j]`. `perm` may also drop or duplicate columns.
    pub fn permute(&self, perm: &[usize]) -> TupleBuffer {
        let mut out = TupleBuffer::with_capacity(perm.len(), self.len());
        let mut row_buf = vec![0u32; perm.len()];
        for row in self.rows() {
            for (j, &src) in perm.iter().enumerate() {
                row_buf[j] = row[src];
            }
            out.push(&row_buf);
        }
        out
    }

    /// Raw flat data (row-major).
    pub fn as_flat(&self) -> &[u32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_row_access() {
        let mut t = TupleBuffer::new(3);
        t.push(&[1, 2, 3]);
        t.push(&[4, 5, 6]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(1), &[4, 5, 6]);
        assert_eq!(t.rows().count(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        TupleBuffer::new(2).push(&[1]);
    }

    #[test]
    fn sort_dedup() {
        let mut t = TupleBuffer::new(2);
        for row in [[3, 1], [1, 2], [3, 1], [1, 1]] {
            t.push(&row);
        }
        t.sort_dedup();
        assert_eq!(t.len(), 3);
        assert_eq!(t.row(0), &[1, 1]);
        assert_eq!(t.row(1), &[1, 2]);
        assert_eq!(t.row(2), &[3, 1]);
        assert!(t.is_sorted_unique());
    }

    #[test]
    fn append_concatenates_in_order() {
        let mut a = TupleBuffer::new(2);
        a.push(&[9, 9]);
        a.push(&[1, 2]);
        let mut b = TupleBuffer::new(2);
        b.push(&[0, 0]);
        a.append(&b);
        a.append(&TupleBuffer::new(2));
        assert_eq!(a.len(), 3);
        assert_eq!(a.row(0), &[9, 9]);
        assert_eq!(a.row(2), &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn append_rejects_arity_mismatch() {
        TupleBuffer::new(2).append(&TupleBuffer::new(3));
    }

    #[test]
    fn from_pairs() {
        let t = TupleBuffer::from_pairs(&[(1, 2), (3, 4)]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.row(1), &[3, 4]);
    }

    #[test]
    fn permute_reorders_and_projects() {
        let mut t = TupleBuffer::new(3);
        t.push(&[1, 2, 3]);
        let swapped = t.permute(&[2, 0]);
        assert_eq!(swapped.arity(), 2);
        assert_eq!(swapped.row(0), &[3, 1]);
    }

    #[test]
    fn empty_and_zero_arity() {
        let t = TupleBuffer::new(0);
        assert_eq!(t.len(), 0);
        assert!(t.is_sorted_unique());
        let e = TupleBuffer::new(2);
        assert!(e.is_empty());
        assert!(e.is_sorted_unique());
    }
}
