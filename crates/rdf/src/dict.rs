//! Dictionary encoding of RDF terms to dense 32-bit keys (paper §II-A1).

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::term::{hash_term_parts, Term, KIND_IRI, KIND_LITERAL};

/// A borrowed view of a term, so the map can be probed with a bare `&str`
/// without cloning it into an owned [`Term`] first. Both [`Term`] and the
/// probe hash through [`hash_term_parts`], which keeps the `HashMap`
/// contract (`k == q ⇒ hash(k) == hash(q)`) across the two
/// representations.
trait TermKey {
    fn kind(&self) -> u8;
    fn text(&self) -> &str;
}

impl TermKey for Term {
    fn kind(&self) -> u8 {
        Term::kind(self)
    }

    fn text(&self) -> &str {
        self.as_str()
    }
}

/// The allocation-free probe: a term "by parts".
struct Probe<'a> {
    kind: u8,
    text: &'a str,
}

impl TermKey for Probe<'_> {
    fn kind(&self) -> u8 {
        self.kind
    }

    fn text(&self) -> &str {
        self.text
    }
}

impl PartialEq for dyn TermKey + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.kind() == other.kind() && self.text() == other.text()
    }
}

impl Eq for dyn TermKey + '_ {}

impl Hash for dyn TermKey + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        hash_term_parts(self.kind(), self.text(), state);
    }
}

impl<'a> Borrow<dyn TermKey + 'a> for Term {
    fn borrow(&self) -> &(dyn TermKey + 'a) {
        self
    }
}

/// A bidirectional mapping between [`Term`]s and dense `u32` keys.
///
/// Keys are assigned in first-encounter order, which makes encoding
/// deterministic for a fixed insertion order — the LUBM generator relies on
/// this for reproducible tests. The paper's engines (RDF-3X, TripleBit,
/// EmptyHeaded) all dictionary-encode before building indexes; so do we.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    map: HashMap<Term, u32>,
    terms: Vec<Term>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Rebuild a dictionary from its terms in key order (the snapshot
    /// load path). The reverse map is re-hashed — the only per-term work
    /// a snapshot load performs — but no parsing, allocation-per-probe,
    /// or key reassignment happens: term `i` keeps key `i`.
    pub(crate) fn from_terms(terms: Vec<Term>) -> Dictionary {
        let map = terms.iter().enumerate().map(|(i, t)| (t.clone(), i as u32)).collect();
        Dictionary { map, terms }
    }

    /// Encode `term`, assigning the next key on first encounter.
    ///
    /// # Panics
    /// Panics if more than `u32::MAX` distinct terms are inserted.
    pub fn encode(&mut self, term: &Term) -> u32 {
        if let Some(&id) = self.map.get(term) {
            return id;
        }
        let id =
            u32::try_from(self.terms.len()).expect("dictionary overflow: more than 2^32 terms");
        self.map.insert(term.clone(), id);
        self.terms.push(term.clone());
        id
    }

    /// Key for `term` if it has been seen before.
    pub fn lookup(&self, term: &Term) -> Option<u32> {
        self.map.get(term).copied()
    }

    /// Allocation-free lookup of an IRI by string: the map is probed with
    /// a borrowed view of the term, so no `String` (or `Term`) is built.
    /// This sits on the serving hot path — every constant in every query
    /// resolves through here.
    pub fn lookup_iri(&self, iri: &str) -> Option<u32> {
        self.map.get(&Probe { kind: KIND_IRI, text: iri } as &dyn TermKey).copied()
    }

    /// Allocation-free lookup of a plain literal by its body.
    pub fn lookup_literal(&self, literal: &str) -> Option<u32> {
        self.map.get(&Probe { kind: KIND_LITERAL, text: literal } as &dyn TermKey).copied()
    }

    /// Decode a key back to its term.
    ///
    /// # Panics
    /// Panics on a key that was never assigned.
    pub fn decode(&self, id: u32) -> &Term {
        &self.terms[id as usize]
    }

    /// Decode a key if it is valid.
    pub fn try_decode(&self, id: u32) -> Option<&Term> {
        self.terms.get(id as usize)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term has been encoded.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate `(key, term)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Term)> {
        self.terms.iter().enumerate().map(|(i, t)| (i as u32, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.encode(&Term::iri("a"));
        let b = d.encode(&Term::iri("b"));
        assert_eq!(d.encode(&Term::iri("a")), a);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn keys_are_dense_and_ordered_by_first_encounter() {
        let mut d = Dictionary::new();
        assert_eq!(d.encode(&Term::iri("x")), 0);
        assert_eq!(d.encode(&Term::literal("x")), 1); // distinct from the IRI
        assert_eq!(d.encode(&Term::iri("y")), 2);
    }

    #[test]
    fn decode_roundtrip() {
        let mut d = Dictionary::new();
        let id = d.encode(&Term::literal("GraduateStudent"));
        assert_eq!(d.decode(id), &Term::literal("GraduateStudent"));
        assert_eq!(d.try_decode(id + 1), None);
    }

    #[test]
    fn lookup_without_insert() {
        let mut d = Dictionary::new();
        d.encode(&Term::iri("present"));
        assert_eq!(d.lookup_iri("present"), Some(0));
        assert_eq!(d.lookup_iri("absent"), None);
    }

    #[test]
    fn borrowed_lookup_agrees_with_owned_and_separates_kinds() {
        // The same text as IRI and literal must resolve to its own key
        // through the borrowed probes, exactly as the owned lookup does.
        let mut d = Dictionary::new();
        let iri = d.encode(&Term::iri("x"));
        let lit = d.encode(&Term::literal("x"));
        assert_ne!(iri, lit);
        assert_eq!(d.lookup_iri("x"), Some(iri));
        assert_eq!(d.lookup_literal("x"), Some(lit));
        assert_eq!(d.lookup_iri("x"), d.lookup(&Term::iri("x")));
        assert_eq!(d.lookup_literal("x"), d.lookup(&Term::literal("x")));
        assert_eq!(d.lookup_literal("y"), None);
    }

    #[test]
    fn iter_in_key_order() {
        let mut d = Dictionary::new();
        d.encode(&Term::iri("a"));
        d.encode(&Term::iri("b"));
        let pairs: Vec<_> = d.iter().map(|(k, t)| (k, t.as_str().to_string())).collect();
        assert_eq!(pairs, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }
}
