//! Dictionary encoding of RDF terms to dense 32-bit keys (paper §II-A1).

use std::collections::HashMap;

use crate::term::Term;

/// A bidirectional mapping between [`Term`]s and dense `u32` keys.
///
/// Keys are assigned in first-encounter order, which makes encoding
/// deterministic for a fixed insertion order — the LUBM generator relies on
/// this for reproducible tests. The paper's engines (RDF-3X, TripleBit,
/// EmptyHeaded) all dictionary-encode before building indexes; so do we.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    map: HashMap<Term, u32>,
    terms: Vec<Term>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Encode `term`, assigning the next key on first encounter.
    ///
    /// # Panics
    /// Panics if more than `u32::MAX` distinct terms are inserted.
    pub fn encode(&mut self, term: &Term) -> u32 {
        if let Some(&id) = self.map.get(term) {
            return id;
        }
        let id =
            u32::try_from(self.terms.len()).expect("dictionary overflow: more than 2^32 terms");
        self.map.insert(term.clone(), id);
        self.terms.push(term.clone());
        id
    }

    /// Key for `term` if it has been seen before.
    pub fn lookup(&self, term: &Term) -> Option<u32> {
        self.map.get(term).copied()
    }

    /// Convenience lookup of an IRI by string.
    pub fn lookup_iri(&self, iri: &str) -> Option<u32> {
        self.lookup(&Term::Iri(iri.to_string()))
    }

    /// Decode a key back to its term.
    ///
    /// # Panics
    /// Panics on a key that was never assigned.
    pub fn decode(&self, id: u32) -> &Term {
        &self.terms[id as usize]
    }

    /// Decode a key if it is valid.
    pub fn try_decode(&self, id: u32) -> Option<&Term> {
        self.terms.get(id as usize)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term has been encoded.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate `(key, term)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Term)> {
        self.terms.iter().enumerate().map(|(i, t)| (i as u32, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.encode(&Term::iri("a"));
        let b = d.encode(&Term::iri("b"));
        assert_eq!(d.encode(&Term::iri("a")), a);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn keys_are_dense_and_ordered_by_first_encounter() {
        let mut d = Dictionary::new();
        assert_eq!(d.encode(&Term::iri("x")), 0);
        assert_eq!(d.encode(&Term::literal("x")), 1); // distinct from the IRI
        assert_eq!(d.encode(&Term::iri("y")), 2);
    }

    #[test]
    fn decode_roundtrip() {
        let mut d = Dictionary::new();
        let id = d.encode(&Term::literal("GraduateStudent"));
        assert_eq!(d.decode(id), &Term::literal("GraduateStudent"));
        assert_eq!(d.try_decode(id + 1), None);
    }

    #[test]
    fn lookup_without_insert() {
        let mut d = Dictionary::new();
        d.encode(&Term::iri("present"));
        assert_eq!(d.lookup_iri("present"), Some(0));
        assert_eq!(d.lookup_iri("absent"), None);
    }

    #[test]
    fn iter_in_key_order() {
        let mut d = Dictionary::new();
        d.encode(&Term::iri("a"));
        d.encode(&Term::iri("b"));
        let pairs: Vec<_> = d.iter().map(|(k, t)| (k, t.as_str().to_string())).collect();
        assert_eq!(pairs, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }
}
