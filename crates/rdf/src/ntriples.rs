//! A reader and writer for the N-Triples subset LUBM needs: IRIs and plain
//! literals, one triple per line, `#` comments.

use std::fmt;

use crate::term::Term;
use crate::triple::Triple;

/// Parse error for the N-Triples subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NtError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for NtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N-Triples parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NtError {}

fn err(line: usize, message: impl Into<String>) -> NtError {
    NtError { line, message: message.into() }
}

/// Parse a document; returns all triples or the first error.
///
/// ```
/// use eh_rdf::parse_ntriples;
/// let doc = "# comment\n<s> <p> \"a literal\" .\n<s> <p> <o> .\n";
/// let triples = parse_ntriples(doc).unwrap();
/// assert_eq!(triples.len(), 2);
/// ```
pub fn parse_ntriples(input: &str) -> Result<Vec<Triple>, NtError> {
    let mut out = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut p = Parser { line, pos: 0, lineno };
        let s = p.term()?;
        p.ws()?;
        let pred = p.term()?;
        p.ws()?;
        let o = p.term()?;
        p.end()?;
        if !s.is_iri() {
            return Err(err(lineno, "subject must be an IRI"));
        }
        if !pred.is_iri() {
            return Err(err(lineno, "predicate must be an IRI"));
        }
        out.push(Triple::new(s, pred, o));
    }
    Ok(out)
}

struct Parser<'a> {
    line: &'a str,
    pos: usize,
    lineno: usize,
}

impl Parser<'_> {
    fn rest(&self) -> &str {
        &self.line[self.pos..]
    }

    fn ws(&mut self) -> Result<(), NtError> {
        let before = self.pos;
        while self.rest().starts_with([' ', '\t']) {
            self.pos += 1;
        }
        if self.pos == before {
            return Err(err(self.lineno, "expected whitespace between terms"));
        }
        Ok(())
    }

    fn term(&mut self) -> Result<Term, NtError> {
        match self.rest().chars().next() {
            Some('<') => {
                let close = self.rest()[1..]
                    .find('>')
                    .ok_or_else(|| err(self.lineno, "unterminated IRI"))?;
                let iri = self.rest()[1..1 + close].to_string();
                self.pos += close + 2;
                Ok(Term::Iri(iri))
            }
            Some('"') => {
                let mut value = String::new();
                let mut chars = self.rest()[1..].char_indices();
                loop {
                    match chars.next() {
                        None => return Err(err(self.lineno, "unterminated literal")),
                        Some((i, '"')) => {
                            self.pos += 1 + i + 1;
                            return Ok(Term::literal(value));
                        }
                        Some((_, '\\')) => match chars.next() {
                            Some((_, '"')) => value.push('"'),
                            Some((_, '\\')) => value.push('\\'),
                            Some((_, 'n')) => value.push('\n'),
                            Some((_, 'r')) => value.push('\r'),
                            Some((_, 't')) => value.push('\t'),
                            other => {
                                return Err(err(
                                    self.lineno,
                                    format!(
                                        "invalid escape sequence: \\{:?}",
                                        other.map(|(_, c)| c)
                                    ),
                                ))
                            }
                        },
                        Some((_, c)) => value.push(c),
                    }
                }
            }
            other => Err(err(self.lineno, format!("expected '<' or '\"', found {other:?}"))),
        }
    }

    fn end(&mut self) -> Result<(), NtError> {
        let rest = self.rest().trim_start();
        // The grammar allows a comment to follow the terminating dot
        // (`<a> <b> <c> . # note`) — hand-annotated dumps rely on it.
        let Some(tail) = rest.strip_prefix('.') else {
            return Err(err(self.lineno, format!("expected terminating '.', found {rest:?}")));
        };
        let tail = tail.trim_start();
        if tail.is_empty() || tail.starts_with('#') {
            Ok(())
        } else {
            Err(err(self.lineno, format!("unexpected text after terminating '.': {tail:?}")))
        }
    }
}

/// Serialize triples in N-Triples syntax (one per line, `.`-terminated).
pub fn write_ntriples<'a>(triples: impl IntoIterator<Item = &'a Triple>) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for t in triples {
        writeln!(out, "{t}").expect("string write cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let t = parse_ntriples("<a> <b> <c> .").unwrap();
        assert_eq!(t, vec![Triple::new(Term::iri("a"), Term::iri("b"), Term::iri("c"))]);
    }

    #[test]
    fn parse_literal_object_with_escapes() {
        let t = parse_ntriples(r#"<a> <b> "x\"y\\z\n" ."#).unwrap();
        assert_eq!(t[0].o, Term::literal("x\"y\\z\n"));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let doc = "\n# a comment\n\n<a> <b> <c> .\n";
        assert_eq!(parse_ntriples(doc).unwrap().len(), 1);
    }

    #[test]
    fn roundtrip() {
        let doc = "<s> <p> <o> .\n<s> <p> \"lit with spaces\" .\n";
        let triples = parse_ntriples(doc).unwrap();
        assert_eq!(write_ntriples(&triples), doc);
    }

    #[test]
    fn error_reports_line_number() {
        let e = parse_ntriples("<a> <b> <c> .\n<broken").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unterminated IRI"), "{e}");
    }

    #[test]
    fn rejects_literal_subject() {
        let e = parse_ntriples("\"s\" <p> <o> .").unwrap_err();
        assert!(e.message.contains("subject"), "{e}");
    }

    #[test]
    fn rejects_missing_dot() {
        let e = parse_ntriples("<a> <b> <c>").unwrap_err();
        assert!(e.message.contains("terminating"), "{e}");
    }

    #[test]
    fn accepts_trailing_comment_after_dot() {
        // N-Triples allows `triple . # comment`; hand-annotated LUBM
        // dumps use it. Both spaced and flush comments must parse.
        let doc = "<a> <b> <c> . # note\n<a> <b> \"v\" .# flush\n<a> <b> <d> .   \n";
        assert_eq!(parse_ntriples(doc).unwrap().len(), 3);
    }

    #[test]
    fn rejects_non_comment_text_after_dot() {
        let e = parse_ntriples("<a> <b> <c> . <d>").unwrap_err();
        assert!(e.message.contains("after terminating"), "{e}");
    }

    #[test]
    fn rejects_garbage_term() {
        let e = parse_ntriples("<a> <b> bare .").unwrap_err();
        assert!(e.message.contains("expected '<' or '\"'"), "{e}");
    }
}
