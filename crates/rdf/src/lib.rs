//! # eh-rdf
//!
//! The RDF substrate for the WCOJ engine reproduction of Aberger et al.
//! (ICDE 2016): terms and triples, dictionary encoding to 32-bit ids
//! (§II-A1), an N-Triples subset reader/writer, and the vertically
//! partitioned storage model the paper uses for all relational engines
//! (§IV-A2: "grouping the triples by their predicate name, with all triples
//! sharing the same predicate name being stored under a table denoted by
//! the predicate name", after Abadi et al.).
//!
//! ```
//! use eh_rdf::{Term, Triple, TripleStore};
//!
//! let store = TripleStore::from_triples(vec![Triple::new(
//!     Term::iri("http://www.Department0.University0.edu"),
//!     Term::iri("http://ub/subOrganizationOf"),
//!     Term::iri("http://www.University0.edu"),
//! )]);
//! let table = store.table_by_name("http://ub/subOrganizationOf").unwrap();
//! assert_eq!(table.len(), 1);
//! ```

mod batch;
mod dict;
mod mmap;
mod ntriples;
mod partition;
mod snapshot;
mod store;
mod term;
mod triple;
mod vp;

pub use batch::{decode_update, encode_update, encode_update_into, BatchCodecError};
pub use dict::Dictionary;
pub use mmap::MappedRegion;
pub use ntriples::{parse_ntriples, write_ntriples, NtError};
pub use partition::Partitioner;
pub use snapshot::{
    xxh64, FrozenTrieEntry, LoadInfo, LoadMode, SnapshotError, StoreSnapshot, SNAPSHOT_MAGIC,
    SNAPSHOT_MAGIC_V1, SNAPSHOT_MAGIC_V2, SNAPSHOT_VERSION,
};
pub use store::{PredCard, PredDelta, ShardStats, StoreStats, TripleStore, UpdateReport};
pub use term::Term;
pub use triple::{EncodedTriple, Triple};
pub use vp::PairTable;
