//! A minimal read-only file mapping, written against the raw `mmap(2)`
//! family so the workspace stays dependency-free (std already links the
//! platform libc; the `extern "C"` declarations below bind to it).
//!
//! The mapping backs zero-copy snapshot loading: a [`MappedRegion`] is
//! the [`eh_trie::ArenaBytes`] region whose windows serve `FrozenTrie`
//! arenas straight off the page cache — N processes mapping one snapshot
//! share one physical copy, and cold start pays page faults instead of a
//! full-file copy.
//!
//! Supported on little-endian unix only: the snapshot format is
//! little-endian, and a shared arena reinterprets file bytes as native
//! `u32`s, which is only correct when the two agree. Everywhere else
//! [`MappedRegion::map_file`] returns `Unsupported` and the snapshot
//! layer falls back to its copy path — mmap is an optimisation, never a
//! portability constraint.

use std::fs::File;
use std::io;
use std::path::Path;

#[cfg(all(unix, target_endian = "little"))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    /// Same value on Linux and macOS, the two unixes this targets.
    pub const MAP_PRIVATE: i32 = 2;
    pub const MADV_WILLNEED: i32 = 3;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }
}

/// A whole file mapped read-only (private), unmapped on drop.
#[cfg(all(unix, target_endian = "little"))]
pub struct MappedRegion {
    ptr: std::ptr::NonNull<u8>,
    len: usize,
}

#[cfg(all(unix, target_endian = "little"))]
impl MappedRegion {
    /// Map `path` read-only in its entirety. Empty files are rejected
    /// (`mmap` of length zero is an error); so is any platform refusal.
    pub fn map_file(path: impl AsRef<Path>) -> io::Result<MappedRegion> {
        use std::os::unix::io::AsRawFd;
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "cannot map an empty file"));
        }
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        // SAFETY: a fresh private read-only mapping of a file we hold
        // open; the kernel picks the address. The fd may close after
        // mmap returns — the mapping keeps its own reference.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(MappedRegion { ptr: std::ptr::NonNull::new(ptr.cast()).expect("checked non-null"), len })
    }

    /// The mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping is empty (never — construction rejects
    /// empty files — but clippy insists `len` has a partner).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes. Stable for the region's lifetime — the mapping
    /// is fixed at construction and released only on drop, which is the
    /// [`eh_trie::ArenaBytes`] contract.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe the live mapping; PROT_READ makes the
        // memory readable for as long as it stays mapped.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Advise the kernel that `len` bytes at `offset` will be needed
    /// soon (`MADV_WILLNEED`), so the fault storm of a cold first query
    /// overlaps with load-time decoding instead of serialising behind
    /// it. Advice only: failures (and out-of-range requests) are ignored.
    pub fn advise_willneed(&self, offset: usize, len: usize) {
        let Some(end) = offset.checked_add(len) else { return };
        if end > self.len || len == 0 {
            return;
        }
        // madvise wants a page-aligned address: round the start down.
        let page = 4096;
        let start = offset & !(page - 1);
        // SAFETY: the rounded range stays inside the mapping.
        unsafe {
            sys::madvise(self.ptr.as_ptr().add(start).cast(), end - start, sys::MADV_WILLNEED);
        }
    }
}

#[cfg(all(unix, target_endian = "little"))]
impl Drop for MappedRegion {
    fn drop(&mut self) {
        // SAFETY: exactly the mapping obtained in map_file, released once.
        unsafe {
            sys::munmap(self.ptr.as_ptr().cast(), self.len);
        }
    }
}

// SAFETY: the mapping is immutable (PROT_READ, private) after
// construction; concurrent reads from any thread are fine and the
// region may be dropped on a different thread than it was mapped on.
#[cfg(all(unix, target_endian = "little"))]
unsafe impl Send for MappedRegion {}
#[cfg(all(unix, target_endian = "little"))]
unsafe impl Sync for MappedRegion {}

/// Stub for platforms without the zero-copy path (non-unix, or
/// big-endian where reinterpreting little-endian file bytes as native
/// `u32`s would be wrong): construction always fails with
/// `Unsupported`, so the snapshot layer takes its copy path.
#[cfg(not(all(unix, target_endian = "little")))]
pub struct MappedRegion {
    never: std::convert::Infallible,
}

#[cfg(not(all(unix, target_endian = "little")))]
impl MappedRegion {
    pub fn map_file(_path: impl AsRef<Path>) -> io::Result<MappedRegion> {
        let _ = File::open; // keep the import meaningful on all cfgs
        Err(io::Error::new(io::ErrorKind::Unsupported, "mmap needs a little-endian unix"))
    }

    pub fn len(&self) -> usize {
        match self.never {}
    }

    pub fn is_empty(&self) -> bool {
        match self.never {}
    }

    pub fn bytes(&self) -> &[u8] {
        match self.never {}
    }

    pub fn advise_willneed(&self, _offset: usize, _len: usize) {
        match self.never {}
    }
}

impl std::fmt::Debug for MappedRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedRegion").field("len", &self.len()).finish()
    }
}

impl eh_trie::ArenaBytes for MappedRegion {
    fn bytes(&self) -> &[u8] {
        self.bytes()
    }
}

#[cfg(all(test, unix, target_endian = "little"))]
mod tests {
    use super::*;

    fn temp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("eh-mmap-{tag}-{}.bin", std::process::id()))
    }

    #[test]
    fn maps_bytes_identically_and_survives_threads() {
        let path = temp("basic");
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::write(&path, &payload).unwrap();
        let region = std::sync::Arc::new(MappedRegion::map_file(&path).unwrap());
        assert_eq!(region.len(), payload.len());
        assert_eq!(region.bytes(), &payload[..]);
        region.advise_willneed(0, region.len());
        region.advise_willneed(region.len(), 1); // out of range: ignored
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = std::sync::Arc::clone(&region);
                std::thread::spawn(move || r.bytes().iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        let sums: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(sums.windows(2).all(|w| w[0] == w[1]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_and_missing_files_error() {
        let path = temp("empty");
        std::fs::write(&path, b"").unwrap();
        assert!(MappedRegion::map_file(&path).is_err());
        std::fs::remove_file(&path).ok();
        assert!(MappedRegion::map_file(&path).is_err());
    }
}
