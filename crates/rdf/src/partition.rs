//! Subject-hash partitioning: the shard map shared by storage, staging,
//! snapshots, and the executor.
//!
//! The store hash-partitions every predicate's pairs by **subject**, the
//! root attribute of the `[s, o]` trie order that dominates LUBM-style
//! plans. Subjects are disjoint across shards, so:
//!
//! * a subject-rooted generic join decomposes into `P` independent
//!   shard-local joins whose results concatenate in shard order, and
//! * a staged mutation routes to exactly one shard — the one whose base
//!   table could hold the pair — keeping the per-shard `ins ∩ base = ∅`
//!   / `del ⊆ base` delta invariants intact.
//!
//! Object-rooted (`[o, s]`) tries are *not* partition-aligned: one object
//! may have subjects in every shard, and the executor unions the per-shard
//! leaf sets instead (see `eh-core`'s generic join).
//!
//! The hash must be deterministic across runs and builds (snapshots
//! persist the placement, and the determinism test matrix pins results
//! byte-for-byte), so it is a fixed avalanche mix — no `RandomState`.

/// The shard map: a pure function from subject id to shard index.
///
/// `P = 1` is the identity layout — every subject maps to shard 0 and the
/// store is bit-for-bit what the unpartitioned engine builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    partitions: u32,
}

/// Murmur3's 32-bit finalizer: a full-avalanche mix so dictionary ids
/// (dense, allocation-ordered) spread evenly instead of striping.
#[inline]
fn mix32(mut x: u32) -> u32 {
    x ^= x >> 16;
    x = x.wrapping_mul(0x85EB_CA6B);
    x ^= x >> 13;
    x = x.wrapping_mul(0xC2B2_AE35);
    x ^= x >> 16;
    x
}

impl Partitioner {
    /// A partitioner over `max(1, partitions)` shards.
    pub fn new(partitions: usize) -> Partitioner {
        Partitioner { partitions: partitions.max(1) as u32 }
    }

    /// Number of shards (always ≥ 1).
    #[inline]
    pub fn partitions(&self) -> usize {
        self.partitions as usize
    }

    /// The shard owning `subject`. Always 0 when `P = 1` — no hashing on
    /// the unpartitioned fast path.
    #[inline]
    pub fn shard_of(&self, subject: u32) -> usize {
        if self.partitions == 1 {
            0
        } else {
            (mix32(subject) % self.partitions) as usize
        }
    }
}

impl Default for Partitioner {
    fn default() -> Partitioner {
        Partitioner::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_partition_is_identity() {
        let p = Partitioner::new(1);
        assert_eq!(p.partitions(), 1);
        for s in [0, 1, 17, u32::MAX] {
            assert_eq!(p.shard_of(s), 0);
        }
        assert_eq!(Partitioner::new(0).partitions(), 1, "0 clamps to 1");
    }

    #[test]
    fn shards_are_in_range_and_deterministic() {
        let p = Partitioner::new(4);
        for s in 0..10_000u32 {
            let shard = p.shard_of(s);
            assert!(shard < 4);
            assert_eq!(shard, p.shard_of(s), "stable across calls");
        }
    }

    #[test]
    fn dense_ids_spread_roughly_evenly() {
        // Dictionary ids are dense; a striped or truncated hash would
        // starve shards. Allow wide slack — this guards against collapse,
        // not imbalance.
        let p = Partitioner::new(4);
        let mut counts = [0usize; 4];
        for s in 0..8192u32 {
            counts[p.shard_of(s)] += 1;
        }
        for &c in &counts {
            assert!(c > 8192 / 8, "shard starved: {counts:?}");
        }
    }
}
