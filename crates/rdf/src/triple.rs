//! Raw and dictionary-encoded triples.

use crate::term::Term;

/// A Subject–Predicate–Object triple over raw [`Term`]s.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Subject (always an IRI in LUBM data).
    pub s: Term,
    /// Predicate IRI.
    pub p: Term,
    /// Object (IRI or literal).
    pub o: Term,
}

impl Triple {
    /// Construct a triple.
    pub fn new(s: Term, p: Term, o: Term) -> Triple {
        Triple { s, p, o }
    }
}

impl std::fmt::Display for Triple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {} .", self.s, self.p, self.o)
    }
}

/// A triple after dictionary encoding: three 32-bit keys (paper §II-A1,
/// "dictionary encoding maps original data values to keys of another type —
/// in our case 32-bit unsigned integers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EncodedTriple {
    /// Encoded subject.
    pub s: u32,
    /// Encoded predicate.
    pub p: u32,
    /// Encoded object.
    pub o: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_ntriples() {
        let t = Triple::new(Term::iri("s"), Term::iri("p"), Term::literal("o"));
        assert_eq!(t.to_string(), "<s> <p> \"o\" .");
    }

    #[test]
    fn encoded_triple_is_small() {
        assert_eq!(std::mem::size_of::<EncodedTriple>(), 12);
    }
}
