//! Versioned, checksummed store snapshots: the cold-start path.
//!
//! A production server cannot re-parse N-Triples and re-sort every
//! predicate table on restart. A snapshot persists the whole read-path
//! state — dictionary, both sort orders of every [`PairTable`], and
//! (optionally) pre-built [`FrozenTrie`] arenas for the hot trie orders —
//! so a reload is bulk `memcpy`-shaped: no parsing, no sorting, no
//! per-block allocation. The frozen-trie arenas load as single contiguous
//! `u32` blocks and are served by the catalog as-is.
//!
//! ## File format (version 2, little-endian)
//!
//! ```text
//! [0..8)   magic  b"EHSNAP02"
//! [8..12)  format version (u32) = 2
//! [12..16) partition count P (u32, >= 1)
//! [16..20) section count (u32) = P + 1
//! [20..)   directory: per section (length u64, XXH64 checksum u64)
//! then the sections, back to back
//! ```
//!
//! Section 0 is store-wide state: the dictionary (term count, then each
//! term as `(kind u8, len u32, utf-8 bytes)` in key order) and the
//! predicate registry (`count`, then `(pred, name, cross-shard
//! distinct-object count)` per table — the registration order every shard
//! shares; the persisted count spares the load path the k-way merge that
//! derived it, and is bounds-checked against the decoded shards).
//! Sections `1..=P` each hold one
//! shard: per registry entry `(pair count, so pairs, os pairs)`, then that
//! shard's frozen tries (`count`, then `(pred, subject_first, arity,
//! num_tuples, level directory, arena)` per trie).
//!
//! Per-shard sections carry **independent checksums** so a partitioned
//! load verifies and decodes shards in parallel
//! ([`StoreSnapshot::read_with_threads`]) — the cold-start path scales
//! with cores instead of serialising one whole-file checksum pass.
//!
//! ## Compatibility policy
//!
//! Version-1 single-arena snapshots (`EHSNAP01`: one global checksum, one
//! table section) still load, as a `P = 1` store. The write path always
//! emits version 2. Unknown magic/versions (and anything truncated,
//! mis-sized, or failing a checksum) are rejected with a typed
//! [`SnapshotError`] — never a panic. Snapshots are an *optimisation*,
//! not the system of record: on any read error, rebuild from the source
//! N-Triples.

use std::collections::HashSet;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use eh_trie::FrozenTrie;

use crate::partition::Partitioner;
use crate::store::TripleStore;
use crate::term::Term;
use crate::vp::PairTable;

/// The 8-byte magic that opens every snapshot this build writes.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"EHSNAP02";
/// The magic of read-compatible version-1 (single-arena) snapshots.
pub const SNAPSHOT_MAGIC_V1: [u8; 8] = *b"EHSNAP01";
/// The format version this build writes.
pub const SNAPSHOT_VERSION: u32 = 2;
/// Fixed v2 header size before the section directory.
const V2_HEADER_BYTES: usize = 20;
/// Per-section directory entry: length + checksum.
const DIR_ENTRY_BYTES: usize = 16;
/// Fixed v1 header size: magic + version + payload length + checksum.
const V1_HEADER_BYTES: usize = 28;
/// Upper bound on the partition count a snapshot may declare — far above
/// any real deployment, low enough that a corrupt header cannot provoke
/// a giant allocation before checksums are consulted.
const MAX_PARTITIONS: u32 = 1 << 16;

/// Why a snapshot could not be written or read.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file starts with neither [`SNAPSHOT_MAGIC`] nor
    /// [`SNAPSHOT_MAGIC_V1`].
    BadMagic,
    /// The file's format version does not match its magic.
    BadVersion(u32),
    /// The file ends before the declared payload does.
    Truncated,
    /// A payload checksum (XXH64) does not match its directory entry.
    ChecksumMismatch,
    /// The payload decoded but its structure is inconsistent.
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads {SNAPSHOT_VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot payload checksum mismatch"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// A pre-built frozen trie shipped inside a snapshot: one (predicate,
/// order) within one shard that the serving engine treats as hot.
#[derive(Debug, Clone)]
pub struct FrozenTrieEntry {
    /// Dictionary key of the predicate this trie indexes.
    pub pred: u32,
    /// `true` for the subject-major `[s, o]` order, `false` for `[o, s]`.
    pub subject_first: bool,
    /// The shard whose slice of the predicate this trie covers (always 0
    /// on a `P = 1` store and in loaded v1 snapshots).
    pub shard: u32,
    /// The arena-backed trie, ready to serve.
    pub trie: Arc<FrozenTrie>,
}

/// A loaded snapshot: the reassembled store plus any frozen tries it
/// carried (see [`StoreSnapshot::read`]).
#[derive(Debug)]
pub struct StoreSnapshot {
    /// The store, committed and fully queryable (and mutable — updates
    /// after a snapshot load work exactly as on a cold-built store).
    pub store: TripleStore,
    /// Pre-built tries for the hot orders, for an index catalog to
    /// preload.
    pub tries: Vec<FrozenTrieEntry>,
}

impl StoreSnapshot {
    /// The standard hot orders: an auto-layout [`FrozenTrie`] for both
    /// `[s, o]` and `[o, s]` of every non-empty (shard, predicate) —
    /// exactly the set of tries a warmed query engine holds for a
    /// binary-atom workload.
    pub fn hot_tries(store: &TripleStore) -> Vec<FrozenTrieEntry> {
        let mut out = Vec::new();
        for shard in 0..store.partitions() {
            for table in store.shard_tables(shard) {
                if table.is_empty() {
                    continue;
                }
                for subject_first in [true, false] {
                    let pairs = if subject_first { table.so_pairs() } else { table.os_pairs() };
                    let trie = FrozenTrie::from_sorted(
                        eh_trie::TupleBuffer::from_pairs(pairs),
                        eh_trie::LayoutPolicy::Auto,
                    );
                    out.push(FrozenTrieEntry {
                        pred: table.pred(),
                        subject_first,
                        shard: shard as u32,
                        trie: Arc::new(trie),
                    });
                }
            }
        }
        out
    }

    /// Serialize `store` (plus optional pre-built tries) to `w` in the
    /// current (v2, per-shard-sectioned) format. Returns the total bytes
    /// written.
    pub fn write(
        store: &TripleStore,
        tries: &[FrozenTrieEntry],
        mut w: impl Write,
    ) -> Result<u64, SnapshotError> {
        let partitions = store.partitions() as u32;
        let sections = encode_sections(store, tries);
        w.write_all(&SNAPSHOT_MAGIC)?;
        w.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        w.write_all(&partitions.to_le_bytes())?;
        w.write_all(&(sections.len() as u32).to_le_bytes())?;
        let mut total = (V2_HEADER_BYTES + DIR_ENTRY_BYTES * sections.len()) as u64;
        for s in &sections {
            w.write_all(&(s.len() as u64).to_le_bytes())?;
            w.write_all(&xxh64(s).to_le_bytes())?;
            total += s.len() as u64;
        }
        for s in &sections {
            w.write_all(s)?;
        }
        w.flush()?;
        Ok(total)
    }

    /// Serialize in the legacy v1 single-arena format (one global
    /// checksum, no shard sections). Only a `P = 1` store can be encoded
    /// this way; kept for read-compat tests and for benchmarking the
    /// sectioned format against the monolithic one.
    pub fn write_v1(
        store: &TripleStore,
        tries: &[FrozenTrieEntry],
        mut w: impl Write,
    ) -> Result<u64, SnapshotError> {
        assert_eq!(store.partitions(), 1, "v1 snapshots are single-arena (P = 1)");
        let payload = encode_payload_v1(store, tries);
        let checksum = xxh64(&payload);
        w.write_all(&SNAPSHOT_MAGIC_V1)?;
        w.write_all(&1u32.to_le_bytes())?;
        w.write_all(&(payload.len() as u64).to_le_bytes())?;
        w.write_all(&checksum.to_le_bytes())?;
        w.write_all(&payload)?;
        w.flush()?;
        Ok(V1_HEADER_BYTES as u64 + payload.len() as u64)
    }

    /// Serialize to a file path (buffered).
    pub fn write_to_path(
        store: &TripleStore,
        tries: &[FrozenTrieEntry],
        path: impl AsRef<Path>,
    ) -> Result<u64, SnapshotError> {
        StoreSnapshot::write(store, tries, BufWriter::new(File::create(path)?))
    }

    /// Read and verify a snapshot (either format), sequentially. All
    /// failure modes are `Err`, never panics — corrupt input must not
    /// take a serving process down.
    pub fn read(r: impl Read) -> Result<StoreSnapshot, SnapshotError> {
        StoreSnapshot::read_with_threads(r, 1)
    }

    /// Read and verify a snapshot, checksumming and decoding per-shard
    /// sections on up to `threads` workers (v2 files; v1 files have a
    /// single section and load sequentially regardless). Verification is
    /// not weakened by parallelism: every section's checksum and every
    /// structural invariant is still checked.
    pub fn read_with_threads(
        mut r: impl Read,
        threads: usize,
    ) -> Result<StoreSnapshot, SnapshotError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        if bytes.len() < 8 {
            return Err(
                if bytes.is_empty()
                    || SNAPSHOT_MAGIC.starts_with(&bytes)
                    || SNAPSHOT_MAGIC_V1.starts_with(&bytes)
                {
                    SnapshotError::Truncated
                } else {
                    SnapshotError::BadMagic
                },
            );
        }
        match &bytes[0..8] {
            m if *m == SNAPSHOT_MAGIC => read_v2(&bytes, threads),
            m if *m == SNAPSHOT_MAGIC_V1 => read_v1(&bytes),
            _ => Err(SnapshotError::BadMagic),
        }
    }

    /// Read from a file path. The whole file is slurped in one
    /// (size-hinted) read — on the cold-start critical path, funnelling
    /// a couple hundred KB through a `BufReader`'s 8 KiB window would
    /// just be an extra copy.
    pub fn read_from_path(path: impl AsRef<Path>) -> Result<StoreSnapshot, SnapshotError> {
        StoreSnapshot::read_from_path_with(path, 1)
    }

    /// Read from a file path with parallel section verification (see
    /// [`read_with_threads`](StoreSnapshot::read_with_threads)).
    pub fn read_from_path_with(
        path: impl AsRef<Path>,
        threads: usize,
    ) -> Result<StoreSnapshot, SnapshotError> {
        let bytes = std::fs::read(path)?;
        StoreSnapshot::read_with_threads(&bytes[..], threads)
    }
}

// ------------------------------------------------------------- v2 payload

fn encode_sections(store: &TripleStore, tries: &[FrozenTrieEntry]) -> Vec<Vec<u8>> {
    let partitions = store.partitions();
    let mut sections = Vec::with_capacity(partitions + 1);
    // Section 0: dictionary + predicate registry.
    let mut head = Vec::new();
    let dict = store.dict();
    put_u32(&mut head, dict.len() as u32);
    for (_, term) in dict.iter() {
        let (kind, text) = match term {
            Term::Iri(s) => (0u8, s.as_str()),
            Term::Literal(s) => (1u8, s.as_str()),
        };
        head.push(kind);
        put_u32(&mut head, text.len() as u32);
        head.extend_from_slice(text.as_bytes());
    }
    let registry = store.shard_tables(0);
    put_u32(&mut head, registry.len() as u32);
    for t in registry {
        put_u32(&mut head, t.pred());
        put_u32(&mut head, t.name().len() as u32);
        head.extend_from_slice(t.name().as_bytes());
        // The cross-shard distinct-object count: derived read-path state,
        // persisted like the frozen tries so a load never replays the
        // k-way merge that computed it.
        let distinct = store.pred_card(t.name()).map_or(0, |c| c.distinct_objects());
        put_u32(&mut head, distinct as u32);
    }
    sections.push(head);
    // Sections 1..=P: one shard each — its slice of every registered
    // table (registry order; pred/name implied) plus its frozen tries.
    for shard in 0..partitions {
        let mut out = Vec::new();
        for t in store.shard_tables(shard) {
            put_u32(&mut out, t.len() as u32);
            for &(a, b) in t.so_pairs() {
                put_u32(&mut out, a);
                put_u32(&mut out, b);
            }
            for &(a, b) in t.os_pairs() {
                put_u32(&mut out, a);
                put_u32(&mut out, b);
            }
        }
        let mine: Vec<&FrozenTrieEntry> =
            tries.iter().filter(|e| e.shard as usize == shard).collect();
        put_u32(&mut out, mine.len() as u32);
        for e in mine {
            let (arity, num_tuples, levels, arena) = e.trie.raw_parts();
            put_u32(&mut out, e.pred);
            out.push(e.subject_first as u8);
            put_u32(&mut out, arity);
            put_u32(&mut out, num_tuples);
            put_u32(&mut out, levels.len() as u32);
            for &(off, count) in levels {
                put_u32(&mut out, off);
                put_u32(&mut out, count);
            }
            put_u32(&mut out, arena.len() as u32);
            for &w in arena {
                put_u32(&mut out, w);
            }
        }
        sections.push(out);
    }
    sections
}

fn read_v2(bytes: &[u8], threads: usize) -> Result<StoreSnapshot, SnapshotError> {
    if bytes.len() < V2_HEADER_BYTES {
        return Err(SnapshotError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("fixed slice"));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let partitions = u32::from_le_bytes(bytes[12..16].try_into().expect("fixed slice"));
    let n_sections = u32::from_le_bytes(bytes[16..20].try_into().expect("fixed slice"));
    if partitions == 0 || partitions > MAX_PARTITIONS {
        return Err(SnapshotError::Malformed("implausible partition count"));
    }
    if n_sections != partitions + 1 {
        return Err(SnapshotError::Malformed("section count does not match partitions"));
    }
    let n_sections = n_sections as usize;
    let dir_end = V2_HEADER_BYTES + DIR_ENTRY_BYTES * n_sections;
    if bytes.len() < dir_end {
        return Err(SnapshotError::Truncated);
    }
    // Slice the payload into sections per the directory, validating the
    // total length before touching any content.
    let mut dir = Vec::with_capacity(n_sections);
    for i in 0..n_sections {
        let at = V2_HEADER_BYTES + DIR_ENTRY_BYTES * i;
        let len = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("fixed slice"));
        let checksum = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("fixed slice"));
        dir.push((len, checksum));
    }
    let total: u64 = dir.iter().map(|&(len, _)| len).sum();
    let body = &bytes[dir_end..];
    if (body.len() as u64) < total {
        return Err(SnapshotError::Truncated);
    }
    if body.len() as u64 > total {
        return Err(SnapshotError::Malformed("trailing bytes after payload"));
    }
    let mut sections = Vec::with_capacity(n_sections);
    let mut at = 0usize;
    for &(len, checksum) in &dir {
        let len = len as usize;
        sections.push((&body[at..at + len], checksum));
        at += len;
    }
    // Section 0 (dictionary + registry) gates everything else: decode it
    // first, sequentially.
    let (head, head_sum) = sections[0];
    if xxh64(head) != head_sum {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let (terms, registry) = decode_head_section(head)?;
    // Shard sections verify and decode independently — fan them out. The
    // subject→shard affinity check rides inside the same fan-out (fused
    // with the per-pair validation scan), so reassembly below has no
    // sequential sweep left to pay.
    let n_terms = terms.len();
    let partitioner = Partitioner::new(partitions as usize);
    let shard_results = eh_par::run_tasks(threads.max(1), partitions as usize, |shard| {
        let (body, sum) = sections[shard + 1];
        if xxh64(body) != sum {
            return Err(SnapshotError::ChecksumMismatch);
        }
        decode_shard_section(body, &registry, n_terms, partitioner, shard)
    });
    let mut shard_tables = Vec::with_capacity(partitions as usize);
    let mut tries = Vec::new();
    for (shard, r) in shard_results.into_iter().enumerate() {
        let (tables, shard_tries) = r?;
        shard_tables.push(tables);
        tries.extend(shard_tries.into_iter().map(|(pred, subject_first, trie)| FrozenTrieEntry {
            pred,
            subject_first,
            shard: shard as u32,
            trie: Arc::new(trie),
        }));
    }
    // The persisted distinct-object stats shape plans, never answer
    // bytes, so exact recomputation (a cross-shard k-way merge per
    // predicate — the cost this field exists to avoid) is not worth the
    // load-path time; bounds against the decoded shards keep a corrupt
    // claim from surviving: the true count is at least the largest
    // single-shard count and at most the smaller of the per-shard sum
    // and the dictionary size. At P = 1 the shard count *is* the true
    // count, so the claim is checked exactly.
    let mut agg = std::collections::HashMap::with_capacity(registry.len());
    for (idx, &(pred, _, claimed)) in registry.iter().enumerate() {
        let claimed = claimed as usize;
        let largest = shard_tables.iter().map(|t| t[idx].distinct_objects()).max().unwrap_or(0);
        let sum: usize = shard_tables.iter().map(|t| t[idx].distinct_objects()).sum();
        let ok = if partitions == 1 {
            claimed == largest
        } else {
            claimed >= largest && claimed <= sum.min(n_terms)
        };
        if !ok {
            return Err(SnapshotError::Malformed("distinct-object stat out of bounds"));
        }
        agg.insert(pred, claimed);
    }
    let store = TripleStore::from_partitioned_parts(terms, partitions as usize, shard_tables, agg)
        .map_err(SnapshotError::Malformed)?;
    Ok(StoreSnapshot { store, tries })
}

/// One predicate-registry entry from section 0: `(pred key, predicate
/// name, claimed cross-shard distinct-object count)`.
type RegistryEntry = (u32, String, u32);

/// Decode section 0: dictionary terms in key order plus the predicate
/// registry shared by every shard — one [`RegistryEntry`] per table. The
/// distinct-object claim is validated against the decoded shards in
/// [`read_v2`].
fn decode_head_section(bytes: &[u8]) -> Result<(Vec<Term>, Vec<RegistryEntry>), SnapshotError> {
    let mut c = Cursor { bytes, pos: 0 };
    let n_terms = c.u32()? as usize;
    let mut terms = Vec::with_capacity(n_terms.min(c.remaining()));
    for _ in 0..n_terms {
        let kind = c.u8()?;
        let text = c.string()?;
        terms.push(match kind {
            0 => Term::Iri(text),
            1 => Term::Literal(text),
            _ => return Err(SnapshotError::Malformed("unknown term kind")),
        });
    }
    let n_tables = c.u32()? as usize;
    let mut registry = Vec::with_capacity(n_tables.min(c.remaining()));
    let mut seen = HashSet::new();
    for _ in 0..n_tables {
        let pred = c.u32()?;
        if !seen.insert(pred) {
            return Err(SnapshotError::Malformed("duplicate predicate table"));
        }
        if pred as usize >= terms.len() {
            return Err(SnapshotError::Malformed("table predicate outside dictionary"));
        }
        let name = c.string()?;
        let distinct = c.u32()?;
        registry.push((pred, name, distinct));
    }
    if c.remaining() != 0 {
        return Err(SnapshotError::Malformed("unconsumed section bytes"));
    }
    Ok((terms, registry))
}

/// Decode one shard section: its slice of every registered table (with
/// full structural validation, including that every subject hashes to
/// this shard) and its frozen tries (validated against the tables just
/// decoded).
#[allow(clippy::type_complexity)]
fn decode_shard_section(
    bytes: &[u8],
    registry: &[RegistryEntry],
    n_terms: usize,
    partitioner: Partitioner,
    shard: usize,
) -> Result<(Vec<PairTable>, Vec<(u32, bool, FrozenTrie)>), SnapshotError> {
    let mut c = Cursor { bytes, pos: 0 };
    let mut tables = Vec::with_capacity(registry.len());
    for (pred, name, _) in registry {
        let n_pairs = c.u32()? as usize;
        let so = c.pairs(n_pairs)?;
        let os = c.pairs(n_pairs)?;
        // One fused pass per order: sorted-unique (so binary searches
        // work) and id-bounded (an out-of-dictionary id surviving into a
        // query result would panic in `Dictionary::decode` much later, on
        // a serving thread — exactly the class of failure the never-panic
        // guarantee exists for).
        for pairs in [&so, &os] {
            let sorted = pairs.windows(2).all(|w| w[0] < w[1]);
            let bounded =
                pairs.iter().all(|&(a, b)| (a as usize) < n_terms && (b as usize) < n_terms);
            if !sorted || !bounded {
                return Err(SnapshotError::Malformed("table pairs not sorted or out of range"));
            }
        }
        // Subjects must live in the shard their hash names, or a
        // shard-local join would silently miss them (a swapped pair of
        // otherwise-valid sections passes every per-section checksum).
        // Checked here, inside the parallel fan-out, rather than as a
        // second store-wide sweep at reassembly.
        if !so.iter().all(|&(s, _)| partitioner.shard_of(s) == shard) {
            return Err(SnapshotError::Malformed("subject resident in the wrong shard"));
        }
        // The two orders must describe the same relation, or the same
        // query would answer differently depending on which access order
        // the planner picks. Both are sorted unique and equally long, so
        // membership of every transposed `os` pair in `so` is a full
        // bijection check — O(n log n) binary searches, no re-sort.
        if !os.iter().all(|&(o, s)| so.binary_search(&(s, o)).is_ok()) {
            return Err(SnapshotError::Malformed("table orders are not transposes"));
        }
        tables.push(PairTable::from_sorted_parts(name.clone(), *pred, so, os));
    }
    let n_tries = c.u32()? as usize;
    let mut tries = Vec::with_capacity(n_tries.min(c.remaining()));
    let mut seen_orders = HashSet::new();
    for _ in 0..n_tries {
        let pred = c.u32()?;
        let subject_first = match c.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Malformed("bad trie order flag")),
        };
        if !seen_orders.insert((pred, subject_first)) {
            return Err(SnapshotError::Malformed("duplicate frozen trie entry"));
        }
        let arity = c.u32()?;
        let num_tuples = c.u32()?;
        let n_levels = c.u32()? as usize;
        let mut levels = Vec::with_capacity(n_levels.min(c.remaining()));
        for _ in 0..n_levels {
            let off = c.u32()?;
            let count = c.u32()?;
            levels.push((off, count));
        }
        let arena_len = c.u32()? as usize;
        let arena = c.words(arena_len)?;
        let trie = FrozenTrie::from_raw_parts(arity, num_tuples, levels, arena)
            .map_err(SnapshotError::Malformed)?;
        // A preloaded trie is served by the catalog as if it were built
        // from the shard's table, so its contents must *be* that table in
        // the claimed order, tuple for tuple — a count or id-range check
        // would let a transposed (or otherwise mislabeled) trie through
        // and silently corrupt every query over its predicate.
        let Some(table) = registry.iter().position(|&(p, _, _)| p == pred).map(|i| &tables[i])
        else {
            return Err(SnapshotError::Malformed("frozen trie for an absent table"));
        };
        let pairs = if subject_first { table.so_pairs() } else { table.os_pairs() };
        if !trie.matches_pairs(pairs) {
            return Err(SnapshotError::Malformed("frozen trie does not match its table"));
        }
        tries.push((pred, subject_first, trie));
    }
    if c.remaining() != 0 {
        return Err(SnapshotError::Malformed("unconsumed section bytes"));
    }
    Ok((tables, tries))
}

// ------------------------------------------------- v1 payload (read-compat)

fn encode_payload_v1(store: &TripleStore, tries: &[FrozenTrieEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    // Dictionary.
    let dict = store.dict();
    put_u32(&mut out, dict.len() as u32);
    for (_, term) in dict.iter() {
        let (kind, text) = match term {
            Term::Iri(s) => (0u8, s.as_str()),
            Term::Literal(s) => (1u8, s.as_str()),
        };
        out.push(kind);
        put_u32(&mut out, text.len() as u32);
        out.extend_from_slice(text.as_bytes());
    }
    // Tables, both orders verbatim.
    let tables = store.tables();
    put_u32(&mut out, tables.len() as u32);
    for t in tables {
        put_u32(&mut out, t.pred());
        put_u32(&mut out, t.name().len() as u32);
        out.extend_from_slice(t.name().as_bytes());
        put_u32(&mut out, t.len() as u32);
        for &(a, b) in t.so_pairs() {
            put_u32(&mut out, a);
            put_u32(&mut out, b);
        }
        for &(a, b) in t.os_pairs() {
            put_u32(&mut out, a);
            put_u32(&mut out, b);
        }
    }
    // Frozen tries.
    put_u32(&mut out, tries.len() as u32);
    for e in tries {
        assert_eq!(e.shard, 0, "v1 snapshots have no shards");
        let (arity, num_tuples, levels, arena) = e.trie.raw_parts();
        put_u32(&mut out, e.pred);
        out.push(e.subject_first as u8);
        put_u32(&mut out, arity);
        put_u32(&mut out, num_tuples);
        put_u32(&mut out, levels.len() as u32);
        for &(off, count) in levels {
            put_u32(&mut out, off);
            put_u32(&mut out, count);
        }
        put_u32(&mut out, arena.len() as u32);
        for &w in arena {
            put_u32(&mut out, w);
        }
    }
    out
}

fn read_v1(bytes: &[u8]) -> Result<StoreSnapshot, SnapshotError> {
    if bytes.len() < V1_HEADER_BYTES {
        return Err(SnapshotError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("fixed slice"));
    if version != 1 {
        return Err(SnapshotError::BadVersion(version));
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("fixed slice"));
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().expect("fixed slice"));
    let payload = &bytes[V1_HEADER_BYTES..];
    if (payload.len() as u64) < payload_len {
        return Err(SnapshotError::Truncated);
    }
    if payload.len() as u64 > payload_len {
        return Err(SnapshotError::Malformed("trailing bytes after payload"));
    }
    if xxh64(payload) != checksum {
        return Err(SnapshotError::ChecksumMismatch);
    }
    decode_payload_v1(payload)
}

fn decode_payload_v1(bytes: &[u8]) -> Result<StoreSnapshot, SnapshotError> {
    let mut c = Cursor { bytes, pos: 0 };
    // Dictionary.
    let n_terms = c.u32()? as usize;
    let mut terms = Vec::with_capacity(n_terms.min(c.remaining()));
    for _ in 0..n_terms {
        let kind = c.u8()?;
        let text = c.string()?;
        terms.push(match kind {
            0 => Term::Iri(text),
            1 => Term::Literal(text),
            _ => return Err(SnapshotError::Malformed("unknown term kind")),
        });
    }
    // Tables.
    let n_tables = c.u32()? as usize;
    let mut tables = Vec::with_capacity(n_tables.min(c.remaining()));
    let mut seen_preds = HashSet::new();
    for _ in 0..n_tables {
        let pred = c.u32()?;
        // Duplicate tables would make `by_pred` (last wins) disagree with
        // whole-store iteration (sees both): reject the inconsistency at
        // the door.
        if !seen_preds.insert(pred) {
            return Err(SnapshotError::Malformed("duplicate predicate table"));
        }
        let name = c.string()?;
        let n_pairs = c.u32()? as usize;
        let so = c.pairs(n_pairs)?;
        let os = c.pairs(n_pairs)?;
        if pred as usize >= terms.len() {
            return Err(SnapshotError::Malformed("table predicate outside dictionary"));
        }
        for pairs in [&so, &os] {
            let sorted = pairs.windows(2).all(|w| w[0] < w[1]);
            let bounded = pairs.last().is_none_or(|&(a, _)| (a as usize) < terms.len())
                && pairs.iter().all(|&(_, b)| (b as usize) < terms.len());
            if !sorted || !bounded {
                return Err(SnapshotError::Malformed("table pairs not sorted or out of range"));
            }
        }
        if !os.iter().all(|&(o, s)| so.binary_search(&(s, o)).is_ok()) {
            return Err(SnapshotError::Malformed("table orders are not transposes"));
        }
        tables.push(PairTable::from_sorted_parts(name, pred, so, os));
    }
    let store = TripleStore::from_snapshot_parts(terms, tables);
    // Frozen tries.
    let n_tries = c.u32()? as usize;
    let mut tries = Vec::with_capacity(n_tries.min(c.remaining()));
    let mut seen_orders = HashSet::new();
    for _ in 0..n_tries {
        let pred = c.u32()?;
        let subject_first = match c.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Malformed("bad trie order flag")),
        };
        if !seen_orders.insert((pred, subject_first)) {
            return Err(SnapshotError::Malformed("duplicate frozen trie entry"));
        }
        let arity = c.u32()?;
        let num_tuples = c.u32()?;
        let n_levels = c.u32()? as usize;
        let mut levels = Vec::with_capacity(n_levels.min(c.remaining()));
        for _ in 0..n_levels {
            let off = c.u32()?;
            let count = c.u32()?;
            levels.push((off, count));
        }
        let arena_len = c.u32()? as usize;
        let arena = c.words(arena_len)?;
        let trie = FrozenTrie::from_raw_parts(arity, num_tuples, levels, arena)
            .map_err(SnapshotError::Malformed)?;
        let Some(table) = store.table(pred) else {
            return Err(SnapshotError::Malformed("frozen trie for an absent table"));
        };
        let pairs = if subject_first { table.so_pairs() } else { table.os_pairs() };
        if !trie.matches_pairs(pairs) {
            return Err(SnapshotError::Malformed("frozen trie does not match its table"));
        }
        tries.push(FrozenTrieEntry { pred, subject_first, shard: 0, trie: Arc::new(trie) });
    }
    if c.remaining() != 0 {
        return Err(SnapshotError::Malformed("unconsumed payload bytes"));
    }
    Ok(StoreSnapshot { store, tries })
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked payload reader: every accessor returns `Err` rather
/// than panicking past the end, and length-prefixed reads validate the
/// length against the remaining bytes *before* allocating.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("fixed slice")))
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?.to_vec();
        String::from_utf8(bytes).map_err(|_| SnapshotError::Malformed("invalid utf-8 text"))
    }

    fn pairs(&mut self, n: usize) -> Result<Vec<(u32, u32)>, SnapshotError> {
        let bytes = self.take(n.checked_mul(8).ok_or(SnapshotError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                (
                    u32::from_le_bytes(c[0..4].try_into().expect("fixed slice")),
                    u32::from_le_bytes(c[4..8].try_into().expect("fixed slice")),
                )
            })
            .collect())
    }

    fn words(&mut self, n: usize) -> Result<Vec<u32>, SnapshotError> {
        let bytes = self.take(n.checked_mul(4).ok_or(SnapshotError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("fixed slice")))
            .collect())
    }
}

// ------------------------------------------------------------------ xxh64

const XXP1: u64 = 0x9E37_79B1_85EB_CA87;
const XXP2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const XXP3: u64 = 0x1656_67B1_9E37_79F9;
const XXP4: u64 = 0x85EB_CA77_C2B2_AE63;
const XXP5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn xx_round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(XXP2)).rotate_left(31).wrapping_mul(XXP1)
}

#[inline]
fn xx_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("fixed slice"))
}

/// XXH64 (seed 0), implemented here because the workspace vendors no
/// external crates. Chosen over CRC-32 deliberately: the checksum runs
/// over the whole payload on the cold-start critical path, and the four
/// independent multiply lanes stream several bytes per cycle where a
/// table-driven CRC plods one — with 64 bits of equally good corruption
/// detection. (This checksum guards against *corruption*; it is not a
/// cryptographic integrity mechanism.)
fn xxh64(bytes: &[u8]) -> u64 {
    let len = bytes.len() as u64;
    let mut h: u64;
    let mut tail = bytes;
    if bytes.len() >= 32 {
        let stripes = bytes.chunks_exact(32);
        tail = stripes.remainder();
        let mut v1 = XXP1.wrapping_add(XXP2);
        let mut v2 = XXP2;
        let mut v3 = 0u64;
        let mut v4 = 0u64.wrapping_sub(XXP1);
        for s in stripes {
            v1 = xx_round(v1, xx_u64(&s[0..8]));
            v2 = xx_round(v2, xx_u64(&s[8..16]));
            v3 = xx_round(v3, xx_u64(&s[16..24]));
            v4 = xx_round(v4, xx_u64(&s[24..32]));
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        for v in [v1, v2, v3, v4] {
            h = (h ^ xx_round(0, v)).wrapping_mul(XXP1).wrapping_add(XXP4);
        }
    } else {
        h = XXP5;
    }
    h = h.wrapping_add(len);
    while tail.len() >= 8 {
        h = (h ^ xx_round(0, xx_u64(tail))).rotate_left(27).wrapping_mul(XXP1).wrapping_add(XXP4);
        tail = &tail[8..];
    }
    if tail.len() >= 4 {
        let k = u32::from_le_bytes(tail[..4].try_into().expect("fixed slice")) as u64;
        h = (h ^ k.wrapping_mul(XXP1)).rotate_left(23).wrapping_mul(XXP2).wrapping_add(XXP3);
        tail = &tail[4..];
    }
    for &b in tail {
        h = (h ^ (b as u64).wrapping_mul(XXP5)).rotate_left(11).wrapping_mul(XXP1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(XXP2);
    h ^= h >> 29;
    h = h.wrapping_mul(XXP3);
    h ^= h >> 32;
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Triple;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn sample_store() -> TripleStore {
        TripleStore::from_triples(vec![
            t("s1", "p", "o1"),
            t("s1", "p", "o2"),
            t("s2", "p", "o1"),
            t("s1", "q", "o2"),
            Triple::new(Term::iri("s2"), Term::iri("q"), Term::literal("lit \"x\"\n")),
        ])
    }

    fn wide_triples() -> Vec<Triple> {
        // Enough distinct subjects that every shard of a P=4 store is
        // non-empty.
        let mut v = Vec::new();
        for i in 0..32u32 {
            v.push(t(&format!("s{i}"), "p", &format!("o{}", i % 5)));
            v.push(t(&format!("s{i}"), "q", "hub"));
        }
        v
    }

    fn snapshot_bytes(store: &TripleStore) -> Vec<u8> {
        let tries = StoreSnapshot::hot_tries(store);
        let mut buf = Vec::new();
        StoreSnapshot::write(store, &tries, &mut buf).unwrap();
        buf
    }

    #[test]
    fn xxh64_reference_vectors() {
        // Canonical XXH64 (seed 0) vectors, cross-checked against the
        // reference implementation.
        assert_eq!(xxh64(b""), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a"), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc"), 0x44BC_2CF5_AD77_0999);
        assert_eq!(xxh64(b"The quick brown fox jumps over the lazy dog"), 0x0B24_2D36_1FDA_71BC);
    }

    #[test]
    fn roundtrip_is_lossless() {
        let store = sample_store();
        let bytes = snapshot_bytes(&store);
        let snap = StoreSnapshot::read(&bytes[..]).unwrap();
        // Dictionary: identical keys and terms.
        assert_eq!(snap.store.dict().len(), store.dict().len());
        for (k, term) in store.dict().iter() {
            assert_eq!(snap.store.dict().decode(k), term);
        }
        // Tables: identical contents in both orders.
        assert_eq!(snap.store.tables().len(), store.tables().len());
        for (a, b) in store.tables().iter().zip(snap.store.tables()) {
            assert_eq!((a.pred(), a.name()), (b.pred(), b.name()));
            assert_eq!(a.so_pairs(), b.so_pairs());
            assert_eq!(a.os_pairs(), b.os_pairs());
            assert_eq!(a.distinct_subjects(), b.distinct_subjects());
            assert_eq!(a.distinct_objects(), b.distinct_objects());
        }
        assert_eq!(
            store.encoded_triples().collect::<Vec<_>>(),
            snap.store.encoded_triples().collect::<Vec<_>>()
        );
        // Frozen tries: one per (non-empty predicate, order), identical
        // to a fresh build from the loaded table.
        assert_eq!(snap.tries.len(), 2 * store.tables().len());
        for e in &snap.tries {
            assert_eq!(e.shard, 0);
            let table = snap.store.table(e.pred).unwrap();
            let pairs = if e.subject_first { table.so_pairs() } else { table.os_pairs() };
            let fresh = FrozenTrie::from_sorted(
                eh_trie::TupleBuffer::from_pairs(pairs),
                eh_trie::LayoutPolicy::Auto,
            );
            assert_eq!(*e.trie, fresh);
        }
    }

    #[test]
    fn partitioned_roundtrip_preserves_shards() {
        let store = TripleStore::from_triples_partitioned(wide_triples(), 4);
        let bytes = snapshot_bytes(&store);
        for threads in [1, 4] {
            let snap = StoreSnapshot::read_with_threads(&bytes[..], threads).unwrap();
            assert_eq!(snap.store.partitions(), 4);
            assert_eq!(
                snap.store.encoded_triples().collect::<Vec<_>>(),
                store.encoded_triples().collect::<Vec<_>>(),
                "threads={threads}"
            );
            assert!(snap.store.__invariant_check());
            // Every shipped trie round-trips into the shard it came from.
            for shard in 0..4 {
                for table in store.shard_tables(shard) {
                    if table.is_empty() {
                        continue;
                    }
                    for subject_first in [true, false] {
                        let e = snap
                            .tries
                            .iter()
                            .find(|e| {
                                e.shard as usize == shard
                                    && e.pred == table.pred()
                                    && e.subject_first == subject_first
                            })
                            .expect("trie present for shard order");
                        let pairs = if subject_first { table.so_pairs() } else { table.os_pairs() };
                        assert!(e.trie.matches_pairs(pairs));
                    }
                }
            }
        }
    }

    #[test]
    fn v1_snapshots_still_load_as_single_shard() {
        let store = sample_store();
        let tries = StoreSnapshot::hot_tries(&store);
        let mut buf = Vec::new();
        StoreSnapshot::write_v1(&store, &tries, &mut buf).unwrap();
        assert_eq!(&buf[0..8], &SNAPSHOT_MAGIC_V1);
        let snap = StoreSnapshot::read(&buf[..]).unwrap();
        assert_eq!(snap.store.partitions(), 1);
        assert_eq!(
            snap.store.encoded_triples().collect::<Vec<_>>(),
            store.encoded_triples().collect::<Vec<_>>()
        );
        assert_eq!(snap.tries.len(), tries.len());
        assert!(snap.tries.iter().all(|e| e.shard == 0));
        // The v1 corruption surface stays guarded: version, truncation,
        // checksum.
        let mut bad = buf.clone();
        bad[8] = 9;
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::BadVersion(9))));
        for cut in [7, 20, 27, buf.len() / 2, buf.len() - 1] {
            assert!(
                matches!(StoreSnapshot::read(&buf[..cut]), Err(SnapshotError::Truncated)),
                "cut at {cut}"
            );
        }
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::ChecksumMismatch)));
    }

    #[test]
    fn loaded_store_stays_mutable() {
        let store = sample_store();
        let bytes = snapshot_bytes(&store);
        let mut loaded = StoreSnapshot::read(&bytes[..]).unwrap().store;
        let report = loaded.add_triples(vec![t("s9", "p", "o9"), t("s9", "r", "o9")]);
        assert_eq!(report.added, 2);
        assert_eq!(loaded.num_triples(), store.num_triples() + 2);
        let report = loaded.remove_triples(vec![t("s1", "p", "o1")]);
        assert_eq!(report.removed, 1);
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = TripleStore::new();
        let mut buf = Vec::new();
        StoreSnapshot::write(&store, &[], &mut buf).unwrap();
        let snap = StoreSnapshot::read(&buf[..]).unwrap();
        assert_eq!(snap.store.dict().len(), 0);
        assert!(snap.tries.is_empty());
    }

    #[test]
    fn bad_magic_version_truncation_and_checksum() {
        let store = sample_store();
        let good = snapshot_bytes(&store);

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::BadMagic)));

        let mut bad = good.clone();
        bad[8] = 99;
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::BadVersion(99))));

        for cut in [0, 7, 12, 19, 24, good.len() / 2, good.len() - 1] {
            assert!(
                matches!(StoreSnapshot::read(&good[..cut]), Err(SnapshotError::Truncated)),
                "cut at {cut}"
            );
        }

        // Flipping a byte inside any section must trip that section's
        // checksum.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::ChecksumMismatch)));

        let mut extended = good.clone();
        extended.push(0);
        assert!(StoreSnapshot::read(&extended[..]).is_err());
    }

    #[test]
    fn corrupt_section_headers_are_typed_errors() {
        let store = TripleStore::from_triples_partitioned(wide_triples(), 2);
        let good = snapshot_bytes(&store);

        // Partition count of 0 and an implausibly huge one.
        for forged in [0u32, u32::MAX] {
            let mut bad = good.clone();
            bad[12..16].copy_from_slice(&forged.to_le_bytes());
            assert!(
                matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::Malformed(_))),
                "partitions={forged}"
            );
        }
        // Section count disagreeing with the partition count.
        let mut bad = good.clone();
        bad[16..20].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::Malformed(_))));

        // A directory length pointing past the file.
        let mut bad = good.clone();
        bad[20..28].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::Truncated)));

        // A directory checksum that no longer matches its section.
        let mut bad = good.clone();
        bad[28] ^= 0xFF;
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::ChecksumMismatch)));
    }

    #[test]
    fn swapped_shard_sections_are_rejected() {
        // Swap the two shard payloads of a P=2 snapshot and re-seal their
        // checksums: every per-section check still passes, but subjects
        // now sit in shards their hash does not name — the cross-section
        // affinity check must catch it (a shard-local join would
        // otherwise silently miss them).
        let store = TripleStore::from_triples_partitioned(wide_triples(), 2);
        let mut sections = encode_sections(&store, &[]);
        assert!(sections[1] != sections[2], "both shards populated");
        sections.swap(1, 2);
        let mut forged = Vec::new();
        forged.extend_from_slice(&SNAPSHOT_MAGIC);
        forged.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        forged.extend_from_slice(&2u32.to_le_bytes());
        forged.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        for s in &sections {
            forged.extend_from_slice(&(s.len() as u64).to_le_bytes());
            forged.extend_from_slice(&xxh64(s).to_le_bytes());
        }
        for s in &sections {
            forged.extend_from_slice(s);
        }
        assert!(
            matches!(
                StoreSnapshot::read(&forged[..]),
                Err(SnapshotError::Malformed(m)) if m.contains("shard")
            ),
            "mis-sharded subjects must be rejected"
        );
    }

    #[test]
    fn single_byte_mutations_never_panic() {
        // The corruption property, exhaustively for small snapshots in
        // both formats and at P ∈ {1, 2}: every single-byte mutation
        // either still reads (a single flip never collides the checksum,
        // but stay permissive) or returns a typed error — it must never
        // panic. The workspace-level proptest widens this to random
        // multi-byte mutations over random stores.
        let store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        let mut cases = vec![snapshot_bytes(&store)];
        let mut v1 = Vec::new();
        StoreSnapshot::write_v1(&store, &StoreSnapshot::hot_tries(&store), &mut v1).unwrap();
        cases.push(v1);
        cases.push(snapshot_bytes(&TripleStore::from_triples_partitioned(
            vec![t("a", "p", "b"), t("c", "p", "d"), t("e", "p", "f")],
            2,
        )));
        for good in cases {
            for i in 0..good.len() {
                for flip in [0x01u8, 0x80, 0xFF] {
                    let mut bad = good.clone();
                    bad[i] ^= flip;
                    let _ = StoreSnapshot::read(&bad[..]);
                }
            }
        }
    }

    #[test]
    fn checksum_valid_out_of_dictionary_ids_are_rejected() {
        // A snapshot can be internally consistent (good magic, version,
        // checksum) and still carry ids the dictionary cannot decode; reading
        // one must be a typed error, never a later decode panic.
        let bogus_table = TripleStore::from_snapshot_parts(
            vec![Term::iri("p")],
            vec![PairTable::from_sorted_parts("p".into(), 0, vec![(5, 6)], vec![(6, 5)])],
        );
        let mut buf = Vec::new();
        StoreSnapshot::write(&bogus_table, &[], &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("pair")),
            "out-of-dictionary pair must be rejected"
        );

        // Same for a shipped frozen trie: right predicate, right tuple
        // count, but values outside the dictionary.
        let store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        let pred = store.resolve_iri("p").unwrap();
        let rogue = FrozenTrie::from_sorted(
            eh_trie::TupleBuffer::from_pairs(&[(7, 8)]),
            eh_trie::LayoutPolicy::Auto,
        );
        let entry = FrozenTrieEntry {
            pred,
            subject_first: true,
            shard: 0,
            trie: std::sync::Arc::new(rogue),
        };
        let mut buf = Vec::new();
        StoreSnapshot::write(&store, &[entry], &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("trie")),
            "out-of-dictionary trie value must be rejected"
        );
    }

    #[test]
    fn mislabeled_and_duplicate_entries_are_rejected() {
        // A trie whose order flag lies — the [o, s] trie labeled as
        // subject-major — passes any count/id-range check (same length,
        // same id universe) but would silently transpose every answer
        // over its predicate; only exact content comparison catches it.
        let store = TripleStore::from_triples(vec![t("a", "p", "b"), t("c", "p", "a")]);
        let table = store.table_by_name("p").unwrap();
        let transposed = FrozenTrie::from_sorted(
            eh_trie::TupleBuffer::from_pairs(table.os_pairs()),
            eh_trie::LayoutPolicy::Auto,
        );
        let entry = FrozenTrieEntry {
            pred: table.pred(),
            subject_first: true, // lie: this is the [o, s] trie
            shard: 0,
            trie: std::sync::Arc::new(transposed),
        };
        let mut buf = Vec::new();
        StoreSnapshot::write(&store, &[entry], &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("match")),
            "a transposed trie must not load"
        );

        // Duplicate (pred, order) trie entries are inconsistent by
        // construction (which one would the catalog serve?).
        let tries = StoreSnapshot::hot_tries(&store);
        let doubled: Vec<FrozenTrieEntry> = tries.iter().chain(tries.iter()).cloned().collect();
        let mut buf = Vec::new();
        StoreSnapshot::write(&store, &doubled, &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("duplicate")),
            "duplicate trie entries must not load"
        );

        // A table whose two orders are each valid but describe different
        // relations would answer the same query differently depending on
        // the access order the planner picks.
        let skewed = TripleStore::from_snapshot_parts(
            vec![Term::iri("a"), Term::iri("p"), Term::iri("b")],
            vec![PairTable::from_sorted_parts("p".into(), 1, vec![(0, 2)], vec![(1, 0)])],
        );
        let mut buf = Vec::new();
        StoreSnapshot::write(&skewed, &[], &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("transpose")),
            "non-transposed orders must not load"
        );

        // Duplicate predicate tables: `by_pred` would answer from one
        // while whole-store iteration sees both.
        let twin = TripleStore::from_snapshot_parts(
            vec![Term::iri("a"), Term::iri("p"), Term::iri("b")],
            vec![
                PairTable::from_sorted_parts("p".into(), 1, vec![(0, 2)], vec![(2, 0)]),
                PairTable::from_sorted_parts("p".into(), 1, vec![(2, 0)], vec![(0, 2)]),
            ],
        );
        let mut buf = Vec::new();
        StoreSnapshot::write(&twin, &[], &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("duplicate")),
            "duplicate tables must not load"
        );
    }

    mod corruption_proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The corruption-hardening property (randomised): arbitrary
            /// multi-byte mutations of a small valid snapshot either read
            /// back (only possible when the flips are all no-ops) or
            /// return a typed error — truncation, bad magic/version,
            /// checksum mismatch, or malformed structure — never a panic.
            #[test]
            fn random_mutations_return_err_not_panic(
                partitions in 1usize..=4,
                flips in proptest::collection::vec((0usize..2048, 1u8..=255), 1..16),
                cut in 0usize..4096,
            ) {
                let store = TripleStore::from_triples_partitioned(vec![
                    t("a", "p", "b"),
                    t("a", "p", "c"),
                    t("b", "q", "c"),
                ], partitions);
                let good = snapshot_bytes(&store);
                let mut bad = good.clone();
                for &(pos, mask) in &flips {
                    let pos = pos % bad.len();
                    bad[pos] ^= mask;
                }
                if cut < bad.len() * 2 {
                    // Half the cut range truncates, half leaves the file
                    // whole, so both shapes are exercised.
                    bad.truncate(cut.min(bad.len()));
                }
                match StoreSnapshot::read(&bad[..]) {
                    Ok(snap) => {
                        // Only reachable when every flip cancelled out.
                        prop_assert_eq!(bad, good);
                        prop_assert_eq!(snap.store.num_triples(), store.num_triples());
                    }
                    Err(e) => {
                        // The error renders; corruption is diagnosable.
                        prop_assert!(!e.to_string().is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn write_reports_total_bytes() {
        let store = sample_store();
        let mut buf = Vec::new();
        let n = StoreSnapshot::write(&store, &[], &mut buf).unwrap();
        assert_eq!(n, buf.len() as u64);
        assert!(n > 24);
    }

    #[test]
    fn path_roundtrip() {
        let store = sample_store();
        let path = std::env::temp_dir().join(format!("eh-snap-test-{}.snap", std::process::id()));
        let tries = StoreSnapshot::hot_tries(&store);
        StoreSnapshot::write_to_path(&store, &tries, &path).unwrap();
        let snap = StoreSnapshot::read_from_path(&path).unwrap();
        assert_eq!(snap.store.num_triples(), store.num_triples());
        std::fs::remove_file(&path).ok();
        assert!(matches!(StoreSnapshot::read_from_path(&path), Err(SnapshotError::Io(_))));
    }
}
