//! Versioned, checksummed store snapshots: the cold-start path.
//!
//! A production server cannot re-parse N-Triples and re-sort every
//! predicate table on restart. A snapshot persists the whole read-path
//! state — dictionary, both sort orders of every [`PairTable`], and
//! (optionally) pre-built [`FrozenTrie`] arenas for the hot trie orders —
//! so a reload is bulk `memcpy`-shaped at worst and *zero-copy* at best:
//! a version-3 file can be `mmap`ed ([`StoreSnapshot::read_from_path_mmap`])
//! and its trie arenas served straight off the page cache, no arena byte
//! ever copied into the process.
//!
//! ## File format (version 3, little-endian)
//!
//! ```text
//! [0..8)   magic  b"EHSNAP03"
//! [8..12)  format version (u32) = 3
//! [12..16) partition count P (u32, >= 1)
//! [16..20) section count (u32) = P + 1
//! [20..)   directory: per section (length u64, XXH64 checksum u64)
//! then the sections, each starting on a 4-byte file offset (the gap
//! bytes before a section are zero and validated at load; no padding
//! after the last section)
//! ```
//!
//! Section 0 is store-wide state: the dictionary (term count, then each
//! term as `(kind u8, len u32, utf-8 bytes)` in key order) and the
//! predicate registry (`count`, then `(pred, name, cross-shard
//! distinct-object count)` per table — the registration order every shard
//! shares; the persisted count spares the load path the k-way merge that
//! derived it, and is bounds-checked against the decoded shards).
//! Sections `1..=P` each hold one
//! shard: per registry entry `(pair count, so pairs, os pairs)`, then that
//! shard's frozen tries (`count`, then `(pred, subject_first, arity,
//! num_tuples, level directory, arena_len, pad u8 + that many zero bytes,
//! arena words)` per trie). The pad byte exists for exactly one reason:
//! with the section 4-aligned in the file, it lands every arena's first
//! word on a 4-byte file offset, so a mapped load can reinterpret the
//! page-cache bytes as `&[u32]` in place.
//!
//! Per-shard sections carry **independent checksums** so a partitioned
//! load verifies and decodes shards in parallel
//! ([`StoreSnapshot::read_with_threads`]) — the cold-start path scales
//! with cores instead of serialising one whole-file checksum pass.
//! Checksum verification stays eager on the mapped path too (it is cheap,
//! sequential, and reads the bytes `madvise` is about to want anyway);
//! only the arena *copy* is skipped.
//!
//! ## Compatibility policy
//!
//! Version-2 sectioned snapshots (`EHSNAP02`: same layout, unaligned,
//! no per-trie pad) and version-1 single-arena snapshots (`EHSNAP01`:
//! one global checksum, one table section, loaded as `P = 1`) still
//! load — via the copy path only. The write path always emits version 3.
//! A mapped load of a v1/v2 (or deliberately misaligned v3) file falls
//! back to the copy path with the reason recorded in
//! [`LoadInfo::fallback`]; it never fails outright for alignment
//! reasons. Unknown magic/versions (and anything truncated, mis-sized,
//! or failing a checksum) are rejected with a typed [`SnapshotError`] —
//! never a panic. Snapshots are an *optimisation*, not the system of
//! record: on any read error, rebuild from the source N-Triples.

use std::collections::HashSet;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use eh_trie::{ArenaBytes, FrozenTrie};

use crate::mmap::MappedRegion;
use crate::partition::Partitioner;
use crate::store::TripleStore;
use crate::term::Term;
use crate::vp::PairTable;

/// The 8-byte magic that opens every snapshot this build writes.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"EHSNAP03";
/// The magic of read-compatible version-2 (sectioned, unaligned)
/// snapshots.
pub const SNAPSHOT_MAGIC_V2: [u8; 8] = *b"EHSNAP02";
/// The magic of read-compatible version-1 (single-arena) snapshots.
pub const SNAPSHOT_MAGIC_V1: [u8; 8] = *b"EHSNAP01";
/// The format version this build writes.
pub const SNAPSHOT_VERSION: u32 = 3;
/// The version field of read-compatible v2 snapshots.
const SNAPSHOT_VERSION_V2: u32 = 2;
/// Fixed v2/v3 header size before the section directory. 20 bytes and
/// 16-byte directory entries together put the first section on a 4-byte
/// offset with no padding, for any partition count.
const V2_HEADER_BYTES: usize = 20;
/// Per-section directory entry: length + checksum.
const DIR_ENTRY_BYTES: usize = 16;
/// Fixed v1 header size: magic + version + payload length + checksum.
const V1_HEADER_BYTES: usize = 28;
/// Upper bound on the partition count a snapshot may declare — far above
/// any real deployment, low enough that a corrupt header cannot provoke
/// a giant allocation before checksums are consulted.
const MAX_PARTITIONS: u32 = 1 << 16;
/// The `Malformed` message a mapped v3 decode surfaces when a trie arena
/// does not sit on a 4-byte boundary of the mapping. It is the one
/// structural complaint that is *not* corruption — the file is valid,
/// just not mappable — so [`StoreSnapshot::read_from_path_mmap`] matches
/// this exact message to fall back to the copy path instead of failing
/// the load. No other `Malformed` message may reuse it.
const UNALIGNED_ARENA: &str = "trie arena not 4-byte aligned for mapping";
/// Upper bound on the per-trie arena pad (`0..=3` is what the writer
/// emits; anything `>= 8` is implausible enough to call corrupt before
/// skipping bytes). Deliberately looser than the writer so that a
/// misaligned-but-valid v3 file is *constructible* — the fallback path
/// needs something to fall back from.
const MAX_TRIE_PAD: u8 = 8;

/// Why a snapshot could not be written or read.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file starts with neither [`SNAPSHOT_MAGIC`] nor
    /// [`SNAPSHOT_MAGIC_V1`].
    BadMagic,
    /// The file's format version does not match its magic.
    BadVersion(u32),
    /// The file ends before the declared payload does.
    Truncated,
    /// A payload checksum (XXH64) does not match its directory entry.
    ChecksumMismatch,
    /// The payload decoded but its structure is inconsistent.
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads {SNAPSHOT_VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot payload checksum mismatch"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// A pre-built frozen trie shipped inside a snapshot: one (predicate,
/// order) within one shard that the serving engine treats as hot.
#[derive(Debug, Clone)]
pub struct FrozenTrieEntry {
    /// Dictionary key of the predicate this trie indexes.
    pub pred: u32,
    /// `true` for the subject-major `[s, o]` order, `false` for `[o, s]`.
    pub subject_first: bool,
    /// The shard whose slice of the predicate this trie covers (always 0
    /// on a `P = 1` store and in loaded v1 snapshots).
    pub shard: u32,
    /// The arena-backed trie, ready to serve.
    pub trie: Arc<FrozenTrie>,
}

/// How a snapshot's trie arenas entered the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Arenas were decoded into freshly allocated memory.
    Copy,
    /// Arenas are windows of a shared `mmap` of the snapshot file — the
    /// page cache is the buffer pool, and other processes mapping the
    /// same file share the physical pages.
    Mmap,
}

impl fmt::Display for LoadMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LoadMode::Copy => "copy",
            LoadMode::Mmap => "mmap",
        })
    }
}

/// How a load was actually served, for observability: a caller that
/// *asked* for mmap needs to see whether it got it, and if not, why.
#[derive(Debug, Clone, Copy)]
pub struct LoadInfo {
    /// The mode the arenas are served in.
    pub mode: LoadMode,
    /// Bytes of the snapshot file held mapped (0 on a copy load).
    pub mapped_bytes: u64,
    /// When a requested mmap load fell back to copy: the reason (file
    /// version predates alignment, platform has no mmap, an arena was
    /// misaligned, the map itself failed). `None` on a plain copy load
    /// or a successful mapped one.
    pub fallback: Option<&'static str>,
}

impl LoadInfo {
    /// The plain copy-path load every non-mmap entry point reports.
    fn copied() -> LoadInfo {
        LoadInfo { mode: LoadMode::Copy, mapped_bytes: 0, fallback: None }
    }
}

/// A loaded snapshot: the reassembled store plus any frozen tries it
/// carried (see [`StoreSnapshot::read`]).
#[derive(Debug)]
pub struct StoreSnapshot {
    /// The store, committed and fully queryable (and mutable — updates
    /// after a snapshot load work exactly as on a cold-built store).
    pub store: TripleStore,
    /// Pre-built tries for the hot orders, for an index catalog to
    /// preload.
    pub tries: Vec<FrozenTrieEntry>,
    /// How this load was served (copy vs mmap, and why if it fell back).
    pub load: LoadInfo,
}

impl StoreSnapshot {
    /// The standard hot orders: an auto-layout [`FrozenTrie`] for both
    /// `[s, o]` and `[o, s]` of every non-empty (shard, predicate) —
    /// exactly the set of tries a warmed query engine holds for a
    /// binary-atom workload.
    pub fn hot_tries(store: &TripleStore) -> Vec<FrozenTrieEntry> {
        let mut out = Vec::new();
        for shard in 0..store.partitions() {
            for table in store.shard_tables(shard) {
                if table.is_empty() {
                    continue;
                }
                for subject_first in [true, false] {
                    let pairs = if subject_first { table.so_pairs() } else { table.os_pairs() };
                    let trie = FrozenTrie::from_sorted(
                        eh_trie::TupleBuffer::from_pairs(pairs),
                        eh_trie::LayoutPolicy::Auto,
                    );
                    out.push(FrozenTrieEntry {
                        pred: table.pred(),
                        subject_first,
                        shard: shard as u32,
                        trie: Arc::new(trie),
                    });
                }
            }
        }
        out
    }

    /// Serialize `store` (plus optional pre-built tries) to `w` in the
    /// current (v3, per-shard-sectioned, mmap-aligned) format. Returns
    /// the total bytes written.
    pub fn write(
        store: &TripleStore,
        tries: &[FrozenTrieEntry],
        w: impl Write,
    ) -> Result<u64, SnapshotError> {
        let sections = encode_sections_v3(store, tries, 0);
        write_v3_parts(store.partitions() as u32, &sections, w)
    }

    /// Serialize in the legacy v2 sectioned format (same section layout,
    /// no alignment guarantees, no per-trie pad). Kept for read-compat
    /// tests and for demonstrating the copy-path fallback.
    pub fn write_v2(
        store: &TripleStore,
        tries: &[FrozenTrieEntry],
        mut w: impl Write,
    ) -> Result<u64, SnapshotError> {
        let partitions = store.partitions() as u32;
        let sections = encode_sections(store, tries);
        w.write_all(&SNAPSHOT_MAGIC_V2)?;
        w.write_all(&SNAPSHOT_VERSION_V2.to_le_bytes())?;
        w.write_all(&partitions.to_le_bytes())?;
        w.write_all(&(sections.len() as u32).to_le_bytes())?;
        let mut total = (V2_HEADER_BYTES + DIR_ENTRY_BYTES * sections.len()) as u64;
        for s in &sections {
            w.write_all(&(s.len() as u64).to_le_bytes())?;
            w.write_all(&xxh64(s).to_le_bytes())?;
            total += s.len() as u64;
        }
        for s in &sections {
            w.write_all(s)?;
        }
        w.flush()?;
        Ok(total)
    }

    /// Serialize in the legacy v1 single-arena format (one global
    /// checksum, no shard sections). Only a `P = 1` store can be encoded
    /// this way; kept for read-compat tests and for benchmarking the
    /// sectioned format against the monolithic one.
    pub fn write_v1(
        store: &TripleStore,
        tries: &[FrozenTrieEntry],
        mut w: impl Write,
    ) -> Result<u64, SnapshotError> {
        assert_eq!(store.partitions(), 1, "v1 snapshots are single-arena (P = 1)");
        let payload = encode_payload_v1(store, tries);
        let checksum = xxh64(&payload);
        w.write_all(&SNAPSHOT_MAGIC_V1)?;
        w.write_all(&1u32.to_le_bytes())?;
        w.write_all(&(payload.len() as u64).to_le_bytes())?;
        w.write_all(&checksum.to_le_bytes())?;
        w.write_all(&payload)?;
        w.flush()?;
        Ok(V1_HEADER_BYTES as u64 + payload.len() as u64)
    }

    /// Serialize to a file path (buffered), atomically: the bytes go to
    /// a temp sibling which is `rename`d over `path` only once complete.
    /// This is load-bearing for mmap serving, not mere crash hygiene —
    /// another process (or this one) may hold `path` mapped, and an
    /// in-place rewrite would mutate the pages under its live tries.
    /// A rename leaves the old inode (and every mapping of it) intact;
    /// the old bytes are reclaimed when the last mapping drops.
    pub fn write_to_path(
        store: &TripleStore,
        tries: &[FrozenTrieEntry],
        path: impl AsRef<Path>,
    ) -> Result<u64, SnapshotError> {
        let path = path.as_ref();
        let tmp = match (path.parent(), path.file_name()) {
            (Some(dir), Some(name)) => {
                let mut t = name.to_os_string();
                t.push(format!(".tmp.{}", std::process::id()));
                dir.join(t)
            }
            _ => {
                return Err(SnapshotError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "snapshot path has no file name",
                )))
            }
        };
        let result = StoreSnapshot::write(store, tries, BufWriter::new(File::create(&tmp)?))
            .and_then(|n| {
                std::fs::rename(&tmp, path)?;
                Ok(n)
            });
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result
    }

    /// Read and verify a snapshot (either format), sequentially. All
    /// failure modes are `Err`, never panics — corrupt input must not
    /// take a serving process down.
    pub fn read(r: impl Read) -> Result<StoreSnapshot, SnapshotError> {
        StoreSnapshot::read_with_threads(r, 1)
    }

    /// Read and verify a snapshot, checksumming and decoding per-shard
    /// sections on up to `threads` workers (v2 files; v1 files have a
    /// single section and load sequentially regardless). Verification is
    /// not weakened by parallelism: every section's checksum and every
    /// structural invariant is still checked.
    pub fn read_with_threads(
        mut r: impl Read,
        threads: usize,
    ) -> Result<StoreSnapshot, SnapshotError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        if bytes.len() < 8 {
            return Err(
                if bytes.is_empty()
                    || SNAPSHOT_MAGIC.starts_with(&bytes)
                    || SNAPSHOT_MAGIC_V2.starts_with(&bytes)
                    || SNAPSHOT_MAGIC_V1.starts_with(&bytes)
                {
                    SnapshotError::Truncated
                } else {
                    SnapshotError::BadMagic
                },
            );
        }
        match &bytes[0..8] {
            m if *m == SNAPSHOT_MAGIC => read_v3(&bytes, threads, None),
            m if *m == SNAPSHOT_MAGIC_V2 => read_v2(&bytes, threads),
            m if *m == SNAPSHOT_MAGIC_V1 => read_v1(&bytes),
            _ => Err(SnapshotError::BadMagic),
        }
    }

    /// Read from a file path. The whole file is slurped in one
    /// (size-hinted) read — on the cold-start critical path, funnelling
    /// a couple hundred KB through a `BufReader`'s 8 KiB window would
    /// just be an extra copy.
    pub fn read_from_path(path: impl AsRef<Path>) -> Result<StoreSnapshot, SnapshotError> {
        StoreSnapshot::read_from_path_with(path, 1)
    }

    /// Read from a file path with parallel section verification (see
    /// [`read_with_threads`](StoreSnapshot::read_with_threads)).
    pub fn read_from_path_with(
        path: impl AsRef<Path>,
        threads: usize,
    ) -> Result<StoreSnapshot, SnapshotError> {
        let bytes = std::fs::read(path)?;
        StoreSnapshot::read_with_threads(&bytes[..], threads)
    }

    /// Zero-copy load: map the file and serve trie arenas as windows of
    /// the mapping. Verification is not weakened — every section
    /// checksum and every structural invariant still runs eagerly over
    /// the mapped bytes; only the arena copy is skipped.
    ///
    /// The mapped path requires a v3 file with every arena 4-aligned and
    /// a platform with `mmap`. Anything short of that — a v1/v2 file, a
    /// deliberately misaligned v3 file, a platform without the syscall,
    /// or the map itself failing — **falls back to the copy path** with
    /// the reason recorded in [`LoadInfo::fallback`]; only genuine
    /// corruption (bad magic, checksum mismatch, malformed structure)
    /// is an error.
    pub fn read_from_path_mmap(
        path: impl AsRef<Path>,
        threads: usize,
    ) -> Result<StoreSnapshot, SnapshotError> {
        let path = path.as_ref();
        let copy_fallback = |reason: &'static str| -> Result<StoreSnapshot, SnapshotError> {
            let mut snap = StoreSnapshot::read_from_path_with(path, threads)?;
            snap.load.fallback = Some(reason);
            Ok(snap)
        };
        let region = match MappedRegion::map_file(path) {
            Ok(r) => Arc::new(r),
            Err(e) if e.kind() == std::io::ErrorKind::Unsupported => {
                return copy_fallback("mmap unsupported on this platform");
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(SnapshotError::Io(e));
            }
            Err(_) => return copy_fallback("mmap syscall failed"),
        };
        let bytes = region.bytes();
        if bytes.len() < 8 {
            // Too short even for a magic: let the copy reader produce
            // its usual Truncated/BadMagic verdict.
            return StoreSnapshot::read_with_threads(bytes, threads);
        }
        match &bytes[0..8] {
            m if *m == SNAPSHOT_MAGIC => match read_v3(bytes, threads, Some(&region)) {
                Ok(snap) => Ok(snap),
                // The one recoverable Malformed: a valid file that just
                // cannot be served in place.
                Err(SnapshotError::Malformed(m)) if m == UNALIGNED_ARENA => {
                    let mut snap = StoreSnapshot::read_with_threads(bytes, threads)?;
                    snap.load.fallback = Some(UNALIGNED_ARENA);
                    Ok(snap)
                }
                Err(e) => Err(e),
            },
            m if *m == SNAPSHOT_MAGIC_V2 => {
                let mut snap = read_v2(bytes, threads)?;
                snap.load.fallback = Some("v2 snapshot predates arena alignment");
                Ok(snap)
            }
            m if *m == SNAPSHOT_MAGIC_V1 => {
                let mut snap = read_v1(bytes)?;
                snap.load.fallback = Some("v1 snapshot predates arena alignment");
                Ok(snap)
            }
            _ => Err(SnapshotError::BadMagic),
        }
    }
}

// -------------------------------------------------------- v2/v3 payload

/// Encode sections in the v2 record format (no per-trie pad).
fn encode_sections(store: &TripleStore, tries: &[FrozenTrieEntry]) -> Vec<Vec<u8>> {
    encode_sections_inner(store, tries, None)
}

/// Encode sections in the v3 record format: each trie record carries a
/// pad byte sized so the arena words begin on a 4-byte offset *within
/// the section* (the file assembler aligns section starts, so within-
/// section alignment is file alignment). `extra_pad` deliberately
/// over-pads by that many bytes — `0` for real files; a non-multiple of
/// 4 builds a valid-but-unmappable file for fallback tests.
fn encode_sections_v3(
    store: &TripleStore,
    tries: &[FrozenTrieEntry],
    extra_pad: u8,
) -> Vec<Vec<u8>> {
    encode_sections_inner(store, tries, Some(extra_pad))
}

/// Assemble already-encoded v3 sections into a complete file image:
/// header, directory, then each section at the next 4-aligned offset
/// with zero gap bytes between. Returns the total bytes written. The
/// tests also use this directly to forge section-level corruptions.
fn write_v3_parts(
    partitions: u32,
    sections: &[Vec<u8>],
    mut w: impl Write,
) -> Result<u64, SnapshotError> {
    w.write_all(&SNAPSHOT_MAGIC)?;
    w.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
    w.write_all(&partitions.to_le_bytes())?;
    w.write_all(&(sections.len() as u32).to_le_bytes())?;
    for s in sections {
        w.write_all(&(s.len() as u64).to_le_bytes())?;
        w.write_all(&xxh64(s).to_le_bytes())?;
    }
    // The directory end is 4-aligned by construction (20-byte header,
    // 16-byte entries), so aligning within the body aligns in the file.
    let mut at = 0u64;
    for s in sections {
        let aligned = (at + 3) & !3;
        w.write_all(&[0u8; 3][..(aligned - at) as usize])?;
        w.write_all(s)?;
        at = aligned + s.len() as u64;
    }
    w.flush()?;
    Ok((V2_HEADER_BYTES + DIR_ENTRY_BYTES * sections.len()) as u64 + at)
}

fn encode_sections_inner(
    store: &TripleStore,
    tries: &[FrozenTrieEntry],
    v3_pad: Option<u8>,
) -> Vec<Vec<u8>> {
    let partitions = store.partitions();
    let mut sections = Vec::with_capacity(partitions + 1);
    // Section 0: dictionary + predicate registry.
    let mut head = Vec::new();
    let dict = store.dict();
    put_u32(&mut head, dict.len() as u32);
    for (_, term) in dict.iter() {
        let (kind, text) = match term {
            Term::Iri(s) => (0u8, s.as_str()),
            Term::Literal(s) => (1u8, s.as_str()),
        };
        head.push(kind);
        put_u32(&mut head, text.len() as u32);
        head.extend_from_slice(text.as_bytes());
    }
    let registry = store.shard_tables(0);
    put_u32(&mut head, registry.len() as u32);
    for t in registry {
        put_u32(&mut head, t.pred());
        put_u32(&mut head, t.name().len() as u32);
        head.extend_from_slice(t.name().as_bytes());
        // The cross-shard distinct-object count: derived read-path state,
        // persisted like the frozen tries so a load never replays the
        // k-way merge that computed it.
        let distinct = store.pred_card(t.name()).map_or(0, |c| c.distinct_objects());
        put_u32(&mut head, distinct as u32);
    }
    sections.push(head);
    // Sections 1..=P: one shard each — its slice of every registered
    // table (registry order; pred/name implied) plus its frozen tries.
    for shard in 0..partitions {
        let mut out = Vec::new();
        for t in store.shard_tables(shard) {
            put_u32(&mut out, t.len() as u32);
            for &(a, b) in t.so_pairs() {
                put_u32(&mut out, a);
                put_u32(&mut out, b);
            }
            for &(a, b) in t.os_pairs() {
                put_u32(&mut out, a);
                put_u32(&mut out, b);
            }
        }
        let mine: Vec<&FrozenTrieEntry> =
            tries.iter().filter(|e| e.shard as usize == shard).collect();
        put_u32(&mut out, mine.len() as u32);
        for e in mine {
            let (arity, num_tuples, levels, arena) = e.trie.raw_parts();
            put_u32(&mut out, e.pred);
            out.push(e.subject_first as u8);
            put_u32(&mut out, arity);
            put_u32(&mut out, num_tuples);
            put_u32(&mut out, levels.len() as u32);
            for &(off, count) in levels {
                put_u32(&mut out, off);
                put_u32(&mut out, count);
            }
            put_u32(&mut out, arena.len() as u32);
            if let Some(extra) = v3_pad {
                // Pad so the arena's first word lands on a 4-byte
                // within-section offset: one count byte plus that many
                // zeros. `extra` over-pads for fallback tests.
                let pad = ((4 - ((out.len() + 1) % 4)) % 4) as u8 + extra;
                out.push(pad);
                out.extend(std::iter::repeat_n(0u8, pad as usize));
            }
            for &w in arena {
                put_u32(&mut out, w);
            }
        }
        sections.push(out);
    }
    sections
}

fn read_v3(
    bytes: &[u8],
    threads: usize,
    region: Option<&Arc<MappedRegion>>,
) -> Result<StoreSnapshot, SnapshotError> {
    if bytes.len() < V2_HEADER_BYTES {
        return Err(SnapshotError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("fixed slice"));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let partitions = u32::from_le_bytes(bytes[12..16].try_into().expect("fixed slice"));
    let n_sections = u32::from_le_bytes(bytes[16..20].try_into().expect("fixed slice"));
    if partitions == 0 || partitions > MAX_PARTITIONS {
        return Err(SnapshotError::Malformed("implausible partition count"));
    }
    if n_sections != partitions + 1 {
        return Err(SnapshotError::Malformed("section count does not match partitions"));
    }
    let n_sections = n_sections as usize;
    let dir_end = V2_HEADER_BYTES + DIR_ENTRY_BYTES * n_sections;
    if bytes.len() < dir_end {
        return Err(SnapshotError::Truncated);
    }
    let mut dir = Vec::with_capacity(n_sections);
    for i in 0..n_sections {
        let at = V2_HEADER_BYTES + DIR_ENTRY_BYTES * i;
        let len = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("fixed slice"));
        let checksum = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("fixed slice"));
        dir.push((len, checksum));
    }
    // Walk the directory, placing each section at the next 4-aligned
    // body offset. Gap bytes are outside every checksum, so they are
    // validated zero here — otherwise a flipped gap byte would read
    // back clean. Checked arithmetic throughout: the lengths are
    // attacker-controlled until their checksums pass.
    let body = &bytes[dir_end..];
    let mut sections = Vec::with_capacity(n_sections);
    let mut at = 0u64;
    for &(len, checksum) in &dir {
        let aligned = at.checked_add(3).ok_or(SnapshotError::Truncated)? & !3;
        let end = aligned.checked_add(len).ok_or(SnapshotError::Truncated)?;
        if end > body.len() as u64 {
            return Err(SnapshotError::Truncated);
        }
        let (gap_at, s_at, s_end) = (at as usize, aligned as usize, end as usize);
        if body[gap_at..s_at].iter().any(|&b| b != 0) {
            return Err(SnapshotError::Malformed("nonzero section alignment padding"));
        }
        // The section's absolute file offset, for mapped-arena windows.
        sections.push((&body[s_at..s_end], checksum, dir_end + s_at));
        at = end;
    }
    if at != body.len() as u64 {
        return Err(SnapshotError::Malformed("trailing bytes after payload"));
    }
    let (head, head_sum, _) = sections[0];
    if xxh64(head) != head_sum {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let (terms, registry) = decode_head_section(head)?;
    let n_terms = terms.len();
    let partitioner = Partitioner::new(partitions as usize);
    let shard_results = eh_par::run_tasks(threads.max(1), partitions as usize, |shard| {
        let (body, sum, section_off) = sections[shard + 1];
        if xxh64(body) != sum {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let wire = match region {
            Some(region) => TrieWire::V3Mapped { region, section_off },
            None => TrieWire::V3Copy,
        };
        decode_shard_section(body, &registry, n_terms, partitioner, shard, wire)
    });
    let load = match region {
        Some(region) => {
            LoadInfo { mode: LoadMode::Mmap, mapped_bytes: region.len() as u64, fallback: None }
        }
        None => LoadInfo::copied(),
    };
    assemble_snapshot(partitions, terms, registry, shard_results, load)
}

fn read_v2(bytes: &[u8], threads: usize) -> Result<StoreSnapshot, SnapshotError> {
    if bytes.len() < V2_HEADER_BYTES {
        return Err(SnapshotError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("fixed slice"));
    if version != SNAPSHOT_VERSION_V2 {
        return Err(SnapshotError::BadVersion(version));
    }
    let partitions = u32::from_le_bytes(bytes[12..16].try_into().expect("fixed slice"));
    let n_sections = u32::from_le_bytes(bytes[16..20].try_into().expect("fixed slice"));
    if partitions == 0 || partitions > MAX_PARTITIONS {
        return Err(SnapshotError::Malformed("implausible partition count"));
    }
    if n_sections != partitions + 1 {
        return Err(SnapshotError::Malformed("section count does not match partitions"));
    }
    let n_sections = n_sections as usize;
    let dir_end = V2_HEADER_BYTES + DIR_ENTRY_BYTES * n_sections;
    if bytes.len() < dir_end {
        return Err(SnapshotError::Truncated);
    }
    // Slice the payload into sections per the directory, validating the
    // total length before touching any content.
    let mut dir = Vec::with_capacity(n_sections);
    for i in 0..n_sections {
        let at = V2_HEADER_BYTES + DIR_ENTRY_BYTES * i;
        let len = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("fixed slice"));
        let checksum = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("fixed slice"));
        dir.push((len, checksum));
    }
    let total: u64 = dir.iter().map(|&(len, _)| len).sum();
    let body = &bytes[dir_end..];
    if (body.len() as u64) < total {
        return Err(SnapshotError::Truncated);
    }
    if body.len() as u64 > total {
        return Err(SnapshotError::Malformed("trailing bytes after payload"));
    }
    let mut sections = Vec::with_capacity(n_sections);
    let mut at = 0usize;
    for &(len, checksum) in &dir {
        let len = len as usize;
        sections.push((&body[at..at + len], checksum));
        at += len;
    }
    // Section 0 (dictionary + registry) gates everything else: decode it
    // first, sequentially.
    let (head, head_sum) = sections[0];
    if xxh64(head) != head_sum {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let (terms, registry) = decode_head_section(head)?;
    // Shard sections verify and decode independently — fan them out. The
    // subject→shard affinity check rides inside the same fan-out (fused
    // with the per-pair validation scan), so reassembly below has no
    // sequential sweep left to pay.
    let n_terms = terms.len();
    let partitioner = Partitioner::new(partitions as usize);
    let shard_results = eh_par::run_tasks(threads.max(1), partitions as usize, |shard| {
        let (body, sum) = sections[shard + 1];
        if xxh64(body) != sum {
            return Err(SnapshotError::ChecksumMismatch);
        }
        decode_shard_section(body, &registry, n_terms, partitioner, shard, TrieWire::V2)
    });
    assemble_snapshot(partitions, terms, registry, shard_results, LoadInfo::copied())
}

/// The common tail of every sectioned read: collect the per-shard decode
/// results, validate the persisted distinct-object claims against them,
/// and reassemble the store.
fn assemble_snapshot(
    partitions: u32,
    terms: Vec<Term>,
    registry: Vec<RegistryEntry>,
    shard_results: Vec<ShardResult>,
    load: LoadInfo,
) -> Result<StoreSnapshot, SnapshotError> {
    let n_terms = terms.len();
    let mut shard_tables = Vec::with_capacity(partitions as usize);
    let mut tries = Vec::new();
    for (shard, r) in shard_results.into_iter().enumerate() {
        let (tables, shard_tries) = r?;
        shard_tables.push(tables);
        tries.extend(shard_tries.into_iter().map(|(pred, subject_first, trie)| FrozenTrieEntry {
            pred,
            subject_first,
            shard: shard as u32,
            trie: Arc::new(trie),
        }));
    }
    // The persisted distinct-object stats shape plans, never answer
    // bytes, so exact recomputation (a cross-shard k-way merge per
    // predicate — the cost this field exists to avoid) is not worth the
    // load-path time; bounds against the decoded shards keep a corrupt
    // claim from surviving: the true count is at least the largest
    // single-shard count and at most the smaller of the per-shard sum
    // and the dictionary size. At P = 1 the shard count *is* the true
    // count, so the claim is checked exactly.
    let mut agg = std::collections::HashMap::with_capacity(registry.len());
    for (idx, &(pred, _, claimed)) in registry.iter().enumerate() {
        let claimed = claimed as usize;
        let largest = shard_tables.iter().map(|t| t[idx].distinct_objects()).max().unwrap_or(0);
        let sum: usize = shard_tables.iter().map(|t| t[idx].distinct_objects()).sum();
        let ok = if partitions == 1 {
            claimed == largest
        } else {
            claimed >= largest && claimed <= sum.min(n_terms)
        };
        if !ok {
            return Err(SnapshotError::Malformed("distinct-object stat out of bounds"));
        }
        agg.insert(pred, claimed);
    }
    let store = TripleStore::from_partitioned_parts(terms, partitions as usize, shard_tables, agg)
        .map_err(SnapshotError::Malformed)?;
    Ok(StoreSnapshot { store, tries, load })
}

/// One predicate-registry entry from section 0: `(pred key, predicate
/// name, claimed cross-shard distinct-object count)`.
type RegistryEntry = (u32, String, u32);

/// Decode section 0: dictionary terms in key order plus the predicate
/// registry shared by every shard — one [`RegistryEntry`] per table. The
/// distinct-object claim is validated against the decoded shards in
/// [`read_v2`].
fn decode_head_section(bytes: &[u8]) -> Result<(Vec<Term>, Vec<RegistryEntry>), SnapshotError> {
    let mut c = Cursor { bytes, pos: 0 };
    let n_terms = c.u32()? as usize;
    let mut terms = Vec::with_capacity(n_terms.min(c.remaining()));
    for _ in 0..n_terms {
        let kind = c.u8()?;
        let text = c.string()?;
        terms.push(match kind {
            0 => Term::Iri(text),
            1 => Term::Literal(text),
            _ => return Err(SnapshotError::Malformed("unknown term kind")),
        });
    }
    let n_tables = c.u32()? as usize;
    let mut registry = Vec::with_capacity(n_tables.min(c.remaining()));
    let mut seen = HashSet::new();
    for _ in 0..n_tables {
        let pred = c.u32()?;
        if !seen.insert(pred) {
            return Err(SnapshotError::Malformed("duplicate predicate table"));
        }
        if pred as usize >= terms.len() {
            return Err(SnapshotError::Malformed("table predicate outside dictionary"));
        }
        let name = c.string()?;
        let distinct = c.u32()?;
        registry.push((pred, name, distinct));
    }
    if c.remaining() != 0 {
        return Err(SnapshotError::Malformed("unconsumed section bytes"));
    }
    Ok((terms, registry))
}

/// One decoded shard: its tables plus its `(pred, subject_first, trie)`
/// entries.
type ShardResult = Result<(Vec<PairTable>, Vec<(u32, bool, FrozenTrie)>), SnapshotError>;

/// How a shard section's trie records are laid out on the wire, and
/// where their arenas should live once decoded.
#[derive(Clone, Copy)]
enum TrieWire<'a> {
    /// v2 record: no pad byte; arena decoded into owned memory.
    V2,
    /// v3 record (pad byte present); arena decoded into owned memory.
    V3Copy,
    /// v3 record served zero-copy: the arena words stay in the mapping,
    /// and the trie holds a window of `region` starting at the section's
    /// absolute file offset plus the cursor position.
    V3Mapped { region: &'a Arc<MappedRegion>, section_off: usize },
}

/// Decode one shard section: its slice of every registered table (with
/// full structural validation, including that every subject hashes to
/// this shard) and its frozen tries (validated against the tables just
/// decoded).
fn decode_shard_section(
    bytes: &[u8],
    registry: &[RegistryEntry],
    n_terms: usize,
    partitioner: Partitioner,
    shard: usize,
    wire: TrieWire<'_>,
) -> ShardResult {
    let mut c = Cursor { bytes, pos: 0 };
    let mut tables = Vec::with_capacity(registry.len());
    for (pred, name, _) in registry {
        let n_pairs = c.u32()? as usize;
        let so = c.pairs(n_pairs)?;
        let os = c.pairs(n_pairs)?;
        // One fused pass per order: sorted-unique (so binary searches
        // work) and id-bounded (an out-of-dictionary id surviving into a
        // query result would panic in `Dictionary::decode` much later, on
        // a serving thread — exactly the class of failure the never-panic
        // guarantee exists for).
        for pairs in [&so, &os] {
            let sorted = pairs.windows(2).all(|w| w[0] < w[1]);
            let bounded =
                pairs.iter().all(|&(a, b)| (a as usize) < n_terms && (b as usize) < n_terms);
            if !sorted || !bounded {
                return Err(SnapshotError::Malformed("table pairs not sorted or out of range"));
            }
        }
        // Subjects must live in the shard their hash names, or a
        // shard-local join would silently miss them (a swapped pair of
        // otherwise-valid sections passes every per-section checksum).
        // Checked here, inside the parallel fan-out, rather than as a
        // second store-wide sweep at reassembly.
        if !so.iter().all(|&(s, _)| partitioner.shard_of(s) == shard) {
            return Err(SnapshotError::Malformed("subject resident in the wrong shard"));
        }
        // The two orders must describe the same relation, or the same
        // query would answer differently depending on which access order
        // the planner picks. Both are sorted unique and equally long, so
        // membership of every transposed `os` pair in `so` is a full
        // bijection check — O(n log n) binary searches, no re-sort.
        if !os.iter().all(|&(o, s)| so.binary_search(&(s, o)).is_ok()) {
            return Err(SnapshotError::Malformed("table orders are not transposes"));
        }
        tables.push(PairTable::from_sorted_parts(name.clone(), *pred, so, os));
    }
    let n_tries = c.u32()? as usize;
    let mut tries = Vec::with_capacity(n_tries.min(c.remaining()));
    let mut seen_orders = HashSet::new();
    for _ in 0..n_tries {
        let pred = c.u32()?;
        let subject_first = match c.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Malformed("bad trie order flag")),
        };
        if !seen_orders.insert((pred, subject_first)) {
            return Err(SnapshotError::Malformed("duplicate frozen trie entry"));
        }
        let arity = c.u32()?;
        let num_tuples = c.u32()?;
        let n_levels = c.u32()? as usize;
        let mut levels = Vec::with_capacity(n_levels.min(c.remaining()));
        for _ in 0..n_levels {
            let off = c.u32()?;
            let count = c.u32()?;
            levels.push((off, count));
        }
        let arena_len = c.u32()? as usize;
        if !matches!(wire, TrieWire::V2) {
            // v3 pad: a count byte plus that many zeros, placed so the
            // arena words start on a 4-byte file offset. Validated-zero
            // so a flipped pad byte cannot slide the arena silently.
            let pad = c.u8()?;
            if pad >= MAX_TRIE_PAD {
                return Err(SnapshotError::Malformed("implausible trie arena padding"));
            }
            if c.take(pad as usize)?.iter().any(|&b| b != 0) {
                return Err(SnapshotError::Malformed("nonzero trie arena padding"));
            }
        }
        let trie = match wire {
            TrieWire::V2 | TrieWire::V3Copy => {
                let arena = c.words(arena_len)?;
                FrozenTrie::from_raw_parts(arity, num_tuples, levels, arena)
            }
            TrieWire::V3Mapped { region, section_off } => {
                let at = section_off.checked_add(c.pos()).ok_or(SnapshotError::Truncated)?;
                let n_bytes = arena_len.checked_mul(4).ok_or(SnapshotError::Truncated)?;
                // Advance past (and bounds-check) the arena words without
                // materialising them.
                c.take(n_bytes)?;
                if !(region.bytes().as_ptr() as usize + at).is_multiple_of(4) {
                    // Not corruption — a valid file this platform cannot
                    // serve in place. The caller maps this exact message
                    // to the copy-path fallback.
                    return Err(SnapshotError::Malformed(UNALIGNED_ARENA));
                }
                // Fault the arena pages in the background while decode
                // continues: first-query latency should not eat the
                // fault storm.
                region.advise_willneed(at, n_bytes);
                FrozenTrie::from_shared_region(
                    arity,
                    num_tuples,
                    levels,
                    Arc::clone(region) as Arc<dyn ArenaBytes>,
                    at,
                    arena_len,
                )
            }
        }
        .map_err(SnapshotError::Malformed)?;
        // A preloaded trie is served by the catalog as if it were built
        // from the shard's table, so its contents must *be* that table in
        // the claimed order, tuple for tuple — a count or id-range check
        // would let a transposed (or otherwise mislabeled) trie through
        // and silently corrupt every query over its predicate.
        let Some(table) = registry.iter().position(|&(p, _, _)| p == pred).map(|i| &tables[i])
        else {
            return Err(SnapshotError::Malformed("frozen trie for an absent table"));
        };
        let pairs = if subject_first { table.so_pairs() } else { table.os_pairs() };
        if !trie.matches_pairs(pairs) {
            return Err(SnapshotError::Malformed("frozen trie does not match its table"));
        }
        tries.push((pred, subject_first, trie));
    }
    if c.remaining() != 0 {
        return Err(SnapshotError::Malformed("unconsumed section bytes"));
    }
    Ok((tables, tries))
}

// ------------------------------------------------- v1 payload (read-compat)

fn encode_payload_v1(store: &TripleStore, tries: &[FrozenTrieEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    // Dictionary.
    let dict = store.dict();
    put_u32(&mut out, dict.len() as u32);
    for (_, term) in dict.iter() {
        let (kind, text) = match term {
            Term::Iri(s) => (0u8, s.as_str()),
            Term::Literal(s) => (1u8, s.as_str()),
        };
        out.push(kind);
        put_u32(&mut out, text.len() as u32);
        out.extend_from_slice(text.as_bytes());
    }
    // Tables, both orders verbatim.
    let tables = store.tables();
    put_u32(&mut out, tables.len() as u32);
    for t in tables {
        put_u32(&mut out, t.pred());
        put_u32(&mut out, t.name().len() as u32);
        out.extend_from_slice(t.name().as_bytes());
        put_u32(&mut out, t.len() as u32);
        for &(a, b) in t.so_pairs() {
            put_u32(&mut out, a);
            put_u32(&mut out, b);
        }
        for &(a, b) in t.os_pairs() {
            put_u32(&mut out, a);
            put_u32(&mut out, b);
        }
    }
    // Frozen tries.
    put_u32(&mut out, tries.len() as u32);
    for e in tries {
        assert_eq!(e.shard, 0, "v1 snapshots have no shards");
        let (arity, num_tuples, levels, arena) = e.trie.raw_parts();
        put_u32(&mut out, e.pred);
        out.push(e.subject_first as u8);
        put_u32(&mut out, arity);
        put_u32(&mut out, num_tuples);
        put_u32(&mut out, levels.len() as u32);
        for &(off, count) in levels {
            put_u32(&mut out, off);
            put_u32(&mut out, count);
        }
        put_u32(&mut out, arena.len() as u32);
        for &w in arena {
            put_u32(&mut out, w);
        }
    }
    out
}

fn read_v1(bytes: &[u8]) -> Result<StoreSnapshot, SnapshotError> {
    if bytes.len() < V1_HEADER_BYTES {
        return Err(SnapshotError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("fixed slice"));
    if version != 1 {
        return Err(SnapshotError::BadVersion(version));
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("fixed slice"));
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().expect("fixed slice"));
    let payload = &bytes[V1_HEADER_BYTES..];
    if (payload.len() as u64) < payload_len {
        return Err(SnapshotError::Truncated);
    }
    if payload.len() as u64 > payload_len {
        return Err(SnapshotError::Malformed("trailing bytes after payload"));
    }
    if xxh64(payload) != checksum {
        return Err(SnapshotError::ChecksumMismatch);
    }
    decode_payload_v1(payload)
}

fn decode_payload_v1(bytes: &[u8]) -> Result<StoreSnapshot, SnapshotError> {
    let mut c = Cursor { bytes, pos: 0 };
    // Dictionary.
    let n_terms = c.u32()? as usize;
    let mut terms = Vec::with_capacity(n_terms.min(c.remaining()));
    for _ in 0..n_terms {
        let kind = c.u8()?;
        let text = c.string()?;
        terms.push(match kind {
            0 => Term::Iri(text),
            1 => Term::Literal(text),
            _ => return Err(SnapshotError::Malformed("unknown term kind")),
        });
    }
    // Tables.
    let n_tables = c.u32()? as usize;
    let mut tables = Vec::with_capacity(n_tables.min(c.remaining()));
    let mut seen_preds = HashSet::new();
    for _ in 0..n_tables {
        let pred = c.u32()?;
        // Duplicate tables would make `by_pred` (last wins) disagree with
        // whole-store iteration (sees both): reject the inconsistency at
        // the door.
        if !seen_preds.insert(pred) {
            return Err(SnapshotError::Malformed("duplicate predicate table"));
        }
        let name = c.string()?;
        let n_pairs = c.u32()? as usize;
        let so = c.pairs(n_pairs)?;
        let os = c.pairs(n_pairs)?;
        if pred as usize >= terms.len() {
            return Err(SnapshotError::Malformed("table predicate outside dictionary"));
        }
        for pairs in [&so, &os] {
            let sorted = pairs.windows(2).all(|w| w[0] < w[1]);
            let bounded = pairs.last().is_none_or(|&(a, _)| (a as usize) < terms.len())
                && pairs.iter().all(|&(_, b)| (b as usize) < terms.len());
            if !sorted || !bounded {
                return Err(SnapshotError::Malformed("table pairs not sorted or out of range"));
            }
        }
        if !os.iter().all(|&(o, s)| so.binary_search(&(s, o)).is_ok()) {
            return Err(SnapshotError::Malformed("table orders are not transposes"));
        }
        tables.push(PairTable::from_sorted_parts(name, pred, so, os));
    }
    let store = TripleStore::from_snapshot_parts(terms, tables);
    // Frozen tries.
    let n_tries = c.u32()? as usize;
    let mut tries = Vec::with_capacity(n_tries.min(c.remaining()));
    let mut seen_orders = HashSet::new();
    for _ in 0..n_tries {
        let pred = c.u32()?;
        let subject_first = match c.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Malformed("bad trie order flag")),
        };
        if !seen_orders.insert((pred, subject_first)) {
            return Err(SnapshotError::Malformed("duplicate frozen trie entry"));
        }
        let arity = c.u32()?;
        let num_tuples = c.u32()?;
        let n_levels = c.u32()? as usize;
        let mut levels = Vec::with_capacity(n_levels.min(c.remaining()));
        for _ in 0..n_levels {
            let off = c.u32()?;
            let count = c.u32()?;
            levels.push((off, count));
        }
        let arena_len = c.u32()? as usize;
        let arena = c.words(arena_len)?;
        let trie = FrozenTrie::from_raw_parts(arity, num_tuples, levels, arena)
            .map_err(SnapshotError::Malformed)?;
        let Some(table) = store.table(pred) else {
            return Err(SnapshotError::Malformed("frozen trie for an absent table"));
        };
        let pairs = if subject_first { table.so_pairs() } else { table.os_pairs() };
        if !trie.matches_pairs(pairs) {
            return Err(SnapshotError::Malformed("frozen trie does not match its table"));
        }
        tries.push(FrozenTrieEntry { pred, subject_first, shard: 0, trie: Arc::new(trie) });
    }
    if c.remaining() != 0 {
        return Err(SnapshotError::Malformed("unconsumed payload bytes"));
    }
    Ok(StoreSnapshot { store, tries, load: LoadInfo::copied() })
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked payload reader: every accessor returns `Err` rather
/// than panicking past the end, and length-prefixed reads validate the
/// length against the remaining bytes *before* allocating.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Current byte offset from the start of the payload — the mapped
    /// decode path turns this into an absolute file offset.
    fn pos(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("fixed slice")))
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?.to_vec();
        String::from_utf8(bytes).map_err(|_| SnapshotError::Malformed("invalid utf-8 text"))
    }

    fn pairs(&mut self, n: usize) -> Result<Vec<(u32, u32)>, SnapshotError> {
        let bytes = self.take(n.checked_mul(8).ok_or(SnapshotError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                (
                    u32::from_le_bytes(c[0..4].try_into().expect("fixed slice")),
                    u32::from_le_bytes(c[4..8].try_into().expect("fixed slice")),
                )
            })
            .collect())
    }

    fn words(&mut self, n: usize) -> Result<Vec<u32>, SnapshotError> {
        let bytes = self.take(n.checked_mul(4).ok_or(SnapshotError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("fixed slice")))
            .collect())
    }
}

// ------------------------------------------------------------------ xxh64

const XXP1: u64 = 0x9E37_79B1_85EB_CA87;
const XXP2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const XXP3: u64 = 0x1656_67B1_9E37_79F9;
const XXP4: u64 = 0x85EB_CA77_C2B2_AE63;
const XXP5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn xx_round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(XXP2)).rotate_left(31).wrapping_mul(XXP1)
}

#[inline]
fn xx_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("fixed slice"))
}

/// XXH64 (seed 0), implemented here because the workspace vendors no
/// external crates. Chosen over CRC-32 deliberately: the checksum runs
/// over the whole payload on the cold-start critical path, and the four
/// independent multiply lanes stream several bytes per cycle where a
/// table-driven CRC plods one — with 64 bits of equally good corruption
/// detection. (This checksum guards against *corruption*; it is not a
/// cryptographic integrity mechanism.)
///
/// Public because the write-ahead log (`eh-wal`) frames its records with
/// the same checksum — one hash function guards every byte this engine
/// persists.
pub fn xxh64(bytes: &[u8]) -> u64 {
    let len = bytes.len() as u64;
    let mut h: u64;
    let mut tail = bytes;
    if bytes.len() >= 32 {
        let stripes = bytes.chunks_exact(32);
        tail = stripes.remainder();
        let mut v1 = XXP1.wrapping_add(XXP2);
        let mut v2 = XXP2;
        let mut v3 = 0u64;
        let mut v4 = 0u64.wrapping_sub(XXP1);
        for s in stripes {
            v1 = xx_round(v1, xx_u64(&s[0..8]));
            v2 = xx_round(v2, xx_u64(&s[8..16]));
            v3 = xx_round(v3, xx_u64(&s[16..24]));
            v4 = xx_round(v4, xx_u64(&s[24..32]));
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        for v in [v1, v2, v3, v4] {
            h = (h ^ xx_round(0, v)).wrapping_mul(XXP1).wrapping_add(XXP4);
        }
    } else {
        h = XXP5;
    }
    h = h.wrapping_add(len);
    while tail.len() >= 8 {
        h = (h ^ xx_round(0, xx_u64(tail))).rotate_left(27).wrapping_mul(XXP1).wrapping_add(XXP4);
        tail = &tail[8..];
    }
    if tail.len() >= 4 {
        let k = u32::from_le_bytes(tail[..4].try_into().expect("fixed slice")) as u64;
        h = (h ^ k.wrapping_mul(XXP1)).rotate_left(23).wrapping_mul(XXP2).wrapping_add(XXP3);
        tail = &tail[4..];
    }
    for &b in tail {
        h = (h ^ (b as u64).wrapping_mul(XXP5)).rotate_left(11).wrapping_mul(XXP1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(XXP2);
    h ^= h >> 29;
    h = h.wrapping_mul(XXP3);
    h ^= h >> 32;
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Triple;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn sample_store() -> TripleStore {
        TripleStore::from_triples(vec![
            t("s1", "p", "o1"),
            t("s1", "p", "o2"),
            t("s2", "p", "o1"),
            t("s1", "q", "o2"),
            Triple::new(Term::iri("s2"), Term::iri("q"), Term::literal("lit \"x\"\n")),
        ])
    }

    fn wide_triples() -> Vec<Triple> {
        // Enough distinct subjects that every shard of a P=4 store is
        // non-empty.
        let mut v = Vec::new();
        for i in 0..32u32 {
            v.push(t(&format!("s{i}"), "p", &format!("o{}", i % 5)));
            v.push(t(&format!("s{i}"), "q", "hub"));
        }
        v
    }

    fn snapshot_bytes(store: &TripleStore) -> Vec<u8> {
        let tries = StoreSnapshot::hot_tries(store);
        let mut buf = Vec::new();
        StoreSnapshot::write(store, &tries, &mut buf).unwrap();
        buf
    }

    #[test]
    fn xxh64_reference_vectors() {
        // Canonical XXH64 (seed 0) vectors, cross-checked against the
        // reference implementation.
        assert_eq!(xxh64(b""), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a"), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc"), 0x44BC_2CF5_AD77_0999);
        assert_eq!(xxh64(b"The quick brown fox jumps over the lazy dog"), 0x0B24_2D36_1FDA_71BC);
    }

    #[test]
    fn roundtrip_is_lossless() {
        let store = sample_store();
        let bytes = snapshot_bytes(&store);
        let snap = StoreSnapshot::read(&bytes[..]).unwrap();
        // Dictionary: identical keys and terms.
        assert_eq!(snap.store.dict().len(), store.dict().len());
        for (k, term) in store.dict().iter() {
            assert_eq!(snap.store.dict().decode(k), term);
        }
        // Tables: identical contents in both orders.
        assert_eq!(snap.store.tables().len(), store.tables().len());
        for (a, b) in store.tables().iter().zip(snap.store.tables()) {
            assert_eq!((a.pred(), a.name()), (b.pred(), b.name()));
            assert_eq!(a.so_pairs(), b.so_pairs());
            assert_eq!(a.os_pairs(), b.os_pairs());
            assert_eq!(a.distinct_subjects(), b.distinct_subjects());
            assert_eq!(a.distinct_objects(), b.distinct_objects());
        }
        assert_eq!(
            store.encoded_triples().collect::<Vec<_>>(),
            snap.store.encoded_triples().collect::<Vec<_>>()
        );
        // Frozen tries: one per (non-empty predicate, order), identical
        // to a fresh build from the loaded table.
        assert_eq!(snap.tries.len(), 2 * store.tables().len());
        for e in &snap.tries {
            assert_eq!(e.shard, 0);
            let table = snap.store.table(e.pred).unwrap();
            let pairs = if e.subject_first { table.so_pairs() } else { table.os_pairs() };
            let fresh = FrozenTrie::from_sorted(
                eh_trie::TupleBuffer::from_pairs(pairs),
                eh_trie::LayoutPolicy::Auto,
            );
            assert_eq!(*e.trie, fresh);
        }
    }

    #[test]
    fn partitioned_roundtrip_preserves_shards() {
        let store = TripleStore::from_triples_partitioned(wide_triples(), 4);
        let bytes = snapshot_bytes(&store);
        for threads in [1, 4] {
            let snap = StoreSnapshot::read_with_threads(&bytes[..], threads).unwrap();
            assert_eq!(snap.store.partitions(), 4);
            assert_eq!(
                snap.store.encoded_triples().collect::<Vec<_>>(),
                store.encoded_triples().collect::<Vec<_>>(),
                "threads={threads}"
            );
            assert!(snap.store.__invariant_check());
            // Every shipped trie round-trips into the shard it came from.
            for shard in 0..4 {
                for table in store.shard_tables(shard) {
                    if table.is_empty() {
                        continue;
                    }
                    for subject_first in [true, false] {
                        let e = snap
                            .tries
                            .iter()
                            .find(|e| {
                                e.shard as usize == shard
                                    && e.pred == table.pred()
                                    && e.subject_first == subject_first
                            })
                            .expect("trie present for shard order");
                        let pairs = if subject_first { table.so_pairs() } else { table.os_pairs() };
                        assert!(e.trie.matches_pairs(pairs));
                    }
                }
            }
        }
    }

    #[test]
    fn v1_snapshots_still_load_as_single_shard() {
        let store = sample_store();
        let tries = StoreSnapshot::hot_tries(&store);
        let mut buf = Vec::new();
        StoreSnapshot::write_v1(&store, &tries, &mut buf).unwrap();
        assert_eq!(&buf[0..8], &SNAPSHOT_MAGIC_V1);
        let snap = StoreSnapshot::read(&buf[..]).unwrap();
        assert_eq!(snap.store.partitions(), 1);
        assert_eq!(
            snap.store.encoded_triples().collect::<Vec<_>>(),
            store.encoded_triples().collect::<Vec<_>>()
        );
        assert_eq!(snap.tries.len(), tries.len());
        assert!(snap.tries.iter().all(|e| e.shard == 0));
        // The v1 corruption surface stays guarded: version, truncation,
        // checksum.
        let mut bad = buf.clone();
        bad[8] = 9;
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::BadVersion(9))));
        for cut in [7, 20, 27, buf.len() / 2, buf.len() - 1] {
            assert!(
                matches!(StoreSnapshot::read(&buf[..cut]), Err(SnapshotError::Truncated)),
                "cut at {cut}"
            );
        }
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::ChecksumMismatch)));
    }

    #[test]
    fn loaded_store_stays_mutable() {
        let store = sample_store();
        let bytes = snapshot_bytes(&store);
        let mut loaded = StoreSnapshot::read(&bytes[..]).unwrap().store;
        let report = loaded.add_triples(vec![t("s9", "p", "o9"), t("s9", "r", "o9")]);
        assert_eq!(report.added, 2);
        assert_eq!(loaded.num_triples(), store.num_triples() + 2);
        let report = loaded.remove_triples(vec![t("s1", "p", "o1")]);
        assert_eq!(report.removed, 1);
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = TripleStore::new();
        let mut buf = Vec::new();
        StoreSnapshot::write(&store, &[], &mut buf).unwrap();
        let snap = StoreSnapshot::read(&buf[..]).unwrap();
        assert_eq!(snap.store.dict().len(), 0);
        assert!(snap.tries.is_empty());
    }

    #[test]
    fn bad_magic_version_truncation_and_checksum() {
        let store = sample_store();
        let good = snapshot_bytes(&store);

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::BadMagic)));

        let mut bad = good.clone();
        bad[8] = 99;
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::BadVersion(99))));

        for cut in [0, 7, 12, 19, 24, good.len() / 2, good.len() - 1] {
            assert!(
                matches!(StoreSnapshot::read(&good[..cut]), Err(SnapshotError::Truncated)),
                "cut at {cut}"
            );
        }

        // Flipping a byte inside any section must trip that section's
        // checksum.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::ChecksumMismatch)));

        let mut extended = good.clone();
        extended.push(0);
        assert!(StoreSnapshot::read(&extended[..]).is_err());
    }

    #[test]
    fn corrupt_section_headers_are_typed_errors() {
        let store = TripleStore::from_triples_partitioned(wide_triples(), 2);
        let good = snapshot_bytes(&store);

        // Partition count of 0 and an implausibly huge one.
        for forged in [0u32, u32::MAX] {
            let mut bad = good.clone();
            bad[12..16].copy_from_slice(&forged.to_le_bytes());
            assert!(
                matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::Malformed(_))),
                "partitions={forged}"
            );
        }
        // Section count disagreeing with the partition count.
        let mut bad = good.clone();
        bad[16..20].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::Malformed(_))));

        // A directory length pointing past the file.
        let mut bad = good.clone();
        bad[20..28].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::Truncated)));

        // A directory checksum that no longer matches its section.
        let mut bad = good.clone();
        bad[28] ^= 0xFF;
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::ChecksumMismatch)));
    }

    #[test]
    fn swapped_shard_sections_are_rejected() {
        // Swap the two shard payloads of a P=2 snapshot and re-seal their
        // checksums: every per-section check still passes, but subjects
        // now sit in shards their hash does not name — the cross-section
        // affinity check must catch it (a shard-local join would
        // otherwise silently miss them).
        let store = TripleStore::from_triples_partitioned(wide_triples(), 2);
        let mut sections = encode_sections_v3(&store, &[], 0);
        assert!(sections[1] != sections[2], "both shards populated");
        sections.swap(1, 2);
        let mut forged = Vec::new();
        write_v3_parts(2, &sections, &mut forged).unwrap();
        assert!(
            matches!(
                StoreSnapshot::read(&forged[..]),
                Err(SnapshotError::Malformed(m)) if m.contains("shard")
            ),
            "mis-sharded subjects must be rejected"
        );
    }

    #[test]
    fn single_byte_mutations_never_panic() {
        // The corruption property, exhaustively for small snapshots in
        // both formats and at P ∈ {1, 2}: every single-byte mutation
        // either still reads (a single flip never collides the checksum,
        // but stay permissive) or returns a typed error — it must never
        // panic. The workspace-level proptest widens this to random
        // multi-byte mutations over random stores.
        let store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        let mut cases = vec![snapshot_bytes(&store)];
        let mut v1 = Vec::new();
        StoreSnapshot::write_v1(&store, &StoreSnapshot::hot_tries(&store), &mut v1).unwrap();
        cases.push(v1);
        cases.push(snapshot_bytes(&TripleStore::from_triples_partitioned(
            vec![t("a", "p", "b"), t("c", "p", "d"), t("e", "p", "f")],
            2,
        )));
        for good in cases {
            for i in 0..good.len() {
                for flip in [0x01u8, 0x80, 0xFF] {
                    let mut bad = good.clone();
                    bad[i] ^= flip;
                    let _ = StoreSnapshot::read(&bad[..]);
                }
            }
        }
    }

    #[test]
    fn checksum_valid_out_of_dictionary_ids_are_rejected() {
        // A snapshot can be internally consistent (good magic, version,
        // checksum) and still carry ids the dictionary cannot decode; reading
        // one must be a typed error, never a later decode panic.
        let bogus_table = TripleStore::from_snapshot_parts(
            vec![Term::iri("p")],
            vec![PairTable::from_sorted_parts("p".into(), 0, vec![(5, 6)], vec![(6, 5)])],
        );
        let mut buf = Vec::new();
        StoreSnapshot::write(&bogus_table, &[], &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("pair")),
            "out-of-dictionary pair must be rejected"
        );

        // Same for a shipped frozen trie: right predicate, right tuple
        // count, but values outside the dictionary.
        let store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        let pred = store.resolve_iri("p").unwrap();
        let rogue = FrozenTrie::from_sorted(
            eh_trie::TupleBuffer::from_pairs(&[(7, 8)]),
            eh_trie::LayoutPolicy::Auto,
        );
        let entry = FrozenTrieEntry {
            pred,
            subject_first: true,
            shard: 0,
            trie: std::sync::Arc::new(rogue),
        };
        let mut buf = Vec::new();
        StoreSnapshot::write(&store, &[entry], &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("trie")),
            "out-of-dictionary trie value must be rejected"
        );
    }

    #[test]
    fn mislabeled_and_duplicate_entries_are_rejected() {
        // A trie whose order flag lies — the [o, s] trie labeled as
        // subject-major — passes any count/id-range check (same length,
        // same id universe) but would silently transpose every answer
        // over its predicate; only exact content comparison catches it.
        let store = TripleStore::from_triples(vec![t("a", "p", "b"), t("c", "p", "a")]);
        let table = store.table_by_name("p").unwrap();
        let transposed = FrozenTrie::from_sorted(
            eh_trie::TupleBuffer::from_pairs(table.os_pairs()),
            eh_trie::LayoutPolicy::Auto,
        );
        let entry = FrozenTrieEntry {
            pred: table.pred(),
            subject_first: true, // lie: this is the [o, s] trie
            shard: 0,
            trie: std::sync::Arc::new(transposed),
        };
        let mut buf = Vec::new();
        StoreSnapshot::write(&store, &[entry], &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("match")),
            "a transposed trie must not load"
        );

        // Duplicate (pred, order) trie entries are inconsistent by
        // construction (which one would the catalog serve?).
        let tries = StoreSnapshot::hot_tries(&store);
        let doubled: Vec<FrozenTrieEntry> = tries.iter().chain(tries.iter()).cloned().collect();
        let mut buf = Vec::new();
        StoreSnapshot::write(&store, &doubled, &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("duplicate")),
            "duplicate trie entries must not load"
        );

        // A table whose two orders are each valid but describe different
        // relations would answer the same query differently depending on
        // the access order the planner picks.
        let skewed = TripleStore::from_snapshot_parts(
            vec![Term::iri("a"), Term::iri("p"), Term::iri("b")],
            vec![PairTable::from_sorted_parts("p".into(), 1, vec![(0, 2)], vec![(1, 0)])],
        );
        let mut buf = Vec::new();
        StoreSnapshot::write(&skewed, &[], &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("transpose")),
            "non-transposed orders must not load"
        );

        // Duplicate predicate tables: `by_pred` would answer from one
        // while whole-store iteration sees both.
        let twin = TripleStore::from_snapshot_parts(
            vec![Term::iri("a"), Term::iri("p"), Term::iri("b")],
            vec![
                PairTable::from_sorted_parts("p".into(), 1, vec![(0, 2)], vec![(2, 0)]),
                PairTable::from_sorted_parts("p".into(), 1, vec![(2, 0)], vec![(0, 2)]),
            ],
        );
        let mut buf = Vec::new();
        StoreSnapshot::write(&twin, &[], &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("duplicate")),
            "duplicate tables must not load"
        );
    }

    mod corruption_proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The corruption-hardening property (randomised): arbitrary
            /// multi-byte mutations of a small valid snapshot either read
            /// back (only possible when the flips are all no-ops) or
            /// return a typed error — truncation, bad magic/version,
            /// checksum mismatch, or malformed structure — never a panic.
            #[test]
            fn random_mutations_return_err_not_panic(
                partitions in 1usize..=4,
                flips in proptest::collection::vec((0usize..2048, 1u8..=255), 1..16),
                cut in 0usize..4096,
            ) {
                let store = TripleStore::from_triples_partitioned(vec![
                    t("a", "p", "b"),
                    t("a", "p", "c"),
                    t("b", "q", "c"),
                ], partitions);
                let good = snapshot_bytes(&store);
                let mut bad = good.clone();
                for &(pos, mask) in &flips {
                    let pos = pos % bad.len();
                    bad[pos] ^= mask;
                }
                if cut < bad.len() * 2 {
                    // Half the cut range truncates, half leaves the file
                    // whole, so both shapes are exercised.
                    bad.truncate(cut.min(bad.len()));
                }
                match StoreSnapshot::read(&bad[..]) {
                    Ok(snap) => {
                        // Only reachable when every flip cancelled out.
                        prop_assert_eq!(bad, good);
                        prop_assert_eq!(snap.store.num_triples(), store.num_triples());
                    }
                    Err(e) => {
                        // The error renders; corruption is diagnosable.
                        prop_assert!(!e.to_string().is_empty());
                    }
                }
            }
        }
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("eh-snap-{tag}-{}.snap", std::process::id()))
    }

    /// Stores loaded two ways must be indistinguishable: same triples,
    /// same tries (content equality — storage backing may differ).
    fn assert_snapshots_equal(a: &StoreSnapshot, b: &StoreSnapshot) {
        assert_eq!(
            a.store.encoded_triples().collect::<Vec<_>>(),
            b.store.encoded_triples().collect::<Vec<_>>()
        );
        assert_eq!(a.tries.len(), b.tries.len());
        for ea in &a.tries {
            let eb = b
                .tries
                .iter()
                .find(|e| {
                    e.pred == ea.pred && e.subject_first == ea.subject_first && e.shard == ea.shard
                })
                .expect("trie present in both loads");
            assert_eq!(*ea.trie, *eb.trie);
        }
    }

    #[test]
    fn v2_snapshots_still_load_via_copy() {
        let store = TripleStore::from_triples_partitioned(wide_triples(), 2);
        let tries = StoreSnapshot::hot_tries(&store);
        let mut v2 = Vec::new();
        StoreSnapshot::write_v2(&store, &tries, &mut v2).unwrap();
        assert_eq!(&v2[0..8], &SNAPSHOT_MAGIC_V2);
        let snap = StoreSnapshot::read(&v2[..]).unwrap();
        assert_eq!(snap.load.mode, LoadMode::Copy);
        assert_eq!(
            snap.store.encoded_triples().collect::<Vec<_>>(),
            store.encoded_triples().collect::<Vec<_>>()
        );
        assert_eq!(snap.tries.len(), tries.len());
    }

    #[test]
    fn mmap_load_is_zero_copy_and_identical() {
        let store = TripleStore::from_triples_partitioned(wide_triples(), 2);
        let path = temp_path("mmap-identical");
        let total =
            StoreSnapshot::write_to_path(&store, &StoreSnapshot::hot_tries(&store), &path).unwrap();
        assert_eq!(total, std::fs::metadata(&path).unwrap().len());
        let copied = StoreSnapshot::read_from_path(&path).unwrap();
        for threads in [1, 4] {
            let mapped = StoreSnapshot::read_from_path_mmap(&path, threads).unwrap();
            assert_eq!(mapped.load.mode, LoadMode::Mmap, "threads={threads}");
            assert_eq!(mapped.load.mapped_bytes, total);
            assert!(mapped.load.fallback.is_none());
            assert!(!mapped.tries.is_empty());
            assert!(
                mapped.tries.iter().all(|e| e.trie.is_shared()),
                "every mapped trie serves from the mapping, not a copy"
            );
            assert!(copied.tries.iter().all(|e| !e.trie.is_shared()));
            assert_snapshots_equal(&mapped, &copied);
            // A mapped load stays as mutable as a copy load.
            let mut s = mapped.store;
            assert_eq!(s.add_triples(vec![t("new", "p", "o")]).added, 1);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn misaligned_v3_falls_back_to_copy() {
        // extra_pad = 1 slides every arena one byte off its 4-byte slot:
        // still a valid v3 file (pad is validated, not assumed minimal),
        // but not servable in place.
        let store = TripleStore::from_triples_partitioned(wide_triples(), 2);
        let sections = encode_sections_v3(&store, &StoreSnapshot::hot_tries(&store), 1);
        let path = temp_path("mmap-misaligned");
        let mut buf = Vec::new();
        write_v3_parts(2, &sections, &mut buf).unwrap();
        std::fs::write(&path, &buf).unwrap();
        // The copy path accepts it...
        let copied = StoreSnapshot::read(&buf[..]).unwrap();
        assert_eq!(
            copied.store.encoded_triples().collect::<Vec<_>>(),
            store.encoded_triples().collect::<Vec<_>>()
        );
        // ...and the mapped path degrades to copy rather than failing.
        let snap = StoreSnapshot::read_from_path_mmap(&path, 2).unwrap();
        assert_eq!(snap.load.mode, LoadMode::Copy);
        assert_eq!(snap.load.mapped_bytes, 0);
        assert_eq!(snap.load.fallback, Some(UNALIGNED_ARENA));
        assert!(snap.tries.iter().all(|e| !e.trie.is_shared()));
        assert_snapshots_equal(&snap, &copied);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_of_older_versions_falls_back_with_reason() {
        let store = sample_store();
        let tries = StoreSnapshot::hot_tries(&store);
        let v2_path = temp_path("mmap-v2");
        let v1_path = temp_path("mmap-v1");
        let mut v2 = Vec::new();
        StoreSnapshot::write_v2(&store, &tries, &mut v2).unwrap();
        std::fs::write(&v2_path, &v2).unwrap();
        let mut v1 = Vec::new();
        StoreSnapshot::write_v1(&store, &tries, &mut v1).unwrap();
        std::fs::write(&v1_path, &v1).unwrap();
        for (path, tag) in [(&v2_path, "v2"), (&v1_path, "v1")] {
            let snap = StoreSnapshot::read_from_path_mmap(path, 2).unwrap();
            assert_eq!(snap.load.mode, LoadMode::Copy, "{tag}");
            let reason = snap.load.fallback.expect("fallback reason recorded");
            assert!(reason.contains(tag), "{tag}: {reason}");
            assert_eq!(
                snap.store.encoded_triples().collect::<Vec<_>>(),
                store.encoded_triples().collect::<Vec<_>>()
            );
            std::fs::remove_file(path).ok();
        }
        // A missing file is an I/O error, not a silent fallback.
        assert!(matches!(
            StoreSnapshot::read_from_path_mmap(&v1_path, 1),
            Err(SnapshotError::Io(_))
        ));
    }

    #[test]
    fn mmap_single_byte_mutations_never_panic() {
        // The never-panic property, through the mapped entry point: every
        // single-byte flip of a small v3 file either falls back cleanly,
        // loads (impossible here — a flip never cancels), or returns a
        // typed error. Corruption in a mapped arena must be caught by the
        // eager checksum/validation at load, never by a later fault.
        let store = TripleStore::from_triples_partitioned(
            vec![t("a", "p", "b"), t("c", "p", "d"), t("e", "p", "f")],
            2,
        );
        let good = snapshot_bytes(&store);
        let path = temp_path("mmap-mutations");
        for i in 0..good.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = good.clone();
                bad[i] ^= flip;
                std::fs::write(&path, &bad).unwrap();
                match StoreSnapshot::read_from_path_mmap(&path, 2) {
                    Ok(snap) => {
                        // Only reachable when the flip landed in a spot
                        // whose meaning is checked structurally rather
                        // than by checksum (e.g. it forged an older
                        // magic): the load must still be coherent.
                        assert_eq!(snap.store.num_triples(), store.num_triples());
                    }
                    Err(e) => assert!(!e.to_string().is_empty()),
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_over_mapped_path_leaves_live_mapping_intact() {
        // The atomic-rename guarantee: re-SAVEing over a path that is
        // currently mapped must not write through the live mapping —
        // the old inode survives until the mapping drops.
        let before = TripleStore::from_triples(vec![t("a", "p", "b"), t("c", "p", "d")]);
        let path = temp_path("mmap-atomic");
        StoreSnapshot::write_to_path(&before, &StoreSnapshot::hot_tries(&before), &path).unwrap();
        let mapped = StoreSnapshot::read_from_path_mmap(&path, 1).unwrap();
        assert_eq!(mapped.load.mode, LoadMode::Mmap);
        let arenas_before: Vec<Vec<u32>> =
            mapped.tries.iter().map(|e| e.trie.raw_parts().3.to_vec()).collect();
        // Overwrite the path with a different store.
        let after = TripleStore::from_triples(vec![t("x", "q", "y")]);
        StoreSnapshot::write_to_path(&after, &StoreSnapshot::hot_tries(&after), &path).unwrap();
        // The live mapping still serves the old bytes, bit for bit...
        let arenas_after: Vec<Vec<u32>> =
            mapped.tries.iter().map(|e| e.trie.raw_parts().3.to_vec()).collect();
        assert_eq!(arenas_before, arenas_after);
        for e in &mapped.tries {
            let table = mapped.store.table(e.pred).unwrap();
            let pairs = if e.subject_first { table.so_pairs() } else { table.os_pairs() };
            assert!(e.trie.matches_pairs(pairs));
        }
        // ...a fresh load sees the new store...
        let reread = StoreSnapshot::read_from_path_mmap(&path, 1).unwrap();
        assert_eq!(reread.store.num_triples(), after.num_triples());
        // ...and no temp litter survives the rename.
        let dir = path.parent().unwrap();
        let litter: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".snap.tmp."))
            .collect();
        assert!(litter.is_empty(), "temp files left behind: {litter:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_reports_total_bytes() {
        let store = sample_store();
        let mut buf = Vec::new();
        let n = StoreSnapshot::write(&store, &[], &mut buf).unwrap();
        assert_eq!(n, buf.len() as u64);
        assert!(n > 24);
    }

    #[test]
    fn path_roundtrip() {
        let store = sample_store();
        let path = std::env::temp_dir().join(format!("eh-snap-test-{}.snap", std::process::id()));
        let tries = StoreSnapshot::hot_tries(&store);
        StoreSnapshot::write_to_path(&store, &tries, &path).unwrap();
        let snap = StoreSnapshot::read_from_path(&path).unwrap();
        assert_eq!(snap.store.num_triples(), store.num_triples());
        std::fs::remove_file(&path).ok();
        assert!(matches!(StoreSnapshot::read_from_path(&path), Err(SnapshotError::Io(_))));
    }
}
