//! Versioned, checksummed store snapshots: the cold-start path.
//!
//! A production server cannot re-parse N-Triples and re-sort every
//! predicate table on restart. A snapshot persists the whole read-path
//! state — dictionary, both sort orders of every [`PairTable`], and
//! (optionally) pre-built [`FrozenTrie`] arenas for the hot trie orders —
//! so a reload is bulk `memcpy`-shaped: no parsing, no sorting, no
//! per-block allocation. The frozen-trie arenas load as single contiguous
//! `u32` blocks and are served by the catalog as-is.
//!
//! ## File format (version 1, little-endian)
//!
//! ```text
//! [0..8)   magic  b"EHSNAP01"
//! [8..12)  format version (u32) = 1
//! [12..20) payload length in bytes (u64)
//! [20..28) XXH64 checksum of the payload (u64)
//! [28..)   payload
//! ```
//!
//! Payload sections, in order:
//!
//! 1. **dictionary** — term count, then each term as `(kind u8, len u32,
//!    utf-8 bytes)` in key order (term *i* keeps key *i*);
//! 2. **tables** — table count, then per table `(pred, name, pair count,
//!    so pairs, os pairs)`, both orders verbatim so the load re-sorts
//!    nothing;
//! 3. **frozen tries** — entry count, then per entry `(pred,
//!    subject_first, arity, num_tuples, level directory, arena)`.
//!
//! ## Compatibility policy
//!
//! The version is bumped on any layout change; [`StoreSnapshot::read`]
//! rejects unknown versions (and anything truncated, mis-magicked, or
//! failing the checksum) with a typed [`SnapshotError`] — never a panic.
//! Snapshots are an *optimisation*, not the system of record: on any
//! read error, rebuild from the source N-Triples.

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use eh_trie::FrozenTrie;

use crate::store::TripleStore;
use crate::term::Term;
use crate::vp::PairTable;

/// The 8-byte magic that opens every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"EHSNAP01";
/// The format version this build writes and accepts.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Fixed header size: magic + version + payload length + checksum.
const HEADER_BYTES: usize = 28;

/// Why a snapshot could not be written or read.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file's format version is not [`SNAPSHOT_VERSION`].
    BadVersion(u32),
    /// The file ends before the declared payload does.
    Truncated,
    /// The payload checksum (XXH64) does not match the header.
    ChecksumMismatch,
    /// The payload decoded but its structure is inconsistent.
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads {SNAPSHOT_VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot payload checksum mismatch"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// A pre-built frozen trie shipped inside a snapshot: one (predicate,
/// order) the serving engine treats as hot.
#[derive(Debug, Clone)]
pub struct FrozenTrieEntry {
    /// Dictionary key of the predicate this trie indexes.
    pub pred: u32,
    /// `true` for the subject-major `[s, o]` order, `false` for `[o, s]`.
    pub subject_first: bool,
    /// The arena-backed trie, ready to serve.
    pub trie: Arc<FrozenTrie>,
}

/// A loaded snapshot: the reassembled store plus any frozen tries it
/// carried (see [`StoreSnapshot::read`]).
#[derive(Debug)]
pub struct StoreSnapshot {
    /// The store, committed and fully queryable (and mutable — updates
    /// after a snapshot load work exactly as on a cold-built store).
    pub store: TripleStore,
    /// Pre-built tries for the hot orders, for an index catalog to
    /// preload.
    pub tries: Vec<FrozenTrieEntry>,
}

impl StoreSnapshot {
    /// The standard hot orders: an auto-layout [`FrozenTrie`] for both
    /// `[s, o]` and `[o, s]` of every non-empty predicate — exactly the
    /// set of tries a warmed query engine holds for a binary-atom
    /// workload.
    pub fn hot_tries(store: &TripleStore) -> Vec<FrozenTrieEntry> {
        let mut out = Vec::new();
        for table in store.tables() {
            if table.is_empty() {
                continue;
            }
            for subject_first in [true, false] {
                let pairs = if subject_first { table.so_pairs() } else { table.os_pairs() };
                let trie = FrozenTrie::from_sorted(
                    eh_trie::TupleBuffer::from_pairs(pairs),
                    eh_trie::LayoutPolicy::Auto,
                );
                out.push(FrozenTrieEntry {
                    pred: table.pred(),
                    subject_first,
                    trie: Arc::new(trie),
                });
            }
        }
        out
    }

    /// Serialize `store` (plus optional pre-built tries) to `w`.
    /// Returns the total bytes written.
    pub fn write(
        store: &TripleStore,
        tries: &[FrozenTrieEntry],
        mut w: impl Write,
    ) -> Result<u64, SnapshotError> {
        let payload = encode_payload(store, tries);
        let checksum = xxh64(&payload);
        w.write_all(&SNAPSHOT_MAGIC)?;
        w.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        w.write_all(&(payload.len() as u64).to_le_bytes())?;
        w.write_all(&checksum.to_le_bytes())?;
        w.write_all(&payload)?;
        w.flush()?;
        Ok(HEADER_BYTES as u64 + payload.len() as u64)
    }

    /// Serialize to a file path (buffered).
    pub fn write_to_path(
        store: &TripleStore,
        tries: &[FrozenTrieEntry],
        path: impl AsRef<Path>,
    ) -> Result<u64, SnapshotError> {
        StoreSnapshot::write(store, tries, BufWriter::new(File::create(path)?))
    }

    /// Read and verify a snapshot: magic, version, length, checksum, then
    /// structure. All failure modes are `Err`, never panics — corrupt
    /// input must not take a serving process down.
    pub fn read(mut r: impl Read) -> Result<StoreSnapshot, SnapshotError> {
        let mut header = [0u8; HEADER_BYTES];
        read_exact_or_truncated(&mut r, &mut header)?;
        if header[0..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("fixed slice"));
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let payload_len = u64::from_le_bytes(header[12..20].try_into().expect("fixed slice"));
        let checksum = u64::from_le_bytes(header[20..28].try_into().expect("fixed slice"));
        let mut payload = Vec::new();
        r.read_to_end(&mut payload)?;
        if (payload.len() as u64) < payload_len {
            return Err(SnapshotError::Truncated);
        }
        if payload.len() as u64 > payload_len {
            return Err(SnapshotError::Malformed("trailing bytes after payload"));
        }
        if xxh64(&payload) != checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }
        decode_payload(&payload)
    }

    /// Read from a file path. The whole file is slurped in one
    /// (size-hinted) read — on the cold-start critical path, funnelling
    /// a couple hundred KB through a `BufReader`'s 8 KiB window would
    /// just be an extra copy.
    pub fn read_from_path(path: impl AsRef<Path>) -> Result<StoreSnapshot, SnapshotError> {
        let bytes = std::fs::read(path)?;
        StoreSnapshot::read(&bytes[..])
    }
}

fn read_exact_or_truncated(r: &mut impl Read, buf: &mut [u8]) -> Result<(), SnapshotError> {
    r.read_exact(buf).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => SnapshotError::Truncated,
        _ => SnapshotError::Io(e),
    })
}

// ---------------------------------------------------------------- payload

fn encode_payload(store: &TripleStore, tries: &[FrozenTrieEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    // Dictionary.
    let dict = store.dict();
    put_u32(&mut out, dict.len() as u32);
    for (_, term) in dict.iter() {
        let (kind, text) = match term {
            Term::Iri(s) => (0u8, s.as_str()),
            Term::Literal(s) => (1u8, s.as_str()),
        };
        out.push(kind);
        put_u32(&mut out, text.len() as u32);
        out.extend_from_slice(text.as_bytes());
    }
    // Tables, both orders verbatim.
    let tables = store.tables();
    put_u32(&mut out, tables.len() as u32);
    for t in tables {
        put_u32(&mut out, t.pred());
        put_u32(&mut out, t.name().len() as u32);
        out.extend_from_slice(t.name().as_bytes());
        put_u32(&mut out, t.len() as u32);
        for &(a, b) in t.so_pairs() {
            put_u32(&mut out, a);
            put_u32(&mut out, b);
        }
        for &(a, b) in t.os_pairs() {
            put_u32(&mut out, a);
            put_u32(&mut out, b);
        }
    }
    // Frozen tries.
    put_u32(&mut out, tries.len() as u32);
    for e in tries {
        let (arity, num_tuples, levels, arena) = e.trie.raw_parts();
        put_u32(&mut out, e.pred);
        out.push(e.subject_first as u8);
        put_u32(&mut out, arity);
        put_u32(&mut out, num_tuples);
        put_u32(&mut out, levels.len() as u32);
        for &(off, count) in levels {
            put_u32(&mut out, off);
            put_u32(&mut out, count);
        }
        put_u32(&mut out, arena.len() as u32);
        for &w in arena {
            put_u32(&mut out, w);
        }
    }
    out
}

fn decode_payload(bytes: &[u8]) -> Result<StoreSnapshot, SnapshotError> {
    let mut c = Cursor { bytes, pos: 0 };
    // Dictionary.
    let n_terms = c.u32()? as usize;
    let mut terms = Vec::with_capacity(n_terms.min(c.remaining()));
    for _ in 0..n_terms {
        let kind = c.u8()?;
        let text = c.string()?;
        terms.push(match kind {
            0 => Term::Iri(text),
            1 => Term::Literal(text),
            _ => return Err(SnapshotError::Malformed("unknown term kind")),
        });
    }
    // Tables.
    let n_tables = c.u32()? as usize;
    let mut tables = Vec::with_capacity(n_tables.min(c.remaining()));
    let mut seen_preds = std::collections::HashSet::new();
    for _ in 0..n_tables {
        let pred = c.u32()?;
        // Duplicate tables would make `by_pred` (last wins) disagree with
        // whole-store iteration (sees both): reject the inconsistency at
        // the door.
        if !seen_preds.insert(pred) {
            return Err(SnapshotError::Malformed("duplicate predicate table"));
        }
        let name = c.string()?;
        let n_pairs = c.u32()? as usize;
        let so = c.pairs(n_pairs)?;
        let os = c.pairs(n_pairs)?;
        if pred as usize >= terms.len() {
            return Err(SnapshotError::Malformed("table predicate outside dictionary"));
        }
        // One fused pass per order: sorted-unique (so binary searches
        // work) and id-bounded (an out-of-dictionary id surviving into a
        // query result would panic in `Dictionary::decode` much later, on
        // a serving thread — exactly the class of failure the never-panic
        // guarantee exists for).
        for pairs in [&so, &os] {
            let sorted = pairs.windows(2).all(|w| w[0] < w[1]);
            let bounded = pairs.last().is_none_or(|&(a, _)| (a as usize) < terms.len())
                && pairs.iter().all(|&(_, b)| (b as usize) < terms.len());
            if !sorted || !bounded {
                return Err(SnapshotError::Malformed("table pairs not sorted or out of range"));
            }
        }
        // The two orders must describe the same relation, or the same
        // query would answer differently depending on which access order
        // the planner picks. Both are sorted unique and equally long, so
        // membership of every transposed `os` pair in `so` is a full
        // bijection check — O(n log n) binary searches, no re-sort.
        if !os.iter().all(|&(o, s)| so.binary_search(&(s, o)).is_ok()) {
            return Err(SnapshotError::Malformed("table orders are not transposes"));
        }
        tables.push(PairTable::from_sorted_parts(name, pred, so, os));
    }
    let store = TripleStore::from_snapshot_parts(terms, tables);
    // Frozen tries.
    let n_tries = c.u32()? as usize;
    let mut tries = Vec::with_capacity(n_tries.min(c.remaining()));
    let mut seen_orders = std::collections::HashSet::new();
    for _ in 0..n_tries {
        let pred = c.u32()?;
        let subject_first = match c.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Malformed("bad trie order flag")),
        };
        if !seen_orders.insert((pred, subject_first)) {
            return Err(SnapshotError::Malformed("duplicate frozen trie entry"));
        }
        let arity = c.u32()?;
        let num_tuples = c.u32()?;
        let n_levels = c.u32()? as usize;
        let mut levels = Vec::with_capacity(n_levels.min(c.remaining()));
        for _ in 0..n_levels {
            let off = c.u32()?;
            let count = c.u32()?;
            levels.push((off, count));
        }
        let arena_len = c.u32()? as usize;
        let arena = c.words(arena_len)?;
        let trie = FrozenTrie::from_raw_parts(arity, num_tuples, levels, arena)
            .map_err(SnapshotError::Malformed)?;
        // A preloaded trie is served by the catalog as if it were built
        // from the table, so its contents must *be* the table in the
        // claimed order, tuple for tuple — a count or id-range check
        // would let a transposed (or otherwise mislabeled) trie through
        // and silently corrupt every query over its predicate. This walk
        // is an O(n) in-place decode + compare: no sorting, no rebuild,
        // so the zero-copy load path keeps its speedup.
        let Some(table) = store.table(pred) else {
            return Err(SnapshotError::Malformed("frozen trie for an absent table"));
        };
        let pairs = if subject_first { table.so_pairs() } else { table.os_pairs() };
        if !trie.matches_pairs(pairs) {
            return Err(SnapshotError::Malformed("frozen trie does not match its table"));
        }
        tries.push(FrozenTrieEntry { pred, subject_first, trie: Arc::new(trie) });
    }
    if c.remaining() != 0 {
        return Err(SnapshotError::Malformed("unconsumed payload bytes"));
    }
    Ok(StoreSnapshot { store, tries })
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked payload reader: every accessor returns `Err` rather
/// than panicking past the end, and length-prefixed reads validate the
/// length against the remaining bytes *before* allocating.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("fixed slice")))
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?.to_vec();
        String::from_utf8(bytes).map_err(|_| SnapshotError::Malformed("invalid utf-8 text"))
    }

    fn pairs(&mut self, n: usize) -> Result<Vec<(u32, u32)>, SnapshotError> {
        let bytes = self.take(n.checked_mul(8).ok_or(SnapshotError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                (
                    u32::from_le_bytes(c[0..4].try_into().expect("fixed slice")),
                    u32::from_le_bytes(c[4..8].try_into().expect("fixed slice")),
                )
            })
            .collect())
    }

    fn words(&mut self, n: usize) -> Result<Vec<u32>, SnapshotError> {
        let bytes = self.take(n.checked_mul(4).ok_or(SnapshotError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("fixed slice")))
            .collect())
    }
}

// ------------------------------------------------------------------ xxh64

const XXP1: u64 = 0x9E37_79B1_85EB_CA87;
const XXP2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const XXP3: u64 = 0x1656_67B1_9E37_79F9;
const XXP4: u64 = 0x85EB_CA77_C2B2_AE63;
const XXP5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn xx_round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(XXP2)).rotate_left(31).wrapping_mul(XXP1)
}

#[inline]
fn xx_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("fixed slice"))
}

/// XXH64 (seed 0), implemented here because the workspace vendors no
/// external crates. Chosen over CRC-32 deliberately: the checksum runs
/// over the whole payload on the cold-start critical path, and the four
/// independent multiply lanes stream several bytes per cycle where a
/// table-driven CRC plods one — with 64 bits of equally good corruption
/// detection. (This checksum guards against *corruption*; it is not a
/// cryptographic integrity mechanism.)
fn xxh64(bytes: &[u8]) -> u64 {
    let len = bytes.len() as u64;
    let mut h: u64;
    let mut tail = bytes;
    if bytes.len() >= 32 {
        let stripes = bytes.chunks_exact(32);
        tail = stripes.remainder();
        let mut v1 = XXP1.wrapping_add(XXP2);
        let mut v2 = XXP2;
        let mut v3 = 0u64;
        let mut v4 = 0u64.wrapping_sub(XXP1);
        for s in stripes {
            v1 = xx_round(v1, xx_u64(&s[0..8]));
            v2 = xx_round(v2, xx_u64(&s[8..16]));
            v3 = xx_round(v3, xx_u64(&s[16..24]));
            v4 = xx_round(v4, xx_u64(&s[24..32]));
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        for v in [v1, v2, v3, v4] {
            h = (h ^ xx_round(0, v)).wrapping_mul(XXP1).wrapping_add(XXP4);
        }
    } else {
        h = XXP5;
    }
    h = h.wrapping_add(len);
    while tail.len() >= 8 {
        h = (h ^ xx_round(0, xx_u64(tail))).rotate_left(27).wrapping_mul(XXP1).wrapping_add(XXP4);
        tail = &tail[8..];
    }
    if tail.len() >= 4 {
        let k = u32::from_le_bytes(tail[..4].try_into().expect("fixed slice")) as u64;
        h = (h ^ k.wrapping_mul(XXP1)).rotate_left(23).wrapping_mul(XXP2).wrapping_add(XXP3);
        tail = &tail[4..];
    }
    for &b in tail {
        h = (h ^ (b as u64).wrapping_mul(XXP5)).rotate_left(11).wrapping_mul(XXP1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(XXP2);
    h ^= h >> 29;
    h = h.wrapping_mul(XXP3);
    h ^= h >> 32;
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Triple;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn sample_store() -> TripleStore {
        TripleStore::from_triples(vec![
            t("s1", "p", "o1"),
            t("s1", "p", "o2"),
            t("s2", "p", "o1"),
            t("s1", "q", "o2"),
            Triple::new(Term::iri("s2"), Term::iri("q"), Term::literal("lit \"x\"\n")),
        ])
    }

    fn snapshot_bytes(store: &TripleStore) -> Vec<u8> {
        let tries = StoreSnapshot::hot_tries(store);
        let mut buf = Vec::new();
        StoreSnapshot::write(store, &tries, &mut buf).unwrap();
        buf
    }

    #[test]
    fn xxh64_reference_vectors() {
        // Canonical XXH64 (seed 0) vectors, cross-checked against the
        // reference implementation.
        assert_eq!(xxh64(b""), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a"), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc"), 0x44BC_2CF5_AD77_0999);
        assert_eq!(xxh64(b"The quick brown fox jumps over the lazy dog"), 0x0B24_2D36_1FDA_71BC);
    }

    #[test]
    fn roundtrip_is_lossless() {
        let store = sample_store();
        let bytes = snapshot_bytes(&store);
        let snap = StoreSnapshot::read(&bytes[..]).unwrap();
        // Dictionary: identical keys and terms.
        assert_eq!(snap.store.dict().len(), store.dict().len());
        for (k, term) in store.dict().iter() {
            assert_eq!(snap.store.dict().decode(k), term);
        }
        // Tables: identical contents in both orders.
        assert_eq!(snap.store.tables().len(), store.tables().len());
        for (a, b) in store.tables().iter().zip(snap.store.tables()) {
            assert_eq!((a.pred(), a.name()), (b.pred(), b.name()));
            assert_eq!(a.so_pairs(), b.so_pairs());
            assert_eq!(a.os_pairs(), b.os_pairs());
            assert_eq!(a.distinct_subjects(), b.distinct_subjects());
            assert_eq!(a.distinct_objects(), b.distinct_objects());
        }
        assert_eq!(
            store.encoded_triples().collect::<Vec<_>>(),
            snap.store.encoded_triples().collect::<Vec<_>>()
        );
        // Frozen tries: one per (non-empty predicate, order), identical
        // to a fresh build from the loaded table.
        assert_eq!(snap.tries.len(), 2 * store.tables().len());
        for e in &snap.tries {
            let table = snap.store.table(e.pred).unwrap();
            let pairs = if e.subject_first { table.so_pairs() } else { table.os_pairs() };
            let fresh = FrozenTrie::from_sorted(
                eh_trie::TupleBuffer::from_pairs(pairs),
                eh_trie::LayoutPolicy::Auto,
            );
            assert_eq!(*e.trie, fresh);
        }
    }

    #[test]
    fn loaded_store_stays_mutable() {
        let store = sample_store();
        let bytes = snapshot_bytes(&store);
        let mut loaded = StoreSnapshot::read(&bytes[..]).unwrap().store;
        let report = loaded.add_triples(vec![t("s9", "p", "o9"), t("s9", "r", "o9")]);
        assert_eq!(report.added, 2);
        assert_eq!(loaded.num_triples(), store.num_triples() + 2);
        let report = loaded.remove_triples(vec![t("s1", "p", "o1")]);
        assert_eq!(report.removed, 1);
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = TripleStore::new();
        let mut buf = Vec::new();
        StoreSnapshot::write(&store, &[], &mut buf).unwrap();
        let snap = StoreSnapshot::read(&buf[..]).unwrap();
        assert_eq!(snap.store.dict().len(), 0);
        assert!(snap.tries.is_empty());
    }

    #[test]
    fn bad_magic_version_truncation_and_checksum() {
        let store = sample_store();
        let good = snapshot_bytes(&store);

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::BadMagic)));

        let mut bad = good.clone();
        bad[8] = 99;
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::BadVersion(99))));

        for cut in [0, 7, 12, 23, 24, good.len() / 2, good.len() - 1] {
            assert!(
                matches!(StoreSnapshot::read(&good[..cut]), Err(SnapshotError::Truncated)),
                "cut at {cut}"
            );
        }

        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(StoreSnapshot::read(&bad[..]), Err(SnapshotError::ChecksumMismatch)));

        let mut extended = good.clone();
        extended.push(0);
        assert!(StoreSnapshot::read(&extended[..]).is_err());
    }

    #[test]
    fn single_byte_mutations_never_panic() {
        // The corruption property, exhaustively for one small snapshot:
        // every single-byte mutation either still reads (a single flip
        // never collides the checksum, but stay permissive) or returns a
        // typed error — it must never panic.
        // The workspace-level proptest widens this to random multi-byte
        // mutations over random stores.
        let store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        let good = snapshot_bytes(&store);
        for i in 0..good.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = good.clone();
                bad[i] ^= flip;
                let _ = StoreSnapshot::read(&bad[..]);
            }
        }
    }

    #[test]
    fn checksum_valid_out_of_dictionary_ids_are_rejected() {
        // A snapshot can be internally consistent (good magic, version,
        // checksum) and still carry ids the dictionary cannot decode; reading
        // one must be a typed error, never a later decode panic.
        let bogus_table = TripleStore::from_snapshot_parts(
            vec![Term::iri("p")],
            vec![PairTable::from_sorted_parts("p".into(), 0, vec![(5, 6)], vec![(6, 5)])],
        );
        let mut buf = Vec::new();
        StoreSnapshot::write(&bogus_table, &[], &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("pair")),
            "out-of-dictionary pair must be rejected"
        );

        // Same for a shipped frozen trie: right predicate, right tuple
        // count, but values outside the dictionary.
        let store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        let pred = store.resolve_iri("p").unwrap();
        let rogue = FrozenTrie::from_sorted(
            eh_trie::TupleBuffer::from_pairs(&[(7, 8)]),
            eh_trie::LayoutPolicy::Auto,
        );
        let entry = FrozenTrieEntry { pred, subject_first: true, trie: std::sync::Arc::new(rogue) };
        let mut buf = Vec::new();
        StoreSnapshot::write(&store, &[entry], &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("trie")),
            "out-of-dictionary trie value must be rejected"
        );
    }

    #[test]
    fn mislabeled_and_duplicate_entries_are_rejected() {
        // A trie whose order flag lies — the [o, s] trie labeled as
        // subject-major — passes any count/id-range check (same length,
        // same id universe) but would silently transpose every answer
        // over its predicate; only exact content comparison catches it.
        let store = TripleStore::from_triples(vec![t("a", "p", "b"), t("c", "p", "a")]);
        let table = store.table_by_name("p").unwrap();
        let transposed = FrozenTrie::from_sorted(
            eh_trie::TupleBuffer::from_pairs(table.os_pairs()),
            eh_trie::LayoutPolicy::Auto,
        );
        let entry = FrozenTrieEntry {
            pred: table.pred(),
            subject_first: true, // lie: this is the [o, s] trie
            trie: std::sync::Arc::new(transposed),
        };
        let mut buf = Vec::new();
        StoreSnapshot::write(&store, &[entry], &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("match")),
            "a transposed trie must not load"
        );

        // Duplicate (pred, order) trie entries are inconsistent by
        // construction (which one would the catalog serve?).
        let tries = StoreSnapshot::hot_tries(&store);
        let doubled: Vec<FrozenTrieEntry> = tries.iter().chain(tries.iter()).cloned().collect();
        let mut buf = Vec::new();
        StoreSnapshot::write(&store, &doubled, &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("duplicate")),
            "duplicate trie entries must not load"
        );

        // A table whose two orders are each valid but describe different
        // relations would answer the same query differently depending on
        // the access order the planner picks.
        let skewed = TripleStore::from_snapshot_parts(
            vec![Term::iri("a"), Term::iri("p"), Term::iri("b")],
            vec![PairTable::from_sorted_parts("p".into(), 1, vec![(0, 2)], vec![(1, 0)])],
        );
        let mut buf = Vec::new();
        StoreSnapshot::write(&skewed, &[], &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("transpose")),
            "non-transposed orders must not load"
        );

        // Duplicate predicate tables: `by_pred` would answer from one
        // while whole-store iteration sees both.
        let twin = TripleStore::from_snapshot_parts(
            vec![Term::iri("a"), Term::iri("p"), Term::iri("b")],
            vec![
                PairTable::from_sorted_parts("p".into(), 1, vec![(0, 2)], vec![(2, 0)]),
                PairTable::from_sorted_parts("p".into(), 1, vec![(2, 0)], vec![(0, 2)]),
            ],
        );
        let mut buf = Vec::new();
        StoreSnapshot::write(&twin, &[], &mut buf).unwrap();
        assert!(
            matches!(StoreSnapshot::read(&buf[..]), Err(SnapshotError::Malformed(m)) if m.contains("duplicate")),
            "duplicate tables must not load"
        );
    }

    mod corruption_proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The corruption-hardening property (randomised): arbitrary
            /// multi-byte mutations of a small valid snapshot either read
            /// back (only possible when the flips are all no-ops) or
            /// return a typed error — truncation, bad magic/version,
            /// checksum mismatch, or malformed structure — never a panic.
            #[test]
            fn random_mutations_return_err_not_panic(
                flips in proptest::collection::vec((0usize..2048, 1u8..=255), 1..16),
                cut in 0usize..4096,
            ) {
                let store = TripleStore::from_triples(vec![
                    t("a", "p", "b"),
                    t("a", "p", "c"),
                    t("b", "q", "c"),
                ]);
                let good = snapshot_bytes(&store);
                let mut bad = good.clone();
                for &(pos, mask) in &flips {
                    let pos = pos % bad.len();
                    bad[pos] ^= mask;
                }
                if cut < bad.len() * 2 {
                    // Half the cut range truncates, half leaves the file
                    // whole, so both shapes are exercised.
                    bad.truncate(cut.min(bad.len()));
                }
                match StoreSnapshot::read(&bad[..]) {
                    Ok(snap) => {
                        // Only reachable when every flip cancelled out.
                        prop_assert_eq!(bad, good);
                        prop_assert_eq!(snap.store.num_triples(), store.num_triples());
                    }
                    Err(e) => {
                        // The error renders; corruption is diagnosable.
                        prop_assert!(!e.to_string().is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn write_reports_total_bytes() {
        let store = sample_store();
        let mut buf = Vec::new();
        let n = StoreSnapshot::write(&store, &[], &mut buf).unwrap();
        assert_eq!(n, buf.len() as u64);
        assert!(n > 24);
    }

    #[test]
    fn path_roundtrip() {
        let store = sample_store();
        let path = std::env::temp_dir().join(format!("eh-snap-test-{}.snap", std::process::id()));
        let tries = StoreSnapshot::hot_tries(&store);
        StoreSnapshot::write_to_path(&store, &tries, &path).unwrap();
        let snap = StoreSnapshot::read_from_path(&path).unwrap();
        assert_eq!(snap.store.num_triples(), store.num_triples());
        std::fs::remove_file(&path).ok();
        assert!(matches!(StoreSnapshot::read_from_path(&path), Err(SnapshotError::Io(_))));
    }
}
