//! Vertically partitioned predicate tables (paper §IV-A2, after Abadi et
//! al.): one two-column `(subject, object)` table per predicate.

/// A dictionary-encoded two-column table holding every `(subject, object)`
/// pair of one predicate.
///
/// Both sort orders are materialised at [`build`](PairTable::build) time:
/// `so` (subject-major) and `os` (object-major). The WCOJ engine builds
/// tries from either order; the pairwise baselines use them directly as
/// clustered indexes (TripleBit's two-order design).
#[derive(Debug, Clone)]
pub struct PairTable {
    name: String,
    pred: u32,
    so: Vec<(u32, u32)>,
    os: Vec<(u32, u32)>,
    distinct_subjects: usize,
    distinct_objects: usize,
}

impl PairTable {
    /// Build from raw pairs: sorts and deduplicates (RDF set semantics).
    pub fn build(name: String, pred: u32, mut pairs: Vec<(u32, u32)>) -> PairTable {
        pairs.sort_unstable();
        pairs.dedup();
        let so = pairs;
        let mut os: Vec<(u32, u32)> = so.iter().map(|&(s, o)| (o, s)).collect();
        os.sort_unstable();
        let distinct_subjects = count_distinct_firsts(&so);
        let distinct_objects = count_distinct_firsts(&os);
        PairTable { name, pred, so, os, distinct_subjects, distinct_objects }
    }

    /// Rebuild from both pre-sorted orders (the snapshot load path): no
    /// sorting, no deduplication — the distinct counts are recomputed by
    /// a linear scan, everything else is taken as-is. Sortedness is a
    /// debug assertion only; callers are expected to have integrity-
    /// checked the input (the snapshot reader checksums it).
    pub(crate) fn from_sorted_parts(
        name: String,
        pred: u32,
        so: Vec<(u32, u32)>,
        os: Vec<(u32, u32)>,
    ) -> PairTable {
        debug_assert!(so.windows(2).all(|w| w[0] < w[1]), "so pairs must be sorted unique");
        debug_assert!(os.windows(2).all(|w| w[0] < w[1]), "os pairs must be sorted unique");
        debug_assert_eq!(so.len(), os.len());
        let distinct_subjects = count_distinct_firsts(&so);
        let distinct_objects = count_distinct_firsts(&os);
        PairTable { name, pred, so, os, distinct_subjects, distinct_objects }
    }

    /// Predicate IRI text.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dictionary key of the predicate.
    pub fn pred(&self) -> u32 {
        self.pred
    }

    /// Number of distinct `(subject, object)` pairs.
    pub fn len(&self) -> usize {
        self.so.len()
    }

    /// True when the table holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.so.is_empty()
    }

    /// Pairs sorted subject-major: `(s, o)`.
    pub fn so_pairs(&self) -> &[(u32, u32)] {
        &self.so
    }

    /// Pairs sorted object-major: `(o, s)`.
    pub fn os_pairs(&self) -> &[(u32, u32)] {
        &self.os
    }

    /// Number of distinct subjects.
    pub fn distinct_subjects(&self) -> usize {
        self.distinct_subjects
    }

    /// Number of distinct objects.
    pub fn distinct_objects(&self) -> usize {
        self.distinct_objects
    }

    /// All `(s, o)` pairs for one subject, via binary search on the
    /// subject-major order.
    pub fn pairs_for_subject(&self, s: u32) -> &[(u32, u32)] {
        range_for(&self.so, s)
    }

    /// All `(o, s)` pairs for one object, via binary search on the
    /// object-major order.
    pub fn pairs_for_object(&self, o: u32) -> &[(u32, u32)] {
        range_for(&self.os, o)
    }

    /// True when the exact pair is present.
    pub fn contains(&self, s: u32, o: u32) -> bool {
        self.so.binary_search(&(s, o)).is_ok()
    }
}

fn count_distinct_firsts(sorted: &[(u32, u32)]) -> usize {
    let mut n = 0;
    let mut last = None;
    for &(a, _) in sorted {
        if last != Some(a) {
            n += 1;
            last = Some(a);
        }
    }
    n
}

fn range_for(sorted: &[(u32, u32)], key: u32) -> &[(u32, u32)] {
    let lo = sorted.partition_point(|&(a, _)| a < key);
    let hi = sorted.partition_point(|&(a, _)| a <= key);
    &sorted[lo..hi]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PairTable {
        PairTable::build("p".into(), 7, vec![(2, 1), (1, 5), (1, 3), (2, 1), (3, 5)])
    }

    #[test]
    fn build_sorts_and_dedups() {
        let t = table();
        assert_eq!(t.len(), 4);
        assert_eq!(t.so_pairs(), &[(1, 3), (1, 5), (2, 1), (3, 5)]);
        assert_eq!(t.os_pairs(), &[(1, 2), (3, 1), (5, 1), (5, 3)]);
    }

    #[test]
    fn distinct_counts() {
        let t = table();
        assert_eq!(t.distinct_subjects(), 3);
        assert_eq!(t.distinct_objects(), 3);
    }

    #[test]
    fn subject_and_object_ranges() {
        let t = table();
        assert_eq!(t.pairs_for_subject(1), &[(1, 3), (1, 5)]);
        assert_eq!(t.pairs_for_subject(9), &[] as &[(u32, u32)]);
        assert_eq!(t.pairs_for_object(5), &[(5, 1), (5, 3)]);
    }

    #[test]
    fn contains() {
        let t = table();
        assert!(t.contains(2, 1));
        assert!(!t.contains(1, 1));
    }

    #[test]
    fn empty_table() {
        let t = PairTable::build("e".into(), 0, vec![]);
        assert!(t.is_empty());
        assert_eq!(t.distinct_subjects(), 0);
        assert_eq!(t.pairs_for_subject(0), &[] as &[(u32, u32)]);
    }
}
