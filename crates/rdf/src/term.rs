//! RDF terms.

use std::fmt;

/// An RDF term: an IRI or a plain literal.
///
/// LUBM and the paper's workload need nothing richer (no typed literals,
/// language tags, or blank nodes), so the model stays deliberately small.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference, stored without the surrounding angle brackets.
    Iri(String),
    /// A plain literal, stored without the surrounding quotes.
    Literal(String),
}

impl Term {
    /// Construct an IRI term.
    pub fn iri(s: impl Into<String>) -> Term {
        Term::Iri(s.into())
    }

    /// Construct a plain-literal term.
    pub fn literal(s: impl Into<String>) -> Term {
        Term::Literal(s.into())
    }

    /// The raw text of the term (IRI or literal body).
    pub fn as_str(&self) -> &str {
        match self {
            Term::Iri(s) | Term::Literal(s) => s,
        }
    }

    /// True for [`Term::Iri`].
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }
}

impl fmt::Display for Term {
    /// N-Triples surface syntax: `<iri>` or `"literal"`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Literal(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\r' => write!(f, "\\r")?,
                        '\t' => write!(f, "\\t")?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_iri() {
        assert_eq!(Term::iri("http://x/y").to_string(), "<http://x/y>");
    }

    #[test]
    fn display_literal_escapes() {
        let t = Term::literal("a\"b\\c\nd");
        assert_eq!(t.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn accessors() {
        assert!(Term::iri("x").is_iri());
        assert!(!Term::literal("x").is_iri());
        assert_eq!(Term::literal("hello").as_str(), "hello");
    }

    #[test]
    fn ordering_is_stable() {
        // Iri sorts before Literal (enum order) — relied on nowhere, but
        // documented by this test so a change is deliberate.
        assert!(Term::iri("z") < Term::literal("a"));
    }
}
