//! RDF terms.

use std::fmt;

/// An RDF term: an IRI or a plain literal.
///
/// LUBM and the paper's workload need nothing richer (no typed literals,
/// language tags, or blank nodes), so the model stays deliberately small.
///
/// `Hash` is implemented manually (not derived) so that it depends only on
/// the [`kind`](Term::kind) discriminant and the text — the contract the
/// [`Dictionary`](crate::Dictionary)'s allocation-free borrowed probes
/// rely on to hash a bare `&str` identically to the owned term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference, stored without the surrounding angle brackets.
    Iri(String),
    /// A plain literal, stored without the surrounding quotes.
    Literal(String),
}

/// Discriminant of [`Term::Iri`] in the manual `Hash` scheme.
pub(crate) const KIND_IRI: u8 = 0;
/// Discriminant of [`Term::Literal`] in the manual `Hash` scheme.
pub(crate) const KIND_LITERAL: u8 = 1;

/// The one hashing routine shared by [`Term`] and the dictionary's
/// borrowed probes: discriminant byte, text bytes, then a terminator so
/// `("ab", KIND_IRI)` and `("a", KIND_IRI)` followed by junk can't collide
/// by concatenation (mirrors `str`'s own `Hash`).
pub(crate) fn hash_term_parts<H: std::hash::Hasher>(kind: u8, text: &str, state: &mut H) {
    state.write_u8(kind);
    state.write(text.as_bytes());
    state.write_u8(0xff);
}

impl std::hash::Hash for Term {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        hash_term_parts(self.kind(), self.as_str(), state);
    }
}

impl Term {
    /// Construct an IRI term.
    pub fn iri(s: impl Into<String>) -> Term {
        Term::Iri(s.into())
    }

    /// The `Hash` discriminant of this term's variant.
    pub(crate) fn kind(&self) -> u8 {
        match self {
            Term::Iri(_) => KIND_IRI,
            Term::Literal(_) => KIND_LITERAL,
        }
    }

    /// Construct a plain-literal term.
    pub fn literal(s: impl Into<String>) -> Term {
        Term::Literal(s.into())
    }

    /// The raw text of the term (IRI or literal body).
    pub fn as_str(&self) -> &str {
        match self {
            Term::Iri(s) | Term::Literal(s) => s,
        }
    }

    /// True for [`Term::Iri`].
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }
}

impl fmt::Display for Term {
    /// N-Triples surface syntax: `<iri>` or `"literal"`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Literal(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\r' => write!(f, "\\r")?,
                        '\t' => write!(f, "\\t")?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_iri() {
        assert_eq!(Term::iri("http://x/y").to_string(), "<http://x/y>");
    }

    #[test]
    fn display_literal_escapes() {
        let t = Term::literal("a\"b\\c\nd");
        assert_eq!(t.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn accessors() {
        assert!(Term::iri("x").is_iri());
        assert!(!Term::literal("x").is_iri());
        assert_eq!(Term::literal("hello").as_str(), "hello");
    }

    #[test]
    fn ordering_is_stable() {
        // Iri sorts before Literal (enum order) — relied on nowhere, but
        // documented by this test so a change is deliberate.
        assert!(Term::iri("z") < Term::literal("a"));
    }
}
