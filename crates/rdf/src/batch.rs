//! Wire codec for update batches.
//!
//! The write-ahead log (`eh-wal`) persists each applied batch as one
//! opaque payload; this module defines that payload. The format is the
//! snapshot family's dialect — little-endian, length-prefixed,
//! self-describing enough to reject garbage with a typed error instead
//! of a panic — but deliberately *raw-term* rather than
//! dictionary-encoded: log records must replay into an engine whose
//! dictionary has drifted (a cold store, a replica), so they carry the
//! original strings, not ids minted by the writer.
//!
//! Terms are **front-coded**: each stores only the suffix after the
//! prefix it shares with the *same-role* term (subject against previous
//! subject, and so on) of the previous triple in the stream. RDF terms
//! concentrate in a few long namespaces, so consecutive triples usually
//! differ in a handful of trailing bytes — and the log write (the
//! dominant cost of an unsynced append) shrinks with the payload. The
//! shared length is a single byte: namespace prefixes are short, and
//! capping it bounds how far a hostile payload can amplify (see
//! [`decode_update`]).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [n_deletes: u32][n_inserts: u32]
//! then n_deletes + n_inserts triples, deletes first, each:
//!   3 × term, each term:
//!     [kind: u8][shared: u8][suffix_len: u32][suffix utf-8 bytes]
//!   (shared = bytes reused from the previous triple's same-role term;
//!    the first triple's terms front-code against the empty string)
//! ```
//!
//! Deletes precede inserts because that is the order
//! `Engine::update` applies them — a decoded record replays in file
//! order with no reordering logic.

use crate::term::{KIND_IRI, KIND_LITERAL};
use crate::{Term, Triple};
use std::fmt;

/// Front-coding window: at most this many bytes of the previous term
/// may be referenced as shared prefix.
const MAX_SHARED: usize = u8::MAX as usize;

/// Why a batch payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchCodecError {
    /// The payload ends before the declared content does.
    Truncated,
    /// A term carries a kind byte that names no [`Term`] variant.
    BadTermKind(u8),
    /// A term's bytes are not valid UTF-8.
    BadUtf8,
    /// A term claims more shared-prefix bytes than its predecessor has.
    BadSharedPrefix,
    /// Decoding consumed everything declared but bytes remain.
    TrailingBytes(usize),
}

impl fmt::Display for BatchCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchCodecError::Truncated => write!(f, "batch payload is truncated"),
            BatchCodecError::BadTermKind(k) => write!(f, "unknown term kind {k}"),
            BatchCodecError::BadUtf8 => write!(f, "term bytes are not valid utf-8"),
            BatchCodecError::BadSharedPrefix => {
                write!(f, "term shares more prefix bytes than its predecessor has")
            }
            BatchCodecError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after declared content")
            }
        }
    }
}

impl std::error::Error for BatchCodecError {}

/// Length of the common prefix, compared a word at a time: this runs
/// for every term of every logged batch, and byte-wise iteration was
/// measurable against the write itself.
fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i + 8 <= n {
        let x = u64::from_le_bytes(a[i..i + 8].try_into().expect("fixed slice"));
        let y = u64::from_le_bytes(b[i..i + 8].try_into().expect("fixed slice"));
        if x != y {
            return i + ((x ^ y).trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

fn encode_term(out: &mut Vec<u8>, t: &Term, prev: &str) {
    let s = t.as_str();
    // Never scan past the window: `shared` cannot exceed it anyway.
    let window = MAX_SHARED.min(prev.len()).min(s.len());
    let shared = common_prefix_len(&prev.as_bytes()[..window], &s.as_bytes()[..window]);
    let suffix = &s.as_bytes()[shared..];
    // One extend for the whole 6-byte header: this runs three times per
    // logged triple inside the apply path's critical section.
    let mut header = [0u8; 6];
    header[0] = match t {
        Term::Iri(_) => KIND_IRI,
        Term::Literal(_) => KIND_LITERAL,
    };
    header[1] = shared as u8;
    header[2..6].copy_from_slice(&(suffix.len() as u32).to_le_bytes());
    out.extend_from_slice(&header);
    out.extend_from_slice(suffix);
}

/// Encode one update batch (deletes first, then inserts) into the WAL
/// payload format.
pub fn encode_update(deletes: &[Triple], inserts: &[Triple]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_update_into(&mut out, deletes, inserts);
    out
}

/// [`encode_update`], appended to a caller-owned buffer: the WAL
/// encodes a payload per append inside the apply path's critical
/// section, and writing directly into its reused frame buffer spares
/// an allocation and a copy per logged batch. Existing buffer content
/// is left untouched (the WAL's frame header precedes the payload).
pub fn encode_update_into(out: &mut Vec<u8>, deletes: &[Triple], inserts: &[Triple]) {
    // No size pre-pass: growth amortises, and a reused buffer keeps its
    // capacity — in steady state this never reallocates, while a
    // worst-case scan would walk every term string once per batch.
    out.extend_from_slice(&(deletes.len() as u32).to_le_bytes());
    out.extend_from_slice(&(inserts.len() as u32).to_le_bytes());
    let (mut ps, mut pp, mut po) = ("", "", "");
    for t in deletes.iter().chain(inserts) {
        encode_term(out, &t.s, ps);
        encode_term(out, &t.p, pp);
        encode_term(out, &t.o, po);
        (ps, pp, po) = (t.s.as_str(), t.p.as_str(), t.o.as_str());
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BatchCodecError> {
        let end = self.at.checked_add(n).ok_or(BatchCodecError::Truncated)?;
        if end > self.bytes.len() {
            return Err(BatchCodecError::Truncated);
        }
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, BatchCodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("fixed slice")))
    }

    fn term(&mut self, prev: &str) -> Result<Term, BatchCodecError> {
        let kind = self.take(1)?[0];
        let shared = self.take(1)?[0] as usize;
        let suffix_len = self.u32()? as usize;
        if shared > prev.len() {
            return Err(BatchCodecError::BadSharedPrefix);
        }
        let suffix = self.take(suffix_len)?;
        let mut text = Vec::with_capacity(shared + suffix_len);
        text.extend_from_slice(&prev.as_bytes()[..shared]);
        text.extend_from_slice(suffix);
        // Validate the reconstruction, not just the suffix: a shared
        // length that splits the predecessor's multi-byte character can
        // only be caught on the whole string.
        let text = String::from_utf8(text).map_err(|_| BatchCodecError::BadUtf8)?;
        match kind {
            KIND_IRI => Ok(Term::Iri(text)),
            KIND_LITERAL => Ok(Term::Literal(text)),
            k => Err(BatchCodecError::BadTermKind(k)),
        }
    }
}

/// Decode a WAL payload back into `(deletes, inserts)`.
///
/// Total, never panics: any malformed payload yields a typed
/// [`BatchCodecError`]. Trailing bytes after the declared content are an
/// error too — a frame that checksums clean but over-declares its length
/// should be caught here, not silently half-read. Front-coding cannot be
/// weaponised into a decompression bomb: the single-byte `shared` field
/// means 6 bytes of term header reconstruct at most 255 bytes, so the
/// decoded content is linearly bounded at ~43x the payload.
pub fn decode_update(bytes: &[u8]) -> Result<(Vec<Triple>, Vec<Triple>), BatchCodecError> {
    let mut cur = Cursor { bytes, at: 0 };
    let n_del = cur.u32()? as usize;
    let n_ins = cur.u32()? as usize;
    // Cap the pre-allocation by what the payload could physically hold
    // (an empty-suffix triple is 18 bytes of headers): a corrupt count
    // field must not become a huge allocation before `take` notices the
    // truncation.
    let cap = bytes.len() / 18 + 1;
    let mut deletes = Vec::with_capacity(n_del.min(cap));
    let mut inserts = Vec::with_capacity(n_ins.min(cap));
    let (mut ps, mut pp, mut po) = (String::new(), String::new(), String::new());
    for i in 0..n_del + n_ins {
        let s = cur.term(&ps)?;
        let p = cur.term(&pp)?;
        let o = cur.term(&po)?;
        (ps, pp, po) = (s.as_str().to_owned(), p.as_str().to_owned(), o.as_str().to_owned());
        let triple = Triple::new(s, p, o);
        if i < n_del {
            deletes.push(triple);
        } else {
            inserts.push(triple);
        }
    }
    if cur.at != bytes.len() {
        return Err(BatchCodecError::TrailingBytes(bytes.len() - cur.at));
    }
    Ok((deletes, inserts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::literal(o))
    }

    #[test]
    fn roundtrip_mixed_batch() {
        let dels = vec![t("s1", "p", "o1")];
        let ins = vec![t("s2", "p", "o2"), t("s3", "q", "o3")];
        let bytes = encode_update(&dels, &ins);
        let (d2, i2) = decode_update(&bytes).unwrap();
        assert_eq!(d2, dels);
        assert_eq!(i2, ins);
    }

    #[test]
    fn roundtrip_empty() {
        let bytes = encode_update(&[], &[]);
        assert_eq!(bytes.len(), 8);
        let (d, i) = decode_update(&bytes).unwrap();
        assert!(d.is_empty() && i.is_empty());
    }

    #[test]
    fn roundtrip_preserves_term_kinds() {
        let ins = vec![Triple::new(Term::iri("s"), Term::iri("p"), Term::iri("not-a-literal"))];
        let (_, i2) = decode_update(&encode_update(&[], &ins)).unwrap();
        assert!(i2[0].o.is_iri());
    }

    #[test]
    fn front_coding_compresses_shared_namespaces() {
        let ns = "http://example.org/a/very/long/namespace#";
        let ins: Vec<Triple> = (0..32)
            .map(|i| t(&format!("{ns}s{i}"), &format!("{ns}p"), &format!("{ns}o{i}")))
            .collect();
        let bytes = encode_update(&[], &ins);
        let raw: usize =
            ins.iter().map(|t| t.s.as_str().len() + t.p.as_str().len() + t.o.as_str().len()).sum();
        assert!(
            bytes.len() * 4 < raw,
            "shared namespaces must compress well: {} encoded vs {raw} raw",
            bytes.len()
        );
        let (_, i2) = decode_update(&bytes).unwrap();
        assert_eq!(i2, ins);
    }

    #[test]
    fn shared_prefix_beyond_u8_window_still_roundtrips() {
        let long = "x".repeat(2 * MAX_SHARED);
        let ins = vec![t(&format!("{long}1"), "p", "o"), t(&format!("{long}2"), "p", "o")];
        let (_, i2) = decode_update(&encode_update(&[], &ins)).unwrap();
        assert_eq!(i2, ins);
    }

    #[test]
    fn truncated_payload_is_typed() {
        let bytes = encode_update(&[], &[t("s", "p", "o")]);
        for cut in 0..bytes.len() {
            match decode_update(&bytes[..cut]) {
                Err(BatchCodecError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_kind_and_trailing_are_typed() {
        let mut bytes = encode_update(&[], &[t("s", "p", "o")]);
        let kind_at = 8; // first term's kind byte
        bytes[kind_at] = 7;
        assert_eq!(decode_update(&bytes).unwrap_err(), BatchCodecError::BadTermKind(7));
        bytes[kind_at] = 0;
        bytes.push(0xaa);
        assert_eq!(decode_update(&bytes).unwrap_err(), BatchCodecError::TrailingBytes(1));
    }

    #[test]
    fn overdeclared_shared_prefix_is_typed() {
        let mut bytes = encode_update(&[], &[t("s", "p", "o")]);
        // The first triple front-codes against empty strings: any
        // non-zero shared length over-declares.
        let shared_at = 8 + 1;
        bytes[shared_at] = 3;
        assert_eq!(decode_update(&bytes).unwrap_err(), BatchCodecError::BadSharedPrefix);
    }

    #[test]
    fn amplification_is_linearly_bounded() {
        // The worst a payload can do: 6-byte term headers each
        // re-claiming the full 255-byte shared window with no suffix.
        // That decodes fine (it is just repeated terms) but can never
        // exceed ~43 reconstructed bytes per payload byte — the u8
        // `shared` field rules out a decompression bomb by construction.
        let seed = "a".repeat(MAX_SHARED);
        let mut bytes = encode_update(&[], &[t(&seed, &seed, &seed)]);
        let extra = 1024u32;
        bytes[4..8].copy_from_slice(&(1 + extra).to_le_bytes());
        for _ in 0..extra {
            for _ in 0..3 {
                bytes.push(KIND_IRI);
                bytes.push(u8::MAX);
                bytes.extend_from_slice(&0u32.to_le_bytes());
            }
        }
        let (_, ins) = decode_update(&bytes).unwrap();
        let decoded: usize =
            ins.iter().map(|t| t.s.as_str().len() + t.p.as_str().len() + t.o.as_str().len()).sum();
        assert!(decoded <= 43 * bytes.len(), "decoded {decoded} from {} bytes", bytes.len());
    }

    #[test]
    fn huge_count_does_not_overallocate() {
        let mut bytes = vec![0u8; 8];
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_update(&bytes).unwrap_err(), BatchCodecError::Truncated);
    }

    #[test]
    fn bad_utf8_is_typed() {
        let mut bytes = encode_update(&[], &[t("s", "p", "o")]);
        // Clobber the subject's one-byte text with an invalid UTF-8 byte.
        let text_at = 8 + 1 + 1 + 4;
        bytes[text_at] = 0xff;
        assert_eq!(decode_update(&bytes).unwrap_err(), BatchCodecError::BadUtf8);
    }

    #[test]
    fn shared_length_splitting_a_multibyte_char_is_typed() {
        // Previous subject ends in a 2-byte char; the next term claims a
        // shared prefix that cuts through it and appends an ASCII byte —
        // reconstruction is invalid UTF-8 and must say so.
        let prev = "ab\u{00e9}"; // 4 bytes: 'a' 'b' 0xc3 0xa9
        let ins = vec![t(prev, "p", "o"), t("abX", "p", "o")];
        let mut bytes = encode_update(&[], &ins);
        // Second triple's subject: kind, shared=2 ("ab"), len=1, "X".
        // Locate it: first triple is 3 terms of (6 + len) bytes.
        let first = 6 + 4 + 6 + 1 + 6 + 1;
        let shared_at = 8 + first + 1;
        assert_eq!(bytes[shared_at], 2, "fixture drifted from the layout");
        bytes[shared_at] = 3; // cut through the 0xc3 0xa9 pair
        assert_eq!(decode_update(&bytes).unwrap_err(), BatchCodecError::BadUtf8);
    }

    mod codec_proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_term() -> impl Strategy<Value = Term> {
            (0u8..2, proptest::collection::vec(0u8..38, 0..16)).prop_map(|(kind, picks)| {
                let text: String = picks
                    .into_iter()
                    .map(|c| match c {
                        0..=25 => char::from(b'a' + c),
                        26..=35 => char::from(b'0' + c - 26),
                        36 => ':',
                        _ => '/',
                    })
                    .collect();
                if kind == 0 {
                    Term::iri(text)
                } else {
                    Term::literal(text)
                }
            })
        }

        fn arb_triples(max: usize) -> impl Strategy<Value = Vec<Triple>> {
            proptest::collection::vec(
                (arb_term(), arb_term(), arb_term()).prop_map(|(s, p, o)| Triple::new(s, p, o)),
                0..max,
            )
        }

        proptest! {
            #[test]
            fn roundtrip(dels in arb_triples(6), ins in arb_triples(6)) {
                let bytes = encode_update(&dels, &ins);
                let (d2, i2) = decode_update(&bytes).unwrap();
                prop_assert_eq!(d2, dels);
                prop_assert_eq!(i2, ins);
            }

            // Mutating any single byte must never panic: the decoder is
            // total. (It may still succeed — e.g. a flipped literal byte
            // is just a different literal.)
            #[test]
            fn single_byte_mutation_is_total(
                ins in arb_triples(4),
                at in 0usize..4096,
                flip in 1u8..=255,
            ) {
                let mut bytes = encode_update(&[], &ins);
                if bytes.is_empty() { return Ok(()); }
                let at = at % bytes.len();
                bytes[at] ^= flip;
                let _ = decode_update(&bytes);
            }
        }
    }
}
