//! The in-memory triple store: dictionary + vertically partitioned tables.

use std::collections::HashMap;

use crate::dict::Dictionary;
use crate::term::Term;
use crate::triple::{EncodedTriple, Triple};
use crate::vp::PairTable;

/// An in-memory RDF store in the paper's storage model: every term is
/// dictionary-encoded to a `u32` and triples are vertically partitioned
/// into one [`PairTable`] per predicate (§II-A1, §IV-A2).
///
/// Loading is two-phase: [`insert`](TripleStore::insert) buffers raw pairs,
/// and [`commit`](TripleStore::commit) (or the bulk
/// [`from_triples`](TripleStore::from_triples)) sorts and deduplicates the
/// tables. Read accessors panic on an uncommitted store to make misuse
/// loud rather than subtly stale.
#[derive(Debug, Default)]
pub struct TripleStore {
    dict: Dictionary,
    tables: Vec<PairTable>,
    by_pred: HashMap<u32, usize>,
    pending: HashMap<u32, Vec<(u32, u32)>>,
    pending_names: Vec<(u32, String)>,
    n_pending: usize,
}

/// Summary statistics for a committed store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct triples across all predicates.
    pub triples: usize,
    /// Number of predicates (= vertically partitioned tables).
    pub predicates: usize,
    /// Distinct dictionary-encoded terms.
    pub terms: usize,
}

impl TripleStore {
    /// An empty store.
    pub fn new() -> TripleStore {
        TripleStore::default()
    }

    /// Bulk-build a committed store.
    pub fn from_triples(triples: impl IntoIterator<Item = Triple>) -> TripleStore {
        let mut store = TripleStore::new();
        for t in triples {
            store.insert(t);
        }
        store.commit();
        store
    }

    /// Buffer one triple (call [`commit`](TripleStore::commit) before reading).
    pub fn insert(&mut self, t: Triple) {
        let s = self.dict.encode(&t.s);
        let p = self.dict.encode(&t.p);
        let o = self.dict.encode(&t.o);
        self.insert_encoded_raw(t.p.as_str(), s, p, o);
    }

    fn insert_encoded_raw(&mut self, pred_name: &str, s: u32, p: u32, o: u32) {
        if !self.by_pred.contains_key(&p) && !self.pending.contains_key(&p) {
            // Remember the predicate name for table construction at commit.
            self.pending_names.push((p, pred_name.to_string()));
        }
        self.pending.entry(p).or_default().push((s, o));
        self.n_pending += 1;
    }

    /// Sort, deduplicate, and merge all buffered pairs into the tables.
    pub fn commit(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let names: HashMap<u32, String> = self.pending_names.drain(..).collect();
        let pending = std::mem::take(&mut self.pending);
        self.n_pending = 0;
        for (p, mut pairs) in pending {
            match self.by_pred.get(&p) {
                Some(&idx) => {
                    // Merge with the existing table: rebuild from the union.
                    let old = &self.tables[idx];
                    pairs.extend_from_slice(old.so_pairs());
                    let name = old.name().to_string();
                    self.tables[idx] = PairTable::build(name, p, pairs);
                }
                None => {
                    let name = names
                        .get(&p)
                        .cloned()
                        .unwrap_or_else(|| self.dict.decode(p).as_str().to_string());
                    let idx = self.tables.len();
                    self.tables.push(PairTable::build(name, p, pairs));
                    self.by_pred.insert(p, idx);
                }
            }
        }
    }

    fn assert_committed(&self) {
        assert!(
            self.pending.is_empty(),
            "TripleStore read before commit(): {} pending pairs",
            self.n_pending
        );
    }

    /// The term dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Encode a term, assigning a fresh key if unseen. Exposed for query
    /// frontends that need ids for constants before running.
    pub fn encode_term(&mut self, t: &Term) -> u32 {
        self.dict.encode(t)
    }

    /// Dictionary key of an IRI, if present.
    pub fn resolve_iri(&self, iri: &str) -> Option<u32> {
        self.dict.lookup_iri(iri)
    }

    /// Table for a predicate key.
    pub fn table(&self, pred: u32) -> Option<&PairTable> {
        self.assert_committed();
        self.by_pred.get(&pred).map(|&i| &self.tables[i])
    }

    /// Table for a predicate IRI.
    pub fn table_by_name(&self, iri: &str) -> Option<&PairTable> {
        self.resolve_iri(iri).and_then(|p| self.table(p))
    }

    /// All predicate tables.
    pub fn tables(&self) -> &[PairTable] {
        self.assert_committed();
        &self.tables
    }

    /// Total distinct triples.
    pub fn num_triples(&self) -> usize {
        self.assert_committed();
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Iterate every triple in encoded form (predicate-major order).
    pub fn encoded_triples(&self) -> impl Iterator<Item = EncodedTriple> + '_ {
        self.assert_committed();
        self.tables.iter().flat_map(|t| {
            let p = t.pred();
            t.so_pairs().iter().map(move |&(s, o)| EncodedTriple { s, p, o })
        })
    }

    /// Decode an encoded triple back to terms.
    pub fn decode_triple(&self, t: EncodedTriple) -> Triple {
        Triple::new(
            self.dict.decode(t.s).clone(),
            self.dict.decode(t.p).clone(),
            self.dict.decode(t.o).clone(),
        )
    }

    /// Summary statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            triples: self.num_triples(),
            predicates: self.tables.len(),
            terms: self.dict.len(),
        }
    }
}

impl TripleStore {
    #[doc(hidden)]
    pub fn __invariant_check(&self) -> bool {
        self.tables.len() == self.by_pred.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn bulk_build_and_stats() {
        let store = TripleStore::from_triples(vec![
            t("s1", "p1", "o1"),
            t("s1", "p1", "o1"), // duplicate collapses
            t("s2", "p1", "o1"),
            t("s1", "p2", "o2"),
        ]);
        let stats = store.stats();
        assert_eq!(stats.triples, 3);
        assert_eq!(stats.predicates, 2);
        assert_eq!(store.table_by_name("p1").unwrap().len(), 2);
    }

    #[test]
    fn incremental_commit_merges() {
        let mut store = TripleStore::new();
        store.insert(t("a", "p", "b"));
        store.commit();
        assert_eq!(store.num_triples(), 1);
        store.insert(t("c", "p", "d"));
        store.insert(t("a", "p", "b")); // dup with committed data
        store.commit();
        assert_eq!(store.num_triples(), 2);
    }

    #[test]
    #[should_panic(expected = "before commit")]
    fn reading_uncommitted_panics() {
        let mut store = TripleStore::new();
        store.insert(t("a", "p", "b"));
        let _ = store.num_triples();
    }

    #[test]
    fn encoded_roundtrip() {
        let store = TripleStore::from_triples(vec![t("s", "p", "o")]);
        let enc: Vec<_> = store.encoded_triples().collect();
        assert_eq!(enc.len(), 1);
        assert_eq!(store.decode_triple(enc[0]), t("s", "p", "o"));
    }

    #[test]
    fn resolve_and_table_lookup() {
        let store = TripleStore::from_triples(vec![t("s", "p", "o")]);
        let pid = store.resolve_iri("p").unwrap();
        assert_eq!(store.table(pid).unwrap().name(), "p");
        assert!(store.resolve_iri("absent").is_none());
        assert!(store.table(9999).is_none());
    }

    #[test]
    fn commit_on_empty_is_noop() {
        let mut store = TripleStore::new();
        store.commit();
        assert_eq!(store.num_triples(), 0);
        assert!(store.__invariant_check());
    }
}
