//! The in-memory triple store: dictionary + vertically partitioned tables.

use std::collections::HashMap;

use crate::dict::Dictionary;
use crate::term::Term;
use crate::triple::{EncodedTriple, Triple};
use crate::vp::PairTable;

/// An in-memory RDF store in the paper's storage model: every term is
/// dictionary-encoded to a `u32` and triples are vertically partitioned
/// into one [`PairTable`] per predicate (§II-A1, §IV-A2).
///
/// Loading is two-phase: [`insert`](TripleStore::insert) buffers raw pairs,
/// and [`commit`](TripleStore::commit) (or the bulk
/// [`from_triples`](TripleStore::from_triples)) sorts and deduplicates the
/// tables. Read accessors panic on an uncommitted store to make misuse
/// loud rather than subtly stale.
///
/// A committed store can also be mutated in place:
/// [`add_triples`](TripleStore::add_triples) and
/// [`remove_triples`](TripleStore::remove_triples) merge a batch into the
/// affected tables (through the same sort/dedup machinery) and report
/// which predicates actually changed, so an index layer can invalidate
/// only the tries those predicates back. Removal never shrinks the
/// dictionary and leaves emptied tables in place — term keys stay stable
/// for the lifetime of the store.
#[derive(Debug, Default, Clone)]
pub struct TripleStore {
    dict: Dictionary,
    tables: Vec<PairTable>,
    by_pred: HashMap<u32, usize>,
    pending: HashMap<u32, Vec<(u32, u32)>>,
    pending_names: Vec<(u32, String)>,
    n_pending: usize,
}

/// Summary statistics for a committed store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct triples across all predicates.
    pub triples: usize,
    /// Number of predicates (= vertically partitioned tables).
    pub predicates: usize,
    /// Distinct dictionary-encoded terms.
    pub terms: usize,
}

/// What a mutation actually changed, in dictionary-encoded terms.
///
/// "Actually" is load-bearing: inserting a resident triple or deleting an
/// absent one changes nothing and is not reported, so downstream index
/// invalidation stays proportional to real change, not batch size.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Pairs newly added across all predicates.
    pub added: usize,
    /// Pairs removed across all predicates.
    pub removed: usize,
    /// Keys of predicates whose tables changed, sorted ascending.
    pub changed_preds: Vec<u32>,
}

impl UpdateReport {
    /// True when the mutation was a no-op on the table contents.
    pub fn is_empty(&self) -> bool {
        self.changed_preds.is_empty()
    }

    /// Fold another report into this one (counts add, predicate sets
    /// union).
    pub fn merge(&mut self, other: UpdateReport) {
        self.added += other.added;
        self.removed += other.removed;
        self.changed_preds.extend(other.changed_preds);
        self.changed_preds.sort_unstable();
        self.changed_preds.dedup();
    }
}

impl TripleStore {
    /// An empty store.
    pub fn new() -> TripleStore {
        TripleStore::default()
    }

    /// Bulk-build a committed store.
    pub fn from_triples(triples: impl IntoIterator<Item = Triple>) -> TripleStore {
        let mut store = TripleStore::new();
        for t in triples {
            store.insert(t);
        }
        store.commit();
        store
    }

    /// Reassemble a committed store from snapshot parts: the dictionary's
    /// terms in key order plus fully built tables. The `by_pred` index is
    /// rebuilt; nothing is sorted or re-encoded.
    pub(crate) fn from_snapshot_parts(terms: Vec<Term>, tables: Vec<PairTable>) -> TripleStore {
        let by_pred = tables.iter().enumerate().map(|(i, t)| (t.pred(), i)).collect();
        TripleStore {
            dict: Dictionary::from_terms(terms),
            tables,
            by_pred,
            pending: HashMap::new(),
            pending_names: Vec::new(),
            n_pending: 0,
        }
    }

    /// Buffer one triple (call [`commit`](TripleStore::commit) before reading).
    pub fn insert(&mut self, t: Triple) {
        let s = self.dict.encode(&t.s);
        let p = self.dict.encode(&t.p);
        let o = self.dict.encode(&t.o);
        self.insert_encoded_raw(t.p.as_str(), s, p, o);
    }

    fn insert_encoded_raw(&mut self, pred_name: &str, s: u32, p: u32, o: u32) {
        if !self.by_pred.contains_key(&p) && !self.pending.contains_key(&p) {
            // Remember the predicate name for table construction at commit.
            self.pending_names.push((p, pred_name.to_string()));
        }
        self.pending.entry(p).or_default().push((s, o));
        self.n_pending += 1;
    }

    /// Sort, deduplicate, and merge all buffered pairs into the tables.
    pub fn commit(&mut self) {
        let _ = self.commit_report();
    }

    /// [`commit`](TripleStore::commit), reporting which predicate tables
    /// actually changed. A table whose pending pairs were all already
    /// resident is left untouched (not rebuilt, not reported).
    pub fn commit_report(&mut self) -> UpdateReport {
        let mut report = UpdateReport::default();
        if self.pending.is_empty() {
            return report;
        }
        let names: HashMap<u32, String> = self.pending_names.drain(..).collect();
        let pending = std::mem::take(&mut self.pending);
        self.n_pending = 0;
        for (p, mut pairs) in pending {
            pairs.sort_unstable();
            pairs.dedup();
            match self.by_pred.get(&p) {
                Some(&idx) => {
                    // Merge with the existing table: rebuild from the
                    // union, but only when something genuinely new landed.
                    let old = &self.tables[idx];
                    pairs.retain(|&(s, o)| !old.contains(s, o));
                    if pairs.is_empty() {
                        continue;
                    }
                    report.added += pairs.len();
                    report.changed_preds.push(p);
                    pairs.extend_from_slice(old.so_pairs());
                    let name = old.name().to_string();
                    self.tables[idx] = PairTable::build(name, p, pairs);
                }
                None => {
                    let name = names
                        .get(&p)
                        .cloned()
                        .unwrap_or_else(|| self.dict.decode(p).as_str().to_string());
                    let idx = self.tables.len();
                    self.tables.push(PairTable::build(name, p, pairs));
                    self.by_pred.insert(p, idx);
                    report.added += self.tables[idx].len();
                    report.changed_preds.push(p);
                }
            }
        }
        report.changed_preds.sort_unstable();
        report
    }

    /// Post-commit insertion: encode and merge a batch of triples,
    /// growing the dictionary as needed, and report what changed.
    ///
    /// # Panics
    /// Panics when called on an uncommitted store (mixed two-phase and
    /// live mutation would make `insert`/`commit` bookkeeping ambiguous).
    pub fn add_triples(&mut self, triples: impl IntoIterator<Item = Triple>) -> UpdateReport {
        self.assert_committed();
        for t in triples {
            self.insert(t);
        }
        self.commit_report()
    }

    /// Post-commit removal: delete a batch of triples from the affected
    /// tables and report what changed. Triples naming unknown terms or
    /// predicates are ignored (they cannot be resident). The dictionary
    /// never shrinks and emptied tables remain (empty) so predicate keys
    /// and table identity stay stable.
    ///
    /// # Panics
    /// Panics when called on an uncommitted store.
    pub fn remove_triples(&mut self, triples: impl IntoIterator<Item = Triple>) -> UpdateReport {
        self.assert_committed();
        let mut victims: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
        for t in triples {
            let (Some(s), Some(p), Some(o)) =
                (self.dict.lookup(&t.s), self.dict.lookup(&t.p), self.dict.lookup(&t.o))
            else {
                continue;
            };
            if self.by_pred.contains_key(&p) {
                victims.entry(p).or_default().push((s, o));
            }
        }
        let mut report = UpdateReport::default();
        for (p, mut gone) in victims {
            gone.sort_unstable();
            gone.dedup();
            let idx = self.by_pred[&p];
            let old = &self.tables[idx];
            let kept: Vec<(u32, u32)> = old
                .so_pairs()
                .iter()
                .copied()
                .filter(|pr| gone.binary_search(pr).is_err())
                .collect();
            let removed = old.len() - kept.len();
            if removed > 0 {
                let name = old.name().to_string();
                self.tables[idx] = PairTable::build(name, p, kept);
                report.removed += removed;
                report.changed_preds.push(p);
            }
        }
        report.changed_preds.sort_unstable();
        report
    }

    fn assert_committed(&self) {
        assert!(
            self.pending.is_empty(),
            "TripleStore read before commit(): {} pending pairs",
            self.n_pending
        );
    }

    /// The term dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Encode a term, assigning a fresh key if unseen. Exposed for query
    /// frontends that need ids for constants before running.
    pub fn encode_term(&mut self, t: &Term) -> u32 {
        self.dict.encode(t)
    }

    /// Dictionary key of an IRI, if present.
    pub fn resolve_iri(&self, iri: &str) -> Option<u32> {
        self.dict.lookup_iri(iri)
    }

    /// Table for a predicate key.
    pub fn table(&self, pred: u32) -> Option<&PairTable> {
        self.assert_committed();
        self.by_pred.get(&pred).map(|&i| &self.tables[i])
    }

    /// Table for a predicate IRI.
    pub fn table_by_name(&self, iri: &str) -> Option<&PairTable> {
        self.resolve_iri(iri).and_then(|p| self.table(p))
    }

    /// All predicate tables.
    pub fn tables(&self) -> &[PairTable] {
        self.assert_committed();
        &self.tables
    }

    /// Total distinct triples.
    pub fn num_triples(&self) -> usize {
        self.assert_committed();
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Iterate every triple in encoded form (predicate-major order).
    pub fn encoded_triples(&self) -> impl Iterator<Item = EncodedTriple> + '_ {
        self.assert_committed();
        self.tables.iter().flat_map(|t| {
            let p = t.pred();
            t.so_pairs().iter().map(move |&(s, o)| EncodedTriple { s, p, o })
        })
    }

    /// Decode an encoded triple back to terms.
    pub fn decode_triple(&self, t: EncodedTriple) -> Triple {
        Triple::new(
            self.dict.decode(t.s).clone(),
            self.dict.decode(t.p).clone(),
            self.dict.decode(t.o).clone(),
        )
    }

    /// Summary statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            triples: self.num_triples(),
            predicates: self.tables.len(),
            terms: self.dict.len(),
        }
    }
}

impl TripleStore {
    #[doc(hidden)]
    pub fn __invariant_check(&self) -> bool {
        self.tables.len() == self.by_pred.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn bulk_build_and_stats() {
        let store = TripleStore::from_triples(vec![
            t("s1", "p1", "o1"),
            t("s1", "p1", "o1"), // duplicate collapses
            t("s2", "p1", "o1"),
            t("s1", "p2", "o2"),
        ]);
        let stats = store.stats();
        assert_eq!(stats.triples, 3);
        assert_eq!(stats.predicates, 2);
        assert_eq!(store.table_by_name("p1").unwrap().len(), 2);
    }

    #[test]
    fn incremental_commit_merges() {
        let mut store = TripleStore::new();
        store.insert(t("a", "p", "b"));
        store.commit();
        assert_eq!(store.num_triples(), 1);
        store.insert(t("c", "p", "d"));
        store.insert(t("a", "p", "b")); // dup with committed data
        store.commit();
        assert_eq!(store.num_triples(), 2);
    }

    #[test]
    #[should_panic(expected = "before commit")]
    fn reading_uncommitted_panics() {
        let mut store = TripleStore::new();
        store.insert(t("a", "p", "b"));
        let _ = store.num_triples();
    }

    #[test]
    fn encoded_roundtrip() {
        let store = TripleStore::from_triples(vec![t("s", "p", "o")]);
        let enc: Vec<_> = store.encoded_triples().collect();
        assert_eq!(enc.len(), 1);
        assert_eq!(store.decode_triple(enc[0]), t("s", "p", "o"));
    }

    #[test]
    fn resolve_and_table_lookup() {
        let store = TripleStore::from_triples(vec![t("s", "p", "o")]);
        let pid = store.resolve_iri("p").unwrap();
        assert_eq!(store.table(pid).unwrap().name(), "p");
        assert!(store.resolve_iri("absent").is_none());
        assert!(store.table(9999).is_none());
    }

    #[test]
    fn commit_on_empty_is_noop() {
        let mut store = TripleStore::new();
        store.commit();
        assert_eq!(store.num_triples(), 0);
        assert!(store.__invariant_check());
    }

    #[test]
    fn add_triples_reports_only_real_change() {
        let mut store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        let p = store.resolve_iri("p").unwrap();
        // One duplicate, one new pair on p, one brand-new predicate.
        let report = store.add_triples(vec![t("a", "p", "b"), t("c", "p", "d"), t("a", "q", "b")]);
        let q = store.resolve_iri("q").unwrap();
        assert_eq!(report.added, 2);
        assert_eq!(report.removed, 0);
        assert_eq!(report.changed_preds, {
            let mut v = vec![p, q];
            v.sort_unstable();
            v
        });
        assert_eq!(store.num_triples(), 3);
        assert!(store
            .table_by_name("p")
            .unwrap()
            .contains(store.resolve_iri("c").unwrap(), store.resolve_iri("d").unwrap()));
        assert!(store.__invariant_check());
    }

    #[test]
    fn add_of_resident_triples_is_reported_empty() {
        let mut store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        let report = store.add_triples(vec![t("a", "p", "b"), t("a", "p", "b")]);
        assert!(report.is_empty());
        assert_eq!((report.added, report.removed), (0, 0));
        assert_eq!(store.num_triples(), 1);
    }

    #[test]
    fn remove_triples_reports_and_keeps_empty_tables() {
        let mut store =
            TripleStore::from_triples(vec![t("a", "p", "b"), t("c", "p", "d"), t("a", "q", "b")]);
        let p = store.resolve_iri("p").unwrap();
        let report = store.remove_triples(vec![
            t("a", "p", "b"),
            t("a", "p", "b"),      // duplicate victim counts once
            t("x", "p", "y"),      // absent terms: ignored
            t("a", "nosuch", "b"), // unknown predicate: ignored
        ]);
        assert_eq!(report.removed, 1);
        assert_eq!(report.added, 0);
        assert_eq!(report.changed_preds, vec![p]);
        assert_eq!(store.num_triples(), 2);
        // Removing the rest of p empties but does not drop the table.
        let report = store.remove_triples(vec![t("c", "p", "d")]);
        assert_eq!(report.removed, 1);
        let table = store.table_by_name("p").unwrap();
        assert!(table.is_empty());
        assert_eq!(store.stats().predicates, 2);
        assert!(store.__invariant_check());
    }

    #[test]
    fn update_report_merge_unions_predicates() {
        let mut a = UpdateReport { added: 1, removed: 0, changed_preds: vec![1, 3] };
        a.merge(UpdateReport { added: 2, removed: 4, changed_preds: vec![2, 3] });
        assert_eq!(a, UpdateReport { added: 3, removed: 4, changed_preds: vec![1, 2, 3] });
    }

    #[test]
    fn add_then_remove_roundtrips_to_original_contents() {
        let mut store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        let before: Vec<_> = store.encoded_triples().collect();
        store.add_triples(vec![t("x", "p", "y"), t("x", "r", "y")]);
        store.remove_triples(vec![t("x", "p", "y"), t("x", "r", "y")]);
        let after: Vec<_> = store.encoded_triples().collect();
        assert_eq!(before, after);
    }
}
