//! The in-memory triple store: dictionary + vertically partitioned tables.

use std::collections::HashMap;

use crate::dict::Dictionary;
use crate::term::Term;
use crate::triple::{EncodedTriple, Triple};
use crate::vp::PairTable;

/// An in-memory RDF store in the paper's storage model: every term is
/// dictionary-encoded to a `u32` and triples are vertically partitioned
/// into one [`PairTable`] per predicate (§II-A1, §IV-A2).
///
/// Loading is two-phase: [`insert`](TripleStore::insert) buffers raw pairs,
/// and [`commit`](TripleStore::commit) (or the bulk
/// [`from_triples`](TripleStore::from_triples)) sorts and deduplicates the
/// tables. Read accessors panic on an uncommitted store to make misuse
/// loud rather than subtly stale.
///
/// A committed store can also be mutated in place, two ways:
///
/// * **Eagerly** — [`add_triples`](TripleStore::add_triples) and
///   [`remove_triples`](TripleStore::remove_triples) merge a batch into
///   the affected tables (through the same sort/dedup machinery). This
///   pays a full table rebuild per changed predicate.
/// * **Staged (LSM-style)** —
///   [`stage_add_triples`](TripleStore::stage_add_triples) and
///   [`stage_remove_triples`](TripleStore::stage_remove_triples) record
///   the batch as a sorted per-predicate [`PredDelta`] (inserts +
///   tombstones) in O(delta) without touching the base tables; a later
///   [`compact_pred`](TripleStore::compact_pred) /
///   [`compact_all`](TripleStore::compact_all) folds deltas into fresh
///   tables off the hot path. Logical accessors ([`num_triples`],
///   [`encoded_triples`], [`stats`]) always report the merged view;
///   [`table`](TripleStore::table) exposes the frozen **base** only, with
///   [`delta`](TripleStore::delta) carrying the rest.
///
/// Both ways report which predicates actually changed, so an index layer
/// can invalidate only the tries those predicates back. Removal never
/// shrinks the dictionary and leaves emptied tables in place — term keys
/// stay stable for the lifetime of the store.
///
/// [`num_triples`]: TripleStore::num_triples
/// [`encoded_triples`]: TripleStore::encoded_triples
/// [`stats`]: TripleStore::stats
#[derive(Debug, Default, Clone)]
pub struct TripleStore {
    dict: Dictionary,
    tables: Vec<PairTable>,
    by_pred: HashMap<u32, usize>,
    deltas: HashMap<u32, PredDelta>,
    pending: HashMap<u32, Vec<(u32, u32)>>,
    pending_names: Vec<(u32, String)>,
    n_pending: usize,
}

/// Staged, uncompacted mutations for one predicate: sorted insert pairs
/// disjoint from the base table and sorted tombstone pairs resident in
/// it. Both slices are subject-major `(s, o)`; consumers needing the
/// object-major orientation permute and re-sort (deltas are small).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PredDelta {
    ins: Vec<(u32, u32)>,
    del: Vec<(u32, u32)>,
}

impl PredDelta {
    /// Staged insert pairs, sorted `(s, o)`, none resident in the base.
    pub fn ins_pairs(&self) -> &[(u32, u32)] {
        &self.ins
    }

    /// Staged tombstone pairs, sorted `(s, o)`, all resident in the base.
    pub fn del_pairs(&self) -> &[(u32, u32)] {
        &self.del
    }

    /// Total staged pairs (inserts + tombstones).
    pub fn len(&self) -> usize {
        self.ins.len() + self.del.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.ins.is_empty() && self.del.is_empty()
    }
}

/// Three-way linear merge `(base − del) ∪ ins` over sorted-unique pair
/// slices — the compaction kernel, O(base + delta).
fn merge_pairs(base: &[(u32, u32)], del: &[(u32, u32)], ins: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(base.len() + ins.len() - del.len().min(base.len()));
    let mut di = del.iter().peekable();
    let mut ii = ins.iter().peekable();
    for &pair in base {
        while di.next_if(|&&d| d < pair).is_some() {}
        if di.next_if(|&&d| d == pair).is_some() {
            continue;
        }
        while let Some(&&i) = ii.peek() {
            if i < pair {
                out.push(i);
                ii.next();
            } else {
                break;
            }
        }
        if ii.next_if(|&&i| i == pair).is_some() {
            // Invariant says ins ∩ base = ∅; stay set-semantic anyway.
        }
        out.push(pair);
    }
    out.extend(ii.copied());
    out
}

/// Summary statistics for a committed store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct triples across all predicates.
    pub triples: usize,
    /// Number of predicates (= vertically partitioned tables).
    pub predicates: usize,
    /// Distinct dictionary-encoded terms.
    pub terms: usize,
}

/// What a mutation actually changed, in dictionary-encoded terms.
///
/// "Actually" is load-bearing: inserting a resident triple or deleting an
/// absent one changes nothing and is not reported, so downstream index
/// invalidation stays proportional to real change, not batch size.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Pairs newly added across all predicates.
    pub added: usize,
    /// Pairs removed across all predicates.
    pub removed: usize,
    /// Keys of predicates whose tables changed, sorted ascending.
    pub changed_preds: Vec<u32>,
}

impl UpdateReport {
    /// True when the mutation was a no-op on the table contents.
    pub fn is_empty(&self) -> bool {
        self.changed_preds.is_empty()
    }

    /// Fold another report into this one (counts add, predicate sets
    /// union).
    pub fn merge(&mut self, other: UpdateReport) {
        self.added += other.added;
        self.removed += other.removed;
        self.changed_preds.extend(other.changed_preds);
        self.changed_preds.sort_unstable();
        self.changed_preds.dedup();
    }
}

impl TripleStore {
    /// An empty store.
    pub fn new() -> TripleStore {
        TripleStore::default()
    }

    /// Bulk-build a committed store.
    pub fn from_triples(triples: impl IntoIterator<Item = Triple>) -> TripleStore {
        let mut store = TripleStore::new();
        for t in triples {
            store.insert(t);
        }
        store.commit();
        store
    }

    /// Reassemble a committed store from snapshot parts: the dictionary's
    /// terms in key order plus fully built tables. The `by_pred` index is
    /// rebuilt; nothing is sorted or re-encoded.
    pub(crate) fn from_snapshot_parts(terms: Vec<Term>, tables: Vec<PairTable>) -> TripleStore {
        let by_pred = tables.iter().enumerate().map(|(i, t)| (t.pred(), i)).collect();
        TripleStore {
            dict: Dictionary::from_terms(terms),
            tables,
            by_pred,
            deltas: HashMap::new(),
            pending: HashMap::new(),
            pending_names: Vec::new(),
            n_pending: 0,
        }
    }

    /// Buffer one triple (call [`commit`](TripleStore::commit) before reading).
    pub fn insert(&mut self, t: Triple) {
        let s = self.dict.encode(&t.s);
        let p = self.dict.encode(&t.p);
        let o = self.dict.encode(&t.o);
        self.insert_encoded_raw(t.p.as_str(), s, p, o);
    }

    fn insert_encoded_raw(&mut self, pred_name: &str, s: u32, p: u32, o: u32) {
        if !self.by_pred.contains_key(&p) && !self.pending.contains_key(&p) {
            // Remember the predicate name for table construction at commit.
            self.pending_names.push((p, pred_name.to_string()));
        }
        self.pending.entry(p).or_default().push((s, o));
        self.n_pending += 1;
    }

    /// Sort, deduplicate, and merge all buffered pairs into the tables.
    pub fn commit(&mut self) {
        let _ = self.commit_report();
    }

    /// [`commit`](TripleStore::commit), reporting which predicate tables
    /// actually changed. A table whose pending pairs were all already
    /// resident is left untouched (not rebuilt, not reported).
    pub fn commit_report(&mut self) -> UpdateReport {
        let mut report = UpdateReport::default();
        if self.pending.is_empty() {
            return report;
        }
        // Eager merges rebuild base tables from their current contents;
        // fold staged deltas in first so nothing is silently dropped or
        // duplicated across the base/delta split.
        if !self.deltas.is_empty() {
            self.compact_all();
        }
        let names: HashMap<u32, String> = self.pending_names.drain(..).collect();
        let pending = std::mem::take(&mut self.pending);
        self.n_pending = 0;
        for (p, mut pairs) in pending {
            pairs.sort_unstable();
            pairs.dedup();
            match self.by_pred.get(&p) {
                Some(&idx) => {
                    // Merge with the existing table: rebuild from the
                    // union, but only when something genuinely new landed.
                    let old = &self.tables[idx];
                    pairs.retain(|&(s, o)| !old.contains(s, o));
                    if pairs.is_empty() {
                        continue;
                    }
                    report.added += pairs.len();
                    report.changed_preds.push(p);
                    pairs.extend_from_slice(old.so_pairs());
                    let name = old.name().to_string();
                    self.tables[idx] = PairTable::build(name, p, pairs);
                }
                None => {
                    let name = names
                        .get(&p)
                        .cloned()
                        .unwrap_or_else(|| self.dict.decode(p).as_str().to_string());
                    let idx = self.tables.len();
                    self.tables.push(PairTable::build(name, p, pairs));
                    self.by_pred.insert(p, idx);
                    report.added += self.tables[idx].len();
                    report.changed_preds.push(p);
                }
            }
        }
        report.changed_preds.sort_unstable();
        report
    }

    /// Post-commit insertion: encode and merge a batch of triples,
    /// growing the dictionary as needed, and report what changed.
    ///
    /// # Panics
    /// Panics when called on an uncommitted store (mixed two-phase and
    /// live mutation would make `insert`/`commit` bookkeeping ambiguous).
    pub fn add_triples(&mut self, triples: impl IntoIterator<Item = Triple>) -> UpdateReport {
        self.assert_committed();
        for t in triples {
            self.insert(t);
        }
        self.commit_report()
    }

    /// Post-commit removal: delete a batch of triples from the affected
    /// tables and report what changed. Triples naming unknown terms or
    /// predicates are ignored (they cannot be resident). The dictionary
    /// never shrinks and emptied tables remain (empty) so predicate keys
    /// and table identity stay stable.
    ///
    /// # Panics
    /// Panics when called on an uncommitted store.
    pub fn remove_triples(&mut self, triples: impl IntoIterator<Item = Triple>) -> UpdateReport {
        self.assert_committed();
        if !self.deltas.is_empty() {
            self.compact_all();
        }
        let mut victims: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
        for t in triples {
            let (Some(s), Some(p), Some(o)) =
                (self.dict.lookup(&t.s), self.dict.lookup(&t.p), self.dict.lookup(&t.o))
            else {
                continue;
            };
            if self.by_pred.contains_key(&p) {
                victims.entry(p).or_default().push((s, o));
            }
        }
        let mut report = UpdateReport::default();
        for (p, mut gone) in victims {
            gone.sort_unstable();
            gone.dedup();
            let idx = self.by_pred[&p];
            let old = &self.tables[idx];
            let kept: Vec<(u32, u32)> = old
                .so_pairs()
                .iter()
                .copied()
                .filter(|pr| gone.binary_search(pr).is_err())
                .collect();
            let removed = old.len() - kept.len();
            if removed > 0 {
                let name = old.name().to_string();
                self.tables[idx] = PairTable::build(name, p, kept);
                report.removed += removed;
                report.changed_preds.push(p);
            }
        }
        report.changed_preds.sort_unstable();
        report
    }

    /// Stage an insert batch as per-predicate deltas without rebuilding
    /// any base table: O(delta) in the batch, not the predicate. New
    /// terms grow the dictionary; a new predicate gets an empty base
    /// table (so its key is stable) with the pairs staged as inserts.
    /// Inserting a tombstoned pair cancels the tombstone; inserting a
    /// resident or already-staged pair is a no-op. The report counts real
    /// logical change only, exactly like [`add_triples`].
    ///
    /// [`add_triples`]: TripleStore::add_triples
    ///
    /// # Panics
    /// Panics when called on an uncommitted store.
    pub fn stage_add_triples(&mut self, triples: impl IntoIterator<Item = Triple>) -> UpdateReport {
        self.assert_committed();
        let mut report = UpdateReport::default();
        for t in triples {
            let s = self.dict.encode(&t.s);
            let p = self.dict.encode(&t.p);
            let o = self.dict.encode(&t.o);
            let idx = match self.by_pred.get(&p) {
                Some(&idx) => idx,
                None => {
                    let idx = self.tables.len();
                    self.tables.push(PairTable::build(t.p.as_str().to_string(), p, Vec::new()));
                    self.by_pred.insert(p, idx);
                    idx
                }
            };
            let pair = (s, o);
            let d = self.deltas.entry(p).or_default();
            if let Ok(at) = d.del.binary_search(&pair) {
                d.del.remove(at); // insert cancels the tombstone
            } else if self.tables[idx].contains(s, o) || d.ins.binary_search(&pair).is_ok() {
                continue;
            } else if let Err(at) = d.ins.binary_search(&pair) {
                d.ins.insert(at, pair);
            }
            report.added += 1;
            report.changed_preds.push(p);
        }
        self.finish_staging(&mut report);
        report
    }

    /// Stage a delete batch as per-predicate tombstones without
    /// rebuilding any base table: O(delta) in the batch. Deleting a
    /// staged insert cancels it; deleting an absent pair (or a triple
    /// naming unknown terms) is a no-op. The report counts real logical
    /// change only, exactly like [`remove_triples`].
    ///
    /// [`remove_triples`]: TripleStore::remove_triples
    ///
    /// # Panics
    /// Panics when called on an uncommitted store.
    pub fn stage_remove_triples(
        &mut self,
        triples: impl IntoIterator<Item = Triple>,
    ) -> UpdateReport {
        self.assert_committed();
        let mut report = UpdateReport::default();
        for t in triples {
            let (Some(s), Some(p), Some(o)) =
                (self.dict.lookup(&t.s), self.dict.lookup(&t.p), self.dict.lookup(&t.o))
            else {
                continue;
            };
            let Some(&idx) = self.by_pred.get(&p) else {
                continue;
            };
            let pair = (s, o);
            let d = self.deltas.entry(p).or_default();
            if let Ok(at) = d.ins.binary_search(&pair) {
                d.ins.remove(at); // delete cancels the staged insert
            } else if self.tables[idx].contains(s, o) {
                match d.del.binary_search(&pair) {
                    Ok(_) => continue, // already tombstoned
                    Err(at) => d.del.insert(at, pair),
                }
            } else {
                continue;
            }
            report.removed += 1;
            report.changed_preds.push(p);
        }
        self.finish_staging(&mut report);
        report
    }

    /// Drop delta entries that cancelled out to nothing and canonicalise
    /// the report.
    fn finish_staging(&mut self, report: &mut UpdateReport) {
        self.deltas.retain(|_, d| !d.is_empty());
        report.changed_preds.sort_unstable();
        report.changed_preds.dedup();
    }

    /// The staged delta for a predicate, if any mutation is pending
    /// compaction.
    pub fn delta(&self, pred: u32) -> Option<&PredDelta> {
        self.deltas.get(&pred)
    }

    /// Staged pairs (inserts + tombstones) for one predicate.
    pub fn delta_len(&self, pred: u32) -> usize {
        self.deltas.get(&pred).map_or(0, PredDelta::len)
    }

    /// True when any predicate has staged deltas.
    pub fn has_deltas(&self) -> bool {
        !self.deltas.is_empty()
    }

    /// Total staged pairs across all predicates (the overlay's memory
    /// bound, up to constant factors).
    pub fn staged_pairs(&self) -> usize {
        self.deltas.values().map(PredDelta::len).sum()
    }

    /// Predicates with staged deltas, sorted ascending.
    pub fn delta_preds(&self) -> Vec<u32> {
        let mut preds: Vec<u32> = self.deltas.keys().copied().collect();
        preds.sort_unstable();
        preds
    }

    /// Fold one predicate's staged delta into a fresh base table (one
    /// linear three-way merge per sort order). Returns whether a delta
    /// was present. Logical contents are unchanged — compaction only
    /// moves pairs across the base/delta split.
    pub fn compact_pred(&mut self, pred: u32) -> bool {
        let Some(d) = self.deltas.remove(&pred) else {
            return false;
        };
        let idx = self.by_pred[&pred];
        let old = &self.tables[idx];
        let so = merge_pairs(old.so_pairs(), &d.del, &d.ins);
        let permute_sort = |pairs: &[(u32, u32)]| {
            let mut v: Vec<(u32, u32)> = pairs.iter().map(|&(s, o)| (o, s)).collect();
            v.sort_unstable();
            v
        };
        let os = merge_pairs(old.os_pairs(), &permute_sort(&d.del), &permute_sort(&d.ins));
        self.tables[idx] = PairTable::from_sorted_parts(old.name().to_string(), pred, so, os);
        true
    }

    /// Fold every staged delta into its base table, returning the
    /// compacted predicate keys sorted ascending.
    pub fn compact_all(&mut self) -> Vec<u32> {
        let preds = self.delta_preds();
        for &p in &preds {
            self.compact_pred(p);
        }
        preds
    }

    fn assert_committed(&self) {
        assert!(
            self.pending.is_empty(),
            "TripleStore read before commit(): {} pending pairs",
            self.n_pending
        );
    }

    /// The term dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Encode a term, assigning a fresh key if unseen. Exposed for query
    /// frontends that need ids for constants before running.
    pub fn encode_term(&mut self, t: &Term) -> u32 {
        self.dict.encode(t)
    }

    /// Dictionary key of an IRI, if present.
    pub fn resolve_iri(&self, iri: &str) -> Option<u32> {
        self.dict.lookup_iri(iri)
    }

    /// Table for a predicate key.
    pub fn table(&self, pred: u32) -> Option<&PairTable> {
        self.assert_committed();
        self.by_pred.get(&pred).map(|&i| &self.tables[i])
    }

    /// Table for a predicate IRI.
    pub fn table_by_name(&self, iri: &str) -> Option<&PairTable> {
        self.resolve_iri(iri).and_then(|p| self.table(p))
    }

    /// All predicate tables.
    pub fn tables(&self) -> &[PairTable] {
        self.assert_committed();
        &self.tables
    }

    /// Total distinct triples in the **logical** (delta-merged) view.
    pub fn num_triples(&self) -> usize {
        self.assert_committed();
        self.tables
            .iter()
            .map(|t| {
                let (ins, del) =
                    self.deltas.get(&t.pred()).map_or((0, 0), |d| (d.ins.len(), d.del.len()));
                t.len() + ins - del
            })
            .sum()
    }

    /// Iterate every triple of the **logical** (delta-merged) view in
    /// encoded form, predicate-major order. Tables with staged deltas pay
    /// one merge allocation; untouched tables stream their base pairs.
    pub fn encoded_triples(&self) -> impl Iterator<Item = EncodedTriple> + '_ {
        self.assert_committed();
        self.tables.iter().flat_map(move |t| {
            let p = t.pred();
            let pairs: Box<dyn Iterator<Item = (u32, u32)> + '_> = match self.deltas.get(&p) {
                None => Box::new(t.so_pairs().iter().copied()),
                Some(d) => Box::new(merge_pairs(t.so_pairs(), &d.del, &d.ins).into_iter()),
            };
            pairs.map(move |(s, o)| EncodedTriple { s, p, o })
        })
    }

    /// Decode an encoded triple back to terms.
    pub fn decode_triple(&self, t: EncodedTriple) -> Triple {
        Triple::new(
            self.dict.decode(t.s).clone(),
            self.dict.decode(t.p).clone(),
            self.dict.decode(t.o).clone(),
        )
    }

    /// Summary statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            triples: self.num_triples(),
            predicates: self.tables.len(),
            terms: self.dict.len(),
        }
    }
}

impl TripleStore {
    #[doc(hidden)]
    pub fn __invariant_check(&self) -> bool {
        if self.tables.len() != self.by_pred.len() {
            return false;
        }
        // Staged deltas: sorted-unique, anchored to a real table, with
        // del ⊆ base and ins ∩ base = ∅ (and therefore non-empty).
        self.deltas.iter().all(|(&p, d)| {
            let Some(&idx) = self.by_pred.get(&p) else {
                return false;
            };
            let t = &self.tables[idx];
            !d.is_empty()
                && d.ins.windows(2).all(|w| w[0] < w[1])
                && d.del.windows(2).all(|w| w[0] < w[1])
                && d.del.iter().all(|&(s, o)| t.contains(s, o))
                && d.ins.iter().all(|&(s, o)| !t.contains(s, o))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn bulk_build_and_stats() {
        let store = TripleStore::from_triples(vec![
            t("s1", "p1", "o1"),
            t("s1", "p1", "o1"), // duplicate collapses
            t("s2", "p1", "o1"),
            t("s1", "p2", "o2"),
        ]);
        let stats = store.stats();
        assert_eq!(stats.triples, 3);
        assert_eq!(stats.predicates, 2);
        assert_eq!(store.table_by_name("p1").unwrap().len(), 2);
    }

    #[test]
    fn incremental_commit_merges() {
        let mut store = TripleStore::new();
        store.insert(t("a", "p", "b"));
        store.commit();
        assert_eq!(store.num_triples(), 1);
        store.insert(t("c", "p", "d"));
        store.insert(t("a", "p", "b")); // dup with committed data
        store.commit();
        assert_eq!(store.num_triples(), 2);
    }

    #[test]
    #[should_panic(expected = "before commit")]
    fn reading_uncommitted_panics() {
        let mut store = TripleStore::new();
        store.insert(t("a", "p", "b"));
        let _ = store.num_triples();
    }

    #[test]
    fn encoded_roundtrip() {
        let store = TripleStore::from_triples(vec![t("s", "p", "o")]);
        let enc: Vec<_> = store.encoded_triples().collect();
        assert_eq!(enc.len(), 1);
        assert_eq!(store.decode_triple(enc[0]), t("s", "p", "o"));
    }

    #[test]
    fn resolve_and_table_lookup() {
        let store = TripleStore::from_triples(vec![t("s", "p", "o")]);
        let pid = store.resolve_iri("p").unwrap();
        assert_eq!(store.table(pid).unwrap().name(), "p");
        assert!(store.resolve_iri("absent").is_none());
        assert!(store.table(9999).is_none());
    }

    #[test]
    fn commit_on_empty_is_noop() {
        let mut store = TripleStore::new();
        store.commit();
        assert_eq!(store.num_triples(), 0);
        assert!(store.__invariant_check());
    }

    #[test]
    fn add_triples_reports_only_real_change() {
        let mut store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        let p = store.resolve_iri("p").unwrap();
        // One duplicate, one new pair on p, one brand-new predicate.
        let report = store.add_triples(vec![t("a", "p", "b"), t("c", "p", "d"), t("a", "q", "b")]);
        let q = store.resolve_iri("q").unwrap();
        assert_eq!(report.added, 2);
        assert_eq!(report.removed, 0);
        assert_eq!(report.changed_preds, {
            let mut v = vec![p, q];
            v.sort_unstable();
            v
        });
        assert_eq!(store.num_triples(), 3);
        assert!(store
            .table_by_name("p")
            .unwrap()
            .contains(store.resolve_iri("c").unwrap(), store.resolve_iri("d").unwrap()));
        assert!(store.__invariant_check());
    }

    #[test]
    fn add_of_resident_triples_is_reported_empty() {
        let mut store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        let report = store.add_triples(vec![t("a", "p", "b"), t("a", "p", "b")]);
        assert!(report.is_empty());
        assert_eq!((report.added, report.removed), (0, 0));
        assert_eq!(store.num_triples(), 1);
    }

    #[test]
    fn remove_triples_reports_and_keeps_empty_tables() {
        let mut store =
            TripleStore::from_triples(vec![t("a", "p", "b"), t("c", "p", "d"), t("a", "q", "b")]);
        let p = store.resolve_iri("p").unwrap();
        let report = store.remove_triples(vec![
            t("a", "p", "b"),
            t("a", "p", "b"),      // duplicate victim counts once
            t("x", "p", "y"),      // absent terms: ignored
            t("a", "nosuch", "b"), // unknown predicate: ignored
        ]);
        assert_eq!(report.removed, 1);
        assert_eq!(report.added, 0);
        assert_eq!(report.changed_preds, vec![p]);
        assert_eq!(store.num_triples(), 2);
        // Removing the rest of p empties but does not drop the table.
        let report = store.remove_triples(vec![t("c", "p", "d")]);
        assert_eq!(report.removed, 1);
        let table = store.table_by_name("p").unwrap();
        assert!(table.is_empty());
        assert_eq!(store.stats().predicates, 2);
        assert!(store.__invariant_check());
    }

    #[test]
    fn update_report_merge_unions_predicates() {
        let mut a = UpdateReport { added: 1, removed: 0, changed_preds: vec![1, 3] };
        a.merge(UpdateReport { added: 2, removed: 4, changed_preds: vec![2, 3] });
        assert_eq!(a, UpdateReport { added: 3, removed: 4, changed_preds: vec![1, 2, 3] });
    }

    #[test]
    fn staging_reports_real_change_and_leaves_base_tables_alone() {
        let mut store = TripleStore::from_triples(vec![t("a", "p", "b"), t("c", "p", "d")]);
        let p = store.resolve_iri("p").unwrap();
        let report = store.stage_add_triples(vec![
            t("a", "p", "b"), // resident: no-op
            t("x", "p", "y"), // new pair
            t("m", "q", "n"), // brand-new predicate
        ]);
        let q = store.resolve_iri("q").unwrap();
        assert_eq!(report.added, 2);
        assert_eq!(report.changed_preds, {
            let mut v = vec![p, q];
            v.sort_unstable();
            v
        });
        // Base tables untouched; logical view merged.
        assert_eq!(store.table(p).unwrap().len(), 2);
        assert!(store.table(q).unwrap().is_empty());
        assert_eq!(store.num_triples(), 4);
        assert_eq!(store.delta_len(p), 1);
        assert_eq!(store.staged_pairs(), 2);
        assert!(store.has_deltas());
        assert!(store.__invariant_check());

        let report = store.stage_remove_triples(vec![
            t("a", "p", "b"), // resident: tombstone
            t("x", "p", "y"), // staged insert: cancels
            t("z", "p", "z"), // absent: no-op
        ]);
        assert_eq!(report.removed, 2);
        assert_eq!(report.changed_preds, vec![p]);
        assert_eq!(store.num_triples(), 2);
        assert_eq!(store.delta(p).unwrap().del_pairs().len(), 1);
        assert!(store.delta(p).unwrap().ins_pairs().is_empty());
        assert!(store.__invariant_check());

        // Re-inserting the tombstoned pair cancels the tombstone and the
        // delta evaporates entirely.
        let report = store.stage_add_triples(vec![t("a", "p", "b")]);
        assert_eq!(report.added, 1);
        assert!(store.delta(p).is_none());
        assert_eq!(store.delta_preds(), vec![q]);
        assert_eq!(store.num_triples(), 3);
    }

    #[test]
    fn staged_noops_report_empty() {
        let mut store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        let report = store.stage_add_triples(vec![t("a", "p", "b")]);
        assert!(report.is_empty());
        let report = store.stage_remove_triples(vec![t("z", "p", "z"), t("a", "nosuch", "b")]);
        assert!(report.is_empty());
        assert!(!store.has_deltas());
    }

    #[test]
    fn compaction_preserves_logical_contents() {
        let mut store =
            TripleStore::from_triples(vec![t("a", "p", "b"), t("c", "p", "d"), t("e", "q", "f")]);
        let p = store.resolve_iri("p").unwrap();
        store.stage_add_triples(vec![t("x", "p", "y"), t("g", "q", "h")]);
        store.stage_remove_triples(vec![t("c", "p", "d")]);
        let logical: Vec<_> = store.encoded_triples().collect();
        let compacted = store.compact_all();
        assert_eq!(compacted.len(), 2);
        assert!(compacted.contains(&p));
        assert!(!store.has_deltas());
        let after: Vec<_> = store.encoded_triples().collect();
        assert_eq!(logical, after);
        // Compacted tables are fully coherent (os order included).
        let table = store.table(p).unwrap();
        assert_eq!(table.len(), 2);
        let y = store.resolve_iri("y").unwrap();
        assert_eq!(table.pairs_for_object(y).len(), 1);
        assert!(store.__invariant_check());
    }

    #[test]
    fn eager_paths_fold_staged_deltas_first() {
        let mut store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        store.stage_add_triples(vec![t("x", "p", "y")]);
        // Eager add compacts first, then merges — nothing lost, no dups.
        let report = store.add_triples(vec![t("x", "p", "y"), t("c", "p", "d")]);
        assert_eq!(report.added, 1);
        assert!(!store.has_deltas());
        assert_eq!(store.num_triples(), 3);

        store.stage_remove_triples(vec![t("a", "p", "b")]);
        let report = store.remove_triples(vec![t("c", "p", "d")]);
        assert_eq!(report.removed, 1);
        assert!(!store.has_deltas());
        assert_eq!(store.num_triples(), 1);
        assert!(store
            .table_by_name("p")
            .unwrap()
            .contains(store.resolve_iri("x").unwrap(), store.resolve_iri("y").unwrap()));
    }

    #[test]
    fn staged_store_clones_carry_their_deltas() {
        let mut store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        store.stage_add_triples(vec![t("x", "p", "y")]);
        let clone = store.clone();
        assert_eq!(clone.staged_pairs(), 1);
        assert_eq!(
            clone.encoded_triples().collect::<Vec<_>>(),
            store.encoded_triples().collect::<Vec<_>>()
        );
    }

    #[test]
    fn add_then_remove_roundtrips_to_original_contents() {
        let mut store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        let before: Vec<_> = store.encoded_triples().collect();
        store.add_triples(vec![t("x", "p", "y"), t("x", "r", "y")]);
        store.remove_triples(vec![t("x", "p", "y"), t("x", "r", "y")]);
        let after: Vec<_> = store.encoded_triples().collect();
        assert_eq!(before, after);
    }
}
