//! The in-memory triple store: dictionary + vertically partitioned tables,
//! hash-partitioned into subject shards.

use std::collections::HashMap;

use crate::dict::Dictionary;
use crate::partition::Partitioner;
use crate::term::Term;
use crate::triple::{EncodedTriple, Triple};
use crate::vp::PairTable;

/// An in-memory RDF store in the paper's storage model: every term is
/// dictionary-encoded to a `u32` and triples are vertically partitioned
/// into one [`PairTable`] per predicate (§II-A1, §IV-A2).
///
/// On top of the vertical partitioning, the store is **hash-partitioned
/// by subject** into `P` shards (see [`Partitioner`]): each shard owns its
/// own slice of every predicate's pairs plus its own staged
/// [`PredDelta`]s, while the dictionary is shared store-wide. `P = 1`
/// (the default everywhere) is layout-identical to the unpartitioned
/// store — one shard holding every table.
///
/// Loading is two-phase: [`insert`](TripleStore::insert) buffers raw pairs,
/// and [`commit`](TripleStore::commit) (or the bulk
/// [`from_triples`](TripleStore::from_triples)) sorts and deduplicates the
/// tables. Read accessors panic on an uncommitted store to make misuse
/// loud rather than subtly stale.
///
/// A committed store can also be mutated in place, two ways:
///
/// * **Eagerly** — [`add_triples`](TripleStore::add_triples) and
///   [`remove_triples`](TripleStore::remove_triples) merge a batch into
///   the affected tables (through the same sort/dedup machinery). This
///   pays a full table rebuild per changed predicate.
/// * **Staged (LSM-style)** —
///   [`stage_add_triples`](TripleStore::stage_add_triples) and
///   [`stage_remove_triples`](TripleStore::stage_remove_triples) record
///   the batch as a sorted per-(shard, predicate) [`PredDelta`] (inserts +
///   tombstones) in O(delta) without touching the base tables; a later
///   [`compact_pred`](TripleStore::compact_pred) /
///   [`compact_all`](TripleStore::compact_all) folds deltas into fresh
///   tables off the hot path — or, shard-locally,
///   [`compact_pred_in`](TripleStore::compact_pred_in) folds a single
///   shard. Logical accessors ([`num_triples`], [`encoded_triples`],
///   [`stats`]) always report the merged view across all shards;
///   [`shard_table`](TripleStore::shard_table) exposes one shard's frozen
///   **base** only, with [`shard_delta`](TripleStore::shard_delta)
///   carrying the rest.
///
/// Both ways report which predicates actually changed, so an index layer
/// can invalidate only the tries those predicates back. Removal never
/// shrinks the dictionary and leaves emptied tables in place — term keys
/// stay stable for the lifetime of the store.
///
/// The single-table accessors ([`table`](TripleStore::table),
/// [`tables`](TripleStore::tables), [`delta`](TripleStore::delta)) are the
/// `P = 1` view and panic on a partitioned store; partitioned callers use
/// the shard accessors or the aggregate [`PredCard`] statistics view.
///
/// [`num_triples`]: TripleStore::num_triples
/// [`encoded_triples`]: TripleStore::encoded_triples
/// [`stats`]: TripleStore::stats
#[derive(Debug, Default, Clone)]
pub struct TripleStore {
    dict: Dictionary,
    partitioner: Partitioner,
    /// Predicate key → table index; the index is valid in **every**
    /// shard (all shards register every predicate, in the same order).
    by_pred: HashMap<u32, usize>,
    shards: Vec<StoreShard>,
    /// `P > 1` only: per-predicate distinct-object counts across shards
    /// (objects, unlike subjects, are not disjoint across shards).
    /// Recomputed whenever a base table changes — the same events that
    /// already pay an O(predicate) rebuild.
    agg_distinct_objects: HashMap<u32, usize>,
    pending: HashMap<u32, Vec<(u32, u32)>>,
    pending_names: Vec<(u32, String)>,
    n_pending: usize,
}

/// One subject-hash shard: its slice of every predicate's base pairs plus
/// its staged deltas. Table indices align across shards.
#[derive(Debug, Default, Clone)]
struct StoreShard {
    tables: Vec<PairTable>,
    deltas: HashMap<u32, PredDelta>,
}

/// Staged, uncompacted mutations for one predicate within one shard:
/// sorted insert pairs disjoint from the shard's base table and sorted
/// tombstone pairs resident in it. Both slices are subject-major
/// `(s, o)`; consumers needing the object-major orientation permute and
/// re-sort (deltas are small).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PredDelta {
    ins: Vec<(u32, u32)>,
    del: Vec<(u32, u32)>,
}

impl PredDelta {
    /// Staged insert pairs, sorted `(s, o)`, none resident in the base.
    pub fn ins_pairs(&self) -> &[(u32, u32)] {
        &self.ins
    }

    /// Staged tombstone pairs, sorted `(s, o)`, all resident in the base.
    pub fn del_pairs(&self) -> &[(u32, u32)] {
        &self.del
    }

    /// Total staged pairs (inserts + tombstones).
    pub fn len(&self) -> usize {
        self.ins.len() + self.del.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.ins.is_empty() && self.del.is_empty()
    }
}

/// Three-way linear merge `(base − del) ∪ ins` over sorted-unique pair
/// slices — the compaction kernel, O(base + delta).
fn merge_pairs(base: &[(u32, u32)], del: &[(u32, u32)], ins: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(base.len() + ins.len() - del.len().min(base.len()));
    let mut di = del.iter().peekable();
    let mut ii = ins.iter().peekable();
    for &pair in base {
        while di.next_if(|&&d| d < pair).is_some() {}
        if di.next_if(|&&d| d == pair).is_some() {
            continue;
        }
        while let Some(&&i) = ii.peek() {
            if i < pair {
                out.push(i);
                ii.next();
            } else {
                break;
            }
        }
        if ii.next_if(|&&i| i == pair).is_some() {
            // Invariant says ins ∩ base = ∅; stay set-semantic anyway.
        }
        out.push(pair);
    }
    out.extend(ii.copied());
    out
}

/// Summary statistics for a committed store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct triples across all predicates.
    pub triples: usize,
    /// Number of predicates (= vertically partitioned tables).
    pub predicates: usize,
    /// Distinct dictionary-encoded terms.
    pub terms: usize,
}

/// Per-shard summary statistics, for skew observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Distinct triples in this shard's **logical** (delta-merged) view.
    pub triples: usize,
    /// Staged pairs (inserts + tombstones) across this shard's deltas.
    pub staged_pairs: usize,
}

/// What a mutation actually changed, in dictionary-encoded terms.
///
/// "Actually" is load-bearing: inserting a resident triple or deleting an
/// absent one changes nothing and is not reported, so downstream index
/// invalidation stays proportional to real change, not batch size.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Pairs newly added across all predicates.
    pub added: usize,
    /// Pairs removed across all predicates.
    pub removed: usize,
    /// Keys of predicates whose tables changed, sorted ascending.
    pub changed_preds: Vec<u32>,
}

impl UpdateReport {
    /// True when the mutation was a no-op on the table contents.
    pub fn is_empty(&self) -> bool {
        self.changed_preds.is_empty()
    }

    /// Fold another report into this one (counts add, predicate sets
    /// union).
    pub fn merge(&mut self, other: UpdateReport) {
        self.added += other.added;
        self.removed += other.removed;
        self.changed_preds.extend(other.changed_preds);
        self.changed_preds.sort_unstable();
        self.changed_preds.dedup();
    }
}

/// Aggregate per-predicate statistics that are **partition-invariant**:
/// the same numbers whether the store holds one shard or many, so the
/// planner's cardinality heuristics (and therefore the chosen plans) do
/// not depend on `P`. Subjects are disjoint across shards (sums are
/// exact); distinct objects come from the store's cross-shard count.
#[derive(Debug, Clone, Copy)]
pub struct PredCard<'a> {
    store: &'a TripleStore,
    idx: usize,
    pred: u32,
}

impl PredCard<'_> {
    /// Base pairs across all shards (deltas excluded, like the `P = 1`
    /// table view the planner always used).
    pub fn len(&self) -> usize {
        self.store.shards.iter().map(|sh| sh.tables[self.idx].len()).sum()
    }

    /// True when every shard's base table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct subjects across all shards (disjoint by construction).
    pub fn distinct_subjects(&self) -> usize {
        self.store.shards.iter().map(|sh| sh.tables[self.idx].distinct_subjects()).sum()
    }

    /// Distinct objects across all shards (deduplicated cross-shard).
    pub fn distinct_objects(&self) -> usize {
        if self.store.partitions() == 1 {
            self.store.shards[0].tables[self.idx].distinct_objects()
        } else {
            self.store.agg_distinct_objects.get(&self.pred).copied().unwrap_or(0)
        }
    }

    /// Base pairs with the given subject — served by exactly the shard
    /// that owns it.
    pub fn matches_for_subject(&self, s: u32) -> usize {
        let shard = self.store.partitioner.shard_of(s);
        self.store.shards[shard].tables[self.idx].pairs_for_subject(s).len()
    }

    /// Base pairs with the given object, summed across shards.
    pub fn matches_for_object(&self, o: u32) -> usize {
        self.store.shards.iter().map(|sh| sh.tables[self.idx].pairs_for_object(o).len()).sum()
    }
}

impl TripleStore {
    /// An empty single-shard store.
    pub fn new() -> TripleStore {
        TripleStore::with_partitions(1)
    }

    /// An empty store hash-partitioned into `max(1, partitions)` subject
    /// shards.
    pub fn with_partitions(partitions: usize) -> TripleStore {
        let partitioner = Partitioner::new(partitions);
        TripleStore {
            dict: Dictionary::default(),
            partitioner,
            by_pred: HashMap::new(),
            shards: vec![StoreShard::default(); partitioner.partitions()],
            agg_distinct_objects: HashMap::new(),
            pending: HashMap::new(),
            pending_names: Vec::new(),
            n_pending: 0,
        }
    }

    /// Bulk-build a committed single-shard store.
    pub fn from_triples(triples: impl IntoIterator<Item = Triple>) -> TripleStore {
        TripleStore::from_triples_partitioned(triples, 1)
    }

    /// Bulk-build a committed store hash-partitioned into `partitions`
    /// subject shards.
    pub fn from_triples_partitioned(
        triples: impl IntoIterator<Item = Triple>,
        partitions: usize,
    ) -> TripleStore {
        let mut store = TripleStore::with_partitions(partitions);
        for t in triples {
            store.insert(t);
        }
        store.commit();
        store
    }

    /// Reassemble a committed single-shard store from snapshot parts: the
    /// dictionary's terms in key order plus fully built tables. The
    /// `by_pred` index is rebuilt; nothing is sorted or re-encoded.
    pub(crate) fn from_snapshot_parts(terms: Vec<Term>, tables: Vec<PairTable>) -> TripleStore {
        let by_pred = tables.iter().enumerate().map(|(i, t)| (t.pred(), i)).collect();
        TripleStore {
            dict: Dictionary::from_terms(terms),
            partitioner: Partitioner::new(1),
            by_pred,
            shards: vec![StoreShard { tables, deltas: HashMap::new() }],
            agg_distinct_objects: HashMap::new(),
            pending: HashMap::new(),
            pending_names: Vec::new(),
            n_pending: 0,
        }
    }

    /// Reassemble a committed partitioned store from per-shard snapshot
    /// parts plus the persisted per-predicate cross-shard distinct-object
    /// counts. Every shard must register the same predicates in the same
    /// order — checked here. Two invariants are the *caller's* contract,
    /// verified by the snapshot decoder (the only untrusted input path)
    /// where they are cheap: subject→shard affinity inside the parallel
    /// per-shard decode pass (fused with the sorted/bounded scan), and
    /// the distinct-object claims bounds-checked against the decoded
    /// shards — so reassembly replays neither a store-wide pair sweep nor
    /// a k-way merge per predicate.
    pub(crate) fn from_partitioned_parts(
        terms: Vec<Term>,
        partitions: usize,
        shard_tables: Vec<Vec<PairTable>>,
        agg_distinct_objects: HashMap<u32, usize>,
    ) -> Result<TripleStore, &'static str> {
        let partitioner = Partitioner::new(partitions);
        if shard_tables.len() != partitioner.partitions() {
            return Err("shard count does not match partition count");
        }
        let first = &shard_tables[0];
        for tables in &shard_tables {
            if tables.len() != first.len() {
                return Err("shards register different predicate counts");
            }
            for (a, b) in tables.iter().zip(first) {
                if a.pred() != b.pred() || a.name() != b.name() {
                    return Err("shards register different predicates");
                }
            }
        }
        debug_assert!(shard_tables.iter().enumerate().all(|(shard, tables)| {
            tables
                .iter()
                .all(|t| t.so_pairs().iter().all(|&(s, _)| partitioner.shard_of(s) == shard))
        }));
        let by_pred: HashMap<u32, usize> =
            first.iter().enumerate().map(|(i, t)| (t.pred(), i)).collect();
        let agg_distinct_objects =
            if partitioner.partitions() > 1 { agg_distinct_objects } else { HashMap::new() };
        Ok(TripleStore {
            dict: Dictionary::from_terms(terms),
            partitioner,
            by_pred,
            shards: shard_tables
                .into_iter()
                .map(|tables| StoreShard { tables, deltas: HashMap::new() })
                .collect(),
            agg_distinct_objects,
            pending: HashMap::new(),
            pending_names: Vec::new(),
            n_pending: 0,
        })
    }

    /// Buffer one triple (call [`commit`](TripleStore::commit) before reading).
    pub fn insert(&mut self, t: Triple) {
        let s = self.dict.encode(&t.s);
        let p = self.dict.encode(&t.p);
        let o = self.dict.encode(&t.o);
        self.insert_encoded_raw(t.p.as_str(), s, p, o);
    }

    fn insert_encoded_raw(&mut self, pred_name: &str, s: u32, p: u32, o: u32) {
        if !self.by_pred.contains_key(&p) && !self.pending.contains_key(&p) {
            // Remember the predicate name for table construction at commit.
            self.pending_names.push((p, pred_name.to_string()));
        }
        self.pending.entry(p).or_default().push((s, o));
        self.n_pending += 1;
    }

    /// Sort, deduplicate, and merge all buffered pairs into the tables.
    pub fn commit(&mut self) {
        let _ = self.commit_report();
    }

    /// [`commit`](TripleStore::commit), reporting which predicate tables
    /// actually changed. A table whose pending pairs were all already
    /// resident is left untouched (not rebuilt, not reported).
    pub fn commit_report(&mut self) -> UpdateReport {
        let mut report = UpdateReport::default();
        if self.pending.is_empty() {
            return report;
        }
        // Eager merges rebuild base tables from their current contents;
        // fold staged deltas in first so nothing is silently dropped or
        // duplicated across the base/delta split.
        if self.has_deltas() {
            self.compact_all();
        }
        let names: HashMap<u32, String> = self.pending_names.drain(..).collect();
        // Drain in predicate-key order, not HashMap order: table
        // registration order must be deterministic so two stores built
        // from the same triples are identical regardless of hasher seeds
        // (the partition-determinism matrix compares across instances).
        let mut pending: Vec<(u32, Vec<(u32, u32)>)> =
            std::mem::take(&mut self.pending).into_iter().collect();
        pending.sort_unstable_by_key(|&(p, _)| p);
        self.n_pending = 0;
        for (p, mut pairs) in pending {
            pairs.sort_unstable();
            pairs.dedup();
            match self.by_pred.get(&p).copied() {
                Some(idx) => {
                    // Merge with each owning shard's table: rebuild from
                    // the union, but only where something genuinely new
                    // landed.
                    let mut added_here = 0;
                    for shard in 0..self.shards.len() {
                        let sh = &mut self.shards[shard];
                        let old = &sh.tables[idx];
                        let mut fresh: Vec<(u32, u32)> = pairs
                            .iter()
                            .copied()
                            .filter(|&(s, _)| self.partitioner.shard_of(s) == shard)
                            .filter(|&(s, o)| !old.contains(s, o))
                            .collect();
                        if fresh.is_empty() {
                            continue;
                        }
                        added_here += fresh.len();
                        fresh.extend_from_slice(old.so_pairs());
                        let name = old.name().to_string();
                        sh.tables[idx] = PairTable::build(name, p, fresh);
                    }
                    if added_here > 0 {
                        report.added += added_here;
                        report.changed_preds.push(p);
                        self.recompute_agg(p);
                    }
                }
                None => {
                    let name = names
                        .get(&p)
                        .cloned()
                        .unwrap_or_else(|| self.dict.decode(p).as_str().to_string());
                    let idx = self.register_pred(p, &name);
                    for shard in 0..self.shards.len() {
                        let mine: Vec<(u32, u32)> = pairs
                            .iter()
                            .copied()
                            .filter(|&(s, _)| self.partitioner.shard_of(s) == shard)
                            .collect();
                        self.shards[shard].tables[idx] = PairTable::build(name.clone(), p, mine);
                    }
                    report.added += pairs.len();
                    report.changed_preds.push(p);
                    self.recompute_agg(p);
                }
            }
        }
        report.changed_preds.sort_unstable();
        report
    }

    /// Register a predicate: every shard gets an (initially empty) table
    /// at the same index. Returns the shared table index.
    fn register_pred(&mut self, p: u32, name: &str) -> usize {
        let idx = self.num_tables();
        for sh in &mut self.shards {
            sh.tables.push(PairTable::build(name.to_string(), p, Vec::new()));
        }
        self.by_pred.insert(p, idx);
        idx
    }

    /// Recompute the cross-shard distinct-object count for one predicate
    /// (only maintained when partitioned; `P = 1` reads the table's own
    /// count). O(predicate pairs) — called only from paths that already
    /// rebuilt a base table at that cost.
    fn recompute_agg(&mut self, pred: u32) {
        if self.partitions() == 1 {
            return;
        }
        let Some(&idx) = self.by_pred.get(&pred) else { return };
        let slices: Vec<&[(u32, u32)]> =
            self.shards.iter().map(|sh| sh.tables[idx].os_pairs()).collect();
        let distinct = distinct_first_across(&slices);
        self.agg_distinct_objects.insert(pred, distinct);
    }

    /// Post-commit insertion: encode and merge a batch of triples,
    /// growing the dictionary as needed, and report what changed.
    ///
    /// # Panics
    /// Panics when called on an uncommitted store (mixed two-phase and
    /// live mutation would make `insert`/`commit` bookkeeping ambiguous).
    pub fn add_triples(&mut self, triples: impl IntoIterator<Item = Triple>) -> UpdateReport {
        self.assert_committed();
        for t in triples {
            self.insert(t);
        }
        self.commit_report()
    }

    /// Post-commit removal: delete a batch of triples from the affected
    /// tables and report what changed. Triples naming unknown terms or
    /// predicates are ignored (they cannot be resident). The dictionary
    /// never shrinks and emptied tables remain (empty) so predicate keys
    /// and table identity stay stable.
    ///
    /// # Panics
    /// Panics when called on an uncommitted store.
    pub fn remove_triples(&mut self, triples: impl IntoIterator<Item = Triple>) -> UpdateReport {
        self.assert_committed();
        if self.has_deltas() {
            self.compact_all();
        }
        let mut victims: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
        for t in triples {
            let (Some(s), Some(p), Some(o)) =
                (self.dict.lookup(&t.s), self.dict.lookup(&t.p), self.dict.lookup(&t.o))
            else {
                continue;
            };
            if self.by_pred.contains_key(&p) {
                victims.entry(p).or_default().push((s, o));
            }
        }
        let mut report = UpdateReport::default();
        for (p, mut gone) in victims {
            gone.sort_unstable();
            gone.dedup();
            let idx = self.by_pred[&p];
            let mut removed_here = 0;
            for shard in 0..self.shards.len() {
                let old = &self.shards[shard].tables[idx];
                let kept: Vec<(u32, u32)> = old
                    .so_pairs()
                    .iter()
                    .copied()
                    .filter(|pr| gone.binary_search(pr).is_err())
                    .collect();
                let removed = old.len() - kept.len();
                if removed > 0 {
                    let name = old.name().to_string();
                    self.shards[shard].tables[idx] = PairTable::build(name, p, kept);
                    removed_here += removed;
                }
            }
            if removed_here > 0 {
                report.removed += removed_here;
                report.changed_preds.push(p);
                self.recompute_agg(p);
            }
        }
        report.changed_preds.sort_unstable();
        report
    }

    /// Stage an insert batch as per-(shard, predicate) deltas without
    /// rebuilding any base table: O(delta) in the batch, not the
    /// predicate. New terms grow the dictionary; a new predicate gets an
    /// empty base table in every shard (so its key is stable) with the
    /// pairs staged as inserts. Each pair routes to the single shard its
    /// subject hashes to. Inserting a tombstoned pair cancels the
    /// tombstone; inserting a resident or already-staged pair is a no-op.
    /// The report counts real logical change only, exactly like
    /// [`add_triples`].
    ///
    /// [`add_triples`]: TripleStore::add_triples
    ///
    /// # Panics
    /// Panics when called on an uncommitted store.
    pub fn stage_add_triples(&mut self, triples: impl IntoIterator<Item = Triple>) -> UpdateReport {
        self.assert_committed();
        let mut report = UpdateReport::default();
        for t in triples {
            let s = self.dict.encode(&t.s);
            let p = self.dict.encode(&t.p);
            let o = self.dict.encode(&t.o);
            let idx = match self.by_pred.get(&p) {
                Some(&idx) => idx,
                None => self.register_pred(p, t.p.as_str()),
            };
            let pair = (s, o);
            let sh = &mut self.shards[self.partitioner.shard_of(s)];
            let d = sh.deltas.entry(p).or_default();
            if let Ok(at) = d.del.binary_search(&pair) {
                d.del.remove(at); // insert cancels the tombstone
            } else if sh.tables[idx].contains(s, o) || d.ins.binary_search(&pair).is_ok() {
                continue;
            } else if let Err(at) = d.ins.binary_search(&pair) {
                d.ins.insert(at, pair);
            }
            report.added += 1;
            report.changed_preds.push(p);
        }
        self.finish_staging(&mut report);
        report
    }

    /// Stage a delete batch as per-(shard, predicate) tombstones without
    /// rebuilding any base table: O(delta) in the batch. Deleting a
    /// staged insert cancels it; deleting an absent pair (or a triple
    /// naming unknown terms) is a no-op. The report counts real logical
    /// change only, exactly like [`remove_triples`].
    ///
    /// [`remove_triples`]: TripleStore::remove_triples
    ///
    /// # Panics
    /// Panics when called on an uncommitted store.
    pub fn stage_remove_triples(
        &mut self,
        triples: impl IntoIterator<Item = Triple>,
    ) -> UpdateReport {
        self.assert_committed();
        let mut report = UpdateReport::default();
        for t in triples {
            let (Some(s), Some(p), Some(o)) =
                (self.dict.lookup(&t.s), self.dict.lookup(&t.p), self.dict.lookup(&t.o))
            else {
                continue;
            };
            let Some(&idx) = self.by_pred.get(&p) else {
                continue;
            };
            let pair = (s, o);
            let sh = &mut self.shards[self.partitioner.shard_of(s)];
            let d = sh.deltas.entry(p).or_default();
            if let Ok(at) = d.ins.binary_search(&pair) {
                d.ins.remove(at); // delete cancels the staged insert
            } else if sh.tables[idx].contains(s, o) {
                match d.del.binary_search(&pair) {
                    Ok(_) => continue, // already tombstoned
                    Err(at) => d.del.insert(at, pair),
                }
            } else {
                continue;
            }
            report.removed += 1;
            report.changed_preds.push(p);
        }
        self.finish_staging(&mut report);
        report
    }

    /// Drop delta entries that cancelled out to nothing and canonicalise
    /// the report.
    fn finish_staging(&mut self, report: &mut UpdateReport) {
        for sh in &mut self.shards {
            sh.deltas.retain(|_, d| !d.is_empty());
        }
        report.changed_preds.sort_unstable();
        report.changed_preds.dedup();
    }

    /// The staged delta for a predicate — the `P = 1` view.
    ///
    /// # Panics
    /// Panics on a partitioned store; use
    /// [`shard_delta`](TripleStore::shard_delta) there.
    pub fn delta(&self, pred: u32) -> Option<&PredDelta> {
        assert_eq!(self.partitions(), 1, "partitioned store: use shard_delta");
        self.shards[0].deltas.get(&pred)
    }

    /// The staged delta for a predicate within one shard, if any.
    pub fn shard_delta(&self, shard: usize, pred: u32) -> Option<&PredDelta> {
        self.shards[shard].deltas.get(&pred)
    }

    /// Staged pairs (inserts + tombstones) for one predicate, across all
    /// shards.
    pub fn delta_len(&self, pred: u32) -> usize {
        self.shards.iter().map(|sh| sh.deltas.get(&pred).map_or(0, PredDelta::len)).sum()
    }

    /// Staged pairs for one predicate within one shard.
    pub fn shard_delta_len(&self, shard: usize, pred: u32) -> usize {
        self.shards[shard].deltas.get(&pred).map_or(0, PredDelta::len)
    }

    /// True when any shard has staged deltas.
    pub fn has_deltas(&self) -> bool {
        self.shards.iter().any(|sh| !sh.deltas.is_empty())
    }

    /// Total staged pairs across all shards and predicates (the overlay's
    /// memory bound, up to constant factors).
    pub fn staged_pairs(&self) -> usize {
        self.shards.iter().map(StoreShard::staged_pairs).sum()
    }

    /// Staged pairs within one shard.
    pub fn shard_staged_pairs(&self, shard: usize) -> usize {
        self.shards[shard].staged_pairs()
    }

    /// Predicates with staged deltas in any shard, sorted ascending.
    pub fn delta_preds(&self) -> Vec<u32> {
        let mut preds: Vec<u32> =
            self.shards.iter().flat_map(|sh| sh.deltas.keys().copied()).collect();
        preds.sort_unstable();
        preds.dedup();
        preds
    }

    /// Fold one predicate's staged delta into a fresh base table in
    /// **every** shard that has one (one linear three-way merge per sort
    /// order per shard). Returns whether any delta was present. Logical
    /// contents are unchanged — compaction only moves pairs across the
    /// base/delta split.
    pub fn compact_pred(&mut self, pred: u32) -> bool {
        let mut any = false;
        for shard in 0..self.shards.len() {
            any |= self.compact_pred_in(shard, pred);
        }
        any
    }

    /// Fold one predicate's staged delta within **one** shard — the
    /// shard-local compaction primitive: other shards' overlays (and
    /// their cached tries) are untouched.
    pub fn compact_pred_in(&mut self, shard: usize, pred: u32) -> bool {
        let Some(d) = self.shards[shard].deltas.remove(&pred) else {
            return false;
        };
        let idx = self.by_pred[&pred];
        let old = &self.shards[shard].tables[idx];
        let so = merge_pairs(old.so_pairs(), &d.del, &d.ins);
        let permute_sort = |pairs: &[(u32, u32)]| {
            let mut v: Vec<(u32, u32)> = pairs.iter().map(|&(s, o)| (o, s)).collect();
            v.sort_unstable();
            v
        };
        let os = merge_pairs(old.os_pairs(), &permute_sort(&d.del), &permute_sort(&d.ins));
        self.shards[shard].tables[idx] =
            PairTable::from_sorted_parts(old.name().to_string(), pred, so, os);
        self.recompute_agg(pred);
        true
    }

    /// Fold every staged delta in every shard into its base table,
    /// returning the compacted predicate keys sorted ascending.
    pub fn compact_all(&mut self) -> Vec<u32> {
        let preds = self.delta_preds();
        for &p in &preds {
            self.compact_pred(p);
        }
        preds
    }

    /// Fold every staged delta within one shard, returning that shard's
    /// compacted predicate keys sorted ascending.
    pub fn compact_shard(&mut self, shard: usize) -> Vec<u32> {
        let mut preds: Vec<u32> = self.shards[shard].deltas.keys().copied().collect();
        preds.sort_unstable();
        for &p in &preds {
            self.compact_pred_in(shard, p);
        }
        preds
    }

    fn assert_committed(&self) {
        assert!(
            self.pending.is_empty(),
            "TripleStore read before commit(): {} pending pairs",
            self.n_pending
        );
    }

    /// The term dictionary (shared store-wide; shards never own terms).
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Encode a term, assigning a fresh key if unseen. Exposed for query
    /// frontends that need ids for constants before running.
    pub fn encode_term(&mut self, t: &Term) -> u32 {
        self.dict.encode(t)
    }

    /// Dictionary key of an IRI, if present.
    pub fn resolve_iri(&self, iri: &str) -> Option<u32> {
        self.dict.lookup_iri(iri)
    }

    /// Number of subject-hash shards (≥ 1).
    pub fn partitions(&self) -> usize {
        self.partitioner.partitions()
    }

    /// The subject → shard map.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// Number of registered predicates (= tables per shard).
    fn num_tables(&self) -> usize {
        self.shards[0].tables.len()
    }

    /// Table for a predicate key — the `P = 1` view.
    ///
    /// # Panics
    /// Panics on a partitioned store; use
    /// [`shard_table`](TripleStore::shard_table) or [`PredCard`] there.
    pub fn table(&self, pred: u32) -> Option<&PairTable> {
        self.assert_committed();
        assert_eq!(self.partitions(), 1, "partitioned store: use shard_table / pred_card");
        self.by_pred.get(&pred).map(|&i| &self.shards[0].tables[i])
    }

    /// Table for a predicate IRI — the `P = 1` view (see
    /// [`table`](TripleStore::table)).
    pub fn table_by_name(&self, iri: &str) -> Option<&PairTable> {
        self.resolve_iri(iri).and_then(|p| self.table(p))
    }

    /// All predicate tables — the `P = 1` view.
    ///
    /// # Panics
    /// Panics on a partitioned store; use
    /// [`shard_tables`](TripleStore::shard_tables) there.
    pub fn tables(&self) -> &[PairTable] {
        self.assert_committed();
        assert_eq!(self.partitions(), 1, "partitioned store: use shard_tables");
        &self.shards[0].tables
    }

    /// One shard's table for a predicate key (its slice of the pairs).
    pub fn shard_table(&self, shard: usize, pred: u32) -> Option<&PairTable> {
        self.assert_committed();
        self.by_pred.get(&pred).map(|&i| &self.shards[shard].tables[i])
    }

    /// One shard's predicate tables, in registration order (the order is
    /// identical across shards).
    pub fn shard_tables(&self, shard: usize) -> &[PairTable] {
        self.assert_committed();
        &self.shards[shard].tables
    }

    /// Partition-invariant cardinality statistics for a predicate IRI
    /// (the planner's view — identical numbers at every `P`).
    pub fn pred_card(&self, iri: &str) -> Option<PredCard<'_>> {
        self.assert_committed();
        let pred = self.resolve_iri(iri)?;
        let idx = *self.by_pred.get(&pred)?;
        Some(PredCard { store: self, idx, pred })
    }

    /// Total base pairs for a predicate across all shards (deltas
    /// excluded).
    pub fn pred_len(&self, pred: u32) -> usize {
        self.assert_committed();
        self.by_pred
            .get(&pred)
            .map_or(0, |&i| self.shards.iter().map(|sh| sh.tables[i].len()).sum())
    }

    /// Logical (delta-merged) pairs for a predicate across all shards.
    pub fn pred_logical_len(&self, pred: u32) -> usize {
        self.assert_committed();
        self.by_pred.get(&pred).map_or(0, |&i| {
            self.shards
                .iter()
                .map(|sh| {
                    let (ins, del) = sh
                        .deltas
                        .get(&sh.tables[i].pred())
                        .map_or((0, 0), |d| (d.ins.len(), d.del.len()));
                    sh.tables[i].len() + ins - del
                })
                .sum()
        })
    }

    /// Total distinct triples in the **logical** (delta-merged) view,
    /// across all shards.
    pub fn num_triples(&self) -> usize {
        self.assert_committed();
        self.shards.iter().map(StoreShard::logical_triples).sum()
    }

    /// Per-shard logical sizes, for skew observability.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.assert_committed();
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, sh)| ShardStats {
                shard,
                triples: sh.logical_triples(),
                staged_pairs: sh.staged_pairs(),
            })
            .collect()
    }

    /// Iterate every triple of the **logical** (delta-merged) view in
    /// encoded form, predicate-major order; within a predicate, pairs are
    /// sorted `(s, o)` across shards. Tables with staged deltas (or more
    /// than one shard) pay a merge allocation; untouched single-shard
    /// tables stream their base pairs.
    pub fn encoded_triples(&self) -> impl Iterator<Item = EncodedTriple> + '_ {
        self.assert_committed();
        (0..self.num_tables()).flat_map(move |idx| {
            let p = self.shards[0].tables[idx].pred();
            let pairs: Box<dyn Iterator<Item = (u32, u32)> + '_> = if self.partitions() == 1 {
                let t = &self.shards[0].tables[idx];
                match self.shards[0].deltas.get(&p) {
                    None => Box::new(t.so_pairs().iter().copied()),
                    Some(d) => Box::new(merge_pairs(t.so_pairs(), &d.del, &d.ins).into_iter()),
                }
            } else {
                let mut v: Vec<(u32, u32)> = Vec::new();
                for sh in &self.shards {
                    let t = &sh.tables[idx];
                    match sh.deltas.get(&p) {
                        None => v.extend_from_slice(t.so_pairs()),
                        Some(d) => v.extend(merge_pairs(t.so_pairs(), &d.del, &d.ins)),
                    }
                }
                v.sort_unstable();
                Box::new(v.into_iter())
            };
            pairs.map(move |(s, o)| EncodedTriple { s, p, o })
        })
    }

    /// Decode an encoded triple back to terms.
    pub fn decode_triple(&self, t: EncodedTriple) -> Triple {
        Triple::new(
            self.dict.decode(t.s).clone(),
            self.dict.decode(t.p).clone(),
            self.dict.decode(t.o).clone(),
        )
    }

    /// Summary statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            triples: self.num_triples(),
            predicates: self.num_tables(),
            terms: self.dict.len(),
        }
    }

    /// Redistribute the store across `max(1, partitions)` subject shards.
    /// Staged deltas are folded first (their routing would change), then
    /// every predicate's logical pairs are re-split by the new hash. The
    /// logical contents are unchanged; only placement moves. O(store).
    pub fn repartition(&mut self, partitions: usize) {
        self.assert_committed();
        self.compact_all();
        let partitioner = Partitioner::new(partitions);
        if partitioner == self.partitioner {
            return;
        }
        let n = self.num_tables();
        let mut new_shards = vec![StoreShard::default(); partitioner.partitions()];
        for idx in 0..n {
            let pred = self.shards[0].tables[idx].pred();
            let name = self.shards[0].tables[idx].name().to_string();
            // Merge each order across the old shards (concatenate + sort:
            // the per-shard slices are sorted, the union is not).
            let mut so: Vec<(u32, u32)> = Vec::new();
            let mut os: Vec<(u32, u32)> = Vec::new();
            for sh in &self.shards {
                so.extend_from_slice(sh.tables[idx].so_pairs());
                os.extend_from_slice(sh.tables[idx].os_pairs());
            }
            so.sort_unstable();
            os.sort_unstable();
            for (shard, new_sh) in new_shards.iter_mut().enumerate() {
                let so_mine: Vec<(u32, u32)> =
                    so.iter().copied().filter(|&(s, _)| partitioner.shard_of(s) == shard).collect();
                let os_mine: Vec<(u32, u32)> =
                    os.iter().copied().filter(|&(_, s)| partitioner.shard_of(s) == shard).collect();
                new_sh.tables.push(PairTable::from_sorted_parts(
                    name.clone(),
                    pred,
                    so_mine,
                    os_mine,
                ));
            }
        }
        self.partitioner = partitioner;
        self.shards = new_shards;
        self.agg_distinct_objects.clear();
        let preds: Vec<u32> = self.by_pred.keys().copied().collect();
        for p in preds {
            self.recompute_agg(p);
        }
    }
}

impl StoreShard {
    fn logical_triples(&self) -> usize {
        self.tables
            .iter()
            .map(|t| {
                let (ins, del) =
                    self.deltas.get(&t.pred()).map_or((0, 0), |d| (d.ins.len(), d.del.len()));
                t.len() + ins - del
            })
            .sum()
    }

    fn staged_pairs(&self) -> usize {
        self.deltas.values().map(PredDelta::len).sum()
    }
}

/// Count distinct first components across sorted slices by k-way merge —
/// the cross-shard distinct-object count for one predicate (each slice
/// one shard's `os` order).
fn distinct_first_across(slices: &[&[(u32, u32)]]) -> usize {
    let mut pos = vec![0usize; slices.len()];
    let mut distinct = 0usize;
    loop {
        let mut cur: Option<u32> = None;
        for (k, sl) in slices.iter().enumerate() {
            if pos[k] < sl.len() {
                let o = sl[pos[k]].0;
                cur = Some(cur.map_or(o, |c| c.min(o)));
            }
        }
        let Some(o) = cur else { break };
        distinct += 1;
        for (k, sl) in slices.iter().enumerate() {
            while pos[k] < sl.len() && sl[pos[k]].0 == o {
                pos[k] += 1;
            }
        }
    }
    distinct
}

impl TripleStore {
    #[doc(hidden)]
    pub fn __invariant_check(&self) -> bool {
        // Registration alignment: every shard holds a table for every
        // registered predicate, at the same index.
        if self.shards.is_empty()
            || self.shards.iter().any(|sh| sh.tables.len() != self.by_pred.len())
        {
            return false;
        }
        for (&p, &idx) in &self.by_pred {
            if self.shards.iter().any(|sh| sh.tables[idx].pred() != p) {
                return false;
            }
        }
        for (shard, sh) in self.shards.iter().enumerate() {
            // Subject affinity: every base pair lives in the shard its
            // subject hashes to.
            if sh
                .tables
                .iter()
                .any(|t| t.so_pairs().iter().any(|&(s, _)| self.partitioner.shard_of(s) != shard))
            {
                return false;
            }
            // Staged deltas: sorted-unique, anchored to a real table,
            // routed to this shard, with del ⊆ base and ins ∩ base = ∅
            // (and therefore non-empty).
            let ok = sh.deltas.iter().all(|(&p, d)| {
                let Some(&idx) = self.by_pred.get(&p) else {
                    return false;
                };
                let t = &sh.tables[idx];
                !d.is_empty()
                    && d.ins.windows(2).all(|w| w[0] < w[1])
                    && d.del.windows(2).all(|w| w[0] < w[1])
                    && d.del.iter().all(|&(s, o)| t.contains(s, o))
                    && d.ins.iter().all(|&(s, o)| !t.contains(s, o))
                    && d.ins
                        .iter()
                        .chain(&d.del)
                        .all(|&(s, _)| self.partitioner.shard_of(s) == shard)
            });
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn bulk_build_and_stats() {
        let store = TripleStore::from_triples(vec![
            t("s1", "p1", "o1"),
            t("s1", "p1", "o1"), // duplicate collapses
            t("s2", "p1", "o1"),
            t("s1", "p2", "o2"),
        ]);
        let stats = store.stats();
        assert_eq!(stats.triples, 3);
        assert_eq!(stats.predicates, 2);
        assert_eq!(store.table_by_name("p1").unwrap().len(), 2);
    }

    #[test]
    fn incremental_commit_merges() {
        let mut store = TripleStore::new();
        store.insert(t("a", "p", "b"));
        store.commit();
        assert_eq!(store.num_triples(), 1);
        store.insert(t("c", "p", "d"));
        store.insert(t("a", "p", "b")); // dup with committed data
        store.commit();
        assert_eq!(store.num_triples(), 2);
    }

    #[test]
    #[should_panic(expected = "before commit")]
    fn reading_uncommitted_panics() {
        let mut store = TripleStore::new();
        store.insert(t("a", "p", "b"));
        let _ = store.num_triples();
    }

    #[test]
    fn encoded_roundtrip() {
        let store = TripleStore::from_triples(vec![t("s", "p", "o")]);
        let enc: Vec<_> = store.encoded_triples().collect();
        assert_eq!(enc.len(), 1);
        assert_eq!(store.decode_triple(enc[0]), t("s", "p", "o"));
    }

    #[test]
    fn resolve_and_table_lookup() {
        let store = TripleStore::from_triples(vec![t("s", "p", "o")]);
        let pid = store.resolve_iri("p").unwrap();
        assert_eq!(store.table(pid).unwrap().name(), "p");
        assert!(store.resolve_iri("absent").is_none());
        assert!(store.table(9999).is_none());
    }

    #[test]
    fn commit_on_empty_is_noop() {
        let mut store = TripleStore::new();
        store.commit();
        assert_eq!(store.num_triples(), 0);
        assert!(store.__invariant_check());
    }

    #[test]
    fn add_triples_reports_only_real_change() {
        let mut store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        let p = store.resolve_iri("p").unwrap();
        // One duplicate, one new pair on p, one brand-new predicate.
        let report = store.add_triples(vec![t("a", "p", "b"), t("c", "p", "d"), t("a", "q", "b")]);
        let q = store.resolve_iri("q").unwrap();
        assert_eq!(report.added, 2);
        assert_eq!(report.removed, 0);
        assert_eq!(report.changed_preds, {
            let mut v = vec![p, q];
            v.sort_unstable();
            v
        });
        assert_eq!(store.num_triples(), 3);
        assert!(store
            .table_by_name("p")
            .unwrap()
            .contains(store.resolve_iri("c").unwrap(), store.resolve_iri("d").unwrap()));
        assert!(store.__invariant_check());
    }

    #[test]
    fn add_of_resident_triples_is_reported_empty() {
        let mut store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        let report = store.add_triples(vec![t("a", "p", "b"), t("a", "p", "b")]);
        assert!(report.is_empty());
        assert_eq!((report.added, report.removed), (0, 0));
        assert_eq!(store.num_triples(), 1);
    }

    #[test]
    fn remove_triples_reports_and_keeps_empty_tables() {
        let mut store =
            TripleStore::from_triples(vec![t("a", "p", "b"), t("c", "p", "d"), t("a", "q", "b")]);
        let p = store.resolve_iri("p").unwrap();
        let report = store.remove_triples(vec![
            t("a", "p", "b"),
            t("a", "p", "b"),      // duplicate victim counts once
            t("x", "p", "y"),      // absent terms: ignored
            t("a", "nosuch", "b"), // unknown predicate: ignored
        ]);
        assert_eq!(report.removed, 1);
        assert_eq!(report.added, 0);
        assert_eq!(report.changed_preds, vec![p]);
        assert_eq!(store.num_triples(), 2);
        // Removing the rest of p empties but does not drop the table.
        let report = store.remove_triples(vec![t("c", "p", "d")]);
        assert_eq!(report.removed, 1);
        let table = store.table_by_name("p").unwrap();
        assert!(table.is_empty());
        assert_eq!(store.stats().predicates, 2);
        assert!(store.__invariant_check());
    }

    #[test]
    fn update_report_merge_unions_predicates() {
        let mut a = UpdateReport { added: 1, removed: 0, changed_preds: vec![1, 3] };
        a.merge(UpdateReport { added: 2, removed: 4, changed_preds: vec![2, 3] });
        assert_eq!(a, UpdateReport { added: 3, removed: 4, changed_preds: vec![1, 2, 3] });
    }

    #[test]
    fn staging_reports_real_change_and_leaves_base_tables_alone() {
        let mut store = TripleStore::from_triples(vec![t("a", "p", "b"), t("c", "p", "d")]);
        let p = store.resolve_iri("p").unwrap();
        let report = store.stage_add_triples(vec![
            t("a", "p", "b"), // resident: no-op
            t("x", "p", "y"), // new pair
            t("m", "q", "n"), // brand-new predicate
        ]);
        let q = store.resolve_iri("q").unwrap();
        assert_eq!(report.added, 2);
        assert_eq!(report.changed_preds, {
            let mut v = vec![p, q];
            v.sort_unstable();
            v
        });
        // Base tables untouched; logical view merged.
        assert_eq!(store.table(p).unwrap().len(), 2);
        assert!(store.table(q).unwrap().is_empty());
        assert_eq!(store.num_triples(), 4);
        assert_eq!(store.delta_len(p), 1);
        assert_eq!(store.staged_pairs(), 2);
        assert!(store.has_deltas());
        assert!(store.__invariant_check());

        let report = store.stage_remove_triples(vec![
            t("a", "p", "b"), // resident: tombstone
            t("x", "p", "y"), // staged insert: cancels
            t("z", "p", "z"), // absent: no-op
        ]);
        assert_eq!(report.removed, 2);
        assert_eq!(report.changed_preds, vec![p]);
        assert_eq!(store.num_triples(), 2);
        assert_eq!(store.delta(p).unwrap().del_pairs().len(), 1);
        assert!(store.delta(p).unwrap().ins_pairs().is_empty());
        assert!(store.__invariant_check());

        // Re-inserting the tombstoned pair cancels the tombstone and the
        // delta evaporates entirely.
        let report = store.stage_add_triples(vec![t("a", "p", "b")]);
        assert_eq!(report.added, 1);
        assert!(store.delta(p).is_none());
        assert_eq!(store.delta_preds(), vec![q]);
        assert_eq!(store.num_triples(), 3);
    }

    #[test]
    fn staged_noops_report_empty() {
        let mut store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        let report = store.stage_add_triples(vec![t("a", "p", "b")]);
        assert!(report.is_empty());
        let report = store.stage_remove_triples(vec![t("z", "p", "z"), t("a", "nosuch", "b")]);
        assert!(report.is_empty());
        assert!(!store.has_deltas());
    }

    #[test]
    fn compaction_preserves_logical_contents() {
        let mut store =
            TripleStore::from_triples(vec![t("a", "p", "b"), t("c", "p", "d"), t("e", "q", "f")]);
        let p = store.resolve_iri("p").unwrap();
        store.stage_add_triples(vec![t("x", "p", "y"), t("g", "q", "h")]);
        store.stage_remove_triples(vec![t("c", "p", "d")]);
        let logical: Vec<_> = store.encoded_triples().collect();
        let compacted = store.compact_all();
        assert_eq!(compacted.len(), 2);
        assert!(compacted.contains(&p));
        assert!(!store.has_deltas());
        let after: Vec<_> = store.encoded_triples().collect();
        assert_eq!(logical, after);
        // Compacted tables are fully coherent (os order included).
        let table = store.table(p).unwrap();
        assert_eq!(table.len(), 2);
        let y = store.resolve_iri("y").unwrap();
        assert_eq!(table.pairs_for_object(y).len(), 1);
        assert!(store.__invariant_check());
    }

    #[test]
    fn eager_paths_fold_staged_deltas_first() {
        let mut store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        store.stage_add_triples(vec![t("x", "p", "y")]);
        // Eager add compacts first, then merges — nothing lost, no dups.
        let report = store.add_triples(vec![t("x", "p", "y"), t("c", "p", "d")]);
        assert_eq!(report.added, 1);
        assert!(!store.has_deltas());
        assert_eq!(store.num_triples(), 3);

        store.stage_remove_triples(vec![t("a", "p", "b")]);
        let report = store.remove_triples(vec![t("c", "p", "d")]);
        assert_eq!(report.removed, 1);
        assert!(!store.has_deltas());
        assert_eq!(store.num_triples(), 1);
        assert!(store
            .table_by_name("p")
            .unwrap()
            .contains(store.resolve_iri("x").unwrap(), store.resolve_iri("y").unwrap()));
    }

    #[test]
    fn staged_store_clones_carry_their_deltas() {
        let mut store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        store.stage_add_triples(vec![t("x", "p", "y")]);
        let clone = store.clone();
        assert_eq!(clone.staged_pairs(), 1);
        assert_eq!(
            clone.encoded_triples().collect::<Vec<_>>(),
            store.encoded_triples().collect::<Vec<_>>()
        );
    }

    #[test]
    fn add_then_remove_roundtrips_to_original_contents() {
        let mut store = TripleStore::from_triples(vec![t("a", "p", "b")]);
        let before: Vec<_> = store.encoded_triples().collect();
        store.add_triples(vec![t("x", "p", "y"), t("x", "r", "y")]);
        store.remove_triples(vec![t("x", "p", "y"), t("x", "r", "y")]);
        let after: Vec<_> = store.encoded_triples().collect();
        assert_eq!(before, after);
    }

    // ------------------------------------------------------ partitioning

    fn sample_triples() -> Vec<Triple> {
        let mut v = Vec::new();
        for i in 0..40u32 {
            v.push(t(&format!("s{i}"), "p", &format!("o{}", i % 7)));
            if i % 3 == 0 {
                v.push(t(&format!("s{i}"), "q", "shared"));
            }
        }
        v
    }

    #[test]
    fn partitioned_build_matches_logical_view() {
        let reference = TripleStore::from_triples(sample_triples());
        let logical: Vec<_> = reference.encoded_triples().collect();
        for partitions in [1, 2, 4] {
            let store = TripleStore::from_triples_partitioned(sample_triples(), partitions);
            assert_eq!(store.partitions(), partitions);
            assert_eq!(store.num_triples(), reference.num_triples(), "P={partitions}");
            assert_eq!(store.encoded_triples().collect::<Vec<_>>(), logical, "P={partitions}");
            assert!(store.__invariant_check(), "P={partitions}");
        }
    }

    #[test]
    fn pred_card_is_partition_invariant() {
        let reference = TripleStore::from_triples(sample_triples());
        let rc = reference.pred_card("p").unwrap();
        let (len, ds, dobj) = (rc.len(), rc.distinct_subjects(), rc.distinct_objects());
        let s3 = reference.resolve_iri("s3").unwrap();
        let o1 = reference.resolve_iri("o1").unwrap();
        let (ms, mo) = (rc.matches_for_subject(s3), rc.matches_for_object(o1));
        for partitions in [2, 4] {
            let store = TripleStore::from_triples_partitioned(sample_triples(), partitions);
            let c = store.pred_card("p").unwrap();
            assert_eq!(c.len(), len, "P={partitions}");
            assert_eq!(c.distinct_subjects(), ds, "P={partitions}");
            assert_eq!(c.distinct_objects(), dobj, "P={partitions}");
            assert_eq!(c.matches_for_subject(s3), ms, "P={partitions}");
            assert_eq!(c.matches_for_object(o1), mo, "P={partitions}");
        }
    }

    #[test]
    fn partitioned_staging_routes_by_subject_and_compacts_shard_locally() {
        let mut store = TripleStore::from_triples_partitioned(sample_triples(), 4);
        let p = store.resolve_iri("p").unwrap();
        let before = store.num_triples();
        store.stage_add_triples(vec![t("new1", "p", "x"), t("new2", "p", "x")]);
        store.stage_remove_triples(vec![t("s0", "p", "o0")]);
        assert_eq!(store.num_triples(), before + 1);
        assert!(store.__invariant_check());
        // Each staged pair sits in exactly the shard its subject hashes to.
        let total: usize = (0..4).map(|s| store.shard_delta_len(s, p)).sum();
        assert_eq!(total, 3);
        assert_eq!(store.delta_len(p), 3);
        // Shard-local compaction folds only that shard's delta.
        let loaded: Vec<usize> = (0..4).filter(|&s| store.shard_delta_len(s, p) > 0).collect();
        let first = loaded[0];
        let folded = store.shard_delta_len(first, p);
        assert!(store.compact_pred_in(first, p));
        assert_eq!(store.shard_delta_len(first, p), 0);
        assert_eq!(store.delta_len(p), 3 - folded, "other shards' deltas untouched");
        assert_eq!(store.num_triples(), before + 1, "logical view unchanged");
        store.compact_all();
        assert!(!store.has_deltas());
        assert_eq!(store.num_triples(), before + 1);
        assert!(store.__invariant_check());
    }

    #[test]
    fn repartition_preserves_logical_contents() {
        let mut store = TripleStore::from_triples(sample_triples());
        store.stage_add_triples(vec![t("extra", "p", "x")]);
        let logical: Vec<_> = store.encoded_triples().collect();
        store.repartition(4);
        assert_eq!(store.partitions(), 4);
        assert!(!store.has_deltas(), "repartition folds deltas");
        assert_eq!(store.encoded_triples().collect::<Vec<_>>(), logical);
        assert!(store.__invariant_check());
        store.repartition(1);
        assert_eq!(store.partitions(), 1);
        assert_eq!(store.encoded_triples().collect::<Vec<_>>(), logical);
        assert!(store.__invariant_check());
    }

    #[test]
    fn shard_stats_cover_all_triples() {
        let mut store = TripleStore::from_triples_partitioned(sample_triples(), 4);
        store.stage_add_triples(vec![t("fresh", "p", "x")]);
        let stats = store.shard_stats();
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|s| s.triples).sum::<usize>(), store.num_triples());
        assert_eq!(stats.iter().map(|s| s.staged_pairs).sum::<usize>(), 1);
    }

    #[test]
    #[should_panic(expected = "use shard_table")]
    fn single_table_view_panics_when_partitioned() {
        let store = TripleStore::from_triples_partitioned(sample_triples(), 2);
        let p = store.resolve_iri("p").unwrap();
        let _ = store.table(p);
    }
}
