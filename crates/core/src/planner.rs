//! The planner: query → GHD → global attribute order → node schedules.

use eh_ghd::{choose_ghd, ghd_width_unselected, pipelineable, ChooseMode, Ghd};
use eh_query::{ConjunctiveQuery, Hypergraph, Var};
use eh_rdf::TripleStore;

use crate::flags::PlannerConfig;
use crate::plan::{AtomPlan, NodePlan, Plan};

/// Estimated number of bindings for each unselected variable: the minimum
/// over its atoms of (a) the exact match count when the atom's other
/// position carries an equality selection (the tables are clustered both
/// ways, so this is a range count) or (b) the distinct count of the
/// variable's side. This drives the "+Attribute" heuristic of §III-B1:
/// "forcing the attributes with selections **or small initial
/// cardinalities** to come first".
fn var_cardinalities(
    q: &ConjunctiveQuery,
    store: &TripleStore,
    selection_aware: bool,
) -> Vec<usize> {
    let mut est = vec![usize::MAX; q.num_vars()];
    for a in q.atoms() {
        // Statistics come through the partition-invariant [`PredCard`]
        // view, never a single shard's table: a partitioned store must
        // yield the exact numbers a P=1 store would, or the chosen
        // attribute order — and therefore the emitted bytes — would
        // depend on the partition count.
        let Some(card) = store.pred_card(&a.relation) else {
            // Missing predicate: the query is empty; any order works.
            est[a.vars[0]] = 0;
            est[a.vars[1]] = 0;
            continue;
        };
        for (i, &v) in a.vars.iter().enumerate() {
            if q.is_selected(v) {
                continue;
            }
            let other = a.vars[1 - i];
            let bound = match q.selection(other) {
                Some(Some(c)) if selection_aware => {
                    if i == 0 {
                        card.matches_for_object(c)
                    } else {
                        card.matches_for_subject(c)
                    }
                }
                Some(None) if selection_aware => 0,
                _ => {
                    if i == 0 {
                        card.distinct_subjects()
                    } else {
                        card.distinct_objects()
                    }
                }
            };
            est[v] = est[v].min(bound);
        }
    }
    est
}

/// Build a physical plan for `q` under `config`, using `store` statistics
/// for the cardinality-aware attribute ordering (pass `None` to fall back
/// to pure appearance order — used by unit tests).
pub fn build_plan_with(
    q: &ConjunctiveQuery,
    config: PlannerConfig,
    store: Option<&TripleStore>,
) -> Plan {
    let flags = config.flags;
    let h = Hypergraph::from_query(q);
    let selected: Vec<bool> = (0..q.num_vars()).map(|v| q.is_selected(v)).collect();

    // 1. Choose the decomposition (§II-C, §III-B2).
    let ghd = if config.force_single_node {
        Ghd::single_node(&h)
    } else if flags.ghd_pushdown {
        choose_ghd(&h, &selected, ChooseMode::SelectionAware)
    } else {
        choose_ghd(&h, &selected, ChooseMode::Plain)
    };

    // 2. Global attribute order (§II-C): BFS over the GHD, variables
    //    within each bag in query-appearance order; with +Attribute the
    //    selection variables move to the front and the remaining
    //    variables order by estimated cardinality (§III-B1 — the paper's
    //    [a, b, c, x, y, z] order for LUBM query 2, and "attributes with
    //    selections or small initial cardinalities come first").
    let appearance = q.appearance_order();
    let appearance_rank: Vec<usize> = {
        let mut r = vec![usize::MAX; q.num_vars()];
        for (i, &v) in appearance.iter().enumerate() {
            r[v] = i;
        }
        r
    };
    let mut base: Vec<Var> = Vec::with_capacity(q.num_vars());
    let mut seen = vec![false; q.num_vars()];
    for t in ghd.bfs_order() {
        let mut bag = ghd.bags[t].clone();
        bag.sort_by_key(|&v| appearance_rank[v]);
        for v in bag {
            if !seen[v] {
                seen[v] = true;
                base.push(v);
            }
        }
    }
    let global_order: Vec<Var> = if flags.attr_reorder {
        // §III-B1: selections first, then ascending estimated cardinality.
        let cards = match store {
            Some(s) => var_cardinalities(q, s, true),
            None => vec![0; q.num_vars()],
        };
        let sel: Vec<Var> = base.iter().copied().filter(|&v| selected[v]).collect();
        let mut unsel: Vec<Var> = base.iter().copied().filter(|&v| !selected[v]).collect();
        unsel.sort_by_key(|&v| (cards[v], appearance_rank[v]));
        sel.into_iter().chain(unsel).collect()
    } else if config.selection_blind_order {
        // LogicBlox-style: competent distinct-count join ordering, but
        // selections are trailing checks instead of leading probes.
        let cards = match store {
            Some(s) => var_cardinalities(q, s, false),
            None => vec![0; q.num_vars()],
        };
        let mut unsel: Vec<Var> = base.iter().copied().filter(|&v| !selected[v]).collect();
        unsel.sort_by_key(|&v| (cards[v], appearance_rank[v]));
        let sel: Vec<Var> = base.iter().copied().filter(|&v| selected[v]).collect();
        unsel.into_iter().chain(sel).collect()
    } else {
        base
    };
    let mut position = vec![usize::MAX; q.num_vars()];
    for (i, &v) in global_order.iter().enumerate() {
        position[v] = i;
    }

    // 3. Node schedules.
    let projection = q.projection();
    let mut nodes = Vec::with_capacity(ghd.num_nodes());
    for t in 0..ghd.num_nodes() {
        let mut vars = ghd.bags[t].clone();
        vars.sort_by_key(|&v| position[v]);
        // Output = unselected bag vars needed above, below, or in SELECT.
        let mut needed: Vec<Var> = Vec::new();
        for &v in &vars {
            if selected[v] {
                continue;
            }
            let in_projection = projection.contains(&v);
            let in_parent = ghd.parent[t].is_some_and(|p| ghd.bags[p].contains(&v));
            let in_child = ghd.children[t].iter().any(|&c| ghd.bags[c].contains(&v));
            if in_projection || in_parent || in_child {
                needed.push(v);
            }
        }
        let shared: Vec<Var> = {
            let mut s = ghd.shared_with_parent(t);
            s.retain(|&v| !selected[v]);
            s.sort_by_key(|&v| position[v]);
            s
        };
        let atoms = ghd.lambdas[t]
            .iter()
            .map(|&e| {
                let a = &q.atoms()[e];
                let subject_first = position[a.vars[0]] < position[a.vars[1]];
                let attrs = if subject_first {
                    vec![a.vars[0], a.vars[1]]
                } else {
                    vec![a.vars[1], a.vars[0]]
                };
                AtomPlan { atom_index: e, subject_first, attrs }
            })
            .collect();
        nodes.push(NodePlan { vars, output: needed, shared_with_parent: shared, atoms });
    }

    // 4. Pipelining (§III-C, Definition 2): the root streams into the
    //    final result when, for every non-root node, the variables shared
    //    with its parent form a prefix of its own output (trie) order.
    //    This applies Definition 2 transitively down the tree — the paper
    //    pipelines the root with one child; lookup-based streaming only
    //    needs the prefix on the looked-up (child) side, and BFS-order
    //    assembly guarantees every shared variable is already bound when
    //    a node's private columns are appended.
    let pipelined = flags.pipelining
        && ghd.num_nodes() > 1
        && (0..ghd.num_nodes()).all(|t| {
            t == ghd.root
                || pipelineable(&nodes[t].shared_with_parent, &nodes[t].output, &nodes[t].output)
        });

    // Reported width ignores selection attributes: the paper quotes the
    // Figure 2 GHD of LUBM query 2 as fhw 1.5, i.e. the width of the
    // triangle over {x, y, z} with the three selection attributes bound.
    let width = ghd_width_unselected(&ghd, &h, &selected);
    Plan { ghd, global_order, position, nodes, pipelined, width }
}

/// [`build_plan_with`] without store statistics (appearance-order
/// fallback for the +Attribute heuristic; unit tests use this to check
/// pure plan-shape decisions).
#[cfg(test)]
pub(crate) fn build_plan(q: &ConjunctiveQuery, config: PlannerConfig) -> Plan {
    build_plan_with(q, config, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::OptFlags;
    use eh_query::QueryBuilder;

    /// LUBM query 14 shape: R(x, a) with a selected.
    fn q14_like() -> ConjunctiveQuery {
        let mut qb = QueryBuilder::new();
        let x = qb.var("x");
        let a = qb.selection_var(Some(5));
        qb.atom("type", 0, x, a);
        qb.select(vec![x]).build().unwrap()
    }

    #[test]
    fn attr_reorder_puts_selection_first() {
        let q = q14_like();
        let with = build_plan(&q, PlannerConfig::with_flags(OptFlags::all()));
        let without = build_plan(&q, PlannerConfig::with_flags(OptFlags::none()));
        // Example 1 of the paper: [a, x] with the optimization, [x, a]
        // without.
        assert_eq!(with.global_order, vec![1, 0]);
        assert_eq!(without.global_order, vec![0, 1]);
        // The trie column order follows: object-major with, subject-major
        // without.
        assert!(!with.nodes[0].atoms[0].subject_first);
        assert!(without.nodes[0].atoms[0].subject_first);
    }

    #[test]
    fn q2_order_selections_first() {
        // Triangle with three selection atoms: the global order must list
        // the three selection vars before x, y, z (paper §III-B1).
        let mut qb = QueryBuilder::new();
        let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
        let a = qb.selection_var(Some(1));
        let b = qb.selection_var(Some(2));
        let c = qb.selection_var(Some(3));
        qb.atom("type", 0, x, a)
            .atom("type", 0, y, b)
            .atom("type", 0, z, c)
            .atom("degreeFrom", 1, x, y)
            .atom("memberOf", 2, x, z)
            .atom("subOrg", 3, z, y);
        let q = qb.select(vec![x, y, z]).build().unwrap();
        let plan = build_plan(&q, PlannerConfig::with_flags(OptFlags::all()));
        let sel_pos: Vec<usize> = [a, b, c].iter().map(|&v| plan.position[v]).collect();
        let var_pos: Vec<usize> = [x, y, z].iter().map(|&v| plan.position[v]).collect();
        assert!(sel_pos.iter().max() < var_pos.iter().min(), "{:?} {:?}", sel_pos, var_pos);
        assert_eq!(plan.width, eh_lp::Rational::new(3, 2));
    }

    #[test]
    fn single_node_override() {
        let mut qb = QueryBuilder::new();
        let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
        qb.atom("R", 0, x, y).atom("S", 1, y, z);
        let q = qb.select(vec![x, z]).build().unwrap();
        let plan = build_plan(&q, PlannerConfig::logicblox_style());
        assert_eq!(plan.ghd.num_nodes(), 1);
        assert!(!plan.pipelined);
        // Naive order: appearance order.
        assert_eq!(plan.global_order, vec![x, y, z]);
    }

    #[test]
    fn q8_like_is_pipelineable() {
        // R(x,y) root-ish with S(x,z): shared {x} is a prefix of both
        // output orders, so pipelining applies (paper Example 3).
        let mut qb = QueryBuilder::new();
        let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
        qb.atom("R", 0, x, y).atom("S", 1, x, z);
        let q = qb.select(vec![x, y, z]).build().unwrap();
        let plan = build_plan(&q, PlannerConfig::with_flags(OptFlags::all()));
        if plan.ghd.num_nodes() > 1 {
            assert!(plan.pipelined);
        }
        let no_pipe = build_plan(
            &q,
            PlannerConfig::with_flags(OptFlags { pipelining: false, ..OptFlags::all() }),
        );
        assert!(!no_pipe.pipelined);
    }

    #[test]
    fn node_outputs_cover_projection_and_interfaces() {
        let mut qb = QueryBuilder::new();
        let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
        let a = qb.selection_var(Some(9));
        qb.atom("R", 0, x, y).atom("S", 1, y, z).atom("T", 2, x, a);
        let q = qb.select(vec![x, z]).build().unwrap();
        for flags in [OptFlags::all(), OptFlags::none()] {
            let plan = build_plan(&q, PlannerConfig::with_flags(flags));
            // Every projection var appears in some node output.
            for &v in q.projection() {
                assert!(
                    plan.nodes.iter().any(|n| n.output.contains(&v)),
                    "projection var missing from all node outputs"
                );
            }
            // No selection var is ever an output.
            for n in &plan.nodes {
                assert!(!n.output.contains(&a));
                // Outputs are sorted by global position.
                assert!(n.output.windows(2).all(|w| plan.position[w[0]] < plan.position[w[1]]));
            }
        }
    }
}
